(* Tracked service benchmark: what the analysis cache buys a long-lived
   flex_serve process.

     dune exec bench/service_perf.exe                -- writes BENCH_service.json
     dune exec bench/service_perf.exe -- --out FILE  -- choose the output path
     dune exec bench/service_perf.exe -- --smoke     -- tiny sizes, JSON sanity check

   Per query shape the benchmark drives Server.handle directly (no socket, so
   the numbers are the pipeline's own) and reads the per-stage timings the
   server writes to its audit log: a cold request pays the full
   elastic-sensitivity analysis, a warm repeat — even alias-renamed — should
   spend its time in execution + perturbation with analysis near zero. A
   final section hammers one server from several threads to report cache hit
   rate and throughput. *)

module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module W = Flex_workload
module Server = Flex_service.Server
module Wire = Flex_service.Wire
module Json = Flex_service.Json
module Audit = Flex_service.Audit
module Cache = Flex_service.Cache

let smoke = ref false
let out_path = ref "BENCH_service.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* --------------------------------------------------------------- workload *)

type shape = { name : string; sql : string; warm_sql : string }

(* warm_sql is the alias-renamed form: hitting the cache through
   canonicalization, not string identity, is the point *)
let shapes =
  [
    {
      name = "scalar_count";
      sql = "SELECT COUNT(*) FROM trips t WHERE t.status = 'completed'";
      warm_sql = "SELECT COUNT(*) FROM trips x WHERE x.status = 'completed'";
    };
    {
      name = "join_count";
      sql =
        "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
         WHERE d.rating > 3.0";
      warm_sql =
        "SELECT COUNT(*) FROM trips a JOIN drivers b ON a.driver_id = b.id \
         WHERE b.rating > 3.0";
    };
    {
      name = "histogram";
      sql = "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
      warm_sql = "SELECT u.status, COUNT(*) FROM trips u GROUP BY u.status";
    };
    {
      name = "join_histogram";
      sql =
        "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
         GROUP BY c.name";
      warm_sql =
        "SELECT z.name, COUNT(*) FROM trips y JOIN cities z ON y.city_id = z.id \
         GROUP BY z.name";
    };
  ]

(* ------------------------------------------------------- stage accounting *)

type stages = {
  parse_ns : float;
  analysis_ns : float;
  smooth_ns : float;
  execution_ns : float;
  perturbation_ns : float;
}

let total s = s.parse_ns +. s.analysis_ns +. s.smooth_ns +. s.execution_ns +. s.perturbation_ns

let field j name =
  match Option.bind (Json.mem name j) Json.to_num with
  | Some v -> v
  | None -> Fmt.failwith "audit event missing %s" name

let stages_of_event j =
  {
    parse_ns = field j "parse_ns";
    analysis_ns = field j "analysis_ns";
    smooth_ns = field j "smooth_ns";
    execution_ns = field j "execution_ns";
    perturbation_ns = field j "perturbation_ns";
  }

let audit_events buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map Json.of_string_exn

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let median_stages evs =
  {
    parse_ns = median (List.map (fun s -> s.parse_ns) evs);
    analysis_ns = median (List.map (fun s -> s.analysis_ns) evs);
    smooth_ns = median (List.map (fun s -> s.smooth_ns) evs);
    execution_ns = median (List.map (fun s -> s.execution_ns) evs);
    perturbation_ns = median (List.map (fun s -> s.perturbation_ns) evs);
  }

(* ---------------------------------------------------------------- harness *)

let make_server ~audit (db, metrics) =
  let ledger = Ledger.in_memory () in
  (* a budget nothing here can exhaust: this benchmark measures latency *)
  let config = { Server.default_config with analyst_epsilon = 1e9; analyst_delta = 0.5 } in
  Server.create ~audit ~config ~db ~metrics ~ledger ~rng:(Rng.create ~seed:42 ()) ()

(* returns whether the analysis came from the cache *)
let run_query server session sql =
  match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None }) with
  | Wire.Result { cache_hit; _ } -> cache_hit
  | other -> Fmt.failwith "query failed: %s" (Wire.response_to_line other)

type report = { shape : string; cold : stages; warm : stages; warm_hit : bool }

let bench_shape fixture repeats s =
  let buf = Buffer.create 4096 in
  let server = make_server ~audit:(Audit.to_buffer buf) fixture in
  let session = Server.session server in
  (match Server.handle server session (Wire.Hello { analyst = "bench"; epsilon = None; delta = None }) with
  | Wire.Budget_report _ -> ()
  | other -> Fmt.failwith "hello failed: %s" (Wire.response_to_line other));
  let cold_hit = run_query server session s.sql in
  assert (not cold_hit);
  let warm_hit = ref true in
  for _ = 1 to repeats do
    warm_hit := run_query server session s.warm_sql && !warm_hit
  done;
  match List.map stages_of_event (audit_events buf) with
  | cold :: warm_events ->
    { shape = s.name; cold; warm = median_stages warm_events; warm_hit = !warm_hit }
  | [] -> Fmt.failwith "no audit events for %s" s.name

(* Several sessions replaying a mixed workload against one server: the cache
   serves every analysis after the first sight of each shape. A warmup pass
   primes the cache (and the runtime) before the clock starts, and the timed
   section repeats [rounds] times with the median wall time reported, so a
   single scheduler hiccup cannot skew the tracked number. *)
let bench_throughput fixture ~threads ~per_thread ~rounds =
  let server = make_server ~audit:(Audit.null ()) fixture in
  let prime = Server.session server in
  ignore
    (Server.handle server prime
       (Wire.Hello { analyst = "bench-warmup"; epsilon = None; delta = None }));
  List.iter (fun s -> ignore (run_query server prime s.sql)) shapes;
  let round () =
    let worker i =
      let session = Server.session server in
      ignore
        (Server.handle server session
           (Wire.Hello { analyst = Fmt.str "bench-%d" i; epsilon = None; delta = None }));
      List.iteri
        (fun j s ->
          for _ = 1 to per_thread do
            ignore (run_query server session (if (i + j) mod 2 = 0 then s.sql else s.warm_sql))
          done)
        shapes
    in
    let t0 = Unix.gettimeofday () in
    let ts = List.init threads (fun i -> Thread.create worker i) in
    List.iter Thread.join ts;
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let wall_ns = median (List.init rounds (fun _ -> round ())) in
  let queries = threads * per_thread * List.length shapes in
  let cache = Server.cache server in
  (queries, wall_ns, Cache.hits cache, Cache.misses cache)

(* ------------------------------------------------------------------ JSON *)

let json_of_stages s =
  Fmt.str
    "{\"parse_ns\": %.0f, \"analysis_ns\": %.0f, \"smooth_ns\": %.0f, \
     \"execution_ns\": %.0f, \"perturbation_ns\": %.0f, \"total_ns\": %.0f}"
    s.parse_ns s.analysis_ns s.smooth_ns s.execution_ns s.perturbation_ns (total s)

let json_report b r =
  let warm_exec_share = (r.warm.execution_ns +. r.warm.perturbation_ns) /. total r.warm in
  Buffer.add_string b
    (Fmt.str
       "    {\"shape\": %S, \"cold_ns\": %s, \"warm_ns\": %s, \"warm_cache_hit\": %b, \
        \"analysis_speedup\": %.1f, \"warm_exec_perturb_share\": %.3f}"
       r.shape (json_of_stages r.cold) (json_of_stages r.warm) r.warm_hit
       (r.cold.analysis_ns /. Float.max r.warm.analysis_ns 1.0)
       warm_exec_share)

(* -------------------------------------------------------------------- main *)

let () =
  let sizes = if !smoke then W.Uber.small_sizes else W.Uber.default_sizes in
  let repeats = if !smoke then 3 else 21 in
  let threads = if !smoke then 2 else 4 in
  let per_thread = if !smoke then 2 else 25 in
  let rounds = if !smoke then 1 else 3 in
  let fixture = W.Uber.generate ~sizes (Rng.create ~seed:7 ()) in
  Fmt.pr "flex service benchmark (analysis cache; median of %d warm repeats)@." repeats;
  Fmt.pr "  %-16s %12s %12s %12s %9s@." "shape" "cold ns" "warm ns" "warm analysis"
    "hit";
  let reports =
    List.map
      (fun s ->
        let r = bench_shape fixture repeats s in
        Fmt.pr "  %-16s %12.0f %12.0f %12.0f %9b@." r.shape (total r.cold) (total r.warm)
          r.warm.analysis_ns r.warm_hit;
        r)
      shapes
  in
  let queries, wall_ns, hits, misses = bench_throughput fixture ~threads ~per_thread ~rounds in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Fmt.pr
    "  throughput: %d queries over %d threads in %.1f ms (%.0f q/s, median of %d rounds), \
     cache hit rate %.3f@."
    queries threads (wall_ns /. 1e6)
    (float_of_int queries /. (wall_ns /. 1e9))
    rounds hit_rate;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"flex-service\",\n  \"unit\": \"ns/stage\",\n";
  Buffer.add_string b (Fmt.str "  \"smoke\": %b,\n  \"shapes\": [\n" !smoke);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_report b r)
    reports;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Fmt.str
       "  \"throughput\": {\"threads\": %d, \"rounds\": %d, \"queries\": %d, \
        \"wall_ns\": %.0f, \"queries_per_sec\": %.0f, \"cache_hits\": %d, \
        \"cache_misses\": %d, \"cache_hit_rate\": %.3f}\n"
       threads rounds queries wall_ns
       (float_of_int queries /. (wall_ns /. 1e9))
       hits misses hit_rate);
  Buffer.add_string b "}\n";
  let json = Buffer.contents b in
  (match Json.of_string json with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "generated JSON is malformed: %s" e);
  (* the cache must be measurably effective, or the number is a lie *)
  List.iter
    (fun r ->
      if not r.warm_hit then Fmt.failwith "%s: warm repeats missed the cache" r.shape)
    reports;
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out_path
