(* Tracked service benchmark: what the analysis cache and the release store
   buy a long-lived flex_serve process.

     dune exec bench/service_perf.exe                -- writes BENCH_service.json
     dune exec bench/service_perf.exe -- --out FILE  -- choose the output path
     dune exec bench/service_perf.exe -- --smoke     -- tiny sizes, gates only

   Per query shape the benchmark drives Server.handle directly (no socket, so
   the numbers are the pipeline's own) and reads the per-stage timings the
   server writes to its audit log: a cold request pays the full
   elastic-sensitivity analysis, a warm repeat — even alias-renamed — should
   spend its time in execution + perturbation with analysis near zero (these
   sections run with replay off so they keep measuring the charged pipeline).
   A throughput section hammers one server from several threads to report
   cache hit rate and q/s.

   The release-store sections gate the subsystem, in smoke mode too:
   a replayed repeat must be >= 10x faster than its cold release, every
   repeat must come back [cached] with zero spend, and a simulated restart
   (fresh server, different RNG seed, same journals) must replay previously
   released answers byte-identically without charging another epsilon. *)

module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module W = Flex_workload
module Server = Flex_service.Server
module Wire = Flex_service.Wire
module Json = Flex_service.Json
module Audit = Flex_service.Audit
module Cache = Flex_service.Cache
module Release_store = Flex_service.Release_store
module Metrics = Flex_engine.Metrics

let smoke = ref false
let out_path = ref "BENCH_service.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* --------------------------------------------------------------- workload *)

type shape = { name : string; sql : string; warm_sql : string }

(* warm_sql is the alias-renamed form: hitting the cache through
   canonicalization, not string identity, is the point *)
let shapes =
  [
    {
      name = "scalar_count";
      sql = "SELECT COUNT(*) FROM trips t WHERE t.status = 'completed'";
      warm_sql = "SELECT COUNT(*) FROM trips x WHERE x.status = 'completed'";
    };
    {
      name = "join_count";
      sql =
        "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
         WHERE d.rating > 3.0";
      warm_sql =
        "SELECT COUNT(*) FROM trips a JOIN drivers b ON a.driver_id = b.id \
         WHERE b.rating > 3.0";
    };
    {
      name = "histogram";
      sql = "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
      warm_sql = "SELECT u.status, COUNT(*) FROM trips u GROUP BY u.status";
    };
    {
      name = "join_histogram";
      sql =
        "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
         GROUP BY c.name";
      warm_sql =
        "SELECT z.name, COUNT(*) FROM trips y JOIN cities z ON y.city_id = z.id \
         GROUP BY z.name";
    };
  ]

(* ------------------------------------------------------- stage accounting *)

type stages = {
  parse_ns : float;
  analysis_ns : float;
  smooth_ns : float;
  execution_ns : float;
  perturbation_ns : float;
}

let total s = s.parse_ns +. s.analysis_ns +. s.smooth_ns +. s.execution_ns +. s.perturbation_ns

let field j name =
  match Option.bind (Json.mem name j) Json.to_num with
  | Some v -> v
  | None -> Fmt.failwith "audit event missing %s" name

let stages_of_event j =
  {
    parse_ns = field j "parse_ns";
    analysis_ns = field j "analysis_ns";
    smooth_ns = field j "smooth_ns";
    execution_ns = field j "execution_ns";
    perturbation_ns = field j "perturbation_ns";
  }

let audit_events buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map Json.of_string_exn

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let median_stages evs =
  {
    parse_ns = median (List.map (fun s -> s.parse_ns) evs);
    analysis_ns = median (List.map (fun s -> s.analysis_ns) evs);
    smooth_ns = median (List.map (fun s -> s.smooth_ns) evs);
    execution_ns = median (List.map (fun s -> s.execution_ns) evs);
    perturbation_ns = median (List.map (fun s -> s.perturbation_ns) evs);
  }

(* ---------------------------------------------------------------- harness *)

let make_server ?(replay = false) ?release_store ?ledger ?(seed = 42) ~audit (db, metrics) =
  let ledger = match ledger with Some l -> l | None -> Ledger.in_memory () in
  (* a budget nothing here can exhaust: this benchmark measures latency *)
  let config =
    {
      Server.default_config with
      analyst_epsilon = 1e9;
      analyst_delta = 0.5;
      release_cache = replay;
    }
  in
  Server.create ~audit ~config ?release_store ~db ~metrics ~ledger
    ~rng:(Rng.create ~seed ()) ()

let hello server session analyst =
  match
    Server.handle server session (Wire.Hello { analyst; epsilon = None; delta = None })
  with
  | Wire.Budget_report _ -> ()
  | other -> Fmt.failwith "hello failed: %s" (Wire.response_to_line other)

(* returns whether the analysis came from the cache *)
let run_query server session sql =
  match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None }) with
  | Wire.Result { cache_hit; _ } -> cache_hit
  | other -> Fmt.failwith "query failed: %s" (Wire.response_to_line other)

(* (replayed, epsilon_spent, released rows as one canonical string) *)
let run_query_release server session sql =
  match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None }) with
  | Wire.Result r ->
    ( r.cached,
      r.epsilon_spent,
      Json.to_string (Json.List (List.map (fun row -> Json.List row) r.rows)) )
  | other -> Fmt.failwith "query failed: %s" (Wire.response_to_line other)

type report = { shape : string; cold : stages; warm : stages; warm_hit : bool }

let bench_shape fixture repeats s =
  let buf = Buffer.create 4096 in
  let server = make_server ~audit:(Audit.to_buffer buf) fixture in
  let session = Server.session server in
  (match Server.handle server session (Wire.Hello { analyst = "bench"; epsilon = None; delta = None }) with
  | Wire.Budget_report _ -> ()
  | other -> Fmt.failwith "hello failed: %s" (Wire.response_to_line other));
  let cold_hit = run_query server session s.sql in
  assert (not cold_hit);
  let warm_hit = ref true in
  for _ = 1 to repeats do
    warm_hit := run_query server session s.warm_sql && !warm_hit
  done;
  match List.map stages_of_event (audit_events buf) with
  | cold :: warm_events ->
    { shape = s.name; cold; warm = median_stages warm_events; warm_hit = !warm_hit }
  | [] -> Fmt.failwith "no audit events for %s" s.name

(* Several sessions replaying a mixed workload against one server: the cache
   serves every analysis after the first sight of each shape. A warmup pass
   primes the cache (and the runtime) before the clock starts, and the timed
   section repeats [rounds] times with the median wall time reported, so a
   single scheduler hiccup cannot skew the tracked number. *)
let bench_throughput fixture ~threads ~per_thread ~rounds =
  let server = make_server ~audit:(Audit.null ()) fixture in
  let prime = Server.session server in
  ignore
    (Server.handle server prime
       (Wire.Hello { analyst = "bench-warmup"; epsilon = None; delta = None }));
  List.iter (fun s -> ignore (run_query server prime s.sql)) shapes;
  let round () =
    let worker i =
      let session = Server.session server in
      ignore
        (Server.handle server session
           (Wire.Hello { analyst = Fmt.str "bench-%d" i; epsilon = None; delta = None }));
      List.iteri
        (fun j s ->
          for _ = 1 to per_thread do
            ignore (run_query server session (if (i + j) mod 2 = 0 then s.sql else s.warm_sql))
          done)
        shapes
    in
    let t0 = Unix.gettimeofday () in
    let ts = List.init threads (fun i -> Thread.create worker i) in
    List.iter Thread.join ts;
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let wall_ns = median (List.init rounds (fun _ -> round ())) in
  let queries = threads * per_thread * List.length shapes in
  let cache = Server.cache server in
  (queries, wall_ns, Cache.hits cache, Cache.misses cache)

(* ------------------------------------------------------- release replay *)

(* Cold release vs zero-budget replay, per shape, on one replay-enabled
   server. Gates (smoke mode included): every repeat — alias-renamed too —
   must come back [cached] with zero spend, and the median replay must be
   at least 10x faster end-to-end than the median cold release. *)
let bench_replay fixture repeats =
  let buf = Buffer.create 4096 in
  let server = make_server ~replay:true ~audit:(Audit.to_buffer buf) fixture in
  let session = Server.session server in
  hello server session "bench";
  List.iter (fun s -> ignore (run_query_release server session s.sql)) shapes;
  List.iter
    (fun s ->
      for _ = 1 to repeats do
        let cached, spent, _ = run_query_release server session s.warm_sql in
        if not cached then Fmt.failwith "%s: repeat was not replayed" s.name;
        if spent <> 0.0 then Fmt.failwith "%s: replay charged epsilon %g" s.name spent
      done)
    shapes;
  let outcome o j = Option.bind (Json.mem "outcome" j) Json.to_str = Some o in
  let totals o =
    List.filter_map
      (fun j -> if outcome o j then Some (field j "total_ns") else None)
      (audit_events buf)
  in
  let cold_ns = median (totals "granted") in
  let replay_ns = median (totals "replayed") in
  let speedup = cold_ns /. Float.max replay_ns 1.0 in
  if speedup < 10.0 then
    Fmt.failwith "replay gate: %.0f ns replay vs %.0f ns cold is only %.1fx (need 10x)"
      replay_ns cold_ns speedup;
  (cold_ns, replay_ns, speedup)

(* The dashboard workload: many sessions repeating the same few shapes
   against a replay-enabled server. After the priming pass everything is a
   release-store hit, so this is the warm-path q/s the release store buys. *)
let bench_replay_throughput fixture ~threads ~per_thread ~rounds =
  let server = make_server ~replay:true ~audit:(Audit.null ()) fixture in
  let prime = Server.session server in
  hello server prime "bench-warmup";
  List.iter (fun s -> ignore (run_query server prime s.sql)) shapes;
  let round () =
    let worker i =
      let session = Server.session server in
      hello server session (Fmt.str "bench-%d" i);
      List.iteri
        (fun j s ->
          for _ = 1 to per_thread do
            ignore (run_query server session (if (i + j) mod 2 = 0 then s.sql else s.warm_sql))
          done)
        shapes
    in
    let t0 = Unix.gettimeofday () in
    let ts = List.init threads (fun i -> Thread.create worker i) in
    List.iter Thread.join ts;
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let wall_ns = median (List.init rounds (fun _ -> round ())) in
  let queries = threads * per_thread * List.length shapes in
  let stats =
    match Server.release_store server with
    | Some store -> Release_store.stats store
    | None -> Fmt.failwith "replay server has no release store"
  in
  let hit_rate =
    float_of_int stats.hits /. float_of_int (max 1 (stats.hits + stats.misses))
  in
  (queries, wall_ns, hit_rate)

(* DP conservation across a simulated restart: two server generations over
   the same ledger + release journals. The second runs with a different RNG
   seed, so any byte-identical answer can only have come from the store.
   Gates: within and across generations every analyst sees the same released
   bytes per shape, and the second generation charges nothing. *)
let restart_gate fixture =
  let _, metrics = fixture in
  let ledger_path = Filename.temp_file "flex_service_bench" ".ledger" in
  let store_path = Filename.temp_file "flex_service_bench" ".releases" in
  let analysts = [ "a1"; "a2"; "a3" ] in
  let run ~seed =
    let ledger = Ledger.open_ ledger_path in
    let store =
      Release_store.open_ ~fingerprint:(Metrics.fingerprint metrics) store_path
    in
    let answers =
      List.concat_map
        (fun analyst ->
          let server =
            make_server ~replay:true ~release_store:store ~ledger ~seed
              ~audit:(Audit.null ()) fixture
          in
          let session = Server.session server in
          hello server session analyst;
          List.map
            (fun s ->
              let _, _, rows = run_query_release server session s.sql in
              (s.name, rows))
            shapes)
        analysts
    in
    let spends = List.map (fun a -> Ledger.spent ledger ~analyst:a) analysts in
    Release_store.close store;
    Ledger.close ledger;
    (answers, spends)
  in
  let answers1, spends1 = run ~seed:42 in
  let answers2, spends2 = run ~seed:977 in
  let per_shape answers name =
    List.filter_map (fun (n, rows) -> if n = name then Some rows else None) answers
  in
  List.iter
    (fun s ->
      match per_shape answers1 s.name @ per_shape answers2 s.name with
      | [] -> Fmt.failwith "restart gate: no releases for %s" s.name
      | first :: rest ->
        List.iter
          (fun rows ->
            if rows <> first then
              Fmt.failwith "restart gate: %s released two different answers" s.name)
          rest)
    shapes;
  if spends1 <> spends2 then
    Fmt.failwith "restart gate: replays after the restart charged budget";
  Sys.remove ledger_path;
  Sys.remove store_path

(* ------------------------------------------------------------------ JSON *)

let json_of_stages s =
  Fmt.str
    "{\"parse_ns\": %.0f, \"analysis_ns\": %.0f, \"smooth_ns\": %.0f, \
     \"execution_ns\": %.0f, \"perturbation_ns\": %.0f, \"total_ns\": %.0f}"
    s.parse_ns s.analysis_ns s.smooth_ns s.execution_ns s.perturbation_ns (total s)

let json_report b r =
  let warm_exec_share = (r.warm.execution_ns +. r.warm.perturbation_ns) /. total r.warm in
  Buffer.add_string b
    (Fmt.str
       "    {\"shape\": %S, \"cold_ns\": %s, \"warm_ns\": %s, \"warm_cache_hit\": %b, \
        \"analysis_speedup\": %.1f, \"warm_exec_perturb_share\": %.3f}"
       r.shape (json_of_stages r.cold) (json_of_stages r.warm) r.warm_hit
       (r.cold.analysis_ns /. Float.max r.warm.analysis_ns 1.0)
       warm_exec_share)

(* -------------------------------------------------------------------- main *)

let () =
  let sizes = if !smoke then W.Uber.small_sizes else W.Uber.default_sizes in
  let repeats = if !smoke then 3 else 21 in
  let threads = if !smoke then 2 else 4 in
  let per_thread = if !smoke then 2 else 25 in
  let rounds = if !smoke then 1 else 3 in
  let fixture = W.Uber.generate ~sizes (Rng.create ~seed:7 ()) in
  Fmt.pr "flex service benchmark (analysis cache; median of %d warm repeats)@." repeats;
  Fmt.pr "  %-16s %12s %12s %12s %9s@." "shape" "cold ns" "warm ns" "warm analysis"
    "hit";
  let reports =
    List.map
      (fun s ->
        let r = bench_shape fixture repeats s in
        Fmt.pr "  %-16s %12.0f %12.0f %12.0f %9b@." r.shape (total r.cold) (total r.warm)
          r.warm.analysis_ns r.warm_hit;
        r)
      shapes
  in
  let queries, wall_ns, hits, misses = bench_throughput fixture ~threads ~per_thread ~rounds in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Fmt.pr
    "  throughput: %d queries over %d threads in %.1f ms (%.0f q/s, median of %d rounds), \
     cache hit rate %.3f@."
    queries threads (wall_ns /. 1e6)
    (float_of_int queries /. (wall_ns /. 1e9))
    rounds hit_rate;
  (* a timing gate on shared CI hardware gets three attempts: scheduler noise
     passes on retry, a real regression fails all three *)
  let rec gated_replay attempts =
    try bench_replay fixture repeats
    with Failure msg when attempts > 1 ->
      Fmt.pr "  (replay gate retry: %s)@." msg;
      gated_replay (attempts - 1)
  in
  let cold_ns, replay_ns, replay_speedup = gated_replay 3 in
  Fmt.pr "  replay: %.0f ns vs %.0f ns cold (%.0fx, zero budget)@." replay_ns cold_ns
    replay_speedup;
  let rqueries, rwall_ns, replay_hit_rate =
    bench_replay_throughput fixture ~threads ~per_thread ~rounds
  in
  let warm_replay_qps = float_of_int rqueries /. (rwall_ns /. 1e9) in
  Fmt.pr
    "  replay throughput: %d queries in %.1f ms (%.0f q/s), release hit rate %.3f@."
    rqueries (rwall_ns /. 1e6) warm_replay_qps replay_hit_rate;
  restart_gate fixture;
  Fmt.pr "  restart gate: byte-identical replays, zero additional spend@.";
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"flex-service\",\n  \"unit\": \"ns/stage\",\n";
  Buffer.add_string b (Fmt.str "  \"smoke\": %b,\n  \"shapes\": [\n" !smoke);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_report b r)
    reports;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Fmt.str
       "  \"throughput\": {\"threads\": %d, \"rounds\": %d, \"queries\": %d, \
        \"wall_ns\": %.0f, \"queries_per_sec\": %.0f, \"cache_hits\": %d, \
        \"cache_misses\": %d, \"cache_hit_rate\": %.3f},\n"
       threads rounds queries wall_ns
       (float_of_int queries /. (wall_ns /. 1e9))
       hits misses hit_rate);
  Buffer.add_string b
    (Fmt.str
       "  \"replay\": {\"cold_ns\": %.0f, \"replay_ns\": %.0f, \
        \"replay_speedup\": %.1f, \"warm_replay_qps\": %.0f, \
        \"replay_hit_rate\": %.3f, \"restart_conservation\": true}\n"
       cold_ns replay_ns replay_speedup warm_replay_qps replay_hit_rate);
  Buffer.add_string b "}\n";
  let json = Buffer.contents b in
  (match Json.of_string json with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "generated JSON is malformed: %s" e);
  (* the cache must be measurably effective, or the number is a lie *)
  List.iter
    (fun r ->
      if not r.warm_hit then Fmt.failwith "%s: warm repeats missed the cache" r.shape)
    reports;
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out_path
