(* Tracked observability benchmark: what telemetry costs.

     dune exec bench/obs_perf.exe                -- writes BENCH_obs.json
     dune exec bench/obs_perf.exe -- --out FILE  -- choose the output path
     dune exec bench/obs_perf.exe -- --smoke     -- tiny sizes, JSON sanity check

   Three layers:

   1. micro — ns/op of the hot instruments (counter incr, histogram observe,
      monotonized clock read, a root+child span round trip);
   2. engine — run_plan vs run_plan_analyzed on a join query (the per-operator
      trace records);
   3. service — the same warm query mix through Server.handle with telemetry
      on vs off: spans, stage histograms and counters on the full pipeline.

   The service overhead ratio is the tracked number: the full run fails if
   telemetry-on medians land more than 5% above telemetry-off, so an
   instrument creeping onto the hot path breaks the build, not production. *)

module Registry = Flex_obs.Registry
module Clock = Flex_obs.Clock
module Span = Flex_obs.Span
module Executor = Flex_engine.Executor
module Optimizer = Flex_engine.Optimizer
module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module W = Flex_workload
module Server = Flex_service.Server
module Wire = Flex_service.Wire
module Json = Flex_service.Json

let smoke = ref false
let out_path = ref "BENCH_obs.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* ------------------------------------------------------------------ micro *)

(* median ns/op over [rounds] timed loops, after one warmup loop *)
let ns_per_op ~rounds ~iters f =
  let loop () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  ignore (loop ());
  median (List.init rounds (fun _ -> loop ()))

let bench_micro ~rounds ~iters =
  let reg = Registry.create () in
  let c = Registry.counter reg "bench_total" in
  let h = Registry.histogram reg "bench_seconds" in
  let counter = ns_per_op ~rounds ~iters (fun () -> Registry.Counter.incr c) in
  let histogram = ns_per_op ~rounds ~iters (fun () -> Registry.Histogram.observe h 1e-3) in
  let clock = ns_per_op ~rounds ~iters (fun () -> ignore (Clock.now_ns ())) in
  let span =
    ns_per_op ~rounds ~iters:(iters / 10) (fun () ->
        let r = Span.root "q" in
        Span.timed (Some r) "s" (fun _ -> ());
        Span.finish r)
  in
  let st = Flex_obs.Statements.create () in
  let statement =
    ns_per_op ~rounds ~iters:(iters / 10) (fun () ->
        Flex_obs.Statements.record st ~now_ns:1.0
          ~key:"SELECT COUNT(*) FROM trips WHERE status = ?" ~outcome:`Granted
          ~stages:[ ("execute", 1.2e5); ("perturb", 3.0e3) ]
          ~rows:1 ~epsilon:0.1 ~total_ns:2.5e5 ())
  in
  let fl = Flex_obs.Flight.create () in
  let flight =
    ns_per_op ~rounds ~iters:(iters / 10) (fun () ->
        Flex_obs.Flight.record fl ~ts_ns:1.0 ~analyst:"bench"
          ~sql:"SELECT COUNT(*) FROM trips WHERE status = 'completed'"
          ~key:"SELECT COUNT(*) FROM trips WHERE status = ?" ~outcome:"granted"
          ~epsilon:0.1 ~duration_ns:2.5e5 ())
  in
  (counter, histogram, clock, span, statement, flight)

(* ----------------------------------------------------------------- engine *)

let engine_sql =
  "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
   WHERE d.rating > 3.0"

let bench_engine (db, metrics) ~rounds ~reps =
  let plan = Optimizer.plan ~metrics (Flex_sql.Parser.parse_exn engine_sql) in
  let run f =
    let loop () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
    in
    ignore (loop ());
    median (List.init rounds (fun _ -> loop ()))
  in
  let plain = run (fun () -> ignore (Executor.run_plan db plan)) in
  let analyzed = run (fun () -> ignore (Executor.run_plan_analyzed db plan)) in
  (plain, analyzed)

(* ---------------------------------------------------------------- service *)

let service_sqls =
  [
    "SELECT COUNT(*) FROM trips t WHERE t.status = 'completed'";
    "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
     WHERE d.rating > 3.0";
  ]

let run_query server session sql =
  match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None }) with
  | Wire.Result _ -> ()
  | other -> Fmt.failwith "query failed: %s" (Wire.response_to_line other)

(* median ns/query over [rounds] passes of the warm mix; the cache is primed
   (and the analysis memoized) before the clock starts, so the measured path
   is parse + cache hit + execute + charge + perturb — exactly the path the
   telemetry instruments. The off and on servers run interleaved, one round
   each in alternation — measuring all off rounds before all on rounds lets
   machine-speed drift between the two phases masquerade as telemetry
   overhead. *)
let bench_service (db, metrics) ~rounds ~reps =
  let make telemetry =
    let config =
      {
        Server.default_config with
        analyst_epsilon = 1e9;
        analyst_delta = 0.5;
        telemetry;
        (* replay off: this benchmark measures the charged pipeline the
           telemetry instruments, not the release store's fast path *)
        release_cache = false;
      }
    in
    let server =
      Server.create ~config ~db ~metrics ~ledger:(Ledger.in_memory ())
        ~rng:(Rng.create ~seed:42 ()) ()
    in
    let session = Server.session server in
    (match
       Server.handle server session
         (Wire.Hello { analyst = "bench"; epsilon = None; delta = None })
     with
    | Wire.Budget_report _ -> ()
    | other -> Fmt.failwith "hello failed: %s" (Wire.response_to_line other));
    List.iter (run_query server session) service_sqls;
    (server, session)
  in
  let queries = List.length service_sqls * reps in
  let loop (server, session) =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter (run_query server session) service_sqls
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int queries
  in
  let off = make false and on = make true in
  ignore (loop off);
  ignore (loop on);
  let samples = List.init rounds (fun _ -> (loop off, loop on)) in
  (median (List.map fst samples), median (List.map snd samples))

(* ------------------------------------------------------------------- main *)

let () =
  let sizes = if !smoke then W.Uber.small_sizes else W.Uber.default_sizes in
  let rounds = if !smoke then 1 else 5 in
  let iters = if !smoke then 10_000 else 1_000_000 in
  (* the engine comparison needs more repetitions than the rest of the smoke
     suite: at smoke scale one GC slice dwarfs the per-operator trace cost,
     and the ratio is one of the gated regression metrics *)
  let engine_rounds = if !smoke then 5 else rounds in
  let engine_reps = if !smoke then 20 else 30 in
  let service_reps = if !smoke then 2 else 20 in
  let fixture = W.Uber.generate ~sizes (Rng.create ~seed:7 ()) in
  Fmt.pr "flex observability benchmark (medians of %d rounds)@." rounds;
  let counter, histogram, clock, span, statement, flight = bench_micro ~rounds ~iters in
  Fmt.pr
    "  micro: counter %.1f ns, histogram %.1f ns, clock %.1f ns, span %.1f ns, statement \
     %.1f ns, flight %.1f ns@."
    counter histogram clock span statement flight;
  let plain, analyzed = bench_engine fixture ~rounds:engine_rounds ~reps:engine_reps in
  let engine_ratio = analyzed /. plain in
  Fmt.pr "  engine: run_plan %.0f ns, run_plan_analyzed %.0f ns (x%.3f)@." plain analyzed
    engine_ratio;
  let off, on = bench_service fixture ~rounds ~reps:service_reps in
  let service_ratio = on /. off in
  Fmt.pr "  service: telemetry off %.0f ns/query, on %.0f ns/query (x%.3f)@." off on
    service_ratio;
  let json =
    Fmt.str
      "{\n\
      \  \"benchmark\": \"flex-obs\",\n\
      \  \"smoke\": %b,\n\
      \  \"micro_ns_per_op\": {\"counter_incr\": %.1f, \"histogram_observe\": %.1f, \
       \"clock_now\": %.1f, \"span_roundtrip\": %.1f, \"statement_record\": %.1f, \
       \"flight_record\": %.1f},\n\
      \  \"engine\": {\"run_plan_ns\": %.0f, \"run_plan_analyzed_ns\": %.0f, \
       \"overhead_ratio\": %.3f},\n\
      \  \"service\": {\"telemetry_off_ns_per_query\": %.0f, \
       \"telemetry_on_ns_per_query\": %.0f, \"overhead_ratio\": %.3f}\n\
       }\n"
      !smoke counter histogram clock span statement flight plain analyzed engine_ratio off
      on service_ratio
  in
  (match Json.of_string json with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "generated JSON is malformed: %s" e);
  (* the tracked invariant: telemetry must stay within 5% of off. Smoke runs
     are too short to be stable, so only the full run enforces it. *)
  if (not !smoke) && service_ratio > 1.05 then
    Fmt.failwith "telemetry overhead above 5%%: on/off = %.3f" service_ratio;
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out_path
