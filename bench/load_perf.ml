(* Tracked sustained-load benchmark: the event-driven front end under many
   concurrent analysts.

     dune exec bench/load_perf.exe                -- writes BENCH_load.json
     dune exec bench/load_perf.exe -- --out FILE  -- choose the output path
     dune exec bench/load_perf.exe -- --smoke     -- tiny sizes, gates only

   Three sections, all driven over real TCP by the closed-loop
   Load_driver (the same harness behind `flex_client bench`):

   - warm: hundreds of connections replaying primed release-store hits,
     against BOTH front ends in the same run — the thread-per-connection
     baseline and the reactor — reporting p50/p99 latency and sustained
     q/s for each. Full mode gates reactor q/s >= baseline q/s.
   - derived: the dashboard workload where every answer is computed by
     post-processing a stored release (ORDER BY/LIMIT, HAVING, projection
     arithmetic over the same core); gates that every response came from
     the store at zero budget.
   - overload: a deliberately undersized worker queue (1 worker, 2 slots)
     flooded by closed-loop connections, with a small per-analyst budget
     so grants, refusals and overload sheds interleave. Gates exact
     budget conservation: with epsilon 0.25 (a power of two, so float
     addition is exact) the ledger total must equal 0.25 x grants to the
     last bit, no analyst may exceed the budget, and every request must
     be accounted for (ok + rejected + refused + errors = sent). *)

module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module W = Flex_workload
module Server = Flex_service.Server
module Reactor = Flex_service.Reactor
module Audit = Flex_service.Audit
module Wire = Flex_service.Wire
module Json = Flex_service.Json
module L = Flex_service.Load_driver

let smoke = ref false
let out_path = ref "BENCH_load.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* --------------------------------------------------------------- workload *)

let shapes =
  [|
    "SELECT COUNT(*) FROM trips t WHERE t.status = 'completed'";
    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
     WHERE d.rating > 3.0";
    "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
    "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
     GROUP BY c.name";
  |]

(* suffix variants over the same cores: answered by evaluating
   post-processing against the stored noisy rows, zero budget *)
let derived_shapes =
  [|
    "SELECT COUNT(*) * 2 FROM trips t WHERE t.status = 'completed'";
    "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status \
     ORDER BY 2 DESC LIMIT 2";
    "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status \
     HAVING COUNT(*) > -1000000";
    "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
     GROUP BY c.name ORDER BY 2 DESC LIMIT 3";
  |]

let make_server ?(config = Server.default_config) ?ledger ~seed fixture =
  let db, metrics = fixture in
  let ledger = match ledger with Some l -> l | None -> Ledger.in_memory () in
  Server.create ~audit:(Audit.null ()) ~config ~db ~metrics ~ledger
    ~rng:(Rng.create ~seed ()) ()

let prime server =
  let session = Server.session server in
  (match
     Server.handle server session
       (Wire.Hello { analyst = "prime"; epsilon = None; delta = None })
   with
  | Wire.Budget_report _ -> ()
  | other -> Fmt.failwith "prime hello failed: %s" (Wire.response_to_line other));
  Array.iter
    (fun sql ->
      match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None }) with
      | Wire.Result _ -> ()
      | other -> Fmt.failwith "prime query failed: %s" (Wire.response_to_line other))
    shapes

let rotate shapes ~conn ~seq = Wire.Query { sql = shapes.((conn + seq) mod Array.length shapes); epsilon = None; delta = None; id = None }

type section = { qps : float; p50_ms : float; p99_ms : float; outcome : L.outcome }

let section outcome =
  {
    qps = L.qps outcome;
    p50_ms = 1e3 *. L.percentile outcome 0.50;
    p99_ms = 1e3 *. L.percentile outcome 0.99;
    outcome;
  }

let check_clean name (o : L.outcome) =
  if o.errors > 0 || o.rejected > 0 || o.refused > 0 then
    Fmt.failwith "%s: expected a clean run, got %d errors, %d rejected, %d refused" name
      o.errors o.rejected o.refused

(* ------------------------------------------------------------ warm section *)

(* Both front ends serve the same already-primed server, so every query is
   a release-store replay and the measurement isolates the connection
   layer itself. *)
let warm_section ~connections ~requests fixture =
  let server = make_server ~seed:42 fixture in
  prime server;
  let baseline () =
    let listener = Server.listen server in
    ignore (Server.start listener);
    Fun.protect
      ~finally:(fun () -> Server.stop listener)
      (fun () ->
        L.run ~port:(Server.port listener) ~connections ~requests
          ~make_request:(rotate shapes) ())
  in
  let reactor () =
    let config =
      { Reactor.default_config with workers = 4; max_pending = 2 * connections + 8 }
    in
    let r = Reactor.listen ~config server in
    ignore (Reactor.start r);
    Fun.protect
      ~finally:(fun () -> Reactor.stop r)
      (fun () ->
        L.run ~port:(Reactor.port r) ~connections ~requests
          ~make_request:(rotate shapes) ())
  in
  let run () =
    let b = baseline () in
    let r = reactor () in
    check_clean "warm baseline" b;
    check_clean "warm reactor" r;
    (section b, section r)
  in
  (* a throughput comparison on shared CI hardware gets three attempts:
     scheduler noise passes on retry, a real regression fails all three *)
  let rec gated attempts =
    let b, r = run () in
    if !smoke || r.qps >= b.qps then (b, r)
    else if attempts > 1 then begin
      Fmt.pr "  (warm gate retry: reactor %.0f q/s < baseline %.0f q/s)@." r.qps b.qps;
      gated (attempts - 1)
    end
    else
      Fmt.failwith
        "warm gate: reactor %.0f q/s is below the thread-per-connection baseline %.0f q/s"
        r.qps b.qps
  in
  gated 3

(* --------------------------------------------------------- derived section *)

let derived_section ~connections ~requests fixture =
  let server = make_server ~seed:43 fixture in
  prime server;
  let config =
    { Reactor.default_config with workers = 4; max_pending = 2 * connections + 8 }
  in
  let r = Reactor.listen ~config server in
  ignore (Reactor.start r);
  let outcome =
    Fun.protect
      ~finally:(fun () -> Reactor.stop r)
      (fun () ->
        L.run ~port:(Reactor.port r) ~connections ~requests
          ~make_request:(rotate derived_shapes) ())
  in
  check_clean "derived" outcome;
  (* zero-budget gate: every query (hellos aside) was served from the store *)
  let queries = outcome.ok - connections (* one Budget_report per hello *) in
  if outcome.cached <> queries then
    Fmt.failwith "derived gate: %d of %d queries were charged instead of derived"
      (queries - outcome.cached) queries;
  section outcome

(* -------------------------------------------------------- overload section *)

type overload_report = {
  o : L.outcome;
  granted : int;
  shed_total : int;
  ledger_epsilon : float;
  analysts_over_budget : int;
}

let overload_section ~connections ~requests fixture =
  let budget = 1.0 (* 4 grants of 0.25 each, so refusals appear too *) in
  let config =
    {
      Server.default_config with
      default_epsilon = 0.25;
      analyst_epsilon = budget;
      release_cache = false (* every grant must charge: repeats are not free here *);
    }
  in
  let ledger = Ledger.in_memory () in
  let server = make_server ~config ~ledger ~seed:44 fixture in
  let rconfig =
    {
      Reactor.default_config with
      workers = 1;
      max_pending = 2 (* a queue this small sheds most of the closed-loop flood *);
    }
  in
  let r = Reactor.listen ~config:rconfig server in
  ignore (Reactor.start r);
  let outcome, stats =
    Fun.protect
      ~finally:(fun () -> Reactor.stop r)
      (fun () ->
        let o =
          L.run ~port:(Reactor.port r) ~connections ~requests
            ~hello:(fun i -> Some (Printf.sprintf "load-%d" i))
            ~make_request:(fun ~conn:_ ~seq:_ ->
              Wire.Query { sql = shapes.(0); epsilon = None; delta = None; id = None })
            ()
        in
        (o, Reactor.stats r))
  in
  let counters = Server.counters server in
  (* the server is quiescent after stop: the ledger total is now exact *)
  let spends =
    List.map
      (fun a -> match Ledger.spent ledger ~analyst:a with Some (e, _) -> e | None -> 0.0)
      (Ledger.analysts ledger)
  in
  let ledger_epsilon = List.fold_left ( +. ) 0.0 spends in
  let over = List.length (List.filter (fun e -> e > budget) spends) in
  (* conservation, exact: epsilon 0.25 is a power of two, so k x 0.25 sums
     with no rounding — any divergence here is a real double-charge or a
     charge that escaped the books *)
  if ledger_epsilon <> 0.25 *. float_of_int counters.granted then
    Fmt.failwith "overload gate: ledger holds %.6f epsilon but %d grants x 0.25 = %.6f"
      ledger_epsilon counters.granted
      (0.25 *. float_of_int counters.granted);
  if over > 0 then Fmt.failwith "overload gate: %d analysts exceeded the budget" over;
  if outcome.sent <> outcome.ok + outcome.rejected + outcome.refused + outcome.errors
  then
    Fmt.failwith "overload gate: %d sent but %d accounted" outcome.sent
      (outcome.ok + outcome.rejected + outcome.refused + outcome.errors);
  if (not !smoke) && outcome.overload = 0 then
    Fmt.failwith "overload gate: the flood produced no overload rejections";
  if stats.Reactor.shed_total + stats.Reactor.conn_refused_total < outcome.overload then
    Fmt.failwith "overload gate: reactor shed %d but clients saw %d overload rejections"
      stats.Reactor.shed_total outcome.overload;
  {
    o = outcome;
    granted = counters.granted;
    shed_total = stats.Reactor.shed_total;
    ledger_epsilon;
    analysts_over_budget = over;
  }

(* ------------------------------------------------------------------ main *)

let () =
  let sizes = if !smoke then W.Uber.small_sizes else W.Uber.default_sizes in
  let connections = if !smoke then 16 else 256 in
  let requests = if !smoke then 4 else 40 in
  let overload_conns = if !smoke then 8 else 64 in
  let overload_requests = if !smoke then 4 else 20 in
  let fixture = W.Uber.generate ~sizes (Rng.create ~seed:7 ()) in
  Fmt.pr "flex sustained-load benchmark (%d connections x %d requests, closed loop)@."
    connections requests;
  let baseline, reactor = warm_section ~connections ~requests fixture in
  Fmt.pr "  warm thread-per-conn: %8.0f q/s  p50 %6.2f ms  p99 %6.2f ms@." baseline.qps
    baseline.p50_ms baseline.p99_ms;
  Fmt.pr "  warm reactor:         %8.0f q/s  p50 %6.2f ms  p99 %6.2f ms  (%.2fx)@."
    reactor.qps reactor.p50_ms reactor.p99_ms
    (reactor.qps /. Float.max baseline.qps 1.0);
  let derived = derived_section ~connections ~requests fixture in
  Fmt.pr "  derived (zero budget): %7.0f q/s  p50 %6.2f ms  p99 %6.2f ms@." derived.qps
    derived.p50_ms derived.p99_ms;
  let ov = overload_section ~connections:overload_conns ~requests:overload_requests fixture in
  Fmt.pr
    "  overload: %d sent -> %d granted, %d overload-shed, %d refused, %d auth errors; \
     ledger %.2f epsilon = 0.25 x %d exactly@."
    ov.o.L.sent ov.granted ov.o.L.overload ov.o.L.refused ov.o.L.errors ov.ledger_epsilon
    ov.granted;
  let b = Buffer.create 4096 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  add "{\n  \"benchmark\": \"flex-load\",\n";
  add "  \"smoke\": %b,\n  \"connections\": %d,\n  \"requests_per_conn\": %d,\n" !smoke
    connections requests;
  let add_section name s =
    add
      "  %S: {\"qps\": %.0f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"sent\": %d, \
       \"ok\": %d, \"cached\": %d},\n"
      name s.qps s.p50_ms s.p99_ms s.outcome.L.sent s.outcome.L.ok s.outcome.L.cached
  in
  add_section "warm_thread_per_conn" baseline;
  add_section "warm_reactor" reactor;
  add "  \"warm_speedup\": %.2f,\n" (reactor.qps /. Float.max baseline.qps 1e-9);
  add_section "derived" derived;
  add
    "  \"overload\": {\"connections\": %d, \"sent\": %d, \"granted\": %d, \
     \"overload_rejections\": %d, \"refused\": %d, \"errors\": %d, \
     \"reactor_shed_total\": %d, \"ledger_epsilon\": %.2f, \
     \"analysts_over_budget\": %d, \"conservation_exact\": true}\n"
    overload_conns ov.o.L.sent ov.granted ov.o.L.overload ov.o.L.refused ov.o.L.errors
    ov.shed_total ov.ledger_epsilon ov.analysts_over_budget;
  add "}\n";
  let json = Buffer.contents b in
  (match Json.of_string json with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "generated JSON is malformed: %s" e);
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out_path
