(* Tracked optimizer benchmark: the same compiled executor with and without
   {!Optimizer.rewrite}, on shapes the rewrites target — a selective filter
   left above a fact/dimension join, a star join whose only selective
   predicate sits on the far dimension, a predicate that must sink into a
   wide derived table, and a comma join written in an order that forces a
   cross product unless the optimizer reorders it.

     dune exec bench/optimizer_perf.exe                 -- full run, writes BENCH_optimizer.json
     dune exec bench/optimizer_perf.exe -- --out FILE   -- choose the output path
     dune exec bench/optimizer_perf.exe -- --smoke      -- tiny scale, JSON sanity check

   Per (scale, shape) the JSON records median ns/query for the unoptimized
   and optimized plan pipelines and the speedup. Both pipelines execute
   through {!Executor.run_plan}; the only difference is the plan. *)

module Rng = Flex_dp.Rng
module Database = Flex_engine.Database
module Table = Flex_engine.Table
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Plan = Flex_engine.Plan
module Optimizer = Flex_engine.Optimizer
module W = Flex_workload

let smoke = ref false
let out_path = ref "BENCH_optimizer.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* Same discipline as bench/perf.ml: unmeasured warmups, then interleaved
   samples so machine noise lands on both pipelines alike, with adaptive
   repetitions per sample. *)
let median_pair (funopt : unit -> unit) (fopt : unit -> unit) =
  let samples = if !smoke then 3 else 9 in
  let warmups = if !smoke then 1 else 3 in
  let time_once f reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  in
  let reps f =
    if !smoke then 1
    else begin
      let one = time_once f 1 in
      max 1 (min 30 (int_of_float (5e6 /. max one 1.0)))
    end
  in
  for _ = 1 to warmups do
    funopt ();
    fopt ()
  done;
  Gc.compact ();
  let ru = reps funopt and ro = reps fopt in
  let us = Array.make samples 0.0 and os = Array.make samples 0.0 in
  for i = 0 to samples - 1 do
    us.(i) <- time_once funopt ru;
    os.(i) <- time_once fopt ro
  done;
  Array.sort compare us;
  Array.sort compare os;
  (us.(samples / 2), os.(samples / 2))

type row = {
  scale : string;
  shape : string;
  input_rows : int;
  unoptimized_ns : float;
  optimized_ns : float;
}

let speedup r = r.unoptimized_ns /. r.optimized_ns

type shape = { sname : string; table : string; sql : string }

let shapes =
  [
    {
      sname = "filter_above_join";
      table = "trips";
      sql =
        "SELECT t.id, d.rating FROM trips t JOIN drivers d ON t.driver_id = d.id \
         WHERE d.city_id = 1 AND t.fare > 45";
    };
    {
      sname = "star_selective_dim";
      table = "trips";
      sql =
        "SELECT COUNT(*) FROM trips t \
         JOIN drivers d ON t.driver_id = d.id \
         JOIN cities c ON d.city_id = c.id WHERE c.name = 'seattle'";
    };
    {
      sname = "derived_pushdown";
      table = "trips";
      sql =
        "SELECT x.id FROM (SELECT id, driver_id, rider_id, city_id, status, fare, \
         requested_at FROM trips) x WHERE x.fare > 45";
    };
    {
      sname = "join_reorder";
      table = "trips";
      sql =
        "SELECT COUNT(*) FROM drivers d JOIN trips t ON t.driver_id = d.id, cities c \
         WHERE d.city_id = c.id AND c.name = 'seattle'";
    };
  ]

let sorted_rows (r : Executor.result_set) = List.sort Stdlib.compare r.rows

let bench_scale scale_label (db : Database.t) (metrics : Metrics.t) acc =
  List.fold_left
    (fun acc s ->
      let input_rows =
        match Database.find_opt db s.table with
        | Some t -> Array.length (Table.rows t)
        | None -> 0
      in
      let q = Flex_sql.Parser.parse_exn s.sql in
      let unopt_plan = Plan.of_query q in
      let opt_plan = Optimizer.plan ~metrics q in
      (* correctness gate before timing: identical result multisets *)
      let a = Executor.run_plan db unopt_plan and b = Executor.run_plan db opt_plan in
      if sorted_rows a <> sorted_rows b then
        Fmt.failwith "%s: optimized plan changes the result on %s" s.sname s.sql;
      let unoptimized_ns, optimized_ns =
        median_pair
          (fun () -> ignore (Executor.run_plan db unopt_plan))
          (fun () -> ignore (Executor.run_plan db opt_plan))
      in
      let r = { scale = scale_label; shape = s.sname; input_rows; unoptimized_ns; optimized_ns } in
      Fmt.pr "  %-10s %-20s %12.0f ns %12.0f ns %6.2fx@." scale_label s.sname
        unoptimized_ns optimized_ns (speedup r);
      r :: acc)
    acc shapes

let json_of_rows rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "{\n  \"benchmark\": \"plan-optimizer\",\n  \"unit\": \"ns/query\",\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Fmt.str
           "    {\"scale\": %S, \"shape\": %S, \"input_rows\": %d, \
            \"unoptimized_ns\": %.0f, \"optimized_ns\": %.0f, \"speedup\": %.2f}"
           r.scale r.shape r.input_rows r.unoptimized_ns r.optimized_ns (speedup r)))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let json_well_formed s =
  let n = String.length s in
  let rec go i depth in_str =
    if i >= n then (not in_str) && depth = []
    else
      let c = s.[i] in
      if in_str then
        if c = '\\' then go (i + 2) depth true else go (i + 1) depth (c <> '"')
      else
        match c with
        | '"' -> go (i + 1) depth true
        | '{' | '[' -> go (i + 1) (c :: depth) false
        | '}' -> (match depth with '{' :: d -> go (i + 1) d false | _ -> false)
        | ']' -> (match depth with '[' :: d -> go (i + 1) d false | _ -> false)
        | _ -> go (i + 1) depth false
  in
  go 0 [] false

let () =
  let rng = Rng.create ~seed:42 () in
  let scales =
    if !smoke then
      [ ("tiny", { W.Uber.cities = 4; drivers = 12; users = 20; trips = 60; user_tags = 8 }) ]
    else [ ("small", W.Uber.small_sizes); ("default", W.Uber.default_sizes) ]
  in
  Fmt.pr "plan optimizer benchmark (%d warmup rounds, median of %d interleaved samples)@."
    (if !smoke then 1 else 3)
    (if !smoke then 3 else 9);
  Fmt.pr "  %-10s %-20s %15s %15s %7s@." "scale" "shape" "unoptimized" "optimized" "speedup";
  let rows =
    List.fold_left
      (fun acc (label, sizes) ->
        let db, metrics = W.Uber.generate ~sizes (Rng.split rng) in
        bench_scale label db metrics acc)
      [] scales
  in
  let rows = List.rev rows in
  let json = json_of_rows rows in
  let out = if !smoke then Filename.temp_file "bench_optimizer" ".json" else !out_path in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  if !smoke then begin
    if not (json_well_formed json) then Fmt.failwith "smoke: malformed JSON";
    Sys.remove out;
    Fmt.pr "smoke ok@."
  end
  else Fmt.pr "wrote %s@." out
