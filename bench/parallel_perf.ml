(* Tracked multicore benchmark: the morsel-parallel executor swept over
   domain counts against its own sequential pipeline, plus FLEX service
   throughput with a shared execution pool.

     dune exec bench/parallel_perf.exe                 -- writes BENCH_parallel.json
     dune exec bench/parallel_perf.exe -- --out FILE   -- choose the output path
     dune exec bench/parallel_perf.exe -- --smoke      -- small scales, JSON sanity check

   Every timed configuration is first checked to return results identical to
   the sequential pipeline — the parallel operators are order-preserving, so
   anything short of equality is a bug, not noise. The JSON records
   [host_cpus] (Domain.recommended_domain_count) next to every speedup: on a
   single-CPU host the pool's domains time-slice one core, so the honest
   expectation there is ~1.0x or below, and the tracked number bounds the
   parallel machinery's overhead rather than demonstrating scaling. *)

module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module Database = Flex_engine.Database
module Table = Flex_engine.Table
module Executor = Flex_engine.Executor
module Task_pool = Flex_engine.Task_pool
module W = Flex_workload
module Server = Flex_service.Server
module Wire = Flex_service.Wire
module Audit = Flex_service.Audit

let smoke = ref false
let out_path = ref "BENCH_parallel.json"
let domain_counts = [ 1; 2; 4 ]

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------ measurement *)

(* Warmup rounds then per-configuration medians over sample rounds that
   round-robin across all configurations (same discipline as
   bench/perf.ml): heap growth and GC drift over the process lifetime hit
   every configuration equally instead of whichever was timed last, which
   is what the sequential-vs-domains ratio needs to be trustworthy on a
   noisy single-CPU host. Repetitions are adapted per configuration so
   each sample takes a measurable slice. *)
let medians_ns (fs : (unit -> unit) array) =
  let samples = if !smoke then 3 else 9 in
  let warmups = if !smoke then 1 else 3 in
  Array.iter
    (fun f ->
      for _ = 1 to warmups do
        f ()
      done)
    fs;
  Gc.compact ();
  let reps =
    Array.map
      (fun f ->
        if !smoke then 1
        else begin
          let t0 = Unix.gettimeofday () in
          f ();
          let one = (Unix.gettimeofday () -. t0) *. 1e9 in
          max 1 (min 30 (int_of_float (5e6 /. max one 1.0)))
        end)
      fs
  in
  let xs = Array.map (fun _ -> Array.make samples 0.0) fs in
  let k = Array.length fs in
  for s = 0 to samples - 1 do
    (* rotate the starting configuration each round: allocation-heavy
       queries leave major-GC debt that the next configuration pays, so a
       fixed order would systematically tax whichever config follows the
       biggest allocator *)
    for j = 0 to k - 1 do
      let i = (s + j) mod k in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps.(i) do
        fs.(i) ()
      done;
      xs.(i).(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps.(i)
    done
  done;
  Array.map
    (fun a ->
      Array.sort compare a;
      a.(samples / 2))
    xs

(* --------------------------------------------------------------- workload *)

type shape = { sname : string; table : string; sql : string }

let uber_shapes =
  [
    { sname = "scan"; table = "trips"; sql = "SELECT * FROM trips" };
    {
      sname = "filter";
      table = "trips";
      sql = "SELECT id, fare FROM trips WHERE city_id = 1 AND fare > 10 AND status = 'completed'";
    };
    {
      sname = "equijoin";
      table = "trips";
      sql =
        "SELECT t.id, d.rating, u.status FROM trips t \
         JOIN drivers d ON t.driver_id = d.id \
         JOIN users u ON t.rider_id = u.id WHERE d.rating > 3.0";
    };
    {
      sname = "group_agg";
      table = "trips";
      sql =
        "SELECT city_id, COUNT(*), AVG(fare), MAX(fare) FROM trips \
         GROUP BY city_id HAVING COUNT(*) > 1";
    };
    {
      sname = "order_limit";
      table = "trips";
      sql = "SELECT id, fare FROM trips ORDER BY fare DESC, id LIMIT 100";
    };
  ]

let tpch_shapes =
  [
    { sname = "scan"; table = "lineitem"; sql = "SELECT * FROM lineitem" };
    {
      sname = "equijoin";
      table = "lineitem";
      sql =
        "SELECT o.o_orderkey, c.c_mktsegment FROM orders o \
         JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
         JOIN customer c ON o.o_custkey = c.c_custkey";
    };
    {
      sname = "group_agg";
      table = "lineitem";
      sql =
        "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
         FROM lineitem GROUP BY l_returnflag, l_linestatus";
    };
    {
      sname = "order_limit";
      table = "lineitem";
      sql = "SELECT l_orderkey, l_extendedprice FROM lineitem \
             ORDER BY l_extendedprice DESC LIMIT 100";
    };
  ]

(* ----------------------------------------------------------------- engine *)

type entry = {
  substrate : string;
  shape : string;
  input_rows : int;
  sequential_ns : float;
  by_domains : (int * float) list;
}

let bench_engine substrate (db : Database.t) pools shapes acc =
  List.fold_left
    (fun acc s ->
      let input_rows =
        match Database.find_opt db s.table with
        | Some t -> Array.length (Table.rows t)
        | None -> 0
      in
      let base =
        match Executor.run_sql db s.sql with
        | Ok r -> r
        | Error e -> Fmt.failwith "%s/%s: %s" substrate s.sname e
      in
      (* the parallel pipeline must be result-identical before it is timed *)
      List.iter
        (fun (d, pool) ->
          match Executor.run_sql ~pool db s.sql with
          | Ok r when r = base -> ()
          | Ok _ ->
            Fmt.failwith "%s/%s: parallel result differs at %d domains" substrate s.sname d
          | Error e -> Fmt.failwith "%s/%s (%d domains): %s" substrate s.sname d e)
        pools;
      let configs =
        Array.of_list
          ((fun () -> ignore (Executor.run_sql db s.sql))
          :: List.map
               (fun (_, pool) -> fun () -> ignore (Executor.run_sql ~pool db s.sql))
               pools)
      in
      let meds = medians_ns configs in
      let sequential_ns = meds.(0) in
      let by_domains = List.mapi (fun i (d, _) -> (d, meds.(i + 1))) pools in
      let e = { substrate; shape = s.sname; input_rows; sequential_ns; by_domains } in
      Fmt.pr "  %-6s %-12s %8d rows  seq %10.0f ns  %a@." substrate s.sname input_rows
        sequential_ns
        Fmt.(
          list ~sep:(any "  ") (fun ppf (d, ns) ->
              Fmt.pf ppf "d=%d %6.2fx" d (sequential_ns /. ns)))
        by_domains;
      e :: acc)
    acc shapes

(* ---------------------------------------------------------------- service *)

let service_sqls =
  [
    "SELECT COUNT(*) FROM trips t WHERE t.status = 'completed'";
    "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
    "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id GROUP BY c.name";
  ]

let run_query server session sql =
  match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None }) with
  | Wire.Result _ -> ()
  | other -> Fmt.failwith "query failed: %s" (Wire.response_to_line other)

let hello server session analyst =
  match Server.handle server session (Wire.Hello { analyst; epsilon = None; delta = None }) with
  | Wire.Budget_report _ -> ()
  | other -> Fmt.failwith "hello failed: %s" (Wire.response_to_line other)

(* Sessions on OS threads against one server whose execution stage shares
   one domain pool — the flex_serve deployment shape. The analysis cache is
   primed first so the timed rounds measure execute + perturb. *)
let service_qps (db, metrics) pool =
  let config =
    {
      Server.default_config with
      analyst_epsilon = 1e9;
      analyst_delta = 0.5;
      (* replay off: this benchmark measures pool-backed execution; repeats
         served from the release store would never reach the pool *)
      release_cache = false;
    }
  in
  let server =
    Server.create ~audit:(Audit.null ()) ~config ?pool ~db ~metrics
      ~ledger:(Ledger.in_memory ()) ~rng:(Rng.create ~seed:42 ()) ()
  in
  let threads = if !smoke then 2 else 4 in
  let per_thread = if !smoke then 2 else 25 in
  let rounds = if !smoke then 1 else 3 in
  let prime = Server.session server in
  hello server prime "warmup";
  List.iter (run_query server prime) service_sqls;
  let round () =
    let worker i =
      let session = Server.session server in
      hello server session (Fmt.str "bench-%d" i);
      List.iter
        (fun sql ->
          for _ = 1 to per_thread do
            run_query server session sql
          done)
        service_sqls
    in
    let t0 = Unix.gettimeofday () in
    let ts = List.init threads (fun i -> Thread.create worker i) in
    List.iter Thread.join ts;
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let walls = Array.init rounds (fun _ -> round ()) in
  Array.sort compare walls;
  let wall_ns = walls.(rounds / 2) in
  let queries = threads * per_thread * List.length service_sqls in
  (queries, wall_ns)

(* ------------------------------------------------------------------ JSON *)

let json_of results service host_cpus =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"parallel-execution\",\n  \"unit\": \"ns/query\",\n";
  Buffer.add_string b
    (Fmt.str "  \"host_cpus\": %d,\n  \"smoke\": %b,\n" host_cpus !smoke);
  Buffer.add_string b
    "  \"note\": \"speedup > 1.0 requires host_cpus > 1; on a single-CPU host these numbers \
     bound the parallel machinery's overhead instead of demonstrating scaling\",\n";
  Buffer.add_string b "  \"engine\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Fmt.str
           "    {\"substrate\": %S, \"shape\": %S, \"input_rows\": %d, \
            \"sequential_ns\": %.0f, \"parallel\": [%s]}"
           e.substrate e.shape e.input_rows e.sequential_ns
           (String.concat ", "
              (List.map
                 (fun (d, ns) ->
                   Fmt.str "{\"domains\": %d, \"ns\": %.0f, \"speedup\": %.2f}" d ns
                     (e.sequential_ns /. ns))
                 e.by_domains))))
    results;
  Buffer.add_string b "\n  ],\n  \"service\": [\n";
  List.iteri
    (fun i (d, queries, wall_ns) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Fmt.str
           "    {\"domains\": %d, \"queries\": %d, \"wall_ns\": %.0f, \"queries_per_sec\": %.0f}"
           d queries wall_ns
           (float_of_int queries /. (wall_ns /. 1e9))))
    service;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Same minimal well-formedness check as bench/perf.ml. *)
let json_well_formed s =
  let n = String.length s in
  let rec go i depth in_str =
    if i >= n then (not in_str) && depth = []
    else
      let c = s.[i] in
      if in_str then
        if c = '\\' then go (i + 2) depth true
        else go (i + 1) depth (c <> '"')
      else
        match c with
        | '"' -> go (i + 1) depth true
        | '{' | '[' -> go (i + 1) (c :: depth) false
        | '}' -> (match depth with '{' :: d -> go (i + 1) d false | _ -> false)
        | ']' -> (match depth with '[' :: d -> go (i + 1) d false | _ -> false)
        | _ -> go (i + 1) depth false
  in
  go 0 [] false

(* -------------------------------------------------------------------- main *)

let () =
  let host_cpus = Domain.recommended_domain_count () in
  let rng = Rng.create ~seed:42 () in
  (* smoke scales stay above the parallel threshold (2048 rows) on the
     driving tables so the parallel operators genuinely run *)
  let uber_sizes =
    if !smoke then { W.Uber.cities = 8; drivers = 100; users = 150; trips = 3000; user_tags = 60 }
    else W.Uber.default_sizes
  in
  let tpch_scale = if !smoke then 0.0005 else 0.01 in
  let pools = List.map (fun d -> (d, Task_pool.create ~domains:d)) domain_counts in
  Fmt.pr "parallel execution benchmark (host_cpus=%d; domain sweep %a)@." host_cpus
    Fmt.(list ~sep:(any ",") int)
    domain_counts;
  if host_cpus = 1 then
    Fmt.pr "  note: single-CPU host — domains time-slice one core, expect ~1.0x@.";
  let udb, _ = W.Uber.generate ~sizes:uber_sizes (Rng.split rng) in
  let tdb, _ = W.Tpch.generate ~scale:tpch_scale (Rng.split rng) in
  let results = bench_engine "uber" udb pools uber_shapes [] in
  let results = bench_engine "tpch" tdb pools tpch_shapes results in
  let results = List.rev results in
  let fixture = W.Uber.generate ~sizes:uber_sizes (Rng.split rng) in
  let service =
    List.map
      (fun (d, pool) ->
        let pool = if d > 1 then Some pool else None in
        let queries, wall_ns = service_qps fixture pool in
        Fmt.pr "  service d=%d: %d queries in %.1f ms (%.0f q/s)@." d queries (wall_ns /. 1e6)
          (float_of_int queries /. (wall_ns /. 1e9));
        (d, queries, wall_ns))
      pools
  in
  List.iter (fun (_, pool) -> Task_pool.shutdown pool) pools;
  let json = json_of results service host_cpus in
  let out = if !smoke then Filename.temp_file "bench_parallel" ".json" else !out_path in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." out;
  if !smoke then begin
    let ic = open_in out in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Sys.remove out;
    if not (json_well_formed s) then Fmt.failwith "smoke: JSON not well-formed";
    if not (Astring.String.is_infix ~affix:"\"host_cpus\"" s) then
      Fmt.failwith "smoke: missing host_cpus";
    if not (Astring.String.is_infix ~affix:"\"domains\": 4" s) then
      Fmt.failwith "smoke: missing 4-domain sweep entry";
    Fmt.pr "smoke ok: JSON well-formed, %d engine entries@." (List.length results)
  end
