(* Bench regression gate: compare a freshly produced bench JSON against the
   committed BENCH_*.json for the same suite and fail on large regressions.

     dune exec bench/check_regress.exe -- --committed BENCH_obs.json --fresh fresh/BENCH_obs.json

   The committed files hold full-run numbers while CI produces smoke-run
   numbers on shared, noisy machines, so absolute latencies and throughputs
   are not comparable. What IS comparable across scales:

   - overhead ratios (lower is better) — telemetry on/off style; these sit
     near 1.0 at any scale, so a fresh value past an absolute ceiling means
     the cheap path got expensive;
   - speedups (higher is better) — cache/replay/derivation wins; the
     magnitude shrinks at smoke scale, but a mechanism that stops helping
     at all drops to ~1x and below at every scale;
   - invariant booleans (zero_budget, conservation_exact, warm_cache_hit,
     all_derived, restart_conservation, ...) — true in the committed run
     must stay true, noise-free at any scale.

   Everything else (raw ns, qps, counts) is reported but never gated. *)

module Json = Flex_service.Json

let committed_path = ref ""
let fresh_path = ref ""

(* lower-is-better ratios: fail past max(committed * ratio_tol, ratio_floor).
   The floor absorbs smoke noise around 1.0 (a 0.99 committed ratio must not
   gate fresh runs at 0.99 * tol). *)
let ratio_tol = ref 2.0
let ratio_floor = ref 2.0

(* higher-is-better speedups: fail below max-comparable floor. Full-run
   speedups (100x+) collapse by well over 10x at smoke scale, so the
   fractional bound is deliberately loose; the absolute floor is what
   catches "the mechanism stopped helping". *)
let speedup_frac = ref 0.01
let min_speedup = ref 0.5

let usage () =
  prerr_endline
    "usage: check_regress --committed FILE --fresh FILE [--ratio-tol F] [--ratio-floor F] \
     [--speedup-frac F] [--min-speedup F]";
  exit 2

let rec parse_args = function
  | [] -> ()
  | "--committed" :: v :: rest ->
    committed_path := v;
    parse_args rest
  | "--fresh" :: v :: rest ->
    fresh_path := v;
    parse_args rest
  | "--ratio-tol" :: v :: rest ->
    ratio_tol := float_of_string v;
    parse_args rest
  | "--ratio-floor" :: v :: rest ->
    ratio_floor := float_of_string v;
    parse_args rest
  | "--speedup-frac" :: v :: rest ->
    speedup_frac := float_of_string v;
    parse_args rest
  | "--min-speedup" :: v :: rest ->
    min_speedup := float_of_string v;
    parse_args rest
  | _ -> usage ()

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string (String.trim s) with
  | Ok j -> j
  | Error e -> Fmt.failwith "%s: %s" path e

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* keys gated as lower-is-better ratios vs higher-is-better speedups *)
let is_ratio key = ends_with ~suffix:"_ratio" key || key = "ratio"
let is_speedup key = ends_with ~suffix:"speedup" key

(* booleans that are incidental metadata, not invariants *)
let boolean_ignored = [ "smoke" ]

type verdict = { mutable checked : int; mutable failed : int; mutable missing : int }

let v = { checked = 0; failed = 0; missing = 0 }

let fail path fmt =
  v.failed <- v.failed + 1;
  Fmt.epr ("FAIL %s: " ^^ fmt ^^ "@.") path

let missing path =
  v.missing <- v.missing + 1;
  Fmt.epr "FAIL %s: present in committed baseline but missing from fresh output@." path

let check_ratio path ~committed ~fresh =
  v.checked <- v.checked + 1;
  let ceiling = Float.max (committed *. !ratio_tol) !ratio_floor in
  if fresh > ceiling then
    fail path "ratio %.3f exceeds ceiling %.3f (committed %.3f)" fresh ceiling committed
  else Fmt.pr "ok   %s: ratio %.3f <= %.3f@." path fresh ceiling

let check_speedup path ~committed ~fresh =
  v.checked <- v.checked + 1;
  let floor = Float.min (committed *. !speedup_frac) !min_speedup in
  if fresh < floor then
    fail path "speedup %.2f below floor %.2f (committed %.2f)" fresh floor committed
  else Fmt.pr "ok   %s: speedup %.2f >= %.2f@." path fresh floor

let check_bool path ~committed ~fresh =
  if committed then begin
    v.checked <- v.checked + 1;
    if not fresh then fail path "invariant was true in committed baseline, false in fresh run"
    else Fmt.pr "ok   %s: invariant holds@." path
  end

(* walk the committed document; for every gated leaf, find the same path in
   the fresh document and compare *)
let rec walk path committed fresh =
  match committed with
  | Json.Obj fields ->
    List.iter
      (fun (key, cv) ->
        let sub = if path = "" then key else path ^ "." ^ key in
        match Option.bind fresh (Json.mem key) with
        | None ->
          if is_ratio key || is_speedup key then missing sub
          else (match cv with
            | Json.Bool true when not (List.mem key boolean_ignored) -> missing sub
            | _ -> ())
        | Some fv -> walk sub cv (Some fv))
      fields
  | Json.List items ->
    List.iteri
      (fun i cv ->
        let sub = Printf.sprintf "%s[%d]" path i in
        let fv =
          Option.bind fresh (fun f ->
            Option.bind (Json.to_list f) (fun l -> List.nth_opt l i))
        in
        match fv with
        | None -> (match cv with Json.Obj _ | Json.List _ -> walk sub cv None | _ -> ())
        | Some _ -> walk sub cv fv)
      items
  | Json.Num c -> (
    let key =
      match String.rindex_opt path '.' with
      | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      | None -> path
    in
    match Option.bind fresh Json.to_num with
    | None -> if is_ratio key || is_speedup key then missing path
    | Some f ->
      if is_ratio key then check_ratio path ~committed:c ~fresh:f
      else if is_speedup key then check_speedup path ~committed:c ~fresh:f)
  | Json.Bool c -> (
    let key =
      match String.rindex_opt path '.' with
      | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      | None -> path
    in
    if not (List.mem key boolean_ignored) then
      match Option.bind fresh Json.to_bool with
      | None -> if c then missing path
      | Some f -> check_bool path ~committed:c ~fresh:f)
  | _ -> ()

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  if !committed_path = "" || !fresh_path = "" then usage ();
  let committed = load !committed_path in
  let fresh = load !fresh_path in
  walk "" committed (Some fresh);
  let bad = v.failed + v.missing in
  if bad > 0 then begin
    Fmt.epr "check_regress: %d of %d gated metrics regressed (%s vs %s)@." bad
      (v.checked + v.missing) !fresh_path !committed_path;
    exit 1
  end
  else
    Fmt.pr "check_regress: %d gated metrics within tolerance (%s vs %s)@." v.checked
      !fresh_path !committed_path
