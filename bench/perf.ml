(* Tracked engine performance benchmark: compiled/vectorized {!Executor}
   against the row-at-a-time {!Reference} interpreter on five query shapes
   (scan, filter, equijoin, group-aggregate, order-limit) over the Uber and
   TPC-H substrates at two scales each.

     dune exec bench/perf.exe                       -- full run, writes BENCH_engine.json
     dune exec bench/perf.exe -- --out FILE         -- choose the output path
     dune exec bench/perf.exe -- --smoke            -- tiny scales, JSON sanity check

   Per (substrate, scale, shape) the JSON records median ns/query for both
   pipelines, the speedup, and compiled rows/sec (input rows of the shape's
   primary table divided by median compiled time). *)

module Rng = Flex_dp.Rng
module Database = Flex_engine.Database
module Table = Flex_engine.Table
module Executor = Flex_engine.Executor
module Reference = Flex_engine.Reference
module W = Flex_workload

let smoke = ref false
let out_path = ref "BENCH_engine.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------ measurement *)

(* Median wall-clock ns per run for each pipeline. Warmup rounds run every
   pipeline unmeasured first (so one-time lazies, branch history and the
   allocator's steady state are paid before the clock starts), then samples
   are interleaved (one round of each pipeline, repeated) so machine noise
   lands on all pipelines alike; repetitions adapt so each sample takes a
   measurable slice without letting the whole suite crawl. In smoke mode
   tiny inputs get enough repetitions per sample for the perf-regression
   gate below to compare real numbers, not clock granularity. *)
let medians (fns : (unit -> unit) array) : float array =
  let samples = if !smoke then 5 else 9 in
  let warmups = if !smoke then 1 else 3 in
  let time_once f reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  in
  let reps f =
    let one = time_once f 1 in
    let budget = if !smoke then 2e5 else 5e6 in
    let cap = if !smoke then 200 else 30 in
    max 1 (min cap (int_of_float (budget /. max one 1.0)))
  in
  for _ = 1 to warmups do
    Array.iter (fun f -> f ()) fns
  done;
  Gc.compact ();
  let rs = Array.map reps fns in
  let out = Array.map (fun _ -> Array.make samples 0.0) fns in
  for i = 0 to samples - 1 do
    Array.iteri (fun j f -> out.(j).(i) <- time_once f rs.(j)) fns
  done;
  Array.map
    (fun s ->
      Array.sort compare s;
      s.(samples / 2))
    out

type row = {
  substrate : string;
  scale : string;
  shape : string;
  input_rows : int;
  reference_ns : float;
  compiled_ns : float;  (* row pipeline: columnar engine switched off *)
  columnar_ns : float;  (* columnar engine on (the default serving config) *)
}

let speedup r = r.reference_ns /. r.compiled_ns

let columnar_speedup r = r.compiled_ns /. r.columnar_ns

let rows_per_sec r = float_of_int r.input_rows /. (r.columnar_ns /. 1e9)

(* A shape is a query plus the table whose cardinality drives it. *)
type shape = { sname : string; table : string; sql : string }

let uber_shapes =
  [
    { sname = "scan"; table = "trips"; sql = "SELECT * FROM trips" };
    {
      sname = "filter";
      table = "trips";
      sql = "SELECT id, fare FROM trips WHERE city_id = 1 AND fare > 10 AND status = 'completed'";
    };
    {
      sname = "equijoin";
      table = "trips";
      sql =
        "SELECT t.id, d.rating, u.status FROM trips t \
         JOIN drivers d ON t.driver_id = d.id \
         JOIN users u ON t.rider_id = u.id WHERE d.rating > 3.0";
    };
    {
      sname = "group_agg";
      table = "trips";
      sql =
        "SELECT city_id, COUNT(*), AVG(fare), MAX(fare) FROM trips \
         GROUP BY city_id HAVING COUNT(*) > 1";
    };
    {
      sname = "order_limit";
      table = "trips";
      sql = "SELECT id, fare FROM trips ORDER BY fare DESC, id LIMIT 100";
    };
  ]

let tpch_shapes =
  [
    { sname = "scan"; table = "lineitem"; sql = "SELECT * FROM lineitem" };
    {
      sname = "filter";
      table = "lineitem";
      sql =
        "SELECT l_orderkey, l_quantity FROM lineitem \
         WHERE l_quantity > 30 AND l_returnflag = 'R'";
    };
    {
      sname = "equijoin";
      table = "lineitem";
      sql =
        "SELECT o.o_orderkey, c.c_mktsegment FROM orders o \
         JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
         JOIN customer c ON o.o_custkey = c.c_custkey";
    };
    {
      sname = "group_agg";
      table = "lineitem";
      sql =
        "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
         FROM lineitem GROUP BY l_returnflag, l_linestatus";
    };
    {
      sname = "order_limit";
      table = "lineitem";
      sql = "SELECT l_orderkey, l_extendedprice FROM lineitem \
             ORDER BY l_extendedprice DESC LIMIT 100";
    };
  ]

(* Run [f] with the columnar engine forced on or off. *)
let with_columnar on f =
  let saved = !Executor.columnar_enabled in
  Executor.columnar_enabled := on;
  Fun.protect ~finally:(fun () -> Executor.columnar_enabled := saved) f

let bench_substrate name scale_label (db : Database.t) shapes acc =
  List.fold_left
    (fun acc s ->
      let input_rows =
        match Database.find_opt db s.table with
        | Some t -> Array.length (Table.rows t)
        | None -> 0
      in
      (* check all three pipelines agree before timing anything; the row and
         columnar pipelines must agree bit-for-bit, rows and order *)
      let expect = Reference.run_sql db s.sql in
      let got = with_columnar false (fun () -> Executor.run_sql db s.sql) in
      let gotc = with_columnar true (fun () -> Executor.run_sql db s.sql) in
      (match (expect, got, gotc) with
      | Ok a, Ok b, Ok c ->
        if List.length a.Reference.rows <> List.length b.Executor.rows then
          Fmt.failwith "%s/%s: pipelines disagree on %s" name s.sname s.sql;
        if b.Executor.rows <> c.Executor.rows then
          Fmt.failwith "%s/%s: columnar diverges from row pipeline on %s" name s.sname
            s.sql
      | Error e, _, _ | _, Error e, _ | _, _, Error e ->
        Fmt.failwith "%s/%s: %s" name s.sname e);
      let ns =
        medians
          [|
            (fun () -> ignore (Reference.run_sql db s.sql));
            (fun () -> with_columnar false (fun () -> ignore (Executor.run_sql db s.sql)));
            (fun () -> with_columnar true (fun () -> ignore (Executor.run_sql db s.sql)));
          |]
      in
      let reference_ns = ns.(0) and compiled_ns = ns.(1) and columnar_ns = ns.(2) in
      let r =
        { substrate = name; scale = scale_label; shape = s.sname; input_rows;
          reference_ns; compiled_ns; columnar_ns }
      in
      Fmt.pr "  %-12s %-10s %-12s %10.0f ns %10.0f ns %10.0f ns %6.2fx %6.2fx %12.0f rows/s@."
        name scale_label s.sname reference_ns compiled_ns columnar_ns (speedup r)
        (columnar_speedup r) (rows_per_sec r);
      r :: acc)
    acc shapes

(* ------------------------------------------------------------------ JSON *)

let json_of_rows rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"engine-executor\",\n  \"unit\": \"ns/query\",\n  \"results\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Fmt.str
           "    {\"substrate\": %S, \"scale\": %S, \"shape\": %S, \"input_rows\": %d, \
            \"reference_ns\": %.0f, \"compiled_ns\": %.0f, \"columnar_ns\": %.0f, \
            \"speedup\": %.2f, \"columnar_speedup\": %.2f, \"rows_per_sec\": %.0f}"
           r.substrate r.scale r.shape r.input_rows r.reference_ns r.compiled_ns
           r.columnar_ns (speedup r) (columnar_speedup r) (rows_per_sec r)))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Minimal well-formedness check for the smoke test: quoted strings are
   opaque, outside them braces/brackets must nest properly. *)
let json_well_formed s =
  let n = String.length s in
  let rec go i depth in_str =
    if i >= n then (not in_str) && depth = []
    else
      let c = s.[i] in
      if in_str then
        if c = '\\' then go (i + 2) depth true
        else go (i + 1) depth (c <> '"')
      else
        match c with
        | '"' -> go (i + 1) depth true
        | '{' | '[' -> go (i + 1) (c :: depth) false
        | '}' -> (match depth with '{' :: d -> go (i + 1) d false | _ -> false)
        | ']' -> (match depth with '[' :: d -> go (i + 1) d false | _ -> false)
        | _ -> go (i + 1) depth false
  in
  go 0 [] false

(* -------------------------------------------------------------------- main *)

let () =
  let rng = Rng.create ~seed:42 () in
  let uber_scales =
    if !smoke then
      (* big enough that per-row work dominates per-query setup — the
         columnar gate below compares real kernel time, not parse and
         compile overhead *)
      [ ("tiny", { W.Uber.cities = 4; drivers = 40; users = 80; trips = 600; user_tags = 30 }) ]
    else [ ("small", W.Uber.small_sizes); ("default", W.Uber.default_sizes) ]
  in
  let tpch_scales = if !smoke then [ ("tiny", 0.0005) ] else [ ("sf0.002", 0.002); ("sf0.01", 0.01) ] in
  Fmt.pr "engine executor benchmark (%d warmup rounds, median of %d interleaved samples)@."
    (if !smoke then 1 else 3)
    (if !smoke then 5 else 9);
  Fmt.pr "  %-12s %-10s %-12s %13s %13s %13s %7s %7s %14s@." "substrate" "scale" "shape"
    "reference" "row" "columnar" "row-x" "col-x" "throughput";
  let rows =
    List.fold_left
      (fun acc (label, sizes) ->
        let db, _ = W.Uber.generate ~sizes (Rng.split rng) in
        bench_substrate "uber" label db uber_shapes acc)
      [] uber_scales
  in
  let rows =
    List.fold_left
      (fun acc (label, scale) ->
        let db, _ = W.Tpch.generate ~scale (Rng.split rng) in
        bench_substrate "tpch" label db tpch_shapes acc)
      rows tpch_scales
  in
  let rows = List.rev rows in
  let json = json_of_rows rows in
  let out = if !smoke then Filename.temp_file "bench_engine" ".json" else !out_path in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." out;
  if !smoke then begin
    (* smoke mode asserts the JSON is written and well-formed *)
    let ic = open_in out in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Sys.remove out;
    if not (json_well_formed s) then Fmt.failwith "smoke: JSON not well-formed";
    if not (Astring.String.is_infix ~affix:"\"shape\": \"equijoin\"" s) then
      Fmt.failwith "smoke: missing equijoin entry";
    if not (Astring.String.is_infix ~affix:"\"columnar_ns\"" s) then
      Fmt.failwith "smoke: missing columnar column";
    (* perf-regression gate: the columnar engine must beat the row pipeline
       on the vectorization-friendly shapes even at smoke scale — a chunk
       rebuild per query, a lost fast path or an accidental fallback shows
       up here as a hard failure in `dune runtest` *)
    List.iter
      (fun r ->
        match r.shape with
        | "scan" | "filter" | "group_agg" ->
          if r.columnar_ns >= r.compiled_ns then
            Fmt.failwith
              "smoke: columnar regression on %s/%s/%s: columnar %.0f ns >= row %.0f ns"
              r.substrate r.scale r.shape r.columnar_ns r.compiled_ns
        | _ -> ())
      rows;
    Fmt.pr "smoke ok: JSON well-formed, columnar gate passed, %d result entries@."
      (List.length rows)
  end
