(* Tracked noisy-materialized-view benchmark: what core/suffix factoring buys
   a dashboard workload.

     dune exec bench/view_perf.exe                -- writes BENCH_views.json
     dune exec bench/view_perf.exe -- --out FILE  -- choose the output path
     dune exec bench/view_perf.exe -- --smoke     -- tiny sizes, gates only

   One paid release of a query's core answers every suffix variant of it —
   HAVING, ORDER BY/LIMIT, projection arithmetic — by post-processing the
   stored noisy histogram: no scan, no fresh noise, no ledger charge. Per
   core the benchmark pays for the release once, then drives the derived
   variants and reads per-request timings from the audit log.

   Gates (smoke mode included): every variant must come back [cached] and
   [derived] with exactly zero epsilon and delta, the always-true-HAVING
   variant must release the same bytes as the core, and the median derived
   answer must be >= 10x faster end-to-end than its cold release. *)

module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module W = Flex_workload
module Server = Flex_service.Server
module Wire = Flex_service.Wire
module Json = Flex_service.Json
module Audit = Flex_service.Audit

let smoke = ref false
let out_path = ref "BENCH_views.json"

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--out" :: path :: rest ->
      out_path := path;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

(* --------------------------------------------------------------- workload *)

type view = { name : string; core : string; variants : string list }

(* the first variant of each view is the always-true HAVING: its answer must
   be byte-identical to the core's, which pins the derivation to the stored
   release rather than to a fresh execution *)
let views =
  [
    {
      name = "histogram";
      core = "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
      variants =
        [
          "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status HAVING \
           COUNT(*) > -1000000";
          "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status ORDER BY 2 \
           DESC LIMIT 2";
          "SELECT t.status, COUNT(*) * 100 FROM trips t GROUP BY t.status \
           ORDER BY t.status";
        ];
    };
    {
      name = "join_histogram";
      core =
        "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
         GROUP BY c.name";
      variants =
        [
          "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
           c.id GROUP BY c.name HAVING COUNT(*) > -1000000";
          "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
           c.id GROUP BY c.name ORDER BY 2 DESC LIMIT 3";
          "SELECT z.name AS city, COUNT(*) * 2 + 1 AS scaled FROM trips y JOIN \
           cities z ON y.city_id = z.id GROUP BY z.name ORDER BY scaled DESC";
        ];
    };
  ]

(* ---------------------------------------------------------------- harness *)

let make_server ?(seed = 42) ~audit (db, metrics) =
  let config =
    { Server.default_config with analyst_epsilon = 1e9; analyst_delta = 0.5 }
  in
  Server.create ~audit ~config ~db ~metrics ~ledger:(Ledger.in_memory ())
    ~rng:(Rng.create ~seed ()) ()

let hello server session analyst =
  match
    Server.handle server session (Wire.Hello { analyst; epsilon = None; delta = None })
  with
  | Wire.Budget_report _ -> ()
  | other -> Fmt.failwith "hello failed: %s" (Wire.response_to_line other)

(* (cached, derived, epsilon+delta spent, rows as one canonical string) *)
let run_query server session sql =
  match Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None }) with
  | Wire.Result r ->
    ( r.cached,
      r.derived,
      r.epsilon_spent +. r.delta_spent,
      Json.to_string (Json.List (List.map (fun row -> Json.List row) r.rows)) )
  | other -> Fmt.failwith "query failed: %s" (Wire.response_to_line other)

let field j name =
  match Option.bind (Json.mem name j) Json.to_num with
  | Some v -> v
  | None -> Fmt.failwith "audit event missing %s" name

let audit_events buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map Json.of_string_exn

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* -------------------------------------------------------------- sections *)

type report = { view : string; cold_ns : float; derived_ns : float; speedup : float }

(* pay for the core once, then hammer the suffix variants; timings come from
   the audit log so they are the pipeline's own, not the harness's *)
let bench_view fixture repeats v =
  let buf = Buffer.create 4096 in
  let server = make_server ~audit:(Audit.to_buffer buf) fixture in
  let session = Server.session server in
  hello server session "bench";
  let cold_cached, _, _, core_rows = run_query server session v.core in
  if cold_cached then Fmt.failwith "%s: cold core was already cached" v.name;
  List.iteri
    (fun i sql ->
      for _ = 1 to repeats do
        let cached, derived, spent, rows = run_query server session sql in
        if not (cached && derived) then
          Fmt.failwith "%s: variant %d was not derived from the store" v.name i;
        if spent <> 0.0 then
          Fmt.failwith "%s: variant %d charged budget %g" v.name i spent;
        if i = 0 && rows <> core_rows then
          Fmt.failwith "%s: always-true HAVING released different bytes" v.name
      done)
    v.variants;
  let outcome o j = Option.bind (Json.mem "outcome" j) Json.to_str = Some o in
  let totals o =
    List.filter_map
      (fun j -> if outcome o j then Some (field j "total_ns") else None)
      (audit_events buf)
  in
  let cold_ns =
    match totals "granted" with
    | [ t ] -> t
    | ts -> Fmt.failwith "%s: expected one grant, saw %d" v.name (List.length ts)
  in
  let derived_ns = median (totals "derived") in
  let speedup = cold_ns /. Float.max derived_ns 1.0 in
  if speedup < 10.0 then
    Fmt.failwith "view gate: %s derived %.0f ns vs %.0f ns cold is only %.1fx (need 10x)"
      v.name derived_ns cold_ns speedup;
  { view = v.name; cold_ns; derived_ns; speedup }

(* the dashboard: several sessions refreshing every variant of every view
   against one warm server — all store hits, none of them exact replays *)
let bench_dashboard fixture ~threads ~per_thread =
  let server = make_server ~audit:(Audit.null ()) fixture in
  let prime = Server.session server in
  hello server prime "prime";
  List.iter (fun v -> ignore (run_query server prime v.core)) views;
  let worker i =
    let session = Server.session server in
    hello server session (Fmt.str "dash-%d" i);
    for _ = 1 to per_thread do
      List.iter
        (fun v -> List.iter (fun sql -> ignore (run_query server session sql)) v.variants)
        views
    done
  in
  let t0 = Unix.gettimeofday () in
  let ts = List.init threads (fun i -> Thread.create worker i) in
  List.iter Thread.join ts;
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let queries =
    threads * per_thread
    * List.fold_left (fun acc v -> acc + List.length v.variants) 0 views
  in
  let c = Server.counters server in
  if c.derived <> queries then
    Fmt.failwith "dashboard: %d derived answers for %d variant queries" c.derived
      queries;
  (queries, wall_ns)

(* -------------------------------------------------------------------- main *)

let () =
  let sizes = if !smoke then W.Uber.small_sizes else W.Uber.default_sizes in
  (* enough derived samples that one scheduler hiccup cannot drag the
     median over the gate even at smoke sizes *)
  let repeats = if !smoke then 9 else 21 in
  let threads = if !smoke then 2 else 4 in
  let per_thread = if !smoke then 2 else 25 in
  let fixture = W.Uber.generate ~sizes (Rng.create ~seed:7 ()) in
  Fmt.pr "flex noisy-view benchmark (median of %d derived repeats per variant)@."
    repeats;
  Fmt.pr "  %-16s %12s %12s %9s@." "view" "cold ns" "derived ns" "speedup";
  (* a timing gate on shared CI hardware gets three attempts: scheduler noise
     passes on retry, a real regression fails all three *)
  let rec gated v attempts =
    try bench_view fixture repeats v
    with Failure msg when attempts > 1 ->
      Fmt.pr "  (view gate retry: %s)@." msg;
      gated v (attempts - 1)
  in
  let reports =
    List.map
      (fun v ->
        let r = gated v 3 in
        Fmt.pr "  %-16s %12.0f %12.0f %8.0fx@." r.view r.cold_ns r.derived_ns r.speedup;
        r)
      views
  in
  let queries, wall_ns = bench_dashboard fixture ~threads ~per_thread in
  let qps = float_of_int queries /. (wall_ns /. 1e9) in
  Fmt.pr "  dashboard: %d derived queries over %d threads in %.1f ms (%.0f q/s)@."
    queries threads (wall_ns /. 1e6) qps;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"benchmark\": \"flex-views\",\n  \"unit\": \"ns\",\n";
  Buffer.add_string b (Fmt.str "  \"smoke\": %b,\n  \"views\": [\n" !smoke);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Fmt.str
           "    {\"view\": %S, \"cold_ns\": %.0f, \"derived_ns\": %.0f, \
            \"derived_speedup\": %.1f, \"zero_budget\": true}"
           r.view r.cold_ns r.derived_ns r.speedup))
    reports;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Fmt.str
       "  \"dashboard\": {\"threads\": %d, \"queries\": %d, \"wall_ns\": %.0f, \
        \"queries_per_sec\": %.0f, \"all_derived\": true}\n"
       threads queries wall_ns qps);
  Buffer.add_string b "}\n";
  let json = Buffer.contents b in
  (match Json.of_string json with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "generated JSON is malformed: %s" e);
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out_path
