module Wire = Flex_service.Wire
module Server = Flex_service.Server
module Reactor = Flex_service.Reactor
module Workers = Flex_service.Workers
module Rate_limit = Flex_service.Rate_limit
module Load_driver = Flex_service.Load_driver
module Audit = Flex_service.Audit
module Json = Flex_service.Json
module Ledger = Flex_dp.Ledger
module Rng = Flex_dp.Rng
module Registry = Flex_obs.Registry

(* --- workers ------------------------------------------------------------------- *)

let workers_tests =
  [
    Alcotest.test_case "jobs run exactly once and stats add up" `Quick (fun () ->
        let pool = Workers.create ~workers:2 ~capacity:64 () in
        let hits = Atomic.make 0 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "submit accepted" true
            (Workers.try_submit pool (fun () -> Atomic.incr hits))
        done;
        Workers.shutdown pool;
        Alcotest.(check int) "every job ran" 50 (Atomic.get hits);
        let s = Workers.stats pool in
        Alcotest.(check int) "submitted" 50 s.submitted;
        Alcotest.(check int) "completed" 50 s.completed;
        Alcotest.(check int) "rejected" 0 s.rejected;
        Alcotest.(check int) "nothing inflight" 0 (Workers.inflight pool));
    Alcotest.test_case "full queue refuses instead of blocking" `Quick (fun () ->
        let pool = Workers.create ~workers:1 ~capacity:1 () in
        let gate = Mutex.create () and go = Condition.create () in
        let released = ref false in
        let running = Mutex.create () and started = Condition.create () in
        let worker_started = ref false in
        (* pin the single worker on a job we control *)
        assert (
          Workers.try_submit pool (fun () ->
              Mutex.protect running (fun () ->
                  worker_started := true;
                  Condition.broadcast started);
              Mutex.lock gate;
              while not !released do
                Condition.wait go gate
              done;
              Mutex.unlock gate));
        Mutex.protect running (fun () ->
            while not !worker_started do
              Condition.wait started running
            done);
        (* one slot waits, the next is refused *)
        Alcotest.(check bool) "queued" true (Workers.try_submit pool (fun () -> ()));
        Alcotest.(check bool) "refused at capacity" false
          (Workers.try_submit pool (fun () -> ()));
        Alcotest.(check int) "two inflight" 2 (Workers.inflight pool);
        Mutex.protect gate (fun () ->
            released := true;
            Condition.broadcast go);
        Workers.shutdown pool;
        let s = Workers.stats pool in
        Alcotest.(check int) "one refusal counted" 1 s.rejected;
        Alcotest.(check int) "queued job drained by shutdown" 2 s.completed;
        Alcotest.(check bool) "submit after shutdown refused" false
          (Workers.try_submit pool (fun () -> ())));
    Alcotest.test_case "job exceptions are contained" `Quick (fun () ->
        let pool = Workers.create ~workers:1 ~capacity:8 () in
        let after = Atomic.make false in
        assert (Workers.try_submit pool (fun () -> failwith "boom"));
        assert (Workers.try_submit pool (fun () -> Atomic.set after true));
        Workers.shutdown pool;
        Alcotest.(check bool) "the pool survived the raise" true (Atomic.get after));
  ]

(* --- rate limiting ------------------------------------------------------------- *)

let rate_limit_tests =
  [
    Alcotest.test_case "burst spends down, refill is continuous" `Quick (fun () ->
        let rl = Rate_limit.create ~qps:2.0 () in
        (* burst defaults to max 1 qps = 2 tokens *)
        Alcotest.(check bool) "1st" true (Rate_limit.allow ~now:100.0 rl ~key:"a");
        Alcotest.(check bool) "2nd" true (Rate_limit.allow ~now:100.0 rl ~key:"a");
        Alcotest.(check bool) "3rd denied" false (Rate_limit.allow ~now:100.0 rl ~key:"a");
        (* half a second refills one token at 2 qps *)
        Alcotest.(check bool) "refilled" true (Rate_limit.allow ~now:100.5 rl ~key:"a");
        Alcotest.(check bool) "spent again" false (Rate_limit.allow ~now:100.5 rl ~key:"a");
        (* a long sleep caps at burst, not unbounded credit *)
        Alcotest.(check bool) "cap 1" true (Rate_limit.allow ~now:200.0 rl ~key:"a");
        Alcotest.(check bool) "cap 2" true (Rate_limit.allow ~now:200.0 rl ~key:"a");
        Alcotest.(check bool) "cap hit" false (Rate_limit.allow ~now:200.0 rl ~key:"a");
        let s = Rate_limit.stats rl in
        Alcotest.(check int) "allowed" 5 s.allowed;
        Alcotest.(check int) "denied" 3 s.denied);
    Alcotest.test_case "buckets are per key" `Quick (fun () ->
        let rl = Rate_limit.create ~burst:1.0 ~qps:1.0 () in
        Alcotest.(check bool) "a" true (Rate_limit.allow ~now:5.0 rl ~key:"a");
        Alcotest.(check bool) "a exhausted" false (Rate_limit.allow ~now:5.0 rl ~key:"a");
        Alcotest.(check bool) "b unaffected" true (Rate_limit.allow ~now:5.0 rl ~key:"b");
        Alcotest.(check int) "two keys" 2 (Rate_limit.stats rl).keys);
    Alcotest.test_case "invalid parameters are refused" `Quick (fun () ->
        List.iter
          (fun f ->
            match f () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument")
          [
            (fun () -> Rate_limit.create ~qps:0.0 ());
            (fun () -> Rate_limit.create ~qps:Float.nan ());
            (fun () -> Rate_limit.create ~burst:0.5 ~qps:1.0 ());
          ]);
  ]

(* --- reactor fixtures ----------------------------------------------------------- *)

let fixture =
  lazy
    (Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes
       (Rng.create ~seed:7 ()))

let make_server ?audit ?config ?ledger () =
  let db, metrics = Lazy.force fixture in
  let ledger = match ledger with Some l -> l | None -> Ledger.in_memory () in
  let server =
    Server.create ?audit ?config ~db ~metrics ~ledger ~rng:(Rng.create ~seed:11 ()) ()
  in
  (server, ledger)

let with_reactor ?config server f =
  let r = Reactor.listen ?config server in
  ignore (Reactor.start r);
  Fun.protect ~finally:(fun () -> Reactor.stop r) (fun () -> f r)

let connect port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_string fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let send fd req = send_string fd (Wire.request_to_line req ^ "\n")

(* blocking line reads over the raw fd; [None] on EOF *)
let reader fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec next () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
      let s = Buffer.contents buf in
      let line = String.sub s 0 i in
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
      Some line
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        next ()
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> None)
  in
  next

let recv next =
  match next () with
  | None -> Alcotest.fail "unexpected EOF from the reactor"
  | Some line -> Result.get_ok (Wire.response_of_line line)

let eventually ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      loop ()
    end
  in
  loop ()

(* --- reactor: protocol behavior ------------------------------------------------- *)

let reactor_tests =
  [
    Alcotest.test_case "round trips, replay, and quit over the reactor" `Quick (fun () ->
        let server, ledger = make_server () in
        with_reactor server (fun r ->
            let fd = connect (Reactor.port r) in
            let next = reader fd in
            send fd (Wire.Hello { analyst = "alice"; epsilon = None; delta = None });
            (match recv next with
            | Wire.Budget_report b -> Alcotest.(check string) "analyst" "alice" b.analyst
            | other -> Alcotest.failf "hello: %s" (Wire.response_to_line other));
            let sql = "SELECT COUNT(*) FROM trips" in
            (match
               send fd (Wire.Query { sql; epsilon = Some 0.5; delta = None; id = None });
               recv next
             with
            | Wire.Result res ->
              Alcotest.(check bool) "charged" false res.cached;
              Alcotest.(check (float 0.0)) "spent" 0.5 res.epsilon_spent
            | other -> Alcotest.failf "query: %s" (Wire.response_to_line other));
            (* the repeat replays from the release store: zero budget *)
            (match
               send fd (Wire.Query { sql; epsilon = Some 0.5; delta = None; id = None });
               recv next
             with
            | Wire.Result res -> Alcotest.(check bool) "replayed" true res.cached
            | other -> Alcotest.failf "replay: %s" (Wire.response_to_line other));
            Alcotest.(check bool) "one charge" true
              (match Ledger.spent ledger ~analyst:"alice" with
              | Some (e, _) -> e = 0.5
              | None -> false);
            send fd Wire.Quit;
            (match recv next with
            | Wire.Bye -> ()
            | other -> Alcotest.failf "quit: %s" (Wire.response_to_line other));
            (* quit closes the connection from the server side *)
            Alcotest.(check bool) "EOF after bye" true (next () = None);
            Unix.close fd;
            Alcotest.(check bool) "conn swept" true
              (eventually (fun () -> (Reactor.stats r).connections_open = 0))));
    Alcotest.test_case "pipelined requests are answered in order" `Quick (fun () ->
        let server, _ = make_server () in
        with_reactor server (fun r ->
            let fd = connect (Reactor.port r) in
            let next = reader fd in
            (* one write carrying hello + 8 queries with distinct epsilons:
               responses must come back in submission order *)
            let epsilons = [ 0.5; 0.25; 0.125; 0.0625; 0.5; 0.03125; 0.25; 0.125 ] in
            let burst = Buffer.create 512 in
            Buffer.add_string burst
              (Wire.request_to_line
                 (Wire.Hello { analyst = "pipe"; epsilon = None; delta = None })
              ^ "\n");
            List.iter
              (fun e ->
                Buffer.add_string burst
                  (Wire.request_to_line
                     (Wire.Query
                        {
                          (* distinct epsilon per request defeats the release
                             store: every answer carries its own spend *)
                          sql = "SELECT COUNT(*) FROM trips";
                          epsilon = Some e;
                          delta = None;
                          id = None;
                        })
                  ^ "\n"))
              epsilons;
            send_string fd (Buffer.contents burst);
            (match recv next with
            | Wire.Budget_report _ -> ()
            | other -> Alcotest.failf "hello: %s" (Wire.response_to_line other));
            List.iteri
              (fun i e ->
                match recv next with
                | Wire.Result res ->
                  if not res.cached then
                    Alcotest.(check (float 0.0))
                      (Printf.sprintf "answer %d matches request %d" i i)
                      e res.epsilon_spent
                  else
                    (* a replayed repeat spends nothing but still proves
                       ordering via its position *)
                    ()
                | other -> Alcotest.failf "query %d: %s" i (Wire.response_to_line other))
              epsilons;
            Unix.close fd));
    Alcotest.test_case "malformed and oversized frames get typed errors" `Quick (fun () ->
        let server, _ = make_server () in
        let config = { Reactor.default_config with max_line_bytes = 1024 } in
        with_reactor ~config server (fun r ->
            (* malformed JSON: an error response, connection stays usable *)
            let fd = connect (Reactor.port r) in
            let next = reader fd in
            send_string fd "this is not json\n";
            (match recv next with
            | Wire.Error_msg _ -> ()
            | other -> Alcotest.failf "garbage: %s" (Wire.response_to_line other));
            send fd Wire.Stats;
            (match recv next with
            | Wire.Stats_report _ -> ()
            | other -> Alcotest.failf "stats after garbage: %s" (Wire.response_to_line other));
            Unix.close fd;
            (* an over-long frame: error response, then hangup *)
            let fd2 = connect (Reactor.port r) in
            let next2 = reader fd2 in
            send_string fd2 (String.make 4096 'x');
            (match recv next2 with
            | Wire.Error_msg m ->
              Alcotest.(check bool) "mentions the cap" true
                (Astring.String.is_infix ~affix:"exceeds" m)
            | other -> Alcotest.failf "oversize: %s" (Wire.response_to_line other));
            Alcotest.(check bool) "closed after oversize" true (next2 () = None);
            Unix.close fd2));
    Alcotest.test_case "connection cap refuses with a typed overload reply" `Quick
      (fun () ->
        let server, _ = make_server () in
        let config = { Reactor.default_config with max_connections = 2 } in
        with_reactor ~config server (fun r ->
            let fd1 = connect (Reactor.port r) in
            let fd2 = connect (Reactor.port r) in
            (* make sure both are accepted before the third knocks *)
            let n1 = reader fd1 and n2 = reader fd2 in
            send fd1 Wire.Stats;
            ignore (recv n1);
            send fd2 Wire.Stats;
            ignore (recv n2);
            let fd3 = connect (Reactor.port r) in
            let n3 = reader fd3 in
            (match recv n3 with
            | Wire.Rejected rej ->
              Alcotest.(check string) "bucket" "overload" rej.bucket
            | other -> Alcotest.failf "cap: %s" (Wire.response_to_line other));
            Alcotest.(check bool) "refused conn closed" true (n3 () = None);
            Alcotest.(check bool) "refusal counted" true
              ((Reactor.stats r).conn_refused_total >= 1);
            List.iter Unix.close [ fd1; fd2; fd3 ]));
    Alcotest.test_case "idle sweep reaps half-open and slowloris connections" `Quick
      (fun () ->
        let server, _ = make_server () in
        let config = { Reactor.default_config with idle_timeout = 0.3 } in
        with_reactor ~config server (fun r ->
            (* half-open: connects, never sends a byte *)
            let silent = connect (Reactor.port r) in
            (* slowloris: sends half a frame and stalls *)
            let slow = connect (Reactor.port r) in
            send_string slow "{\"op\":\"sta";
            (* a live connection keeps itself alive across sweeps *)
            let live = connect (Reactor.port r) in
            let nl = reader live in
            Alcotest.(check bool) "three open" true
              (eventually (fun () -> (Reactor.stats r).connections_open = 3));
            for _ = 1 to 6 do
              Thread.delay 0.1;
              send live Wire.Stats;
              ignore (recv nl)
            done;
            Alcotest.(check bool) "idle pair reaped" true
              (eventually (fun () ->
                   let s = Reactor.stats r in
                   s.idle_closed_total >= 2 && s.connections_open = 1));
            (* the survivor still works *)
            send live Wire.Stats;
            (match recv nl with
            | Wire.Stats_report _ -> ()
            | other -> Alcotest.failf "live conn: %s" (Wire.response_to_line other));
            List.iter Unix.close [ silent; slow; live ]));
    Alcotest.test_case "mid-frame disconnect is cleaned up, partial frame dropped"
      `Quick (fun () ->
        let buf = Buffer.create 256 in
        let server, _ = make_server ~audit:(Audit.to_buffer buf) () in
        with_reactor server (fun r ->
            let fd = connect (Reactor.port r) in
            send_string fd "{\"op\":\"query\",\"sql\":\"SELECT COUNT(*) FR";
            Unix.close fd;
            Alcotest.(check bool) "conn closed" true
              (eventually (fun () -> (Reactor.stats r).connections_open = 0));
            (* the torn fragment was never parsed or served *)
            Alcotest.(check string) "no audit event" "" (Buffer.contents buf)));
    Alcotest.test_case "stopped reactor refuses new connections" `Quick (fun () ->
        let server, _ = make_server () in
        let r = Reactor.listen server in
        ignore (Reactor.start r);
        let fd = connect (Reactor.port r) in
        let next = reader fd in
        send fd Wire.Stats;
        (match recv next with
        | Wire.Stats_report _ -> ()
        | other -> Alcotest.failf "stats: %s" (Wire.response_to_line other));
        Reactor.stop r;
        Reactor.stop r (* idempotent *);
        Unix.close fd;
        match connect (Reactor.port r) with
        | exception Unix.Unix_error (ECONNREFUSED, _, _) -> ()
        | fd2 ->
          (* the listener backlog may absorb the SYN; the fd must then be dead *)
          let n2 = reader fd2 in
          send fd2 Wire.Stats;
          Alcotest.(check bool) "no service after stop" true (n2 () = None);
          Unix.close fd2);
    Alcotest.test_case "reactor registers connection metrics" `Quick (fun () ->
        let server, _ = make_server () in
        with_reactor server (fun r ->
            let fd = connect (Reactor.port r) in
            let next = reader fd in
            send fd Wire.Stats;
            ignore (recv next);
            let reg = Option.get (Server.registry server) in
            let families = Registry.snapshot reg in
            let value name =
              List.find_opt (fun (f : Registry.family) -> f.name = name) families
              |> Option.map (fun (f : Registry.family) ->
                     List.fold_left
                       (fun acc (s : Registry.sample) ->
                         match s.value with Registry.Sample v -> acc +. v | _ -> acc)
                       0.0 f.samples)
            in
            Alcotest.(check (option (float 0.0))) "one connection open" (Some 1.0)
              (value "flex_connections_open");
            Alcotest.(check bool) "inflight gauge present" true
              (value "flex_requests_inflight" <> None);
            Alcotest.(check (option (float 0.0))) "no sheds yet" (Some 0.0)
              (value "flex_overload_rejections_total");
            Unix.close fd));
  ]

(* --- admission control under load ----------------------------------------------- *)

let overload_tests =
  [
    Alcotest.test_case "rate limit rejects with its own bucket and charges nothing"
      `Quick (fun () ->
        let buf = Buffer.create 512 in
        let config =
          { Server.default_config with rate_limit_qps = Some 2.0; release_cache = false }
        in
        let server, ledger = make_server ~audit:(Audit.to_buffer buf) ~config () in
        let session = Server.session server in
        (match
           Server.handle server session
             (Wire.Hello { analyst = "hasty"; epsilon = None; delta = None })
         with
        | Wire.Budget_report _ -> ()
        | other -> Alcotest.failf "hello: %s" (Wire.response_to_line other));
        (* burst is 2 tokens; a tight loop of 6 queries cannot refill more
           than a rounding error's worth, so at least 3 must be limited *)
        let limited = ref 0 and granted = ref 0 in
        for _ = 1 to 6 do
          match
            Server.handle server session
              (Wire.Query
                 { sql = "SELECT COUNT(*) FROM trips"; epsilon = Some 0.25; delta = None; id = None })
          with
          | Wire.Result _ -> incr granted
          | Wire.Rejected rej when rej.bucket = "rate_limit" -> incr limited
          | other -> Alcotest.failf "query: %s" (Wire.response_to_line other)
        done;
        Alcotest.(check bool) "most were limited" true (!limited >= 3);
        let c = Server.counters server in
        Alcotest.(check int) "counter agrees" !limited c.rate_limited;
        Alcotest.(check bool) "limited requests charged nothing" true
          (match Ledger.spent ledger ~analyst:"hasty" with
          | Some (e, _) -> e = 0.25 *. float_of_int !granted
          | None -> false);
        (* every limited request is audit-logged with the rate_limit bucket *)
        let events =
          String.split_on_char '\n' (Buffer.contents buf)
          |> List.filter (fun l -> l <> "")
          |> List.map Json.of_string_exn
        in
        let rate_limit_events =
          List.filter
            (fun e ->
              Option.bind (Json.mem "bucket" e) Json.to_str = Some "rate_limit")
            events
        in
        Alcotest.(check int) "audited" !limited (List.length rate_limit_events));
    Alcotest.test_case "log_overload audits the shed line, truncated" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let server, ledger = make_server ~audit:(Audit.to_buffer buf) () in
        Server.log_overload server ~analyst:(Some "alice") ~line:(String.make 300 'q');
        Server.log_overload server ~analyst:None ~line:"short";
        let events =
          String.split_on_char '\n' (Buffer.contents buf)
          |> List.filter (fun l -> l <> "")
          |> List.map Json.of_string_exn
        in
        Alcotest.(check int) "two events" 2 (List.length events);
        let first = List.nth events 0 in
        Alcotest.(check (option string)) "outcome" (Some "rejected")
          (Option.bind (Json.mem "outcome" first) Json.to_str);
        Alcotest.(check (option string)) "bucket" (Some "overload")
          (Option.bind (Json.mem "bucket" first) Json.to_str);
        Alcotest.(check bool) "line truncated" true
          (match Option.bind (Json.mem "sql" first) Json.to_str with
          | Some s -> String.length s = 203 (* 200 + "..." *)
          | None -> false);
        Alcotest.(check int) "rejections counted" 2 (Server.counters server).rejected;
        Alcotest.(check bool) "nothing charged" true (Ledger.analysts ledger = []));
    Alcotest.test_case
      "forced overload sheds with a typed reply and conserves every analyst's budget"
      `Slow (fun () ->
        (* one worker, a two-slot queue, and eight closed-loop analysts: the
           flood must shed. Epsilon 0.25 and a budget of 1.0 are powers of
           two, so conservation below is exact float arithmetic, not
           approximate: any double charge or unbooked grant breaks it. *)
        let n_conns = 8 and n_requests = 12 in
        let budget = 1.0 in
        let config =
          {
            Server.default_config with
            default_epsilon = 0.25;
            analyst_epsilon = budget;
            release_cache = false;
          }
        in
        let rconfig = { Reactor.default_config with workers = 1; max_pending = 2 } in
        let rec attempt tries =
          let ledger = Ledger.in_memory () in
          let server, _ = make_server ~config ~ledger () in
          let outcome, shed =
            with_reactor ~config:rconfig server (fun r ->
                let o =
                  Load_driver.run ~port:(Reactor.port r) ~connections:n_conns
                    ~requests:n_requests
                    ~hello:(fun i -> Some (Printf.sprintf "ov-%d" i))
                    ~make_request:(fun ~conn:_ ~seq:_ ->
                      Wire.Query
                        {
                          sql =
                            "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
                          epsilon = None;
                          delta = None;
                          id = None;
                        })
                    ()
                in
                (o, (Reactor.stats r).shed_total))
          in
          Alcotest.(check int) "every request answered" outcome.sent
            (outcome.ok + outcome.rejected + outcome.refused + outcome.errors);
          (* [errors] is not zero here: a shed Hello leaves its connection
             unauthenticated, so its later queries draw "no analyst" errors —
             the expected face of overload, never a hung connection *)
          let counters = Server.counters server in
          let spends =
            List.map
              (fun a ->
                match Ledger.spent ledger ~analyst:a with
                | Some (e, _) -> e
                | None -> 0.0)
              (Ledger.analysts ledger)
          in
          let total = List.fold_left ( +. ) 0.0 spends in
          Alcotest.(check bool) "ledger total = 0.25 x grants, exactly" true
            (total = 0.25 *. float_of_int counters.granted);
          Alcotest.(check bool) "no analyst over budget" true
            (List.for_all (fun e -> e <= budget) spends);
          if outcome.overload > 0 then begin
            Alcotest.(check bool) "reactor shed at least the rejections seen" true
              (shed >= outcome.overload)
          end
          else if tries > 1 then attempt (tries - 1)
          else
            Alcotest.fail
              "the undersized queue never shed in five floods — overload path untested"
        in
        attempt 5);
    Alcotest.test_case "load driver reports a sane closed-loop outcome" `Quick (fun () ->
        let server, _ = make_server () in
        with_reactor server (fun r ->
            let outcome =
              Load_driver.run ~port:(Reactor.port r) ~connections:4 ~requests:6
                ~make_request:(fun ~conn ~seq:_ ->
                  Wire.Query
                    {
                      sql = "SELECT COUNT(*) FROM trips";
                      (* distinct epsilon per connection: one charge each,
                         then replays *)
                      epsilon = Some (Float.ldexp 1.0 (-1 - (conn mod 4)));
                      delta = None;
                      id = None;
                    })
                ()
            in
            (* 4 hellos + 24 queries *)
            Alcotest.(check int) "sent" 28 outcome.sent;
            Alcotest.(check int) "all ok" 28 outcome.ok;
            Alcotest.(check int) "errors" 0 outcome.errors;
            Alcotest.(check int) "replays counted" 20 outcome.cached;
            Alcotest.(check int) "one latency per round trip" 28
              (Array.length outcome.latencies);
            let sorted = Array.copy outcome.latencies in
            Array.sort compare sorted;
            Alcotest.(check bool) "latencies sorted" true (sorted = outcome.latencies);
            Alcotest.(check bool) "percentiles ordered" true
              (Load_driver.percentile outcome 0.5 <= Load_driver.percentile outcome 0.99);
            Alcotest.(check bool) "positive qps" true (Load_driver.qps outcome > 0.0)));
  ]

(* --- reactor: observability ------------------------------------------------------ *)

let observability_tests =
  [
    Alcotest.test_case "id echoes and the span tree completes over the reactor" `Quick
      (fun () ->
        let buf = Buffer.create 1024 in
        let server, _ = make_server ~audit:(Audit.to_buffer buf) () in
        with_reactor server (fun r ->
            let fd = connect (Reactor.port r) in
            let next = reader fd in
            send fd (Wire.Hello { analyst = "alice"; epsilon = None; delta = None });
            ignore (recv next);
            send fd
              (Wire.Query
                 {
                   sql = "SELECT COUNT(*) FROM trips";
                   epsilon = Some 0.5;
                   delta = None;
                   id = Some "corr-42";
                 });
            (match next () with
            | None -> Alcotest.fail "unexpected EOF"
            | Some line ->
              Alcotest.(check (option string)) "response echoes the id" (Some "corr-42")
                (Wire.response_id_of_line line);
              (match Wire.response_of_line line with
              | Ok (Wire.Result _) -> ()
              | Ok other -> Alcotest.failf "query: %s" (Wire.response_to_line other)
              | Error e -> Alcotest.failf "decode: %s" e));
            (* a request without an id gets a response without one — old
               clients never see the field *)
            send fd
              (Wire.Query
                 {
                   sql = "SELECT COUNT(*) FROM trips";
                   epsilon = Some 0.5;
                   delta = None;
                   id = None;
                 });
            (match next () with
            | None -> Alcotest.fail "unexpected EOF"
            | Some line ->
              Alcotest.(check (option string)) "no unsolicited id" None
                (Wire.response_id_of_line line));
            Unix.close fd;
            (* the audit line written on the worker thread has the complete
               stage breakdown: the span tree survived the reactor's
               parse-on-event-loop / execute-on-worker split *)
            Alcotest.(check bool) "audit flushed" true
              (eventually (fun () -> Buffer.length buf > 0));
            (match
               Json.of_string (List.hd (String.split_on_char '\n' (Buffer.contents buf)))
             with
            | Error e -> Alcotest.failf "audit line does not parse: %s" e
            | Ok j ->
              Alcotest.(check (option string)) "audit joins on the id" (Some "corr-42")
                (Option.bind (Json.mem "id" j) Json.to_str);
              List.iter
                (fun field ->
                  match Option.bind (Json.mem field j) Json.to_num with
                  | Some v when v > 0.0 -> ()
                  | Some v -> Alcotest.failf "%s not positive over the reactor: %g" field v
                  | None -> Alcotest.failf "missing %s" field)
                [ "parse_ns"; "execution_ns"; "perturbation_ns"; "total_ns" ]);
            (* and the flight recorder holds the same request with its trace *)
            match Server.flights server with
            | None -> Alcotest.fail "flight recorder expected"
            | Some fl -> (
              match Flex_obs.Flight.snapshot fl with
              | [] -> Alcotest.fail "no flight recorded"
              | records -> (
                match
                  List.find_opt
                    (fun r -> r.Flex_obs.Flight.id = Some "corr-42")
                    records
                with
                | None -> Alcotest.fail "flight with the request id not found"
                | Some r -> (
                  match r.trace with
                  | None -> Alcotest.fail "flight trace missing"
                  | Some v ->
                    let names =
                      List.map (fun (c : Flex_obs.Span.view) -> c.name) v.children
                    in
                    List.iter
                      (fun n ->
                        if not (List.mem n names) then
                          Alcotest.failf "span %S missing from the reactor trace: [%s]" n
                            (String.concat "; " names))
                      [ "parse"; "execute"; "perturb" ])))));
  ]

let suites =
  [
    ("reactor-workers", workers_tests);
    ("reactor-rate-limit", rate_limit_tests);
    ("reactor-protocol", reactor_tests);
    ("reactor-observability", observability_tests);
    ("reactor-overload", overload_tests);
  ]
