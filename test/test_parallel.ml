(* The multicore execution layer: Task_pool semantics, the morsel operators
   against their sequential fallbacks, the 3-way differential oracle
   (reference interpreter = compiled sequential = compiled parallel),
   bounded top-K ORDER BY ... LIMIT, mergeable partial aggregates,
   domain-safe RNG streams, and exact budget conservation when the service
   executes on a shared pool.

   Parallel paths are forced by dropping {!Parallel.threshold} and
   {!Parallel.morsel} to their floors, so even the tiny test fixtures split
   across domains; every helper restores the knobs and shuts its pool down,
   leaving no live domains behind the test binary. *)

module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Executor = Flex_engine.Executor
module Task_pool = Flex_engine.Task_pool
module Parallel = Flex_engine.Parallel
module Aggregate = Flex_engine.Aggregate
module Vec = Flex_engine.Row_vec
module Ast = Flex_sql.Ast
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace
module Ledger = Flex_dp.Ledger
module Uber = Flex_workload.Uber
module Qgen = Flex_workload.Qgen
module Server = Flex_service.Server
module Wire = Flex_service.Wire

let with_pool ?(domains = 2) f =
  let pool = Task_pool.create ~domains in
  Fun.protect ~finally:(fun () -> Task_pool.shutdown pool) (fun () -> f pool)

(* Push everything through the parallel operators regardless of input size,
   pretending the host is wide enough that the cpu-count gate never trips
   (on narrow CI hosts the gate would otherwise send everything down the
   sequential path and the differential would test nothing). *)
let forced f =
  let t0 = !Parallel.threshold and m0 = !Parallel.morsel in
  let h0 = !Parallel.host_cpus in
  Parallel.threshold := 0;
  Parallel.morsel := 1;
  Parallel.host_cpus := 8;
  Fun.protect
    ~finally:(fun () ->
      Parallel.threshold := t0;
      Parallel.morsel := m0;
      Parallel.host_cpus := h0)
    f

(* --- Task_pool ----------------------------------------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "every chunk runs exactly once" `Quick (fun () ->
        with_pool ~domains:3 (fun pool ->
            let n = 37 in
            let hits = Array.init n (fun _ -> Atomic.make 0) in
            Task_pool.run pool ~chunks:n (fun i -> Atomic.incr hits.(i));
            Array.iteri
              (fun i a -> Alcotest.(check int) (Fmt.str "chunk %d" i) 1 (Atomic.get a))
              hits;
            Task_pool.run pool ~chunks:0 (fun _ -> Alcotest.fail "no chunks to run");
            let one = ref 0 in
            Task_pool.run pool ~chunks:1 (fun i ->
                Alcotest.(check int) "index" 0 i;
                incr one);
            Alcotest.(check int) "single chunk" 1 !one));
    Alcotest.test_case "nested submission degrades to inline" `Quick (fun () ->
        with_pool (fun pool ->
            let total = Atomic.make 0 in
            Task_pool.run pool ~chunks:4 (fun _ ->
                Task_pool.run pool ~chunks:8 (fun _ -> Atomic.incr total));
            Alcotest.(check int) "all inner chunks" 32 (Atomic.get total)));
    Alcotest.test_case "concurrent submissions all complete" `Quick (fun () ->
        with_pool (fun pool ->
            let total = Atomic.make 0 in
            let worker () =
              for _ = 1 to 5 do
                Task_pool.run pool ~chunks:16 (fun _ -> Atomic.incr total)
              done
            in
            let ts = List.init 4 (fun _ -> Thread.create worker ()) in
            List.iter Thread.join ts;
            Alcotest.(check int) "all chunks of all jobs" (4 * 5 * 16) (Atomic.get total)));
    Alcotest.test_case "exception propagates and the pool survives" `Quick (fun () ->
        with_pool (fun pool ->
            let ran = Array.init 8 (fun _ -> Atomic.make false) in
            (match
               Task_pool.run pool ~chunks:8 (fun i ->
                   if i = 3 then failwith "boom" else Atomic.set ran.(i) true)
             with
            | () -> Alcotest.fail "expected the chunk failure to propagate"
            | exception Failure m -> Alcotest.(check string) "first failure" "boom" m);
            Array.iteri
              (fun i a ->
                if i <> 3 then
                  Alcotest.(check bool) (Fmt.str "chunk %d still ran" i) true (Atomic.get a))
              ran;
            let total = Atomic.make 0 in
            Task_pool.run pool ~chunks:8 (fun _ -> Atomic.incr total);
            Alcotest.(check int) "pool reusable after failure" 8 (Atomic.get total)));
    Alcotest.test_case "shutdown is idempotent and leaves the pool usable" `Quick (fun () ->
        let pool = Task_pool.create ~domains:3 in
        Alcotest.(check bool) "parallel while live" true (Task_pool.is_parallel pool);
        Task_pool.shutdown pool;
        Task_pool.shutdown pool;
        Alcotest.(check bool) "not parallel after shutdown" false (Task_pool.is_parallel pool);
        let total = ref 0 in
        Task_pool.run pool ~chunks:5 (fun _ -> incr total);
        Alcotest.(check int) "runs inline after shutdown" 5 !total);
    Alcotest.test_case "domain count is validated" `Quick (fun () ->
        (match Task_pool.create ~domains:0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "domains:0 accepted");
        match Task_pool.create ~domains:1000 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "domains:1000 accepted");
  ]

(* --- morsel operators vs their sequential fallbacks ----------------------- *)

let int_row i = [| Value.Int i |]

let op_tests =
  [
    Alcotest.test_case "map/filter preserve order and content" `Quick (fun () ->
        forced (fun () ->
            with_pool (fun pool ->
                let v = Vec.of_list (List.init 100 int_row) in
                let double r =
                  match r.(0) with Value.Int i -> int_row (2 * i) | _ -> assert false
                in
                Alcotest.(check bool) "map" true
                  (Vec.to_list (Parallel.map ~pool double v) = Vec.to_list (Vec.map double v));
                let keep r = match r.(0) with Value.Int i -> i mod 3 = 0 | _ -> false in
                Alcotest.(check bool) "filter" true
                  (Vec.to_list (Parallel.filter ~pool keep v) = Vec.to_list (Vec.filter keep v));
                let key r = match r.(0) with Value.Int i -> i * i | _ -> assert false in
                Alcotest.(check bool) "map_to_array" true
                  (Parallel.map_to_array ~pool ~dummy:0 key v
                  = Array.init 100 (fun i -> i * i)))));
    Alcotest.test_case "partition keeps indices ascending and complete" `Quick (fun () ->
        forced (fun () ->
            with_pool (fun pool ->
                let n = 103 and partitions = 4 in
                let parts = Parallel.partition ~pool ~partitions (fun i -> i mod partitions) n in
                Alcotest.(check int) "partition count" partitions (Array.length parts);
                let seen = Array.make n false in
                Array.iteri
                  (fun p vec ->
                    let last = ref (-1) in
                    Vec.iter
                      (fun i ->
                        Alcotest.(check int) "partition of index" p (i mod partitions);
                        Alcotest.(check bool) "ascending" true (i > !last);
                        last := i;
                        seen.(i) <- true)
                      vec)
                  parts;
                Array.iteri
                  (fun i s -> Alcotest.(check bool) (Fmt.str "index %d present" i) true s)
                  seen)));
    Alcotest.test_case "below threshold runs sequentially" `Quick (fun () ->
        with_pool (fun pool ->
            (* default threshold 2048: a 10-row input must not split *)
            Alcotest.(check bool) "not worthy" false (Parallel.parallel_worthy (Some pool) 10);
            Alcotest.(check bool) "no gather" true
              (Parallel.gather (Some pool) 10 (fun _ _ -> ()) = None)));
    Alcotest.test_case "cpu-count gate caps dispatch at the host width" `Quick (fun () ->
        with_pool ~domains:4 (fun pool ->
            let h0 = !Parallel.host_cpus and t0 = !Parallel.threshold in
            Fun.protect
              ~finally:(fun () ->
                Parallel.host_cpus := h0;
                Parallel.threshold := t0)
              (fun () ->
                Parallel.threshold := 0;
                (* a 4-domain pool on a 1-cpu host: one effective worker,
                   so every operator takes the sequential loop *)
                Parallel.host_cpus := 1;
                Alcotest.(check int) "capped width" 1
                  (Parallel.effective_domains (Some pool));
                Alcotest.(check bool) "gated off" false
                  (Parallel.parallel_worthy (Some pool) 100_000);
                Alcotest.(check bool) "no gather" true
                  (Parallel.gather (Some pool) 100_000 (fun _ _ -> ()) = None);
                (* the same pool on a wide host splits again *)
                Parallel.host_cpus := 8;
                Alcotest.(check int) "full width" 4
                  (Parallel.effective_domains (Some pool));
                Alcotest.(check bool) "worthy again" true
                  (Parallel.parallel_worthy (Some pool) 100_000);
                (* a host wider than the pool is still bounded by the pool *)
                Parallel.host_cpus := 2;
                Alcotest.(check int) "min of pool and host" 2
                  (Parallel.effective_domains (Some pool)))));
  ]

(* --- 3-way differential: reference = compiled seq = compiled parallel ----- *)

let rows_equal ra rb =
  Array.length ra = Array.length rb
  &&
  let ok = ref true in
  Array.iteri (fun j va -> if not (Test_engine.cell_equal va rb.(j)) then ok := false) ra;
  !ok

(* The parallel pipeline must agree with the sequential one on columns, row
   values AND row order; on failing queries both must fail (the error texts
   may differ: the first failure to complete wins under parallel claiming). *)
let check_parallel_same pool db sql =
  match (Executor.run_sql db sql, Executor.run_sql ~pool db sql) with
  | Error _, Error _ -> ()
  | Ok _, Error e -> Alcotest.failf "parallel failed, sequential ok (%s): %s" sql e
  | Error e, Ok _ -> Alcotest.failf "sequential failed, parallel ok (%s): %s" sql e
  | Ok s, Ok p ->
    Alcotest.(check (list string)) (sql ^ ": columns") s.Executor.columns p.Executor.columns;
    if List.length s.rows <> List.length p.rows then
      Alcotest.failf "row count differs (%s): sequential %d, parallel %d" sql
        (List.length s.rows) (List.length p.rows);
    List.iteri
      (fun i (rs, rp) ->
        if not (rows_equal rs rp) then
          Alcotest.failf "row %d differs (%s): sequential [%s], parallel [%s]" i sql
            (Test_engine.row_to_string rs) (Test_engine.row_to_string rp))
      (List.combine s.rows p.rows)

let check_3way pool db sql =
  Test_engine.check_same db sql;
  check_parallel_same pool db sql

let differential_tests =
  [
    Alcotest.test_case "edge cases agree 3-way under forced parallelism" `Quick (fun () ->
        forced (fun () ->
            with_pool (fun pool ->
                let db = Test_engine.fixture () in
                List.iter (check_3way pool db) Test_engine.edge_case_queries)));
    Alcotest.test_case "generated workload agrees 3-way" `Quick (fun () ->
        forced (fun () ->
            with_pool (fun pool ->
                let rng = Rng.create ~seed:7 () in
                let db, _metrics = Uber.generate ~sizes:Uber.small_sizes rng in
                let queries =
                  Qgen.generate rng ~count:30 ~n_cities:12 ~n_drivers:120 ~n_users:200
                in
                List.iter
                  (fun (q : Qgen.t) ->
                    check_3way pool db q.sql;
                    check_3way pool db q.population_sql)
                  queries)));
  ]

(* --- bounded top-K ORDER BY ... LIMIT ------------------------------------ *)

(* Heavy ties (k has 5 distinct values plus NULLs) so the size-k heap's
   index tiebreak is actually exercised, and stability without an explicit
   tiebreak column is observable. *)
let topk_fixture () =
  let rows =
    List.init 100 (fun i ->
        [|
          Value.Int i;
          (if i mod 7 = 0 then Value.Null else Value.Int (i mod 5));
          Value.Float (float_of_int (i mod 4) /. 2.0);
        |])
  in
  Database.of_tables [ Table.create ~name:"s" ~columns:[ "id"; "k"; "f" ] rows ]

let topk_queries =
  [
    "SELECT id, k FROM s ORDER BY k LIMIT 10";
    "SELECT id, k FROM s ORDER BY k DESC LIMIT 10";
    (* ties with no tiebreak column: selection must stay stable *)
    "SELECT id FROM s ORDER BY k LIMIT 25";
    "SELECT id, k FROM s ORDER BY k, id DESC LIMIT 10 OFFSET 5";
    "SELECT id, f, k FROM s ORDER BY f DESC, k LIMIT 13";
    (* LIMIT at or past the input size: the full-sort path *)
    "SELECT id FROM s ORDER BY k LIMIT 200";
    "SELECT id FROM s ORDER BY k LIMIT 0";
    "SELECT id FROM s ORDER BY k LIMIT 10 OFFSET 95";
    "SELECT id FROM s ORDER BY k LIMIT 10 OFFSET 200";
  ]

let topk_tests =
  [
    Alcotest.test_case "ties and NULL ordering agree 3-way" `Quick (fun () ->
        forced (fun () ->
            with_pool (fun pool ->
                let db = topk_fixture () in
                List.iter (check_3way pool db) topk_queries)));
  ]

(* --- mergeable partial aggregates ---------------------------------------- *)

let merge_of func chunks =
  let ps =
    List.map
      (fun vals ->
        let p = Aggregate.Partial.create func in
        List.iter (Aggregate.Partial.add p) vals;
        p)
      chunks
  in
  Aggregate.Partial.merge (Array.of_list ps)

let partial_tests =
  [
    Alcotest.test_case "mergeable predicate" `Quick (fun () ->
        let m f = Aggregate.mergeable f ~distinct:false ~star:false in
        List.iter
          (fun f -> Alcotest.(check bool) (Ast.agg_func_name f) true (m f))
          [ Ast.Count; Ast.Sum; Ast.Min; Ast.Max ];
        List.iter
          (fun f -> Alcotest.(check bool) (Ast.agg_func_name f) false (m f))
          [ Ast.Avg; Ast.Median; Ast.Stddev ];
        Alcotest.(check bool) "DISTINCT never merges" false
          (Aggregate.mergeable Ast.Count ~distinct:true ~star:false);
        Alcotest.(check bool) "COUNT(*) never merges" false
          (Aggregate.mergeable Ast.Count ~distinct:false ~star:true);
        match Aggregate.Partial.create Ast.Avg with
        | exception Aggregate.Error _ -> ()
        | _ -> Alcotest.fail "Partial.create accepted AVG");
    Alcotest.test_case "merge is identical to the sequential compute" `Quick (fun () ->
        let ints lo hi = List.init (hi - lo + 1) (fun i -> Value.Int (lo + i)) in
        let all = ints 1 100 @ [ Value.Null ] in
        let chunks = [ ints 1 40; ints 41 100 @ [ Value.Null ] ] in
        List.iter
          (fun func ->
            let seq =
              Aggregate.compute func ~distinct:false ~star:false ~nrows:(List.length all) all
            in
            Alcotest.(check bool)
              (Ast.agg_func_name func ^ " merges exactly")
              true
              (merge_of func chunks = Some seq))
          [ Ast.Count; Ast.Sum; Ast.Min; Ast.Max ];
        (* a float reaching SUM refuses to merge: order-dependent rounding *)
        Alcotest.(check bool) "float SUM declines" true
          (merge_of Ast.Sum [ ints 1 3; [ Value.Float 0.5 ] ] = None);
        (* empty groups *)
        Alcotest.(check bool) "empty COUNT is 0" true
          (merge_of Ast.Count [ []; [] ] = Some (Value.Int 0));
        Alcotest.(check bool) "empty SUM is NULL" true
          (merge_of Ast.Sum [ []; [] ] = Some Value.Null));
  ]

(* --- domain-safe RNG streams ---------------------------------------------- *)

let stream_tests =
  [
    Alcotest.test_case "two domains draw two distinct split children" `Quick (fun () ->
        let draw rng = Array.init 512 (fun _ -> Laplace.sample rng ~scale:1.0) in
        let stream = Rng.Stream.create (Rng.create ~seed:123 ()) in
        (* both domains hold their generator before either draws, so the
           sampling loops genuinely overlap *)
        let ready = Atomic.make 0 in
        let work () =
          let rng = Rng.Stream.get stream in
          Atomic.incr ready;
          while Atomic.get ready < 2 do
            Domain.cpu_relax ()
          done;
          draw rng
        in
        let d1 = Domain.spawn work in
        let d2 = Domain.spawn work in
        let a = Domain.join d1 in
        let b = Domain.join d2 in
        (* the stream's children are the parent's split sequence, so each
           domain's draws must equal exactly one of the two children a
           sequential split of the same seed produces — any cross-domain
           interleaving or duplication would break the equality *)
        let p = Rng.create ~seed:123 () in
        let c1 = draw (Rng.split p) in
        let c2 = draw (Rng.split p) in
        Alcotest.(check bool) "each domain is one split child" true
          ((a = c1 && b = c2) || (a = c2 && b = c1));
        Alcotest.(check bool) "the domains' streams differ" true (a <> b));
    Alcotest.test_case "a domain keeps its generator across gets" `Quick (fun () ->
        let stream = Rng.Stream.create (Rng.create ~seed:9 ()) in
        Alcotest.(check bool) "same state" true
          (Rng.Stream.get stream == Rng.Stream.get stream));
  ]

(* --- exact budget conservation on a shared pool --------------------------- *)

let service_tests =
  [
    Alcotest.test_case "budget conservation is exact under multi-domain load" `Quick
      (fun () ->
        forced (fun () ->
            with_pool (fun pool ->
                let db, metrics = Uber.generate ~sizes:Uber.small_sizes (Rng.create ~seed:7 ()) in
                let ledger = Ledger.in_memory () in
                ignore (Ledger.register ledger ~analyst:"team" ~epsilon:6.0 ~delta:1e-4);
                let server =
                  (* replay off: every repeat must be charged for the exact
                     24-grant count to hold *)
                  Server.create
                    ~config:{ Server.default_config with release_cache = false }
                    ~pool ~db ~metrics ~ledger ~rng:(Rng.create ~seed:5 ()) ()
                in
                let granted = Atomic.make 0 and refused = Atomic.make 0 in
                let client () =
                  let session = Server.session server in
                  (match
                     Server.handle server session
                       (Wire.Hello { analyst = "team"; epsilon = None; delta = None })
                   with
                  | Wire.Budget_report _ -> ()
                  | other -> Alcotest.failf "hello: %s" (Wire.response_to_line other));
                  for _ = 1 to 10 do
                    match
                      Server.handle server session
                        (Wire.Query
                           {
                             sql = "SELECT COUNT(*) FROM trips";
                             epsilon = Some 0.25;
                             delta = None;
                             id = None;
                           })
                    with
                    | Wire.Result _ -> Atomic.incr granted
                    | Wire.Refused _ -> Atomic.incr refused
                    | other -> Alcotest.failf "query: %s" (Wire.response_to_line other)
                  done
                in
                let ts = List.init 4 (fun _ -> Thread.create client ()) in
                List.iter Thread.join ts;
                (* 40 requests of eps 0.25 against 6.0: exactly 24 grants in
                   every interleaving of sessions and pool scheduling *)
                Alcotest.(check int) "all answered" 40
                  (Atomic.get granted + Atomic.get refused);
                Alcotest.(check int) "exactly 24 grants" 24 (Atomic.get granted);
                Alcotest.(check bool) "ledger spent exactly the limit" true
                  (match Ledger.spent ledger ~analyst:"team" with
                  | Some (e, _) -> e = 6.0
                  | None -> false))));
  ]

let suites =
  [
    ("task-pool", pool_tests);
    ("parallel-ops", op_tests);
    ("parallel-differential", differential_tests);
    ("parallel-topk", topk_tests);
    ("aggregate-partial", partial_tests);
    ("rng-stream", stream_tests);
    ("parallel-service", service_tests);
  ]
