module Json = Flex_service.Json
module Wire = Flex_service.Wire
module Cache = Flex_service.Cache
module Audit = Flex_service.Audit
module Server = Flex_service.Server
module Ledger = Flex_dp.Ledger
module Budget = Flex_dp.Budget
module Rng = Flex_dp.Rng
module Canon = Flex_sql.Canon
module Parser = Flex_sql.Parser
module Pretty = Flex_sql.Pretty
module Metrics = Flex_engine.Metrics

(* --- JSON ---------------------------------------------------------------------- *)

(* Finite numbers only: non-finite floats deliberately encode as null. The
   int/8 trick keeps every generated float exactly representable. *)
let json_gen =
  QCheck.Gen.(
    sized_size (int_range 0 3)
      (fix (fun self n ->
           let scalar =
             oneof
               [
                 return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun i -> Json.Num (float_of_int i /. 8.0)) (int_range (-80000) 80000);
                 map (fun s -> Json.Str s) (string_size (int_range 0 12));
               ]
           in
           if n = 0 then scalar
           else
             frequency
               [
                 (2, scalar);
                 (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n - 1))));
                 ( 1,
                   map
                     (fun l -> Json.Obj l)
                     (list_size (int_range 0 4)
                        (pair (string_size (int_range 0 6)) (self (n - 1)))) );
               ])))

let arb_json = QCheck.make ~print:Json.to_string json_gen

let json_tests =
  [
    Alcotest.test_case "escapes and unicode decode" `Quick (fun () ->
        let v = Json.Obj [ ("a b", Json.Str "x\"y\\z\n\t\x01") ] in
        Alcotest.(check bool) "round trip" true (Json.of_string (Json.to_string v) = Ok v);
        Alcotest.(check bool) "single line" true
          (not (String.contains (Json.to_string v) '\n'));
        Alcotest.(check bool) "\\u0041" true (Json.of_string {|"A"|} = Ok (Json.Str "A"));
        (* surrogate pair: U+1F600 as UTF-8 *)
        Alcotest.(check bool) "surrogate pair" true
          (Json.of_string {|"😀"|} = Ok (Json.Str "\xf0\x9f\x98\x80")));
    Alcotest.test_case "non-finite numbers encode as null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Num Float.nan));
        Alcotest.(check string) "inf" "null" (Json.to_string (Json.Num Float.infinity)));
    Alcotest.test_case "malformed input is a typed error" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected parse failure for %s" s)
          [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "" ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"of_string (to_string j) = j" ~count:500 arb_json (fun j ->
           match Json.of_string (Json.to_string j) with
           | Ok j2 ->
             if j = j2 then true
             else
               QCheck.Test.fail_reportf "mismatch: %s vs %s" (Json.to_string j)
                 (Json.to_string j2)
           | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e));
  ]

(* --- wire protocol ------------------------------------------------------------- *)

let gen_name = QCheck.Gen.oneofl [ "alice"; "bob"; "carol-7"; "x y"; "q\"uote" ]

let gen_sql =
  QCheck.Gen.oneofl
    [ "SELECT COUNT(*) FROM trips"; ""; "nonsense ; drop"; "SELECT 'it''s'" ]

let gen_pos_float = QCheck.Gen.(map (fun i -> float_of_int i /. 64.0) (int_range 1 64000))
let gen_opt_float = QCheck.Gen.option gen_pos_float

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun analyst epsilon delta -> Wire.Hello { analyst; epsilon; delta })
          gen_name gen_opt_float gen_opt_float;
        map3
          (fun sql epsilon delta -> Wire.Query { sql; epsilon; delta; id = None })
          gen_sql gen_opt_float gen_opt_float;
        map (fun sql -> Wire.Analyze { sql }) gen_sql;
        map (fun sql -> Wire.Explain { sql }) gen_sql;
        return Wire.Budget_info;
        return Wire.Stats;
        return Wire.Quit;
      ])

let gen_scales =
  QCheck.Gen.(list_size (int_range 0 3) (pair gen_name gen_pos_float))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        (let* columns = list_size (int_range 0 3) gen_name in
         let* rows = list_size (int_range 0 3) (list_size (int_range 0 3) json_gen) in
         let* e = gen_pos_float and* d = gen_pos_float in
         let* re = gen_pos_float and* rd = gen_pos_float in
         let* cache_hit = bool and* bins_enumerated = bool in
         let* cached = bool and* derived = bool in
         let* noise_scales = gen_scales in
         return
           (Wire.Result
              {
                columns;
                rows;
                epsilon_spent = e;
                delta_spent = d;
                remaining_epsilon = re;
                remaining_delta = rd;
                cache_hit;
                cached;
                derived;
                bins_enumerated;
                noise_scales;
              }));
        (let* cache_hit = bool and* is_histogram = bool in
         let* joins = int_range 0 5 in
         let* columns =
           list_size (int_range 0 3)
             (let* column = gen_name and* sensitivity = gen_name in
              let* smooth_bound = gen_pos_float and* noise_scale = gen_pos_float in
              return { Wire.column; sensitivity; smooth_bound; noise_scale })
         in
         return (Wire.Analysis { cache_hit; is_histogram; joins; columns }));
        map2
          (fun logical optimized -> Wire.Plan_report { logical; optimized })
          gen_name gen_name;
        map2
          (fun bucket reason -> Wire.Rejected { bucket; reason })
          (oneofl [ "parse"; "unsupported"; "other"; "admission" ])
          gen_name;
        (let* analyst = gen_name in
         let* requested_epsilon = gen_pos_float and* requested_delta = gen_pos_float in
         let* remaining_epsilon = gen_pos_float and* remaining_delta = gen_pos_float in
         return
           (Wire.Refused
              {
                analyst;
                requested_epsilon;
                requested_delta;
                remaining_epsilon;
                remaining_delta;
              }));
        (let* analyst = gen_name in
         let* epsilon_limit = gen_pos_float and* delta_limit = gen_pos_float in
         let* epsilon_spent = gen_pos_float and* delta_spent = gen_pos_float in
         let* remaining_epsilon = gen_pos_float and* remaining_delta = gen_pos_float in
         let* queries = int_range 0 100 in
         return
           (Wire.Budget_report
              {
                analyst;
                epsilon_limit;
                delta_limit;
                epsilon_spent;
                delta_spent;
                remaining_epsilon;
                remaining_delta;
                queries;
              }));
        (let* queries = int_range 0 100 and* granted = int_range 0 100 in
         let* rejected = int_range 0 100 and* refused = int_range 0 100 in
         let* cache_hits = int_range 0 100 and* cache_misses = int_range 0 100 in
         let* cache_entries = int_range 0 100 and* analysts = int_range 0 100 in
         let* release_hits = int_range 0 100 and* release_misses = int_range 0 100 in
         let* release_derived = int_range 0 100 in
         let* release_evictions = int_range 0 100 in
         let* release_entries = int_range 0 100 in
         let* release_hit_rate = gen_pos_float in
         let* uptime_seconds = gen_pos_float and* qps = gen_pos_float in
         let* metrics =
           oneofl
             [
               Wire.Json.Null;
               Wire.Json.Obj [ ("families", Wire.Json.List []) ];
               Wire.Json.Obj
                 [
                   ( "families",
                     Wire.Json.List
                       [
                         Wire.Json.Obj
                           [ ("name", Wire.Json.Str "flex_queries_total") ];
                       ] );
                 ];
             ]
         in
         return
           (Wire.Stats_report
              {
                queries;
                granted;
                rejected;
                refused;
                cache_hits;
                cache_misses;
                cache_entries;
                release_hits;
                release_misses;
                release_derived;
                release_evictions;
                release_entries;
                release_hit_rate;
                analysts;
                uptime_seconds;
                qps;
                metrics;
              }));
        map (fun plan -> Wire.Analyzed_report { plan }) gen_name;
        map (fun m -> Wire.Error_msg m) gen_name;
        return Wire.Bye;
      ])

let wire_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"request wire round-trip" ~count:500
         (QCheck.make
            ~print:(fun r -> Wire.request_to_line r)
            gen_request)
         (fun r -> Wire.request_of_line (Wire.request_to_line r) = Ok r));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"response wire round-trip" ~count:500
         (QCheck.make
            ~print:(fun r -> Wire.response_to_line r)
            gen_response)
         (fun r -> Wire.response_of_line (Wire.response_to_line r) = Ok r));
    Alcotest.test_case "unknown ops are typed errors" `Quick (fun () ->
        List.iter
          (fun line ->
            match Wire.request_of_line line with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected decode failure for %s" line)
          [ {|{"op":"drop"}|}; {|{"op":"query"}|}; {|[1]|}; "not json"; {|{"op":7}|} ]);
  ]

(* --- canonicalization ---------------------------------------------------------- *)

let canon_key sql = Canon.cache_key (Parser.parse_exn sql)

let canon_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"canonicalize is idempotent" ~count:500 Test_sql.arb_query
         (fun q ->
           let c = Canon.canonicalize q in
           let cc = Canon.canonicalize c in
           if c = cc then true
           else
             QCheck.Test.fail_reportf "not idempotent:@.%s@.vs@.%s" (Pretty.to_string c)
               (Pretty.to_string cc)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"canonical SQL reparses to the same canonical AST" ~count:300
         Test_sql.arb_query (fun q ->
           let c = Canon.canonicalize q in
           match Parser.parse (Pretty.to_string c) with
           | Ok q2 -> Canon.canonicalize q2 = c
           | Error e ->
             QCheck.Test.fail_reportf "canonical form unparseable: %s@.%s" e
               (Pretty.to_string c)));
    Alcotest.test_case "alias renamings collide" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            Alcotest.(check string) (a ^ " ~ " ^ b) (canon_key a) (canon_key b))
          [
            ( "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status",
              "SELECT x.status, COUNT(*) FROM trips x GROUP BY x.status" );
            ( "SELECT trips.status, COUNT(*) FROM trips GROUP BY trips.status",
              "SELECT z.status, COUNT(*) FROM trips z GROUP BY z.status" );
            ( "SELECT COUNT(*) FROM trips a JOIN drivers b ON a.driver_id = b.id",
              "SELECT COUNT(*) FROM trips d JOIN drivers e ON d.driver_id = e.id" );
            ( "WITH w AS (SELECT * FROM trips) SELECT COUNT(*) FROM w",
              "WITH v AS (SELECT * FROM trips) SELECT COUNT(*) FROM v" );
            ( "SELECT COUNT(*) FROM trips t WHERE t.fare > 10 ORDER BY t.fare",
              "SELECT COUNT(*) FROM trips u WHERE u.fare > 10 ORDER BY u.fare" );
          ]);
    Alcotest.test_case "semantic differences do not collide" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            if canon_key a = canon_key b then
              Alcotest.failf "keys collide for %s vs %s" a b)
          [
            ("SELECT COUNT(*) FROM trips", "SELECT COUNT(*) FROM drivers");
            ( "SELECT COUNT(*) FROM trips WHERE fare > 10",
              "SELECT COUNT(*) FROM trips WHERE fare > 11" );
            ("SELECT COUNT(*) FROM trips", "SELECT SUM(fare) FROM trips");
            ( "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id",
              "SELECT COUNT(*) FROM drivers t JOIN trips d ON t.driver_id = d.id" );
          ]);
  ]

(* --- ledger -------------------------------------------------------------------- *)

let temp_journal () = Filename.temp_file "flex-ledger" ".journal"

let summary_list (l : Ledger.t) =
  List.map
    (fun (s : Ledger.summary) ->
      (s.analyst, s.epsilon_limit, s.delta_limit, s.epsilon_spent, s.delta_spent, s.spend_count))
    (Ledger.summaries l)

let ledger_tests =
  [
    Alcotest.test_case "register, spend, typed refusal" `Quick (fun () ->
        let l = Ledger.in_memory () in
        Alcotest.(check bool) "register" true
          (Ledger.register l ~analyst:"a" ~epsilon:1.0 ~delta:1e-4 = Ok ());
        Alcotest.(check bool) "re-register same limits" true
          (Ledger.register l ~analyst:"a" ~epsilon:1.0 ~delta:1e-4 = Ok ());
        (match Ledger.register l ~analyst:"a" ~epsilon:2.0 ~delta:1e-4 with
        | Error (Ledger.Already_registered r) ->
          Alcotest.(check (float 0.0)) "existing limit" 1.0 r.epsilon
        | _ -> Alcotest.fail "expected Already_registered");
        (match Ledger.register l ~analyst:"bad" ~epsilon:0.0 ~delta:1e-4 with
        | Error (Ledger.Invalid_limits _) -> ()
        | _ -> Alcotest.fail "expected Invalid_limits");
        Alcotest.(check bool) "spend" true
          (Ledger.spend l ~analyst:"a" ~epsilon:0.75 ~delta:0.0 ~label:"q" = Ok (0.25, 1e-4));
        (match Ledger.spend l ~analyst:"a" ~epsilon:0.5 ~delta:0.0 ~label:"q" with
        | Error (Ledger.Exhausted e) ->
          Alcotest.(check (float 0.0)) "remaining carried" 0.25 e.remaining_epsilon;
          Alcotest.(check (float 0.0)) "requested carried" 0.5 e.requested_epsilon
        | _ -> Alcotest.fail "expected Exhausted");
        (* the refusal changed nothing *)
        Alcotest.(check bool) "state unchanged" true
          (Ledger.remaining l ~analyst:"a" = Some (0.25, 1e-4));
        (match Ledger.spend l ~analyst:"ghost" ~epsilon:0.1 ~delta:0.0 ~label:"q" with
        | Error (Ledger.Unknown_analyst _) -> ()
        | _ -> Alcotest.fail "expected Unknown_analyst"));
    Alcotest.test_case "journal replay restores exact state" `Quick (fun () ->
        let path = temp_journal () in
        let l = Ledger.open_ path in
        ignore (Ledger.register l ~analyst:"a" ~epsilon:1.0 ~delta:1e-4);
        ignore (Ledger.register l ~analyst:"b" ~epsilon:0.30000000000000004 ~delta:1e-9);
        ignore (Ledger.spend l ~analyst:"a" ~epsilon:0.1 ~delta:1e-8 ~label:"q1");
        ignore (Ledger.spend l ~analyst:"a" ~epsilon:0.2 ~delta:1e-8 ~label:"q2");
        ignore (Ledger.spend l ~analyst:"b" ~epsilon:0.1 ~delta:0.0 ~label:"q3");
        let before = summary_list l in
        Ledger.close l;
        let l2 = Ledger.open_ path in
        (* bit-identical, not approximately equal: replay folds the same
           additions in the same order *)
        Alcotest.(check bool) "summaries identical" true (summary_list l2 = before);
        Ledger.close l2;
        Sys.remove path);
    Alcotest.test_case "torn final line is tolerated, interior corruption is not" `Quick
      (fun () ->
        let path = temp_journal () in
        let l = Ledger.open_ path in
        ignore (Ledger.register l ~analyst:"a" ~epsilon:1.0 ~delta:1e-4);
        ignore (Ledger.spend l ~analyst:"a" ~epsilon:0.25 ~delta:0.0 ~label:"q");
        Ledger.close l;
        (* simulate a crash mid-append: no trailing newline *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "spend\ta\t0.2";
        close_out oc;
        let l2 = Ledger.open_ path in
        Alcotest.(check bool) "torn tail dropped" true
          (Ledger.spent l2 ~analyst:"a" = Some (0.25, 0.0));
        Ledger.close l2;
        Sys.remove path);
    Alcotest.test_case "concurrent spends conserve the budget exactly" `Quick (fun () ->
        let l = Ledger.in_memory () in
        ignore (Ledger.register l ~analyst:"team" ~epsilon:8.0 ~delta:1e-4);
        let d = Float.ldexp 1.0 (-30) in
        let granted = Atomic.make 0 in
        let spend_loop () =
          for _ = 1 to 50 do
            match Ledger.spend l ~analyst:"team" ~epsilon:0.25 ~delta:d ~label:"q" with
            | Ok _ -> Atomic.incr granted
            | Error (Ledger.Exhausted _) -> ()
            | Error e -> Alcotest.failf "unexpected: %s" (Ledger.error_to_string e)
          done
        in
        let threads = List.init 4 (fun _ -> Thread.create spend_loop ()) in
        List.iter Thread.join threads;
        (* 8.0 / 0.25 = 32 grants; powers of two make the additions exact in
           any interleaving *)
        Alcotest.(check int) "grants" 32 (Atomic.get granted);
        Alcotest.(check bool) "spent exactly the limit" true
          (Ledger.spent l ~analyst:"team" = Some (8.0, 32.0 *. d));
        Alcotest.(check bool) "epsilon exhausted" true
          (match Ledger.remaining l ~analyst:"team" with
          | Some (e, _) -> e = 0.0
          | None -> false));
  ]

(* --- server (handle level) ----------------------------------------------------- *)

let fixture =
  lazy (Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes (Rng.create ~seed:7 ()))

let make_server ?config ?ledger () =
  let db, metrics = Lazy.force fixture in
  let ledger = match ledger with Some l -> l | None -> Ledger.in_memory () in
  let server = Server.create ?config ~db ~metrics ~ledger ~rng:(Rng.create ~seed:11 ()) () in
  (server, ledger)

let hello server session analyst =
  match Server.handle server session (Wire.Hello { analyst; epsilon = None; delta = None }) with
  | Wire.Budget_report _ -> ()
  | other -> Alcotest.failf "hello failed: %s" (Wire.response_to_line other)

let query ?epsilon ?delta server session sql =
  Server.handle server session (Wire.Query { sql; epsilon; delta; id = None })

let server_tests =
  [
    Alcotest.test_case "query without hello is an error" `Quick (fun () ->
        let server, _ = make_server () in
        match query server (Server.session server) "SELECT COUNT(*) FROM trips" with
        | Wire.Error_msg _ -> ()
        | other -> Alcotest.failf "expected error, got %s" (Wire.response_to_line other));
    Alcotest.test_case "granted query releases noisy rows and charges the ledger" `Quick
      (fun () ->
        let server, ledger = make_server () in
        let session = Server.session server in
        hello server session "alice";
        match query ~epsilon:0.5 server session "SELECT COUNT(*) FROM trips;" with
        | Wire.Result r ->
          Alcotest.(check (list string)) "columns" [ "count" ] r.columns;
          Alcotest.(check int) "one row" 1 (List.length r.rows);
          Alcotest.(check (float 0.0)) "spent" 0.5 r.epsilon_spent;
          Alcotest.(check (float 0.0)) "remaining" 9.5 r.remaining_epsilon;
          Alcotest.(check bool) "cold cache" false r.cache_hit;
          Alcotest.(check bool) "noise scale reported" true (r.noise_scales <> []);
          Alcotest.(check bool) "ledger agrees" true
            (Ledger.spent ledger ~analyst:"alice" = Some (0.5, 1e-8))
        | other -> Alcotest.failf "expected result, got %s" (Wire.response_to_line other));
    Alcotest.test_case "alias-renamed repeat is an analysis cache hit" `Quick (fun () ->
        let server, _ = make_server () in
        let session = Server.session server in
        hello server session "alice";
        (match query server session "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status" with
        | Wire.Result r -> Alcotest.(check bool) "first is a miss" false r.cache_hit
        | other -> Alcotest.failf "expected result, got %s" (Wire.response_to_line other));
        (match query server session "SELECT u.status, COUNT(*) FROM trips u GROUP BY u.status" with
        | Wire.Result r -> Alcotest.(check bool) "renamed repeat hits" true r.cache_hit
        | other -> Alcotest.failf "expected result, got %s" (Wire.response_to_line other));
        Alcotest.(check int) "one cache entry" 1 (Cache.length (Server.cache server)));
    Alcotest.test_case "section 3.7.1 rejections carry their bucket" `Quick (fun () ->
        let server, ledger = make_server () in
        let session = Server.session server in
        hello server session "alice";
        (match query server session "SELECT id FROM trips" with
        | Wire.Rejected r -> Alcotest.(check string) "bucket" "unsupported" r.bucket
        | other -> Alcotest.failf "expected rejection, got %s" (Wire.response_to_line other));
        (match query server session "SELEKT nope" with
        | Wire.Rejected r -> Alcotest.(check string) "bucket" "parse" r.bucket
        | other -> Alcotest.failf "expected rejection, got %s" (Wire.response_to_line other));
        (match query ~epsilon:50.0 server session "SELECT COUNT(*) FROM trips" with
        | Wire.Rejected r -> Alcotest.(check string) "bucket" "admission" r.bucket
        | other -> Alcotest.failf "expected rejection, got %s" (Wire.response_to_line other));
        (match query ~epsilon:Float.nan server session "SELECT COUNT(*) FROM trips" with
        | Wire.Rejected r -> Alcotest.(check string) "bucket" "admission" r.bucket
        | other -> Alcotest.failf "expected rejection, got %s" (Wire.response_to_line other));
        (* none of those touched the budget *)
        Alcotest.(check bool) "nothing spent" true
          (Ledger.spent ledger ~analyst:"alice" = Some (0.0, 0.0));
        let c = Server.counters server in
        Alcotest.(check int) "rejected counted" 4 c.rejected);
    Alcotest.test_case "over-budget requests get a typed refusal, never an answer" `Quick
      (fun () ->
        (* replay off: the repeat must reach the ledger to be refused, not be
           served for free from the release store *)
        let config =
          { Server.default_config with analyst_epsilon = 0.25; release_cache = false }
        in
        let server, _ = make_server ~config () in
        let session = Server.session server in
        hello server session "bob";
        (match query ~epsilon:0.25 server session "SELECT COUNT(*) FROM trips" with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "expected result, got %s" (Wire.response_to_line other));
        (match query ~epsilon:0.25 server session "SELECT COUNT(*) FROM trips" with
        | Wire.Refused r ->
          Alcotest.(check string) "analyst" "bob" r.analyst;
          Alcotest.(check (float 0.0)) "requested" 0.25 r.requested_epsilon;
          Alcotest.(check (float 0.0)) "remaining" 0.0 r.remaining_epsilon
        | other -> Alcotest.failf "expected refusal, got %s" (Wire.response_to_line other));
        let c = Server.counters server in
        Alcotest.(check int) "granted" 1 c.granted;
        Alcotest.(check int) "refused" 1 c.refused);
    Alcotest.test_case "analyze is free and budget_info reflects the ledger" `Quick (fun () ->
        let server, ledger = make_server () in
        let session = Server.session server in
        hello server session "carol";
        (match Server.handle server session (Wire.Analyze { sql = "SELECT COUNT(*) FROM trips" }) with
        | Wire.Analysis a ->
          Alcotest.(check int) "one column" 1 (List.length a.columns);
          Alcotest.(check bool) "scalar query" false a.is_histogram
        | other -> Alcotest.failf "expected analysis, got %s" (Wire.response_to_line other));
        Alcotest.(check bool) "analyze spent nothing" true
          (Ledger.spent ledger ~analyst:"carol" = Some (0.0, 0.0));
        match Server.handle server session Wire.Budget_info with
        | Wire.Budget_report r ->
          Alcotest.(check string) "analyst" "carol" r.analyst;
          Alcotest.(check (float 0.0)) "limit" 10.0 r.epsilon_limit;
          Alcotest.(check int) "queries" 0 r.queries
        | other -> Alcotest.failf "expected budget report, got %s" (Wire.response_to_line other));
    Alcotest.test_case "audit log records outcomes and stage timings" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let db, metrics = Lazy.force fixture in
        let server =
          Server.create ~audit:(Audit.to_buffer buf) ~db ~metrics
            ~ledger:(Ledger.in_memory ()) ~rng:(Rng.create ~seed:3 ()) ()
        in
        let session = Server.session server in
        hello server session "dana";
        ignore (query server session "SELECT COUNT(*) FROM trips");
        ignore (query server session "SELECT id FROM trips");
        let lines =
          String.split_on_char '\n' (Buffer.contents buf)
          |> List.filter (fun l -> l <> "")
          |> List.map Json.of_string_exn
        in
        Alcotest.(check int) "two events" 2 (List.length lines);
        let granted = List.nth lines 0 and rejected = List.nth lines 1 in
        Alcotest.(check (option string)) "granted outcome" (Some "granted")
          (Option.bind (Json.mem "outcome" granted) Json.to_str);
        Alcotest.(check bool) "positive analysis time" true
          (match Option.bind (Json.mem "analysis_ns" granted) Json.to_num with
          | Some ns -> ns > 0.0
          | None -> false);
        Alcotest.(check (option string)) "rejected bucket" (Some "unsupported")
          (Option.bind (Json.mem "bucket" rejected) Json.to_str);
        Alcotest.(check (option string)) "no result values in the log" None
          (Option.bind (Json.mem "rows" granted) Json.to_str));
  ]

(* --- TCP smoke test ------------------------------------------------------------ *)

let connect port =
  Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let roundtrip (ic, oc) req =
  output_string oc (Wire.request_to_line req);
  output_char oc '\n';
  flush oc;
  Wire.response_of_line (input_line ic) |> Result.get_ok

let tcp_tests =
  [
    Alcotest.test_case "concurrent sessions conserve the budget exactly across restart"
      `Slow
      (fun () ->
        let path = temp_journal () in
        let db, metrics = Lazy.force fixture in
        let n_threads = 4 and n_queries = 10 in
        (* 40 requests of eps 0.25 against a budget of 6.0: exactly 24 grants
           in every interleaving, and power-of-two costs make the journal sum
           exact *)
        let serve_round () =
          let ledger = Ledger.open_ path in
          ignore (Ledger.register ledger ~analyst:"team" ~epsilon:6.0 ~delta:1e-4);
          let server =
            (* replay off: this test is about charged repeats racing the
               ledger; the zero-budget replay path has its own conservation
               tests in test_release_store.ml *)
            Server.create
              ~config:{ Server.default_config with release_cache = false }
              ~db ~metrics ~ledger ~rng:(Rng.create ~seed:5 ()) ()
          in
          let listener = Server.listen server in
          let _ = Server.start listener in
          let granted = Atomic.make 0 and refused = Atomic.make 0 in
          let client () =
            let conn = connect (Server.port listener) in
            (match roundtrip conn (Wire.Hello { analyst = "team"; epsilon = None; delta = None }) with
            | Wire.Budget_report _ -> ()
            | other -> Alcotest.failf "hello: %s" (Wire.response_to_line other));
            for _ = 1 to n_queries do
              match
                roundtrip conn
                  (Wire.Query
                     { sql = "SELECT COUNT(*) FROM trips"; epsilon = Some 0.25; delta = None; id = None })
              with
              | Wire.Result _ -> Atomic.incr granted
              | Wire.Refused _ -> Atomic.incr refused
              | other -> Alcotest.failf "query: %s" (Wire.response_to_line other)
            done;
            match roundtrip conn Wire.Quit with
            | Wire.Bye -> ()
            | other -> Alcotest.failf "quit: %s" (Wire.response_to_line other)
          in
          let threads = List.init n_threads (fun _ -> Thread.create client ()) in
          List.iter Thread.join threads;
          Server.stop listener;
          let spent = Ledger.spent ledger ~analyst:"team" in
          Ledger.close ledger;
          (Atomic.get granted, Atomic.get refused, spent)
        in
        let granted, refused, spent = serve_round () in
        Alcotest.(check int) "all requests answered" (n_threads * n_queries)
          (granted + refused);
        Alcotest.(check int) "exactly 24 grants" 24 granted;
        (* epsilon costs are powers of two, so the concurrent sum is exact in
           any interleaving; delta's sum is whatever the journal says, checked
           bit-for-bit across the restart below *)
        Alcotest.(check bool) "spend equals the granted sum exactly" true
          (match spent with Some (e, _) -> e = 0.25 *. float_of_int granted | None -> false);
        (* the journal agrees bit for bit *)
        (match Ledger.summaries_of_file path with
        | [ s ] ->
          Alcotest.(check bool) "journal total" true (s.epsilon_spent = 6.0);
          Alcotest.(check int) "journal grants" granted s.spend_count
        | _ -> Alcotest.fail "one analyst expected");
        (* a restarted server resumes the exhausted budget: every request is
           refused, none granted *)
        let granted2, refused2, spent2 = serve_round () in
        Alcotest.(check int) "no grants after restart" 0 granted2;
        Alcotest.(check int) "all refused after restart" (n_threads * n_queries) refused2;
        Alcotest.(check bool) "remaining unchanged" true
          (spent2 = spent);
        Sys.remove path);
    Alcotest.test_case "stopped listener refuses new connections" `Quick (fun () ->
        let server, _ = make_server () in
        let listener = Server.listen server in
        let _ = Server.start listener in
        let conn = connect (Server.port listener) in
        (match roundtrip conn Wire.Stats with
        | Wire.Stats_report _ -> ()
        | other -> Alcotest.failf "stats: %s" (Wire.response_to_line other));
        Server.stop listener;
        Server.stop listener (* idempotent *);
        match connect (Server.port listener) with
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
        | _conn -> Alcotest.fail "expected connection refused");
  ]

let suites =
  [
    ("service-json", json_tests);
    ("service-wire", wire_tests);
    ("service-canon", canon_tests);
    ("service-ledger", ledger_tests);
    ("service-server", server_tests);
    ("service-tcp", tcp_tests);
  ]
