(* The telemetry subsystem's obligations:

   1. Registry: correct values under concurrent domain updates, faithful
      Prometheus/JSON rendering, label escaping, callback isolation.
   2. Clock/spans: monotonized timestamps (no negative durations, ever),
      span trees in creation order, idempotent finish.
   3. EXPLAIN ANALYZE: the traced root cardinality agrees with the
      reference interpreter; actual row counts are gated exactly like
      EXPLAIN's estimates (default off through the service).
   4. Privacy: DP releases are bit-identical with telemetry on and off,
      and the metrics surface never carries private-table cardinalities.
   5. Audit: one valid JSON object per line whatever the SQL contains,
      stage timings non-negative with total >= each stage, and the
      [count]/[events] rename keeps the deprecated alias working. *)

module Registry = Flex_obs.Registry
module Clock = Flex_obs.Clock
module Span = Flex_obs.Span
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Reference = Flex_engine.Reference
module Plan = Flex_engine.Plan
module Optimizer = Flex_engine.Optimizer
module Task_pool = Flex_engine.Task_pool
module Parallel = Flex_engine.Parallel
module Rng = Flex_dp.Rng
module Ledger = Flex_dp.Ledger
module Uber = Flex_workload.Uber
module Wire = Flex_service.Wire
module Json = Flex_service.Json
module Server = Flex_service.Server
module Audit = Flex_service.Audit
module Stats_http = Flex_service.Stats_http
module Statements = Flex_obs.Statements
module Flight = Flex_obs.Flight

[@@@warning "-3"]

let audit_events_alias = Audit.events

[@@@warning "+3"]

(* --- registry ------------------------------------------------------------------- *)

let registry_tests =
  [
    Alcotest.test_case "counter adds, ignores negatives" `Quick (fun () ->
        let reg = Registry.create () in
        let c = Registry.counter reg "t_total" in
        Registry.Counter.incr c;
        Registry.Counter.inc c 2.5;
        Registry.Counter.inc c (-10.0);
        Alcotest.(check (float 1e-9)) "value" 3.5 (Registry.Counter.value c));
    Alcotest.test_case "gauge sets and adds" `Quick (fun () ->
        let reg = Registry.create () in
        let g = Registry.gauge reg "t_gauge" in
        Registry.Gauge.set g 7.0;
        Registry.Gauge.add g (-2.0);
        Alcotest.(check (float 1e-9)) "value" 5.0 (Registry.Gauge.value g));
    Alcotest.test_case "histogram buckets cumulate" `Quick (fun () ->
        let reg = Registry.create () in
        let h = Registry.histogram reg ~buckets:[| 1.0; 2.0; 4.0 |] "t_hist" in
        List.iter (Registry.Histogram.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
        Alcotest.(check int) "count" 4 (Registry.Histogram.count h);
        Alcotest.(check (float 1e-9)) "sum" 105.0 (Registry.Histogram.sum h);
        match Registry.snapshot reg with
        | [ { Registry.samples = [ { value = Registry.Hist s; _ } ]; _ } ] ->
          Alcotest.(check (array (float 0.))) "upper" [| 1.0; 2.0; 4.0 |] s.upper;
          Alcotest.(check (array int)) "cumulative" [| 1; 2; 3 |] s.cumulative;
          Alcotest.(check int) "inf count" 4 s.count
        | _ -> Alcotest.fail "unexpected snapshot shape");
    Alcotest.test_case "updates from 4 domains are not lost" `Quick (fun () ->
        let reg = Registry.create () in
        let c = Registry.counter reg "t_total" in
        let h = Registry.histogram reg "t_hist" in
        let per_domain = 10_000 in
        let work () =
          for _ = 1 to per_domain do
            Registry.Counter.incr c;
            Registry.Histogram.observe h 1e-3
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn work) in
        List.iter Domain.join domains;
        Alcotest.(check (float 0.)) "counter" (float_of_int (4 * per_domain))
          (Registry.Counter.value c);
        Alcotest.(check int) "histogram count" (4 * per_domain) (Registry.Histogram.count h));
    Alcotest.test_case "same name + labels = one family; kind clash rejected" `Quick
      (fun () ->
        let reg = Registry.create () in
        let a = Registry.counter reg ~labels:[ ("k", "a") ] "t_total" in
        let b = Registry.counter reg ~labels:[ ("k", "b") ] "t_total" in
        Registry.Counter.incr a;
        Registry.Counter.inc b 2.0;
        (match Registry.snapshot reg with
        | [ { Registry.name = "t_total"; kind = "counter"; samples; _ } ] ->
          Alcotest.(check int) "two series" 2 (List.length samples)
        | _ -> Alcotest.fail "expected one family with two samples");
        match Registry.gauge reg "t_total" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "kind clash should raise");
    Alcotest.test_case "collect callbacks sampled at scrape; exceptions drop" `Quick
      (fun () ->
        let reg = Registry.create () in
        let n = ref 0 in
        Registry.collect reg ~kind:`Gauge "t_live" (fun () ->
            [ ([], float_of_int !n) ]);
        Registry.collect reg ~kind:`Gauge "t_boom" (fun () -> failwith "boom");
        n := 5;
        let text = Registry.to_prometheus reg in
        Alcotest.(check bool) "live value" true
          (Astring.String.is_infix ~affix:"t_live 5" text);
        Alcotest.(check bool) "type line survives" true
          (Astring.String.is_infix ~affix:"# TYPE t_boom gauge" text);
        (* sample lines start with the family name at column 0; the failing
           callback must contribute none *)
        Alcotest.(check bool) "no sample from the failing callback" false
          (String.split_on_char '\n' text
          |> List.exists (fun l -> Astring.String.is_prefix ~affix:"t_boom" l)));
    Alcotest.test_case "prometheus rendering and label escaping" `Quick (fun () ->
        let reg = Registry.create () in
        let c = Registry.counter reg ~help:"a\nb" ~labels:[ ("q", "x\"y\\z\n") ] "t_total" in
        Registry.Counter.inc c 3.0;
        let text = Registry.to_prometheus reg in
        Alcotest.(check bool) "help escaped" true
          (Astring.String.is_infix ~affix:"# HELP t_total a\\nb" text);
        Alcotest.(check bool) "type" true
          (Astring.String.is_infix ~affix:"# TYPE t_total counter" text);
        Alcotest.(check bool) "label escaped" true
          (Astring.String.is_infix ~affix:{|t_total{q="x\"y\\z\n"} 3|} text));
    Alcotest.test_case "JSON export parses and round-trips names" `Quick (fun () ->
        let reg = Registry.create () in
        let c = Registry.counter reg ~labels:[ ("sql", "a\"b\nc") ] "t_total" in
        Registry.Counter.incr c;
        let h = Registry.histogram reg ~buckets:[| 1.0 |] "t_hist" in
        Registry.Histogram.observe h 0.5;
        match Json.of_string (Registry.to_json reg) with
        | Error e -> Alcotest.failf "registry JSON does not parse: %s" e
        | Ok j -> (
          match Json.mem "families" j with
          | Some (Json.List fams) ->
            let names =
              List.filter_map
                (fun f -> Option.bind (Json.mem "name" f) Json.to_str)
                fams
            in
            Alcotest.(check (list string)) "families" [ "t_total"; "t_hist" ] names
          | _ -> Alcotest.fail "missing families array"));
  ]

(* --- clock and spans ------------------------------------------------------------ *)

let clock_span_tests =
  [
    Alcotest.test_case "now_ns never decreases; elapsed_ns clamps at 0" `Quick (fun () ->
        let prev = ref (Clock.now_ns ()) in
        for _ = 1 to 1000 do
          let t = Clock.now_ns () in
          if t < !prev then Alcotest.fail "clock went backwards";
          prev := t
        done;
        (* a t0 in the future (e.g. another domain published a later
           watermark between reads) must clamp, not go negative *)
        Alcotest.(check (float 0.)) "clamped" 0.0
          (Clock.elapsed_ns (Clock.now_ns () +. 1e12)));
    Alcotest.test_case "span tree: creation order, durations, find" `Quick (fun () ->
        let root = Span.root "query" in
        Span.timed (Some root) "parse" (fun _ -> ());
        Span.timed (Some root) "execute" (fun sp ->
            Span.timed sp "run" (fun _ -> Unix.sleepf 0.002));
        let open_child = Span.enter root "open" in
        ignore open_child;
        Span.finish root;
        let v = Span.view root in
        Alcotest.(check (list string)) "children in creation order"
          [ "parse"; "execute"; "open" ]
          (List.map (fun (c : Span.view) -> c.name) v.children);
        Alcotest.(check bool) "nested timing" true
          (Span.duration_of v [ "execute"; "run" ] >= 2e6 *. 0.5);
        Alcotest.(check bool) "parent >= child" true
          (Span.duration_of v [ "execute" ] >= Span.duration_of v [ "execute"; "run" ]);
        Alcotest.(check (float 0.)) "unfinished child reads 0" 0.0
          (Span.duration_of v [ "open" ]);
        Alcotest.(check (float 0.)) "absent path reads 0" 0.0
          (Span.duration_of v [ "nope" ]);
        Alcotest.(check bool) "total >= 0" true (Span.duration_of v [] >= 0.0));
    Alcotest.test_case "finish is idempotent (first call wins)" `Quick (fun () ->
        let root = Span.root "q" in
        let c = Span.enter root "c" in
        Span.finish c;
        let d1 = Span.duration_of (Span.view root) [ "c" ] in
        Unix.sleepf 0.002;
        Span.finish c;
        let d2 = Span.duration_of (Span.view root) [ "c" ] in
        Alcotest.(check (float 0.)) "unchanged" d1 d2);
    Alcotest.test_case "timed None is a passthrough; raises propagate" `Quick (fun () ->
        Alcotest.(check int) "value" 42
          (Span.timed None "x" (fun sp ->
               Alcotest.(check bool) "no span" true (sp = None);
               42));
        let root = Span.root "q" in
        (match Span.timed (Some root) "boom" (fun _ -> failwith "boom") with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "exception swallowed");
        Span.finish root;
        (* the failing span was still finished on the way out *)
        Alcotest.(check bool) "failed span closed" true
          (match Span.find (Span.view root) [ "boom" ] with
          | Some c -> c.duration_ns >= 0.0
          | None -> false));
    Alcotest.test_case "span JSON parses" `Quick (fun () ->
        let root = Span.root "query" in
        Span.timed (Some root) "parse" (fun _ -> ());
        Span.finish root;
        match Json.of_string (Span.to_json (Span.view root)) with
        | Ok j ->
          Alcotest.(check (option string)) "name" (Some "query")
            (Option.bind (Json.mem "name" j) Json.to_str)
        | Error e -> Alcotest.failf "span JSON does not parse: %s" e);
  ]

(* --- audit ---------------------------------------------------------------------- *)

let base_event sql : Audit.event =
  {
    analyst = "a";
    sql;
    request_id = None;
    outcome = Audit.Granted;
    epsilon = 0.1;
    delta = 1e-8;
    max_noise_scale = 1.0;
    cache_hit = false;
    parse_ns = 1.0;
    analysis_ns = 2.0;
    smooth_ns = 3.0;
    execution_ns = 4.0;
    perturbation_ns = 5.0;
    total_ns = 100.0;
  }

let audit_tests =
  [
    Alcotest.test_case "count counts; deprecated events alias agrees" `Quick (fun () ->
        let a = Audit.to_buffer (Buffer.create 64) in
        Alcotest.(check int) "empty" 0 (Audit.count a);
        Audit.log a (base_event "SELECT 1");
        Audit.log a (base_event "SELECT 2");
        Alcotest.(check int) "count" 2 (Audit.count a);
        Alcotest.(check int) "deprecated alias" 2 (audit_events_alias a));
    Alcotest.test_case "one valid JSON object per line, any SQL" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let a = Audit.to_buffer buf in
        let sqls =
          [
            "SELECT COUNT(*)\nFROM trips\n\tWHERE fare > 10";
            {|SELECT "quoted", 'single' FROM t -- comment|};
            "SELECT '\xc3\xa9t\xc3\xa9 \xe2\x88\x91 \xf0\x9f\x9a\x97' FROM voil\xc3\xa0";
            "SELECT '\x01\x02 control \x1f chars'";
          ]
        in
        List.iter (fun sql -> Audit.log a (base_event sql)) sqls;
        let lines =
          String.split_on_char '\n' (Buffer.contents buf)
          |> List.filter (fun l -> String.trim l <> "")
        in
        Alcotest.(check int) "one line per event" (List.length sqls) (List.length lines);
        List.iter2
          (fun sql line ->
            match Json.of_string line with
            | Error e -> Alcotest.failf "audit line does not parse (%s): %s" e line
            | Ok j ->
              Alcotest.(check (option string)) "sql round-trips" (Some sql)
                (Option.bind (Json.mem "sql" j) Json.to_str);
              Alcotest.(check (option (float 0.))) "total_ns present" (Some 100.0)
                (Option.bind (Json.mem "total_ns" j) Json.to_num))
          sqls lines);
  ]

(* --- engine: EXPLAIN ANALYZE ----------------------------------------------------- *)

let engine_fixture = lazy (Uber.generate ~sizes:Uber.small_sizes (Rng.create ~seed:7 ()))

let analyze_queries =
  [
    "SELECT COUNT(*) FROM trips";
    "SELECT COUNT(*) FROM trips WHERE fare > 20";
    "SELECT t.city_id, COUNT(*) FROM trips t GROUP BY t.city_id";
    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
     WHERE d.city_id = 1";
    "SELECT d.status, COUNT(*) AS n FROM trips t JOIN drivers d ON t.driver_id = d.id \
     GROUP BY d.status ORDER BY n DESC LIMIT 3";
  ]

(* rows=<whatever> -> rows=#, so gated/ungated renderings can be compared
   field-by-field with only the gated tokens neutralized *)
let neutralize_rows s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 5 <= n && String.sub s !i 5 = "rows=" then begin
      Buffer.add_string b "rows=#";
      i := !i + 5;
      while !i < n && s.[!i] <> ',' && s.[!i] <> ')' do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let explain_analyze_tests =
  [
    Alcotest.test_case "root actual rows agree with the reference interpreter" `Quick
      (fun () ->
        let db, metrics = Lazy.force engine_fixture in
        List.iter
          (fun sql ->
            let q = Flex_sql.Parser.parse_exn sql in
            let plan = Optimizer.plan ~metrics q in
            let result, trace = Executor.run_plan_analyzed db plan in
            let reference =
              match Reference.run_sql db sql with
              | Ok r -> List.length r.Reference.rows
              | Error e -> Alcotest.failf "reference rejected %s: %s" sql e
            in
            Alcotest.(check (option int))
              (sql ^ ": traced root cardinality") (Some reference)
              (Plan.Analyze.result_rows trace);
            Alcotest.(check int)
              (sql ^ ": result cardinality") reference
              (List.length result.Executor.rows))
          analyze_queries);
    Alcotest.test_case "every operator line carries an actual-stats suffix" `Quick
      (fun () ->
        let db, metrics = Lazy.force engine_fixture in
        let sql = List.nth analyze_queries 4 in
        let plan, _ =
          Executor.explain_analyze ~metrics ~show_rows:true db
            (Flex_sql.Parser.parse_exn sql)
        in
        let lines =
          String.split_on_char '\n' plan |> List.filter (fun l -> String.trim l <> "")
        in
        List.iter
          (fun line ->
            if not (Astring.String.is_infix ~affix:"(actual" line) then
              Alcotest.failf "operator line without stats: %S in\n%s" line plan)
          lines);
    Alcotest.test_case "gating hides row counts and nothing else" `Quick (fun () ->
        let db, metrics = Lazy.force engine_fixture in
        let q = Flex_sql.Parser.parse_exn (List.nth analyze_queries 3) in
        let plan = Optimizer.plan ~metrics q in
        let _, trace = Executor.run_plan_analyzed db plan in
        (* one trace rendered twice: timings identical, only rows may differ *)
        let shown = Plan.render_analyzed ~show_rows:true ~trace plan in
        let gated = Plan.render_analyzed ~show_rows:false ~trace plan in
        Alcotest.(check bool) "ungated has digit row counts" true
          (Astring.String.is_infix ~affix:"rows=" shown
          && not (Astring.String.is_infix ~affix:"rows=?" shown));
        Alcotest.(check bool) "gated masks every count" true
          (Astring.String.is_infix ~affix:"rows=?" gated);
        Alcotest.(check string) "identical once rows are neutralized"
          (neutralize_rows shown) (neutralize_rows gated));
  ]

(* --- engine: pool and parallel counters ------------------------------------------ *)

let pool_counter_tests =
  [
    Alcotest.test_case "task pool stats count jobs and claimed chunks" `Quick (fun () ->
        let pool = Task_pool.create ~domains:2 in
        Fun.protect
          ~finally:(fun () -> Task_pool.shutdown pool)
          (fun () ->
            let b = Task_pool.stats pool in
            Task_pool.run pool ~chunks:8 (fun _ -> ());
            let a = Task_pool.stats pool in
            Alcotest.(check bool) "a job ran" true (a.Task_pool.jobs > b.Task_pool.jobs);
            let claimed =
              a.Task_pool.caller_chunks + a.Task_pool.worker_chunks
              - (b.Task_pool.caller_chunks + b.Task_pool.worker_chunks)
            in
            Alcotest.(check int) "all chunks claimed exactly once" 8 claimed));
    Alcotest.test_case "parallel vs sequential dispatches are counted" `Quick (fun () ->
        let db, _ = Lazy.force engine_fixture in
        let p0, s0 = Parallel.ops_counts () in
        (match Executor.run_sql db "SELECT COUNT(*) FROM trips WHERE fare > 0" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "query failed: %s" e);
        let p1, s1 = Parallel.ops_counts () in
        Alcotest.(check bool) "some dispatch was counted" true (p1 + s1 > p0 + s0);
        Alcotest.(check bool) "counters never decrease" true (p1 >= p0 && s1 >= s0));
  ]

(* --- service -------------------------------------------------------------------- *)

let make_server ?audit ?config () =
  let db, metrics = Lazy.force engine_fixture in
  Server.create ?audit ?config ~db ~metrics ~ledger:(Ledger.in_memory ())
    ~rng:(Rng.create ~seed:11 ()) ()

let hello server session analyst =
  match
    Server.handle server session (Wire.Hello { analyst; epsilon = None; delta = None })
  with
  | Wire.Budget_report _ -> ()
  | other -> Alcotest.failf "hello failed: %s" (Wire.response_to_line other)

let query server session sql =
  Server.handle server session (Wire.Query { sql; epsilon = None; delta = None; id = None })

let remaining server session =
  match Server.handle server session Wire.Budget_info with
  | Wire.Budget_report b -> (b.remaining_epsilon, b.remaining_delta)
  | other -> Alcotest.failf "budget failed: %s" (Wire.response_to_line other)

let count_query = "SELECT COUNT(*) FROM trips"

let analyze_sql =
  "EXPLAIN ANALYZE SELECT COUNT(*) FROM trips t JOIN drivers d \
   ON t.driver_id = d.id WHERE d.city_id = 1"

let service_tests =
  [
    Alcotest.test_case "EXPLAIN ANALYZE needs hello and the opt-in, never executes by default"
      `Quick (fun () ->
        let buf = Buffer.create 256 in
        let server = make_server ~audit:(Audit.to_buffer buf) () in
        let session = Server.session server in
        (* anonymous sessions can't trigger execution — through either op *)
        (match query server session analyze_sql with
        | Wire.Error_msg m ->
          Alcotest.(check bool) "asks for hello" true
            (Astring.String.is_infix ~affix:"hello" m)
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
        (match Server.handle server session (Wire.Explain { sql = analyze_sql }) with
        | Wire.Error_msg m ->
          Alcotest.(check bool) "explain op asks for hello too" true
            (Astring.String.is_infix ~affix:"hello" m)
        | other -> Alcotest.failf "explain op: %s" (Wire.response_to_line other));
        hello server session "a";
        (* authenticated but no explain_estimates: rejected without running
           the query — timings are a side channel, not just the row counts *)
        (match query server session analyze_sql with
        | Wire.Rejected { bucket; reason } ->
          Alcotest.(check string) "admission bucket" "admission" bucket;
          Alcotest.(check bool) "names the opt-in" true
            (Astring.String.is_infix ~affix:"explain_estimates" reason)
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
        (match Server.handle server session (Wire.Explain { sql = analyze_sql }) with
        | Wire.Rejected { bucket; _ } ->
          Alcotest.(check string) "explain op gated too" "admission" bucket
        | other -> Alcotest.failf "explain op: %s" (Wire.response_to_line other));
        (* both authenticated attempts left an audit trail *)
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' (Buffer.contents buf))
        in
        Alcotest.(check int) "attempts audited" 2 (List.length lines);
        List.iter
          (fun line ->
            match Json.of_string line with
            | Error e -> Alcotest.failf "audit line does not parse: %s" e
            | Ok j ->
              Alcotest.(check (option string)) "rejected outcome" (Some "rejected")
                (Option.bind (Json.mem "outcome" j) Json.to_str))
          lines);
    Alcotest.test_case "explain_estimates opts in to EXPLAIN ANALYZE (uncharged, audited)"
      `Quick (fun () ->
        let buf = Buffer.create 256 in
        let audit = Audit.to_buffer buf in
        let config = { Server.default_config with explain_estimates = true } in
        let server = make_server ~audit ~config () in
        let session = Server.session server in
        hello server session "a";
        let before = remaining server session in
        (match query server session analyze_sql with
        | Wire.Analyzed_report { plan } ->
          Alcotest.(check bool) "counts shown" true
            (Astring.String.is_infix ~affix:"rows=" plan);
          Alcotest.(check bool) "nothing masked" false
            (Astring.String.is_infix ~affix:"rows=?" plan);
          Alcotest.(check bool) "timings rendered" true
            (Astring.String.is_infix ~affix:"(actual" plan
            && Astring.String.is_infix ~affix:"ms)" plan)
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
        Alcotest.(check bool) "budget untouched" true (before = remaining server session);
        (* the explain wire op serves the ANALYZE form under the same opt-in *)
        (match Server.handle server session (Wire.Explain { sql = analyze_sql }) with
        | Wire.Analyzed_report _ -> ()
        | other -> Alcotest.failf "explain op: %s" (Wire.response_to_line other));
        (* each data access leaves an audit event naming the analyst *)
        let line = List.hd (String.split_on_char '\n' (Buffer.contents buf)) in
        match Json.of_string line with
        | Error e -> Alcotest.failf "audit line does not parse: %s" e
        | Ok j ->
          Alcotest.(check (option string)) "analyzed outcome" (Some "analyzed")
            (Option.bind (Json.mem "outcome" j) Json.to_str);
          Alcotest.(check (option string)) "analyst recorded" (Some "a")
            (Option.bind (Json.mem "analyst" j) Json.to_str);
          Alcotest.(check int) "both accesses audited" 2 (Audit.count audit));
    Alcotest.test_case "stats report: uptime, qps, cache, registry families" `Quick
      (fun () ->
        (* replay off: the repeat must reach the analysis cache and be granted
           (not replayed) for the counters below to read 2/2 *)
        let server =
          make_server ~config:{ Server.default_config with release_cache = false } ()
        in
        let session = Server.session server in
        hello server session "a";
        (match query server session count_query with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "query failed: %s" (Wire.response_to_line other));
        (match query server session count_query with
        | Wire.Result r -> Alcotest.(check bool) "second query hits cache" true r.cache_hit
        | other -> Alcotest.failf "query failed: %s" (Wire.response_to_line other));
        match Server.handle server session Wire.Stats with
        | Wire.Stats_report s ->
          Alcotest.(check int) "queries" 2 s.queries;
          Alcotest.(check int) "granted" 2 s.granted;
          Alcotest.(check bool) "cache hit counted" true (s.cache_hits >= 1);
          Alcotest.(check bool) "uptime positive" true (s.uptime_seconds > 0.0);
          Alcotest.(check bool) "qps positive" true (s.qps > 0.0);
          let fams =
            match Json.mem "families" s.metrics with
            | Some (Json.List fams) ->
              List.filter_map
                (fun f -> Option.bind (Json.mem "name" f) Json.to_str)
                fams
            | _ -> Alcotest.fail "stats carry no registry snapshot"
          in
          Alcotest.(check bool) "query counter family present" true
            (List.mem "flex_queries_total" fams);
          Alcotest.(check bool) "stage histogram family present" true
            (List.mem "flex_stage_seconds" fams);
          (* the metrics surface carries operational series only: everything
             is flex_-namespaced and nothing names a table cardinality *)
          List.iter
            (fun name ->
              if not (Astring.String.is_prefix ~affix:"flex_" name) then
                Alcotest.failf "non-operational family: %s" name;
              if
                Astring.String.is_infix ~affix:"row" name
                || Astring.String.is_infix ~affix:"table" name
              then Alcotest.failf "family smells like private data: %s" name)
            fams
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
    Alcotest.test_case "wire stats omit per-analyst budget series" `Quick (fun () ->
        let server = make_server () in
        let s1 = Server.session server in
        hello server s1 "alice";
        (* stats needs no hello: an anonymous client must not learn which
           analysts exist or what they have spent *)
        (match Server.handle server (Server.session server) Wire.Stats with
        | Wire.Stats_report s ->
          let rendered = Json.to_string s.metrics in
          Alcotest.(check bool) "no per-analyst budget families" false
            (Astring.String.is_infix ~affix:"flex_analyst_remaining" rendered);
          Alcotest.(check bool) "no analyst names" false
            (Astring.String.is_infix ~affix:"alice" rendered);
          Alcotest.(check bool) "operational families still present" true
            (Astring.String.is_infix ~affix:"flex_queries_total" rendered)
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
        (* the loopback-only operator scrape keeps the budget gauges *)
        match Server.registry server with
        | None -> Alcotest.fail "registry expected"
        | Some reg ->
          Alcotest.(check bool) "scrape keeps analyst gauges" true
            (Astring.String.is_infix
               ~affix:{|flex_analyst_remaining_epsilon{analyst="alice"}|}
               (Registry.to_prometheus reg)));
    Alcotest.test_case "stats decode tolerates older servers" `Quick (fun () ->
        let line =
          {|{"status":"stats","queries":1,"granted":1,"rejected":0,"refused":0,"cache_hits":0,"cache_misses":1,"cache_entries":1,"analysts":1}|}
        in
        match Wire.response_of_line line with
        | Ok (Wire.Stats_report s) ->
          Alcotest.(check (float 0.)) "uptime defaults" 0.0 s.uptime_seconds;
          Alcotest.(check (float 0.)) "qps defaults" 0.0 s.qps;
          Alcotest.(check bool) "metrics default to Null" true (s.metrics = Json.Null)
        | Ok other -> Alcotest.failf "wrong constructor: %s" (Wire.response_to_line other)
        | Error e -> Alcotest.failf "decode failed: %s" e);
    Alcotest.test_case "audit stage timings: non-negative, total covers stages" `Quick
      (fun () ->
        let buf = Buffer.create 256 in
        let server = make_server ~audit:(Audit.to_buffer buf) () in
        let session = Server.session server in
        hello server session "a";
        (match query server session count_query with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "query failed: %s" (Wire.response_to_line other));
        let line = List.hd (String.split_on_char '\n' (Buffer.contents buf)) in
        match Json.of_string line with
        | Error e -> Alcotest.failf "audit line does not parse: %s" e
        | Ok j ->
          let ns field =
            match Option.bind (Json.mem field j) Json.to_num with
            | Some v -> v
            | None -> Alcotest.failf "missing %s" field
          in
          let stages =
            [ "parse_ns"; "analysis_ns"; "smooth_ns"; "execution_ns"; "perturbation_ns" ]
          in
          List.iter
            (fun f ->
              if ns f < 0.0 then Alcotest.failf "%s is negative: %g" f (ns f))
            stages;
          let total = ns "total_ns" in
          Alcotest.(check bool) "total positive" true (total > 0.0);
          List.iter
            (fun f ->
              if total < ns f then
                Alcotest.failf "total_ns %g < %s %g" total f (ns f))
            stages);
    Alcotest.test_case "telemetry off: no registry, zero timings, same responses"
      `Quick (fun () ->
        let off = { Server.default_config with telemetry = false } in
        let buf = Buffer.create 256 in
        let server_off = make_server ~audit:(Audit.to_buffer buf) ~config:off () in
        let server_on = make_server () in
        Alcotest.(check bool) "no registry when off" true
          (Server.registry server_off = None);
        Alcotest.(check bool) "registry when on" true
          (Server.registry server_on <> None);
        let drive server =
          let session = Server.session server in
          hello server session "a";
          List.map
            (fun sql -> query server session sql)
            [
              count_query;
              "SELECT t.city_id, COUNT(*) FROM trips t GROUP BY t.city_id";
              "SELECT COUNT(*) FROM trips WHERE fare > 20";
            ]
        in
        let on = drive server_on and off_resp = drive server_off in
        (* the DP fingerprint: same seeds, telemetry toggled, responses
           bit-identical — telemetry never touches the RNG or results *)
        List.iter2
          (fun a b ->
            if a <> b then
              Alcotest.failf "release differs with telemetry off:\n%s\n%s"
                (Wire.response_to_line a) (Wire.response_to_line b))
          on off_resp;
        (match Server.handle server_off (Server.session server_off) Wire.Stats with
        | Wire.Stats_report s ->
          Alcotest.(check bool) "metrics Null when off" true (s.metrics = Json.Null)
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
        match Json.of_string (List.hd (String.split_on_char '\n' (Buffer.contents buf))) with
        | Ok j ->
          Alcotest.(check (option (float 0.))) "stage timing zero when off" (Some 0.0)
            (Option.bind (Json.mem "total_ns" j) Json.to_num)
        | Error e -> Alcotest.failf "audit line does not parse: %s" e);
  ]

(* --- stats HTTP endpoint --------------------------------------------------------- *)

let http_get port path =
  let ic, oc =
    Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  output_string oc ("GET " ^ path ^ " HTTP/1.1\r\nHost: localhost\r\n\r\n");
  flush oc;
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (try Unix.shutdown_connection ic with _ -> ());
  close_in_noerr ic;
  Buffer.contents buf

let body_of response =
  match Astring.String.cut ~sep:"\r\n\r\n" response with
  | Some (_, body) -> body
  | None -> Alcotest.failf "no header/body split in %S" response

let stats_http_tests =
  [
    Alcotest.test_case "metrics, metrics.json and healthz over HTTP" `Quick (fun () ->
        let reg = Registry.create () in
        let c = Registry.counter reg ~labels:[ ("k", "v") ] "flex_demo_total" in
        Registry.Counter.inc c 3.0;
        let http = Stats_http.listen reg in
        ignore (Stats_http.start http);
        Fun.protect
          ~finally:(fun () -> Stats_http.stop http)
          (fun () ->
            let port = Stats_http.port http in
            let metrics = http_get port "/metrics" in
            Alcotest.(check bool) "200" true
              (Astring.String.is_infix ~affix:"200 OK" metrics);
            Alcotest.(check bool) "prometheus body" true
              (Astring.String.is_infix ~affix:{|flex_demo_total{k="v"} 3|} metrics);
            let js = http_get port "/metrics.json" in
            (match Json.of_string (body_of js) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "/metrics.json does not parse: %s" e);
            Alcotest.(check string) "healthz" "ok" (body_of (http_get port "/healthz"));
            Alcotest.(check bool) "unknown path is 404" true
              (Astring.String.is_infix ~affix:"404" (http_get port "/nope"))));
    Alcotest.test_case "stop does not hang on an idle client" `Quick (fun () ->
        let http = Stats_http.listen (Registry.create ()) in
        ignore (Stats_http.start http);
        (* connect but send nothing: the handler blocks reading the request
           line, and stop must shut its fd down rather than wait forever *)
        let ic, oc =
          Unix.open_connection
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Stats_http.port http))
        in
        Thread.delay 0.05;
        Stats_http.stop http;
        ignore oc;
        close_in_noerr ic);
    Alcotest.test_case "/statements and /flights serve JSON when supplied" `Quick
      (fun () ->
        let st = Statements.create () in
        Statements.record st ~now_ns:1.0 ~key:"SELECT COUNT(*) FROM trips"
          ~outcome:`Granted ~total_ns:100.0 ();
        let fl = Flight.create () in
        Flight.record fl ~ts_ns:1.0 ~analyst:"alice" ~sql:"SELECT COUNT(*) FROM trips"
          ~outcome:"granted" ~duration_ns:100.0 ();
        let http = Stats_http.listen ~statements:st ~flights:fl (Registry.create ()) in
        ignore (Stats_http.start http);
        Fun.protect
          ~finally:(fun () -> Stats_http.stop http)
          (fun () ->
            let port = Stats_http.port http in
            (match Json.of_string (body_of (http_get port "/statements")) with
            | Ok j ->
              Alcotest.(check (option int)) "tracked" (Some 1)
                (Option.bind (Json.mem "tracked" j) Json.to_int)
            | Error e -> Alcotest.failf "/statements does not parse: %s" e);
            match Json.of_string (body_of (http_get port "/flights")) with
            | Ok j ->
              Alcotest.(check (option int)) "recorded" (Some 1)
                (Option.bind (Json.mem "recorded" j) Json.to_int)
            | Error e -> Alcotest.failf "/flights does not parse: %s" e));
    Alcotest.test_case "/statements and /flights are 404 when not supplied" `Quick
      (fun () ->
        let http = Stats_http.listen (Registry.create ()) in
        ignore (Stats_http.start http);
        Fun.protect
          ~finally:(fun () -> Stats_http.stop http)
          (fun () ->
            let port = Stats_http.port http in
            Alcotest.(check bool) "statements 404" true
              (Astring.String.is_infix ~affix:"404" (http_get port "/statements"));
            Alcotest.(check bool) "flights 404" true
              (Astring.String.is_infix ~affix:"404" (http_get port "/flights"))));
  ]

(* --- audit rotation under concurrency -------------------------------------------- *)

let audit_rotation_tests =
  [
    Alcotest.test_case "rotation never tears a line under concurrent writers" `Quick
      (fun () ->
        let path = Filename.temp_file "flex_audit" ".log" in
        let threads = 8 and per = 50 in
        let audit = Audit.to_file ~max_bytes:4096 path in
        let event i =
          {
            Audit.analyst = Printf.sprintf "writer-%d" i;
            sql = "SELECT COUNT(*) FROM trips WHERE fare > 20";
            request_id = Some (Printf.sprintf "r-%d" i);
            outcome = Audit.Granted;
            epsilon = 0.1;
            delta = 1e-6;
            max_noise_scale = 10.0;
            cache_hit = false;
            parse_ns = 1.0;
            analysis_ns = 2.0;
            smooth_ns = 3.0;
            execution_ns = 4.0;
            perturbation_ns = 5.0;
            total_ns = 20.0;
          }
        in
        let ts =
          List.init threads (fun t ->
              Thread.create
                (fun () ->
                  for i = 1 to per do
                    Audit.log audit (event ((t * per) + i))
                  done)
                ())
        in
        List.iter Thread.join ts;
        Alcotest.(check int) "every event counted" (threads * per) (Audit.count audit);
        Audit.close audit;
        let lines_of p =
          if not (Sys.file_exists p) then []
          else begin
            let ic = open_in p in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
          end
        in
        let current = lines_of path and rotated = lines_of (path ^ ".1") in
        Alcotest.(check bool) "rotation happened" true (rotated <> []);
        List.iteri
          (fun i line ->
            match Json.of_string line with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "torn line %d: %s (%s)" i e line)
          (current @ rotated);
        (* the live generation respects the byte limit *)
        Alcotest.(check bool) "live file within limit" true
          (List.fold_left (fun acc l -> acc + String.length l + 1) 0 current <= 4096);
        Sys.remove path;
        if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"));
  ]

(* --- quantile estimation --------------------------------------------------------- *)

let quantile_tests =
  [
    Alcotest.test_case "linear interpolation within the rank's bucket" `Quick (fun () ->
        let upper = [| 1.0; 2.0; 4.0 |] and cumulative = [| 2; 3; 4 |] in
        let q p = Registry.estimate_quantile ~upper ~cumulative ~count:4 p in
        Alcotest.(check (option (float 1e-9))) "p50" (Some 1.0) (q 0.5);
        Alcotest.(check (option (float 1e-9))) "p75" (Some 2.0) (q 0.75);
        Alcotest.(check (option (float 1e-9))) "p100" (Some 4.0) (q 1.0));
    Alcotest.test_case "first bucket interpolates from zero" `Quick (fun () ->
        match
          Registry.estimate_quantile ~upper:[| 8.0 |] ~cumulative:[| 4 |] ~count:4 0.5
        with
        | Some v -> Alcotest.(check (float 1e-9)) "half the first bucket" 4.0 v
        | None -> Alcotest.fail "expected an estimate");
    Alcotest.test_case "rank past the last finite bound clamps" `Quick (fun () ->
        (* 2 of 3 observations overflowed every finite bucket *)
        match
          Registry.estimate_quantile ~upper:[| 1.0; 2.0 |] ~cumulative:[| 1; 1 |]
            ~count:3 0.9
        with
        | Some v -> Alcotest.(check (float 1e-9)) "clamped to last bound" 2.0 v
        | None -> Alcotest.fail "expected an estimate");
    Alcotest.test_case "empty histogram has no quantiles" `Quick (fun () ->
        Alcotest.(check (option (float 0.))) "none" None
          (Registry.estimate_quantile ~upper:[| 1.0 |] ~cumulative:[| 0 |] ~count:0 0.5));
    Alcotest.test_case "registry JSON carries p50/p95/p99 once observed" `Quick (fun () ->
        let reg = Registry.create () in
        let h = Registry.histogram reg "t_seconds" in
        let before = Registry.to_json reg in
        Alcotest.(check bool) "no quantiles while empty" false
          (Astring.String.is_infix ~affix:"quantiles" before);
        for _ = 1 to 100 do
          Registry.Histogram.observe h 1e-3
        done;
        let after = Registry.to_json reg in
        Alcotest.(check bool) "quantiles after observations" true
          (Astring.String.is_infix ~affix:{|"quantiles"|} after
          && Astring.String.is_infix ~affix:{|"p50"|} after
          && Astring.String.is_infix ~affix:{|"p99"|} after));
  ]

(* --- statement statistics -------------------------------------------------------- *)

let statement_tests =
  [
    Alcotest.test_case "accumulates calls, outcomes, rows, budget, extrema" `Quick
      (fun () ->
        let st = Statements.create ~capacity:8 () in
        Statements.record st ~now_ns:1.0 ~key:"K" ~outcome:`Granted
          ~stages:[ ("execute", 100.0); ("perturb", 10.0) ]
          ~rows:3 ~epsilon:0.5 ~delta:1e-6 ~total_ns:200.0 ();
        Statements.record st ~now_ns:2.0 ~key:"K" ~outcome:`Replayed
          ~stages:[ ("execute", 50.0) ]
          ~rows:3 ~total_ns:100.0 ();
        match Statements.snapshot st with
        | [ v ] ->
          Alcotest.(check string) "key" "K" v.Statements.key;
          Alcotest.(check int) "calls" 2 v.calls;
          Alcotest.(check int) "granted" 1 v.granted;
          Alcotest.(check int) "replayed" 1 v.replayed;
          Alcotest.(check int) "rows" 6 v.rows;
          Alcotest.(check (float 1e-9)) "epsilon" 0.5 v.epsilon;
          Alcotest.(check (float 1e-9)) "delta" 1e-6 v.delta;
          Alcotest.(check int) "total count" 2 v.total.count;
          Alcotest.(check (float 1e-9)) "total sum" 300.0 v.total.sum_ns;
          Alcotest.(check (float 1e-9)) "total min" 100.0 v.total.min_ns;
          Alcotest.(check (float 1e-9)) "total max" 200.0 v.total.max_ns;
          let execute = List.find (fun s -> s.Statements.stage = "execute") v.stages in
          Alcotest.(check int) "execute count" 2 execute.count;
          Alcotest.(check (float 1e-9)) "execute sum" 150.0 execute.sum_ns;
          Alcotest.(check (float 1e-9)) "execute min" 50.0 execute.min_ns;
          Alcotest.(check (float 1e-9)) "execute max" 100.0 execute.max_ns;
          let perturb = List.find (fun s -> s.Statements.stage = "perturb") v.stages in
          Alcotest.(check int) "perturb count" 1 perturb.count
        | vs -> Alcotest.failf "expected one row, got %d" (List.length vs));
    Alcotest.test_case "evicts the least-called shape at capacity" `Quick (fun () ->
        let st = Statements.create ~capacity:2 () in
        Statements.record st ~now_ns:1.0 ~key:"a" ~outcome:`Granted ~total_ns:10.0 ();
        Statements.record st ~now_ns:2.0 ~key:"a" ~outcome:`Granted ~total_ns:10.0 ();
        Statements.record st ~now_ns:3.0 ~key:"b" ~outcome:`Granted ~total_ns:10.0 ();
        Statements.record st ~now_ns:4.0 ~key:"c" ~outcome:`Granted ~total_ns:10.0 ();
        Alcotest.(check int) "still at capacity" 2 (Statements.size st);
        Alcotest.(check int) "one eviction" 1 (Statements.evictions st);
        let keys =
          List.map (fun v -> v.Statements.key) (Statements.snapshot st)
          |> List.sort compare
        in
        Alcotest.(check (list string)) "least-called b evicted" [ "a"; "c" ] keys);
    Alcotest.test_case "snapshot orders busiest shape first" `Quick (fun () ->
        let st = Statements.create () in
        Statements.record st ~now_ns:1.0 ~key:"cheap" ~outcome:`Granted ~total_ns:10.0 ();
        Statements.record st ~now_ns:2.0 ~key:"hot" ~outcome:`Granted ~total_ns:1e6 ();
        match Statements.snapshot st with
        | v :: _ -> Alcotest.(check string) "hot first" "hot" v.Statements.key
        | [] -> Alcotest.fail "empty snapshot");
    Alcotest.test_case "quantiles land in the observed bucket" `Quick (fun () ->
        let st = Statements.create () in
        for i = 1 to 100 do
          Statements.record st ~now_ns:(float_of_int i) ~key:"k" ~outcome:`Granted
            ~total_ns:1e6 () (* 1 ms *)
        done;
        match Statements.snapshot st with
        | [ v ] -> (
          match v.Statements.total.p50 with
          | Some p50 ->
            Alcotest.(check bool)
              (Printf.sprintf "p50 %.6fs brackets 1ms" p50)
              true
              (p50 > 0.4e-3 && p50 < 2.2e-3)
          | None -> Alcotest.fail "expected a p50")
        | _ -> Alcotest.fail "expected one row");
    Alcotest.test_case "to_json parses and reset clears" `Quick (fun () ->
        let st = Statements.create () in
        Statements.record st ~now_ns:1.0 ~key:{|SELECT COUNT(*) FROM "t"|}
          ~outcome:`Rejected ~total_ns:5.0 ();
        (match Json.of_string (Statements.to_json st) with
        | Error e -> Alcotest.failf "to_json does not parse: %s" e
        | Ok j ->
          Alcotest.(check (option int)) "tracked" (Some 1)
            (Option.bind (Json.mem "tracked" j) Json.to_int));
        Statements.reset st;
        Alcotest.(check int) "reset clears" 0 (Statements.size st));
    Alcotest.test_case "concurrent recorders agree on totals" `Quick (fun () ->
        let st = Statements.create () in
        let threads = 8 and per = 500 in
        let ts =
          List.init threads (fun t ->
              Thread.create
                (fun () ->
                  for i = 1 to per do
                    Statements.record st
                      ~now_ns:(float_of_int ((t * per) + i))
                      ~key:"shared" ~outcome:`Granted ~rows:1 ~epsilon:0.01
                      ~total_ns:100.0 ()
                  done)
                ())
        in
        List.iter Thread.join ts;
        match Statements.snapshot st with
        | [ v ] ->
          Alcotest.(check int) "calls" (threads * per) v.Statements.calls;
          Alcotest.(check int) "rows" (threads * per) v.rows;
          Alcotest.(check (float 1e-6)) "epsilon" (float_of_int (threads * per) *. 0.01)
            v.epsilon
        | vs -> Alcotest.failf "expected one row, got %d" (List.length vs));
  ]

(* --- flight recorder ------------------------------------------------------------- *)

let flight_tests =
  [
    Alcotest.test_case "ring wraps and snapshots newest-first" `Quick (fun () ->
        let fl = Flight.create ~capacity:8 () in
        for i = 0 to 19 do
          Flight.record fl ~ts_ns:(float_of_int i) ~analyst:"a"
            ~sql:(Printf.sprintf "q%d" i) ~outcome:"granted"
            ~duration_ns:(float_of_int i) ()
        done;
        Alcotest.(check int) "all writes counted" 20 (Flight.recorded fl);
        let snap = Flight.snapshot fl in
        Alcotest.(check int) "bounded by capacity" 8 (List.length snap);
        let seqs = List.map (fun r -> r.Flight.seq) snap in
        Alcotest.(check (list int)) "newest first, most recent retained"
          [ 19; 18; 17; 16; 15; 14; 13; 12 ] seqs);
    Alcotest.test_case "limit truncates the snapshot" `Quick (fun () ->
        let fl = Flight.create ~capacity:16 () in
        for i = 0 to 9 do
          Flight.record fl ~ts_ns:(float_of_int i) ~analyst:"a" ~sql:"q"
            ~outcome:"granted" ~duration_ns:1.0 ()
        done;
        Alcotest.(check int) "limit 3" 3 (List.length (Flight.snapshot ~limit:3 fl)));
    Alcotest.test_case "records keep id, key and span tree" `Quick (fun () ->
        let fl = Flight.create () in
        let root = Span.root "query" in
        Span.timed (Some root) "execute" (fun _ -> ());
        Span.finish root;
        Flight.record fl ~ts_ns:1.0 ~id:"req-9" ~analyst:"alice" ~sql:"SELECT 1"
          ~key:"CORE" ~outcome:"granted" ~epsilon:0.1 ~duration_ns:5.0
          ~trace:(Span.view root) ();
        (match Flight.snapshot fl with
        | [ r ] ->
          Alcotest.(check (option string)) "id" (Some "req-9") r.Flight.id;
          Alcotest.(check (option string)) "key" (Some "CORE") r.key;
          (match r.trace with
          | Some v ->
            Alcotest.(check bool) "trace has the execute child" true
              (List.exists (fun (c : Span.view) -> c.name = "execute") v.children)
          | None -> Alcotest.fail "expected a trace")
        | rs -> Alcotest.failf "expected one record, got %d" (List.length rs));
        match Json.of_string (Flight.to_json fl) with
        | Error e -> Alcotest.failf "to_json does not parse: %s" e
        | Ok j ->
          Alcotest.(check (option int)) "recorded" (Some 1)
            (Option.bind (Json.mem "recorded" j) Json.to_int));
    Alcotest.test_case "concurrent writers never lose a write" `Quick (fun () ->
        let fl = Flight.create ~capacity:64 () in
        let threads = 8 and per = 200 in
        let ts =
          List.init threads (fun t ->
              Thread.create
                (fun () ->
                  for i = 1 to per do
                    Flight.record fl
                      ~ts_ns:(float_of_int ((t * per) + i))
                      ~analyst:"a" ~sql:"q" ~outcome:"granted" ~duration_ns:1.0 ()
                  done)
                ())
        in
        List.iter Thread.join ts;
        Alcotest.(check int) "recorded counts every write" (threads * per)
          (Flight.recorded fl);
        let snap = Flight.snapshot fl in
        Alcotest.(check int) "retains exactly capacity" 64 (List.length snap);
        let sorted = List.sort (fun a b -> compare b.Flight.seq a.Flight.seq) snap in
        Alcotest.(check bool) "snapshot is newest-first" true (snap = sorted);
        match Json.of_string (Flight.to_json fl) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "to_json does not parse: %s" e);
  ]

(* --- budget observatory + statement stats through the service -------------------- *)

let group_query = "SELECT t.city_id, COUNT(*) FROM trips t GROUP BY t.city_id"
let group_suffix_query = group_query ^ " ORDER BY 2 DESC LIMIT 3"

let observatory_tests =
  [
    Alcotest.test_case "suffix variants of one core share a statement row" `Quick
      (fun () ->
        let server = make_server () in
        let session = Server.session server in
        hello server session "alice";
        (match query server session group_query with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "cold query failed: %s" (Wire.response_to_line other));
        (match query server session group_suffix_query with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "suffix query failed: %s" (Wire.response_to_line other));
        let st =
          match Server.statements server with
          | Some st -> st
          | None -> Alcotest.fail "statement table expected when telemetry is on"
        in
        match Statements.snapshot st with
        | [ v ] ->
          Alcotest.(check int) "both calls on one row" 2 v.Statements.calls;
          Alcotest.(check int) "first was granted" 1 v.granted;
          Alcotest.(check int) "suffix variant was derived" 1 v.derived;
          Alcotest.(check bool) "stage list is populated" true (v.stages <> [])
        | vs ->
          Alcotest.failf "expected one statement row, got %d: %s" (List.length vs)
            (String.concat ", " (List.map (fun v -> v.Statements.key) vs)));
    Alcotest.test_case "flight recorder captures the request end-to-end" `Quick
      (fun () ->
        let server = make_server () in
        let session = Server.session server in
        hello server session "alice";
        (match
           Server.handle server session
             (Wire.Query
                { sql = count_query; epsilon = None; delta = None; id = Some "r-7" })
         with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "query failed: %s" (Wire.response_to_line other));
        let fl =
          match Server.flights server with
          | Some fl -> fl
          | None -> Alcotest.fail "flight recorder expected when telemetry is on"
        in
        match Flight.snapshot fl with
        | r :: _ ->
          Alcotest.(check string) "analyst" "alice" r.Flight.analyst;
          Alcotest.(check string) "sql" count_query r.sql;
          Alcotest.(check (option string)) "request id" (Some "r-7") r.id;
          Alcotest.(check string) "outcome" "granted" r.outcome;
          Alcotest.(check bool) "charged epsilon recorded" true (r.epsilon > 0.0);
          Alcotest.(check bool) "canonical key attached" true (r.key <> None);
          (match r.trace with
          | Some v ->
            let child n = List.exists (fun (c : Span.view) -> c.name = n) v.children in
            Alcotest.(check bool) "parse span present" true (child "parse");
            Alcotest.(check bool) "execute span present" true (child "execute")
          | None -> Alcotest.fail "expected a span tree")
        | [] -> Alcotest.fail "no flight recorded");
    Alcotest.test_case "rejected queries are recorded, without a key on parse errors"
      `Quick (fun () ->
        let server = make_server () in
        let session = Server.session server in
        hello server session "alice";
        (match query server session "SELEC nope" with
        | Wire.Rejected _ -> ()
        | other -> Alcotest.failf "expected a rejection: %s" (Wire.response_to_line other));
        match Option.map Flight.snapshot (Server.flights server) with
        | Some (r :: _) ->
          Alcotest.(check bool) "outcome is a rejection" true
            (Astring.String.is_prefix ~affix:"rejected" r.Flight.outcome);
          Alcotest.(check (option string)) "no canonical key" None r.key
        | _ -> Alcotest.fail "no flight recorded");
    Alcotest.test_case "burn-rate gauges on the scrape, never on the wire" `Quick
      (fun () ->
        let server = make_server () in
        let session = Server.session server in
        hello server session "alice";
        (match query server session count_query with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "query failed: %s" (Wire.response_to_line other));
        let reg =
          match Server.registry server with
          | Some reg -> reg
          | None -> Alcotest.fail "registry expected"
        in
        let scrape = Registry.to_prometheus reg in
        Alcotest.(check bool) "burn rate on the scrape" true
          (Astring.String.is_infix
             ~affix:{|flex_analyst_epsilon_burn_per_second{analyst="alice"}|} scrape);
        Alcotest.(check bool) "exhaustion forecast on the scrape" true
          (Astring.String.is_infix ~affix:"flex_analyst_epsilon_exhaustion_seconds"
             scrape);
        match Server.handle server session Wire.Stats with
        | Wire.Stats_report s ->
          let rendered = Json.to_string s.metrics in
          List.iter
            (fun leak ->
              Alcotest.(check bool)
                (Printf.sprintf "wire stats must not carry %S" leak)
                false
                (Astring.String.is_infix ~affix:leak rendered))
            [
              "burn_per_second";
              "exhaustion";
              "remaining_epsilon";
              "remaining_delta";
              "alice";
              "SELECT";
              "trips";
            ]
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
    Alcotest.test_case "releases bit-identical with tiny and default recorders" `Quick
      (fun () ->
        (* recorder capacity (including constant eviction at capacity 1) must
           never touch the RNG or the released values *)
        let tiny =
          { Server.default_config with statement_capacity = 1; flight_capacity = 1 }
        in
        let drive config =
          let server = make_server ~config () in
          let session = Server.session server in
          hello server session "alice";
          List.map
            (fun sql -> query server session sql)
            [ count_query; group_query; group_suffix_query; count_query ]
        in
        List.iter2
          (fun a b ->
            if a <> b then
              Alcotest.failf "release differs with tiny recorders:\n%s\n%s"
                (Wire.response_to_line a) (Wire.response_to_line b))
          (drive Server.default_config) (drive tiny));
  ]

(* --- request id on the wire ------------------------------------------------------ *)

let wire_id_tests =
  [
    Alcotest.test_case "request id round-trips; absent id stays absent" `Quick (fun () ->
        let req =
          Wire.Query { sql = "SELECT 1"; epsilon = None; delta = None; id = Some "r-1" }
        in
        let line = Wire.request_to_line req in
        (match Wire.request_of_line line with
        | Ok req' ->
          Alcotest.(check (option string)) "id survives" (Some "r-1")
            (Wire.request_id req')
        | Error e -> Alcotest.failf "decode failed: %s" e);
        let bare =
          Wire.request_to_line
            (Wire.Query { sql = "SELECT 1"; epsilon = None; delta = None; id = None })
        in
        Alcotest.(check bool) "no id field when none given" false
          (Astring.String.is_infix ~affix:{|"id"|} bare));
    Alcotest.test_case "old-peer lines without an id decode to None" `Quick (fun () ->
        match Wire.request_of_line {|{"op":"query","sql":"SELECT 1"}|} with
        | Ok req -> Alcotest.(check (option string)) "defaults" None (Wire.request_id req)
        | Error e -> Alcotest.failf "decode failed: %s" e);
    Alcotest.test_case "response echo: appended id is extractable, old lines give None"
      `Quick (fun () ->
        let resp = Wire.Rejected { bucket = "parse"; reason = "nope" } in
        let echoed = Wire.response_to_line ~id:"r-2" resp in
        Alcotest.(check (option string)) "echoed" (Some "r-2")
          (Wire.response_id_of_line echoed);
        (match Wire.response_of_line echoed with
        | Ok (Wire.Rejected r) -> Alcotest.(check string) "bucket survives" "parse" r.bucket
        | Ok other -> Alcotest.failf "wrong constructor: %s" (Wire.response_to_line other)
        | Error e -> Alcotest.failf "old decoder rejects echoed line: %s" e);
        Alcotest.(check (option string)) "old-server line has no id" None
          (Wire.response_id_of_line (Wire.response_to_line resp)));
    Alcotest.test_case "audit event joins on the request id" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let server = make_server ~audit:(Audit.to_buffer buf) () in
        let session = Server.session server in
        hello server session "alice";
        (match
           Server.handle server session
             (Wire.Query
                { sql = count_query; epsilon = None; delta = None; id = Some "r-3" })
         with
        | Wire.Result _ -> ()
        | other -> Alcotest.failf "query failed: %s" (Wire.response_to_line other));
        match Json.of_string (List.hd (String.split_on_char '\n' (Buffer.contents buf)))
        with
        | Ok j ->
          Alcotest.(check (option string)) "id in the audit line" (Some "r-3")
            (Option.bind (Json.mem "id" j) Json.to_str)
        | Error e -> Alcotest.failf "audit line does not parse: %s" e);
  ]

let suites =
  [
    ("obs-registry", registry_tests);
    ("obs-quantiles", quantile_tests);
    ("obs-clock-span", clock_span_tests);
    ("obs-audit", audit_tests);
    ("obs-explain-analyze", explain_analyze_tests);
    ("obs-pool-counters", pool_counter_tests);
    ("obs-statements", statement_tests);
    ("obs-flight", flight_tests);
    ("obs-observatory", observatory_tests);
    ("obs-wire-id", wire_id_tests);
    ("obs-service", service_tests);
    ("obs-stats-http", stats_http_tests);
    ("obs-audit-rotation", audit_rotation_tests);
  ]
