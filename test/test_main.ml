let () =
  Alcotest.run "oflex"
    (Test_dp.suites @ Test_sql.suites @ Test_engine.suites @ Test_elastic.suites
   @ Test_soundness.suites @ Test_flex.suites @ Test_histogram.suites
   @ Test_props.suites @ Test_ptr.suites @ Test_mwem.suites @ Test_metrics_live.suites @ Test_acceptance.suites @ Test_fuzz.suites @ Test_baselines.suites
   @ Test_workload.suites @ Test_service.suites @ Test_reactor.suites
   @ Test_factor.suites
   @ Test_release_store.suites
   @ Test_parallel.suites @ Test_optimizer.suites @ Test_obs.suites)
