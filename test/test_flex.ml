module Value = Flex_engine.Value
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng
module Budget = Flex_dp.Budget
module Flex = Flex_core.Flex
module Elastic = Flex_core.Elastic
module Errors = Flex_core.Errors
module Histogram = Flex_core.Histogram

let setup () =
  let rng = Rng.create ~seed:2024 () in
  let db, metrics =
    Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng
  in
  (rng, db, metrics)

let opts ?(epsilon = 1.0) () =
  Flex.options ~epsilon ~delta:1e-8 ()

let run ?budget ?(epsilon = 1.0) (rng, db, metrics) sql =
  Flex.run_sql ?budget ~rng ~options:(opts ~epsilon ()) ~db ~metrics sql

let run_ok ?budget ?epsilon ctx sql =
  match run ?budget ?epsilon ctx sql with
  | Ok r -> r
  | Error r -> Alcotest.failf "FLEX rejected %s: %s" sql (Errors.to_string r)

let mechanism_tests =
  [
    Alcotest.test_case "noisy scalar count is perturbed but centred" `Quick (fun () ->
        let ctx = setup () in
        let release = run_ok ctx "SELECT COUNT(*) FROM trips" in
        let truth =
          match release.Flex.true_result.rows with
          | [ [| v |] ] -> Option.get (Value.to_float v)
          | _ -> Alcotest.fail "scalar expected"
        in
        let noisy =
          match release.Flex.noisy.rows with
          | [ [| v |] ] -> Option.get (Value.to_float v)
          | _ -> Alcotest.fail "scalar expected"
        in
        let scale = (List.hd release.Flex.column_releases).Flex.noise_scale in
        Alcotest.(check bool) "within 20 scales" true
          (Float.abs (noisy -. truth) < 20.0 *. scale));
    Alcotest.test_case "determinism under a fixed seed" `Quick (fun () ->
        let _, db, metrics = setup () in
        let sql = "SELECT COUNT(*) FROM trips WHERE status = 'completed'" in
        let one () =
          let rng = Rng.create ~seed:99 () in
          match Flex.run_sql ~rng ~options:(opts ()) ~db ~metrics sql with
          | Ok r -> r.Flex.noisy.rows
          | Error _ -> Alcotest.fail "rejected"
        in
        Alcotest.(check bool) "same noise" true (one () = one ()));
    Alcotest.test_case "release is bit-identical with columnar on or off" `Quick (fun () ->
        (* the DP pipeline must be invariant under the execution engine: an
           exact COUNT plus a fixed RNG stream gives the same noisy release
           whether the row or the columnar engine computed the truth *)
        let _, db, metrics = setup () in
        let with_columnar on f =
          let prev = !Flex_engine.Executor.columnar_enabled in
          Flex_engine.Executor.columnar_enabled := on;
          Fun.protect
            ~finally:(fun () -> Flex_engine.Executor.columnar_enabled := prev)
            f
        in
        List.iter
          (fun sql ->
            let one on =
              with_columnar on (fun () ->
                  let rng = Rng.create ~seed:77 () in
                  match Flex.run_sql ~rng ~options:(opts ()) ~db ~metrics sql with
                  | Ok r -> (r.Flex.true_result.rows, r.Flex.noisy.rows)
                  | Error _ -> Alcotest.failf "rejected: %s" sql)
            in
            let t_row, n_row = one false and t_col, n_col = one true in
            Alcotest.(check bool) (sql ^ ": same truth") true (t_row = t_col);
            Alcotest.(check bool) (sql ^ ": same release") true (n_row = n_col))
          [
            "SELECT COUNT(*) FROM trips WHERE status = 'completed'";
            "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
             GROUP BY c.name";
          ]);
    Alcotest.test_case "group keys pass through unperturbed" `Quick (fun () ->
        let ctx = setup () in
        let release = run_ok ctx "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status" in
        List.iter
          (fun row ->
            match row.(0) with
            | Value.String _ -> ()
            | v -> Alcotest.failf "key cell was perturbed: %s" (Value.to_string v))
          release.Flex.noisy.rows);
    Alcotest.test_case "larger epsilon means less noise on average" `Quick (fun () ->
        let _, db, metrics = setup () in
        let sql = "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id" in
        let avg_err epsilon =
          let rng = Rng.create ~seed:5 () in
          let total = ref 0.0 in
          for _ = 1 to 30 do
            match
              Flex.run_sql ~rng ~options:(opts ~epsilon ()) ~db ~metrics sql
            with
            | Ok r -> (
              match Flex.median_relative_error r with
              | Some e when Float.is_finite e -> total := !total +. e
              | _ -> ())
            | Error _ -> Alcotest.fail "rejected"
          done;
          !total /. 30.0
        in
        Alcotest.(check bool) "eps=10 beats eps=0.1" true (avg_err 10.0 < avg_err 0.1));
    Alcotest.test_case "budget is charged per aggregate column" `Quick (fun () ->
        let ctx = setup () in
        let budget = Budget.create ~epsilon:10.0 ~delta:1.0 in
        ignore (run_ok ~budget ctx "SELECT COUNT(*) FROM trips");
        let e1, _ = Budget.spent_basic budget in
        Alcotest.(check (float 1e-9)) "one column" 1.0 e1;
        ignore
          (run_ok ~budget ctx
             "SELECT COUNT(*), COUNT(DISTINCT driver_id) FROM trips");
        let e2, _ = Budget.spent_basic budget in
        Alcotest.(check (float 1e-9)) "two more columns" 3.0 e2);
    Alcotest.test_case "exhausted budget refuses queries" `Quick (fun () ->
        let ctx = setup () in
        let budget = Budget.create ~epsilon:1.5 ~delta:1.0 in
        ignore (run_ok ~budget ctx "SELECT COUNT(*) FROM trips");
        match run ~budget ctx "SELECT COUNT(*) FROM trips" with
        | exception Budget.Exhausted _ -> ()
        | Ok _ -> Alcotest.fail "expected exhaustion"
        | Error r -> Alcotest.failf "wrong error: %s" (Errors.to_string r));
    Alcotest.test_case "rejections propagate with classification" `Quick (fun () ->
        let ctx = setup () in
        (match run ctx "SELECT id FROM trips" with
        | Error (Errors.Unsupported Errors.Raw_data_query) -> ()
        | _ -> Alcotest.fail "raw query must be rejected");
        match run ctx "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.fare > d.rating" with
        | Error (Errors.Unsupported (Errors.Non_equijoin _)) -> ()
        | _ -> Alcotest.fail "non-equijoin must be rejected");
    Alcotest.test_case "delta_for_size follows n^(-ln n)" `Quick (fun () ->
        let n = 1000 in
        Alcotest.(check (float 1e-12))
          "formula"
          (Float.pow 1000.0 (-.log 1000.0))
          (Flex.delta_for_size n));
    Alcotest.test_case "analyze_only returns smooth bounds without a database" `Quick
      (fun () ->
        let _, _, metrics = setup () in
        match
          Flex.analyze_only ~options:(opts ())
            ~metrics "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"
        with
        | Ok (_, [ (name, _, smooth) ]) ->
          Alcotest.(check string) "column" "count" name;
          Alcotest.(check bool) "positive bound" true (smooth.Flex_dp.Smooth.smooth_bound >= 1.0)
        | Ok _ -> Alcotest.fail "expected one bound"
        | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r));
    Alcotest.test_case "round_counts releases integers" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = Flex.options ~epsilon:1.0 ~delta:1e-8 ~round_counts:true () in
        match Flex.run_sql ~rng ~options ~db ~metrics "SELECT COUNT(*) FROM trips" with
        | Ok r -> (
          match r.Flex.noisy.rows with
          | [ [| Value.Int _ |] ] -> ()
          | _ -> Alcotest.fail "expected integer release")
        | Error _ -> Alcotest.fail "rejected");
  ]

let histogram_tests =
  [
    Alcotest.test_case "public bins are enumerated with noisy zeros" `Quick (fun () ->
        let ctx = setup () in
        let release =
          run_ok ctx
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
             c.id WHERE t.requested_at = '2016-03-14' GROUP BY c.name"
        in
        Alcotest.(check bool) "enumerated" true release.Flex.bins_enumerated;
        (* all cities present in the noisy output *)
        let _, db, _ = ctx in
        let n_cities =
          Flex_engine.Table.row_count (Flex_engine.Database.find db "cities")
        in
        Alcotest.(check int) "one row per city" n_cities
          (List.length release.Flex.noisy.rows));
    Alcotest.test_case "protected bins are not enumerated" `Quick (fun () ->
        let ctx = setup () in
        let release =
          run_ok ctx "SELECT t.driver_id, COUNT(*) FROM trips t GROUP BY t.driver_id"
        in
        Alcotest.(check bool) "not enumerated" false release.Flex.bins_enumerated);
    Alcotest.test_case "enumeration can be disabled" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = Flex.options ~epsilon:1.0 ~delta:1e-8 ~enumerate_bins:false () in
        match
          Flex.run_sql ~rng ~options ~db ~metrics
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
             c.id GROUP BY c.name"
        with
        | Ok r -> Alcotest.(check bool) "off" false r.Flex.bins_enumerated
        | Error _ -> Alcotest.fail "rejected");
    Alcotest.test_case "median error aligns enumerated bins with truth" `Quick (fun () ->
        let ctx = setup () in
        let release =
          run_ok ~epsilon:100.0 ctx
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
             c.id GROUP BY c.name"
        in
        match Flex.median_relative_error release with
        | Some e -> Alcotest.(check bool) "small at huge epsilon" true (e < 5.0)
        | None -> Alcotest.fail "no error computed");
  ]

let public_opt_tests =
  [
    Alcotest.test_case "optimisation lowers the smooth bound" `Quick (fun () ->
        let _, _, metrics = setup () in
        let sql =
          "SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id"
        in
        let bound ~public_optimization =
          let options =
            Flex.options ~epsilon:0.1 ~delta:1e-8 ~public_optimization ()
          in
          match Flex.analyze_only ~options ~metrics sql with
          | Ok (_, [ (_, _, smooth) ]) -> smooth.Flex_dp.Smooth.smooth_bound
          | _ -> Alcotest.fail "analysis failed"
        in
        let with_opt = bound ~public_optimization:true in
        let without = bound ~public_optimization:false in
        Alcotest.(check bool) "strictly better" true (with_opt < without);
        Alcotest.(check (float 1e-9)) "optimised bound is 1" 1.0 with_opt);
  ]

let suites =
  [
    ("flex-mechanism", mechanism_tests);
    ("flex-histogram", histogram_tests);
    ("flex-public-opt", public_opt_tests);
  ]

(* --- Cauchy-noise mechanism (appended) -------------------------------------- *)

let cauchy_suite =
  [
    Alcotest.test_case "cauchy mode runs and uses 6S/eps scales" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = Flex.options ~epsilon:1.0 ~delta:1e-8 ~noise:`Cauchy () in
        match Flex.run_sql ~rng ~options ~db ~metrics "SELECT COUNT(*) FROM trips" with
        | Ok r ->
          let c = List.hd r.Flex.column_releases in
          (* stability of a plain count is constant 1, so S = 1, scale = 6 *)
          Alcotest.(check (float 1e-9)) "scale" 6.0 c.Flex.noise_scale;
          Alcotest.(check (float 1e-9)) "beta" (1.0 /. 6.0)
            c.Flex.smooth.Flex_dp.Smooth.beta
        | Error e -> Alcotest.failf "rejected: %s" (Errors.to_string e));
    Alcotest.test_case "cauchy beta differs from laplace beta" `Quick (fun () ->
        let _, _, metrics = setup () in
        let bound noise =
          let options = Flex.options ~epsilon:0.1 ~delta:1e-8 ~noise () in
          match
            Flex.analyze_only ~options ~metrics
              "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"
          with
          | Ok (_, (_, _, smooth) :: _) -> smooth.Flex_dp.Smooth.beta
          | _ -> Alcotest.fail "analysis failed"
        in
        Alcotest.(check bool) "betas differ" true (bound `Cauchy <> bound `Laplace));
  ]

let suites = suites @ [ ("flex-cauchy", cauchy_suite) ]

(* --- confidence intervals (appended) ----------------------------------------- *)

let ci_suite =
  [
    Alcotest.test_case "laplace CI width matches the analytic formula" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = opts () in
        match Flex.run_sql ~rng ~options ~db ~metrics "SELECT COUNT(*) FROM trips" with
        | Ok r -> (
          match Flex.confidence_intervals ~alpha:0.05 ~options r with
          | [ ("count", width) ] ->
            let scale = (List.hd r.Flex.column_releases).Flex.noise_scale in
            Alcotest.(check (float 1e-9)) "-b ln alpha" (-.scale *. log 0.05) width
          | _ -> Alcotest.fail "expected one interval")
        | Error _ -> Alcotest.fail "rejected");
    Alcotest.test_case "cauchy CIs are wider than laplace" `Quick (fun () ->
        let _, db, metrics = setup () in
        let width noise =
          let rng = Rng.create ~seed:1 () in
          let options = Flex.options ~epsilon:1.0 ~delta:1e-8 ~noise () in
          match
            Flex.run_sql ~rng ~options ~db ~metrics "SELECT COUNT(*) FROM trips"
          with
          | Ok r -> snd (List.hd (Flex.confidence_intervals ~options r))
          | Error _ -> Alcotest.fail "rejected"
        in
        Alcotest.(check bool) "cauchy wider" true (width `Cauchy > width `Laplace));
  ]

let suites = suites @ [ ("flex-confidence", ci_suite) ]

(* --- propose-test-release integration (appended) ------------------------------ *)

let ptr_suite =
  [
    Alcotest.test_case "generous proposal releases with low noise" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = opts () in
        (* no-join count: ES is constant 1, any proposal > 1 passes *)
        match
          Flex.run_ptr ~rng ~options ~db ~metrics ~proposed_sensitivity:5.0
            "SELECT COUNT(*) FROM trips"
        with
        | Ok { outcome = Flex_dp.Ptr.Released v; true_value; _ } ->
          Alcotest.(check bool) "close to truth" true (Float.abs (v -. true_value) < 200.0)
        | Ok { outcome = Flex_dp.Ptr.Refused; _ } -> Alcotest.fail "unexpected refusal"
        | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r));
    Alcotest.test_case "undershooting proposal refuses" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = opts () in
        (* join query: ES(0) = mf >> 1, so proposing 1 must refuse *)
        match
          Flex.run_ptr ~rng ~options ~db ~metrics ~proposed_sensitivity:1.0
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"
        with
        | Ok { outcome = Flex_dp.Ptr.Refused; distance_bound; _ } ->
          Alcotest.(check int) "distance bound 0" 0 distance_bound
        | Ok { outcome = Flex_dp.Ptr.Released _; _ } -> Alcotest.fail "must refuse"
        | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r));
    Alcotest.test_case "histograms are not eligible" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = opts () in
        match
          Flex.run_ptr ~rng ~options ~db ~metrics ~proposed_sensitivity:5.0
            "SELECT status, COUNT(*) FROM trips GROUP BY status"
        with
        | Error (Errors.Analysis_error _) -> ()
        | _ -> Alcotest.fail "expected analysis error");
  ]

let suites = suites @ [ ("flex-ptr", ptr_suite) ]

(* --- report rendering (appended) ----------------------------------------------- *)

let contains s sub = Astring.String.is_infix ~affix:sub s

let report_suite =
  [
    Alcotest.test_case "release report carries the key facts" `Quick (fun () ->
        let rng, db, metrics = setup () in
        let options = opts () in
        let sql =
          "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
           GROUP BY c.name"
        in
        match Flex.run_sql ~rng ~options ~db ~metrics sql with
        | Error _ -> Alcotest.fail "rejected"
        | Ok release ->
          let report = Flex_core.Report.of_release ~sql ~options release in
          List.iter
            (fun needle ->
              Alcotest.(check bool) needle true (contains report needle))
            [
              "Differentially private release"; "epsilon = 1"; "histogram";
              "COUNT"; "Expected accuracy"; "95%"; "bins enumerated";
            ]);
    Alcotest.test_case "rejection report gives a hint" `Quick (fun () ->
        let report =
          Flex_core.Report.of_rejection ~sql:"SELECT id FROM trips"
            (Flex_core.Errors.Unsupported Flex_core.Errors.Raw_data_query)
        in
        Alcotest.(check bool) "hint" true (contains report "hint");
        Alcotest.(check bool) "mentions aggregates" true (contains report "COUNT"));
  ]

let suites = suites @ [ ("flex-report", report_suite) ]
