module Ast = Flex_sql.Ast
module Lexer = Flex_sql.Lexer
module Token = Flex_sql.Token
module Parser = Flex_sql.Parser
module Pretty = Flex_sql.Pretty
module Features = Flex_sql.Features

let parse_ok sql =
  match Parser.parse sql with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse failed for %s: %s" sql e

let parse_err sql =
  match Parser.parse sql with
  | Ok _ -> Alcotest.failf "expected parse failure for %s" sql
  | Error _ -> ()

(* --- lexer ------------------------------------------------------------------ *)

let tokens sql = Array.to_list (Lexer.tokenize sql) |> List.map (fun s -> s.Token.tok)

let lexer_tests =
  [
    Alcotest.test_case "keywords are case-insensitive" `Quick (fun () ->
        match tokens "select SeLeCt SELECT" with
        | [ Token.KW "SELECT"; Token.KW "SELECT"; Token.KW "SELECT"; Token.EOF ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "identifiers are lowercased" `Quick (fun () ->
        match tokens "TripCount" with
        | [ Token.IDENT "tripcount"; Token.EOF ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "quoted identifiers keep case" `Quick (fun () ->
        match tokens "\"TripCount\" `Other`" with
        | [ Token.QIDENT "TripCount"; Token.QIDENT "Other"; Token.EOF ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "string escapes" `Quick (fun () ->
        match tokens "'it''s'" with
        | [ Token.STRING_LIT "it's"; Token.EOF ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "numbers" `Quick (fun () ->
        match tokens "42 3.5 1e3 2.5e-2" with
        | [ Token.INT_LIT 42; Token.FLOAT_LIT a; Token.FLOAT_LIT b; Token.FLOAT_LIT c; Token.EOF ]
          ->
          Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
          Alcotest.(check (float 1e-9)) "1e3" 1000.0 b;
          Alcotest.(check (float 1e-9)) "2.5e-2" 0.025 c
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        match tokens "SELECT -- comment\n /* block\ncomment */ 1" with
        | [ Token.KW "SELECT"; Token.INT_LIT 1; Token.EOF ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "operators" `Quick (fun () ->
        match tokens "<= >= <> != = || %" with
        | [ Token.LE; Token.GE; Token.NEQ; Token.NEQ; Token.EQ; Token.CONCAT_OP; Token.PERCENT; Token.EOF ]
          ->
          ()
        | _ -> Alcotest.fail "unexpected tokens");
    Alcotest.test_case "unterminated string errors with position" `Quick (fun () ->
        match Lexer.tokenize "SELECT 'oops" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Lexer.Error { line; col; _ } ->
          Alcotest.(check int) "line" 1 line;
          Alcotest.(check int) "col" 8 col);
  ]

(* --- parser ------------------------------------------------------------------ *)

let parser_tests =
  [
    Alcotest.test_case "simple count" `Quick (fun () ->
        let q = parse_ok "SELECT COUNT(*) FROM trips" in
        match q.Ast.body with
        | Ast.Select { projections = [ Ast.Proj_expr (Ast.Agg { func = Ast.Count; arg = Ast.Star; _ }, None) ]; from = [ Ast.Table { name = "trips"; alias = None } ]; _ } ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "operator precedence" `Quick (fun () ->
        let e = Parser.parse_expr_exn "1 + 2 * 3" in
        match e with
        | Ast.Binop (Ast.Add, Ast.Lit (Ast.Int 1), Ast.Binop (Ast.Mul, _, _)) -> ()
        | _ -> Alcotest.fail "precedence wrong");
    Alcotest.test_case "AND binds tighter than OR" `Quick (fun () ->
        match Parser.parse_expr_exn "a OR b AND c" with
        | Ast.Binop (Ast.Or, _, Ast.Binop (Ast.And, _, _)) -> ()
        | _ -> Alcotest.fail "precedence wrong");
    Alcotest.test_case "NOT IN" `Quick (fun () ->
        match Parser.parse_expr_exn "x NOT IN (1, 2)" with
        | Ast.In { negated = true; set = Ast.In_list [ _; _ ]; _ } -> ()
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "BETWEEN does not swallow AND" `Quick (fun () ->
        match Parser.parse_expr_exn "x BETWEEN 1 AND 2 AND y = 3" with
        | Ast.Binop (Ast.And, Ast.Between _, Ast.Binop (Ast.Eq, _, _)) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "join chain is left-nested" `Quick (fun () ->
        let q = parse_ok "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y" in
        match q.Ast.body with
        | Ast.Select { from = [ Ast.Join { left = Ast.Join { left = Ast.Table { name = "a"; _ }; _ }; right = Ast.Table { name = "c"; _ }; _ } ]; _ } ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "outer join variants" `Quick (fun () ->
        let q = parse_ok "SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x RIGHT JOIN c ON a.y = c.y FULL JOIN d ON a.z = d.z" in
        let kinds =
          List.map (fun (k, _, _, _) -> k) (Ast.joins_of_query q) |> List.sort compare
        in
        Alcotest.(check int) "three joins" 3 (List.length kinds);
        Alcotest.(check bool) "left present" true (List.mem Ast.Left kinds);
        Alcotest.(check bool) "right present" true (List.mem Ast.Right kinds);
        Alcotest.(check bool) "full present" true (List.mem Ast.Full kinds));
    Alcotest.test_case "cte with column list" `Quick (fun () ->
        let q = parse_ok "WITH t (a, b) AS (SELECT 1, 2) SELECT a FROM t" in
        match q.Ast.ctes with
        | [ { Ast.cte_name = "t"; cte_columns = [ "a"; "b" ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected CTEs");
    Alcotest.test_case "order by limit offset" `Quick (fun () ->
        let q = parse_ok "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5" in
        Alcotest.(check int) "order keys" 2 (List.length q.Ast.order_by);
        Alcotest.(check (option int)) "limit" (Some 10) q.Ast.limit;
        Alcotest.(check (option int)) "offset" (Some 5) q.Ast.offset);
    Alcotest.test_case "count distinct" `Quick (fun () ->
        let q = parse_ok "SELECT COUNT(DISTINCT x) FROM t" in
        match q.Ast.body with
        | Ast.Select { projections = [ Ast.Proj_expr (Ast.Agg { distinct = true; _ }, _) ]; _ } ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "scalar subquery and exists" `Quick (fun () ->
        let q = parse_ok "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u) AND x = (SELECT MAX(y) FROM u)" in
        match q.Ast.body with
        | Ast.Select { where = Some w; _ } ->
          Alcotest.(check int) "two subqueries" 2 (List.length (Ast.expr_subqueries w))
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "set operation precedence" `Quick (fun () ->
        let q = parse_ok "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v" in
        match q.Ast.body with
        | Ast.Union { right = Ast.Intersect _; _ } -> ()
        | _ -> Alcotest.fail "INTERSECT should bind tighter");
    Alcotest.test_case "schema-qualified table names" `Quick (fun () ->
        let q = parse_ok "SELECT 1 FROM warehouse.trips" in
        match q.Ast.body with
        | Ast.Select { from = [ Ast.Table { name = "warehouse.trips"; _ } ]; _ } -> ()
        | _ -> Alcotest.fail "unexpected AST");
    Alcotest.test_case "errors carry positions" `Quick (fun () ->
        match Parser.parse "SELECT FROM" with
        | Error msg -> Alcotest.(check bool) "mentions line" true
                         (Astring.String.is_infix ~affix:"line 1" msg
                          || String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "rejects garbage" `Quick (fun () ->
        parse_err "SELECT";
        parse_err "FROM t";
        parse_err "SELECT * FROM";
        parse_err "SELECT * FROM t WHERE";
        parse_err "SELECT * FROM t GROUP");
    Alcotest.test_case "trailing semicolon tolerated, trailing junk rejected" `Quick
      (fun () ->
        ignore (parse_ok "SELECT 1;");
        parse_err "SELECT 1; SELECT 2");
    Alcotest.test_case "trailing semicolons and whitespace round-trip" `Quick (fun () ->
        let q = parse_ok "SELECT COUNT(*) FROM t" in
        List.iter
          (fun sql -> Alcotest.(check bool) sql true (parse_ok sql = q))
          [
            "SELECT COUNT(*) FROM t;";
            "SELECT COUNT(*) FROM t ;; ";
            "  \n\tSELECT COUNT(*) FROM t\n;\n;\n";
            "SELECT COUNT(*) FROM t;\t; ;";
          ];
        parse_err ";";
        parse_err "SELECT 1;; SELECT 2");
  ]

(* --- pretty-printing round trip -------------------------------------------------- *)

(* Random AST generator: bounded-depth expressions and queries built from a
   small vocabulary; the property is parse(print(q)) = q. *)
module Gen = struct
  open QCheck.Gen

  let ident = oneofl [ "a"; "b"; "c"; "t"; "u"; "fare"; "city"; "status" ]

  let lit =
    oneof
      [
        return Ast.Null;
        map (fun b -> Ast.Bool b) bool;
        (* negative literals print as unary negation; keep literals >= 0 so
           the AST round-trip is exact *)
        map (fun i -> Ast.Int i) (int_range 0 1000);
        map (fun f -> Ast.Float f) (map (fun i -> float_of_int i /. 8.0) (int_range 0 1000));
        map (fun s -> Ast.String s) (oneofl [ "x"; "it's"; "2016-01-01"; "100%" ]);
      ]

  let col = map2 (fun t c -> { Ast.table = t; column = c }) (option ident) ident

  let rec expr depth =
    if depth = 0 then oneof [ map (fun l -> Ast.Lit l) lit; map (fun c -> Ast.Col c) col ]
    else
      let sub = expr (depth - 1) in
      frequency
        [
          (2, map (fun l -> Ast.Lit l) lit);
          (3, map (fun c -> Ast.Col c) col);
          ( 3,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le;
                   Ast.Gt; Ast.Ge; Ast.And; Ast.Or; Ast.Concat ])
              sub sub );
          (1, map (fun a -> Ast.Unop (Ast.Not, a)) sub);
          (1, map (fun a -> Ast.Unop (Ast.Neg, a)) sub);
          ( 1,
            map2
              (fun distinct arg -> Ast.Agg { func = Ast.Count; distinct; arg = Ast.Arg arg })
              bool sub );
          ( 1,
            map2
              (fun name args -> Ast.Func (name, args))
              (oneofl [ "lower"; "upper"; "coalesce"; "abs" ])
              (list_size (int_range 1 2) sub) );
          ( 1,
            map3
              (fun subject negated (lo, hi) -> Ast.Between { subject; negated; lo; hi })
              sub bool (pair sub sub) );
          ( 1,
            map2
              (fun subject negated -> Ast.Is_null { subject; negated })
              sub bool );
          ( 1,
            map3
              (fun subject negated es ->
                Ast.In { subject; negated; set = Ast.In_list es })
              sub bool
              (list_size (int_range 1 3) sub) );
          ( 1,
            map2
              (fun branches else_ -> Ast.Case { operand = None; branches; else_ })
              (list_size (int_range 1 2) (pair sub sub))
              (option sub) );
        ]

  let projection =
    frequency
      [
        (1, return Ast.Proj_star);
        (1, map (fun t -> Ast.Proj_table_star t) ident);
        (4, map2 (fun e a -> Ast.Proj_expr (e, a)) (expr 2) (option ident));
      ]

  let rec table_ref depth =
    if depth = 0 then
      map2 (fun n a -> Ast.Table { name = n; alias = a }) ident (option ident)
    else
      frequency
        [
          (3, map2 (fun n a -> Ast.Table { name = n; alias = a }) ident (option ident));
          ( 2,
            map3
              (fun kind (l, r) cond -> Ast.Join { kind; left = l; right = r; cond })
              (oneofl [ Ast.Inner; Ast.Left; Ast.Right; Ast.Full ])
              (pair (table_ref (depth - 1)) (table_ref 0))
              (oneof
                 [
                   map (fun e -> Ast.On e) (expr 1);
                   map (fun cols -> Ast.Using cols) (list_size (int_range 1 2) ident);
                 ]) );
          ( 1,
            map2
              (fun q a -> Ast.Derived { query = q; alias = a })
              (query (depth - 1))
              ident );
        ]

  and select depth =
    let* distinct = bool in
    let* projections = list_size (int_range 1 3) projection in
    let* from = list_size (int_range 0 1) (table_ref depth) in
    let* where = option (expr 2) in
    let* group_by = list_size (int_range 0 2) (map (fun c -> Ast.Col c) col) in
    let* having = if group_by = [] then return None else option (expr 1) in
    return { Ast.distinct; projections; from; where; group_by; having }

  and body depth =
    if depth = 0 then map (fun s -> Ast.Select s) (select 0)
    else
      frequency
        [
          (5, map (fun s -> Ast.Select s) (select depth));
          ( 1,
            map3
              (fun all l r -> Ast.Union { all; left = l; right = r })
              bool (body (depth - 1)) (body 0) );
          ( 1,
            map3
              (fun all l r -> Ast.Intersect { all; left = l; right = r })
              bool (body (depth - 1)) (body 0) );
        ]

  and query depth =
    let* ctes =
      if depth = 0 then return []
      else
        list_size (int_range 0 1)
          (map2
             (fun name q -> { Ast.cte_name = name; cte_columns = []; cte_query = q })
             (oneofl [ "w1"; "w2" ])
             (query 0))
    in
    let* b = body depth in
    let* order_by =
      list_size (int_range 0 2) (pair (map (fun c -> Ast.Col c) col) (oneofl [ Ast.Asc; Ast.Desc ]))
    in
    let* limit = option (int_range 0 100) in
    let* offset = if limit = None then return None else option (int_range 0 10) in
    return { Ast.ctes; body = b; order_by; limit; offset }
end

let arb_query =
  QCheck.make ~print:Pretty.to_string (Gen.query 2)

let roundtrip_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parse(print(q)) = q" ~count:500 arb_query (fun q ->
           let printed = Pretty.to_string q in
           match Parser.parse printed with
           | Ok q2 ->
             if q = q2 then true
             else
               QCheck.Test.fail_reportf "roundtrip mismatch:@.%s@.vs@.%s" printed
                 (Pretty.to_string q2)
           | Error e -> QCheck.Test.fail_reportf "reparse failed: %s@.%s" e printed));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parse(print(q) ^ \" ;; \") = q" ~count:200 arb_query
         (fun q ->
           let printed = Pretty.to_string q ^ " ;;\n " in
           match Parser.parse printed with
           | Ok q2 -> q = q2
           | Error e -> QCheck.Test.fail_reportf "reparse failed: %s@.%s" e printed));
    Alcotest.test_case "pretty quotes reserved words" `Quick (fun () ->
        let q =
          Ast.query_of_select
            {
              Ast.empty_select with
              projections = [ Ast.Proj_expr (Ast.col "union", None) ];
              from = [ Ast.Table { name = "t"; alias = None } ];
            }
        in
        let printed = Pretty.to_string q in
        Alcotest.(check bool) "quoted" true
          (Astring.String.is_infix ~affix:"\"union\"" printed);
        match Parser.parse printed with
        | Ok q2 -> Alcotest.(check bool) "roundtrip" true (q = q2)
        | Error e -> Alcotest.fail e);
  ]

(* --- feature extraction -------------------------------------------------------------- *)

let features sql =
  match Features.analyze_sql sql with
  | Ok f -> f
  | Error e -> Alcotest.failf "feature analysis failed: %s" e

let features_tests =
  [
    Alcotest.test_case "join counting" `Quick (fun () ->
        let f = features "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y" in
        Alcotest.(check int) "joins" 2 f.Features.join_count;
        Alcotest.(check bool) "equijoins only" true f.Features.equijoins_only);
    Alcotest.test_case "join condition classes" `Quick (fun () ->
        let f =
          features
            "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x JOIN c ON a.y > c.y \
             JOIN d ON d.z = 3 JOIN e ON (a.x = 1 OR e.w = 2)"
        in
        let get cls = try List.assoc cls f.Features.join_conditions with Not_found -> 0 in
        Alcotest.(check int) "equijoin" 1 (get Features.Equijoin);
        Alcotest.(check int) "column cmp" 1 (get Features.Column_comparison);
        Alcotest.(check int) "literal cmp" 1 (get Features.Literal_comparison);
        Alcotest.(check int) "compound" 1 (get Features.Compound_expression));
    Alcotest.test_case "self join detection" `Quick (fun () ->
        let f = features "SELECT COUNT(*) FROM t a JOIN t b ON a.x = b.x" in
        Alcotest.(check bool) "self" true f.Features.has_self_join;
        let f2 = features "SELECT COUNT(*) FROM t a JOIN u b ON a.x = b.x" in
        Alcotest.(check bool) "not self" false f2.Features.has_self_join);
    Alcotest.test_case "statistical classification" `Quick (fun () ->
        Alcotest.(check bool) "count is statistical" true
          (features "SELECT COUNT(*) FROM t").Features.is_statistical;
        Alcotest.(check bool) "group keys allowed" true
          (features "SELECT city, COUNT(*) FROM t GROUP BY city").Features.is_statistical;
        Alcotest.(check bool) "raw is not" false
          (features "SELECT a, b FROM t").Features.is_statistical;
        Alcotest.(check bool) "star is not" false
          (features "SELECT * FROM t").Features.is_statistical);
    Alcotest.test_case "aggregates counted" `Quick (fun () ->
        let f = features "SELECT COUNT(*), SUM(x), AVG(y) FROM t" in
        Alcotest.(check int) "three aggregate kinds" 3 (List.length f.Features.aggregates));
    Alcotest.test_case "joins inside derived tables counted" `Quick (fun () ->
        let f =
          features "SELECT COUNT(*) FROM (SELECT a.x FROM a JOIN b ON a.x = b.x) s"
        in
        Alcotest.(check int) "join found" 1 f.Features.join_count);
  ]

let suites =
  [
    ("lexer", lexer_tests);
    ("parser", parser_tests);
    ("pretty-roundtrip", roundtrip_tests);
    ("features", features_tests);
  ]

(* --- kitchen-sink parse acceptance (appended) --------------------------------- *)

let kitchen_sink =
  [
    (* multi-line with comments everywhere *)
    "SELECT /* leading */ COUNT(*) -- trailing\nFROM trips -- another\nWHERE fare > 10";
    (* deeply nested derived tables *)
    "SELECT COUNT(*) FROM (SELECT * FROM (SELECT * FROM (SELECT id FROM t) a) b) c";
    (* quoted identifiers with reserved words and case *)
    "SELECT \"select\", \"Group\" FROM \"order\" WHERE \"select\" = 1";
    (* aggregate-heavy projection with aliases *)
    "SELECT COUNT(*) total, SUM(x) AS sx, AVG(y) avg_y, MIN(z) mn, MAX(z) mx FROM t GROUP BY g";
    (* case inside group by and order by *)
    "SELECT CASE WHEN x > 0 THEN 'p' ELSE 'n' END s, COUNT(*) FROM t GROUP BY \
     CASE WHEN x > 0 THEN 'p' ELSE 'n' END ORDER BY CASE WHEN x > 0 THEN 'p' ELSE 'n' END";
    (* chained CTEs referencing each other with column lists *)
    "WITH a (x) AS (SELECT 1), b (y) AS (SELECT x + 1 FROM a) SELECT y FROM b";
    (* join zoo *)
    "SELECT 1 FROM a JOIN b ON a.i = b.i LEFT JOIN c ON b.j = c.j RIGHT OUTER \
     JOIN d ON c.k = d.k FULL OUTER JOIN e ON d.l = e.l CROSS JOIN f NATURAL JOIN g";
    (* in/between/like soup with NOT variants *)
    "SELECT 1 FROM t WHERE a IN (1, 2) AND b NOT IN (SELECT c FROM u) AND d \
     BETWEEN 1 AND 9 AND e NOT BETWEEN 2 AND 3 AND f LIKE 'x%' AND g NOT LIKE '_y'";
    (* arithmetic precedence stress *)
    "SELECT -a + b * c - d / e % f || 'g' FROM t";
    (* exists / scalar subquery combination *)
    "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a) AND t.b > \
     (SELECT AVG(b) FROM t)";
    (* union chains with parenthesised operands and final order *)
    "(SELECT a FROM t) UNION ALL (SELECT b FROM u) EXCEPT SELECT c FROM v ORDER BY 1 LIMIT 7";
    (* schema-qualified everything *)
    "SELECT COUNT(*) FROM warehouse.trips w JOIN warehouse.drivers d ON w.id = d.id";
    (* cast zoo *)
    "SELECT CAST(a AS int), CAST(b AS varchar(32)), CAST(c AS decimal(10,2)) FROM t";
    (* semicolon and whitespace tolerance *)
    "   SELECT 1   ;   ";
    (* using with multiple columns *)
    "SELECT COUNT(*) FROM a JOIN b USING (x, y, z)";
    (* distinct aggregates mixed with plain *)
    "SELECT COUNT(DISTINCT a), COUNT(a), SUM(DISTINCT b) FROM t";
    (* group by expression with having on aggregate *)
    "SELECT a % 7, COUNT(*) FROM t GROUP BY a % 7 HAVING COUNT(*) >= 2 AND SUM(b) < 100";
    (* string escapes *)
    "SELECT 'it''s', '100%', '_under_' FROM t";
    (* very long conjunction *)
    "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2 AND c = 3 AND d = 4 AND e = 5 \
     AND f = 6 AND g = 7 AND h = 8 AND i = 9 AND j = 10";
    (* offset without explicit order *)
    "SELECT a FROM t LIMIT 5 OFFSET 10";
  ]

let kitchen_sink_tests =
  [
    Alcotest.test_case "kitchen sink parses and round-trips" `Quick (fun () ->
        List.iter
          (fun sql ->
            match Parser.parse sql with
            | Error e -> Alcotest.failf "parse failed: %s\n  %s" e sql
            | Ok q -> (
              let printed = Pretty.to_string q in
              match Parser.parse printed with
              | Ok q2 when q = q2 -> ()
              | Ok _ -> Alcotest.failf "round-trip mismatch for %s" sql
              | Error e -> Alcotest.failf "reparse failed (%s): %s" e printed))
          kitchen_sink);
  ]

let suites = suites @ [ ("kitchen-sink", kitchen_sink_tests) ]
