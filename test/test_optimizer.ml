(* The optimizer's three obligations, each with its own suite:

   1. Semantics: a three-way differential oracle — reference interpreter,
      compiled-unoptimized, compiled-optimized — over the hand-written edge
      cases, targeted optimizer traps (outer joins filtered on the nullable
      side, correlated subqueries under pushed filters, DISTINCT + set ops)
      and a generated workload. Optimized plans may permute row order (join
      reorder and build-side swaps follow the probe side), so they compare
      as sorted multisets with a float tolerance for re-associated AVG/SUM.

   2. Plans: exact snapshots of the optimized plan for canonical queries,
      pinning down which rewrites fire (and, for outer joins with predicates
      on the nullable side, which must not).

   3. Privacy invariance: FLEX releases are bit-identical with the optimizer
      on and off — the analysis runs on the original AST, and fixed-seed
      noise lands on the same true values. *)

module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Reference = Flex_engine.Reference
module Plan = Flex_engine.Plan
module Optimizer = Flex_engine.Optimizer
module Flex = Flex_core.Flex
module Rng = Flex_dp.Rng
module Uber = Flex_workload.Uber
module Qgen = Flex_workload.Qgen
module Wire = Flex_service.Wire
module Server = Flex_service.Server
module Ledger = Flex_dp.Ledger

let fixture = Test_engine.fixture

(* --- three-way differential oracle --------------------------------------------- *)

(* Exact for ints/strings; floats compare within a relative tolerance because
   join reorder re-associates AVG/SUM accumulation. *)
let cell_close (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Float x, Value.Float y ->
    x = y
    || (Float.is_nan x && Float.is_nan y)
    || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> a = b

let row_close a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i va -> if not (cell_close va b.(i)) then ok := false) a;
  !ok

let multiset_close rows_a rows_b =
  let sort = List.sort Stdlib.compare in
  let a = sort rows_a and b = sort rows_b in
  List.length a = List.length b && List.for_all2 row_close a b

let row_to_string row =
  Array.to_list row |> List.map Value.to_string |> String.concat ", "

(* reference == compiled (exact, including order) and compiled == optimized
   (multiset); errors must agree across all three *)
let check_three db metrics sql =
  let reference = Reference.run_sql db sql in
  let compiled = Executor.run_sql db sql in
  let optimized = Executor.run_sql ~optimize:true ~metrics db sql in
  match (reference, compiled, optimized) with
  | Error _, Error _, Error _ -> ()
  | Error e, Ok _, _ -> Alcotest.failf "reference failed, compiled ok (%s): %s" sql e
  | Ok _, Error e, _ -> Alcotest.failf "reference ok, compiled failed (%s): %s" sql e
  | _, Ok _, Error e -> Alcotest.failf "compiled ok, optimized failed (%s): %s" sql e
  | _, Error _, Ok _ -> Alcotest.failf "compiled failed, optimized ok (%s)" sql
  | Ok r, Ok c, Ok o ->
    Alcotest.(check (list string)) (sql ^ ": columns") r.Reference.columns c.Executor.columns;
    Alcotest.(check (list string)) (sql ^ ": opt columns") c.Executor.columns o.Executor.columns;
    if not (List.length r.Reference.rows = List.length c.Executor.rows) then
      Alcotest.failf "compiled row count differs (%s)" sql;
    List.iteri
      (fun i (rr, rc) ->
        if not (row_close rr rc) then
          Alcotest.failf "row %d differs (%s): reference [%s], compiled [%s]" i sql
            (row_to_string rr) (row_to_string rc))
      (List.combine r.Reference.rows c.Executor.rows);
    if not (multiset_close c.Executor.rows o.Executor.rows) then
      Alcotest.failf "optimized result multiset differs (%s): %d vs %d rows" sql
        (List.length c.Executor.rows)
        (List.length o.Executor.rows)

(* Queries aimed at the rewrites themselves: every rule that can fire has a
   case here, and every rule that must NOT fire has a trap. *)
let optimizer_trap_queries =
  [
    (* outer joins with WHERE on the nullable side: null-rejecting converts,
       null-accepting must not *)
    "SELECT p.name, t.kind FROM people p LEFT JOIN pets t ON p.id = t.owner_id \
     WHERE t.kind = 'cat'";
    "SELECT p.name, t.kind FROM people p LEFT JOIN pets t ON p.id = t.owner_id \
     WHERE t.kind IS NULL";
    "SELECT p.name FROM people p RIGHT JOIN pets t ON p.id = t.owner_id WHERE p.age > 30";
    "SELECT p.name FROM people p RIGHT JOIN pets t ON p.id = t.owner_id \
     WHERE p.name IS NULL";
    "SELECT p.name FROM people p FULL JOIN pets t ON p.id = t.owner_id \
     WHERE p.age > 30 AND t.kind = 'cat'";
    "SELECT c.name, p.name FROM cities c FULL JOIN people p ON c.id = p.city_id \
     WHERE c.name = 'sf'";
    "SELECT p.name FROM people p LEFT JOIN pets t ON p.id = t.owner_id \
     WHERE p.age > 30";
    (* correlated subqueries under pushed filters *)
    "SELECT name FROM people p WHERE city_id = 1 AND EXISTS \
     (SELECT 1 FROM pets t WHERE t.owner_id = p.id)";
    "SELECT p.name FROM people p JOIN cities c ON p.city_id = c.id \
     WHERE c.name = 'sf' AND (SELECT COUNT(*) FROM pets t WHERE t.owner_id = p.id) > 0";
    "SELECT x.name FROM (SELECT name, id, age FROM people) x \
     WHERE x.age > 20 AND EXISTS (SELECT 1 FROM pets t WHERE t.owner_id = x.id)";
    "SELECT name FROM people p WHERE age > \
     (SELECT AVG(age) FROM people q WHERE q.city_id = p.city_id) AND p.age > 20";
    (* DISTINCT + set operations over optimizable arms *)
    "SELECT DISTINCT city_id FROM people WHERE age > 20 \
     UNION SELECT id FROM cities WHERE name = 'sf'";
    "SELECT city_id FROM people WHERE age > 0 \
     EXCEPT ALL SELECT id FROM cities WHERE name <> 'sf'";
    "SELECT DISTINCT p.city_id FROM people p JOIN pets t ON p.id = t.owner_id \
     WHERE t.kind = 'cat' INTERSECT SELECT id FROM cities";
    (* CTEs: single-use inlines, multi-use must not *)
    "WITH w AS (SELECT id, city_id FROM people WHERE age > 20) \
     SELECT COUNT(*) FROM w WHERE city_id = 1";
    "WITH w AS (SELECT id FROM people) SELECT a.id FROM w a JOIN w b ON a.id = b.id";
    "WITH w AS (SELECT id FROM people WHERE age > 30) \
     SELECT name FROM people WHERE id IN (SELECT id FROM w)";
    (* join reorder across a comma-join written in a bad order *)
    "SELECT COUNT(*) FROM pets t, cities c, people p \
     WHERE p.id = t.owner_id AND p.city_id = c.id";
    (* derived-table pruning must not drop aggregate projections: with no
       GROUP BY the aggregate is what makes the inner select one-row *)
    "SELECT k FROM (SELECT COUNT(*) AS c, 42 AS k FROM people) d";
    "SELECT d.k FROM (SELECT 1 AS k, MAX(age) AS m, MIN(age) AS n FROM people) d";
    "SELECT d.city_id FROM (SELECT city_id, COUNT(*) AS c FROM people \
     GROUP BY city_id) d";
    (* trivially-false WHERE *)
    "SELECT COUNT(*) FROM people WHERE FALSE";
    "SELECT name FROM people WHERE NULL";
    "SELECT name FROM people WHERE FALSE AND age > 0";
    (* ORDER BY an unprojected source column through an optimized join *)
    "SELECT p.name FROM people p JOIN cities c ON p.city_id = c.id \
     WHERE c.id > 0 ORDER BY p.age DESC, p.name";
  ]

let differential_tests =
  [
    Alcotest.test_case "edge cases agree three ways" `Quick (fun () ->
        let db = fixture () in
        let metrics = Metrics.compute db in
        List.iter (check_three db metrics) Test_engine.edge_case_queries);
    Alcotest.test_case "optimizer traps agree three ways" `Quick (fun () ->
        let db = fixture () in
        let metrics = Metrics.compute db in
        List.iter (check_three db metrics) optimizer_trap_queries);
    Alcotest.test_case "generated workload agrees three ways" `Quick (fun () ->
        let rng = Rng.create ~seed:19 () in
        let db, metrics = Uber.generate ~sizes:Uber.small_sizes rng in
        let queries =
          Qgen.generate rng ~count:50 ~n_cities:12 ~n_drivers:120 ~n_users:200
        in
        List.iter
          (fun (q : Qgen.t) ->
            check_three db metrics q.sql;
            check_three db metrics q.population_sql)
          queries);
  ]

(* --- plan snapshots -------------------------------------------------------------- *)

let optimized_plan metrics sql =
  Plan.to_string (Optimizer.plan ~metrics (Flex_sql.Parser.parse_exn sql))

let snap name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      let metrics = Metrics.compute (fixture ()) in
      Alcotest.(check string) sql expected (optimized_plan metrics sql))

let snapshot_tests =
  [
    snap "pushdown through inner join splits conjuncts"
      "SELECT p.name FROM people p JOIN cities c ON p.city_id = c.id WHERE c.name = 'sf' AND p.age > 30"
      "Project [p.name]\n\
       \  INNER JOIN [hash on p.city_id = c.id]\n\
       \    Filter (p.age > 30)\n\
       \      Scan people AS p\n\
       \    Filter (c.name = 'sf')\n\
       \      Scan cities AS c\n";
    snap "null-rejecting WHERE converts LEFT JOIN to INNER and pushes"
      "SELECT p.name FROM people p LEFT JOIN pets t ON p.id = t.owner_id WHERE t.kind = 'cat'"
      "Project [p.name]\n\
       \  INNER JOIN [hash on p.id = t.owner_id]\n\
       \    Scan people AS p\n\
       \    Filter (t.kind = 'cat')\n\
       \      Scan pets AS t\n";
    snap "IS NULL on the nullable side keeps the LEFT JOIN and stays above"
      "SELECT p.name, t.kind FROM people p LEFT JOIN pets t ON p.id = t.owner_id WHERE t.kind IS NULL"
      "Project [p.name, t.kind]\n\
       \  Filter (t.kind IS NULL)\n\
       \    LEFT JOIN [hash on p.id = t.owner_id]\n\
       \      Scan people AS p\n\
       \      Scan pets AS t\n";
    snap "preserved-side predicate pushes below the LEFT JOIN"
      "SELECT p.name FROM people p LEFT JOIN pets t ON p.id = t.owner_id WHERE p.age > 30"
      "Project [p.name]\n\
       \  LEFT JOIN [hash on p.id = t.owner_id] build=left\n\
       \    Filter (p.age > 30)\n\
       \      Scan people AS p\n\
       \    Scan pets AS t\n";
    snap "predicate sinks into a derived table and prunes its projections"
      "SELECT x.name FROM (SELECT name, age FROM people) x WHERE x.age > 30"
      "Project [x.name]\n\
       \  Derived AS x\n\
       \    Project [name]\n\
       \      Filter (age > 30)\n\
       \        Scan people\n";
    snap "unused derived projections are pruned"
      "SELECT x.name FROM (SELECT name, age, city_id FROM people) x"
      "Project [x.name]\n\
       \  Derived AS x\n\
       \    Project [name]\n\
       \      Scan people\n";
    snap "single-use CTE inlines and prunes"
      "WITH w AS (SELECT id, age FROM people WHERE age > 30) SELECT COUNT(*) FROM w"
      "Aggregate [COUNT(*)]\n\
       \  Derived AS w\n\
       \    Project [id]\n\
       \      Filter (age > 30)\n\
       \        Scan people\n";
    snap "constant folding inside projections and predicates"
      "SELECT 1 + 2 * 3 AS x FROM people WHERE age > 0 + 10"
      "Project [7 AS x]\n\
       \  Filter (age > 10)\n\
       \    Scan people\n";
    snap "trivially-false WHERE empties the scan"
      "SELECT name FROM people WHERE FALSE"
      "Project [name]\n\
       \  Filter FALSE\n\
       \    Filter FALSE\n\
       \      Scan people\n";
    snap "comma joins upgrade to hash joins with pushed dimension filter"
      "SELECT COUNT(*) FROM people p, pets t, cities c WHERE p.id = t.owner_id AND p.city_id = c.id AND c.name = 'sf'"
      "Aggregate [COUNT(*)]\n\
       \  INNER JOIN [hash on p.city_id = c.id]\n\
       \    INNER JOIN [hash on p.id = t.owner_id]\n\
       \      Scan people AS p\n\
       \      Scan pets AS t\n\
       \    Filter (c.name = 'sf')\n\
       \      Scan cities AS c\n";
    snap "join reorder avoids the cross join"
      "SELECT COUNT(*) FROM pets t, cities c, people p WHERE p.id = t.owner_id AND p.city_id = c.id"
      "Aggregate [COUNT(*)]\n\
       \  INNER JOIN [hash on p.id = t.owner_id]\n\
       \    INNER JOIN [hash on p.city_id = c.id] build=left\n\
       \      Scan cities AS c\n\
       \      Scan people AS p\n\
       \    Scan pets AS t\n";
    snap "hash join builds on the estimated-smaller side"
      "SELECT COUNT(*) FROM cities c JOIN people p ON c.id = p.city_id"
      "Aggregate [COUNT(*)]\n\
       \  INNER JOIN [hash on c.id = p.city_id] build=left\n\
       \    Scan cities AS c\n\
       \    Scan people AS p\n";
    snap "unreferenced aggregate projections in derived tables are never pruned"
      (* dropping the count aggregate would demote the ungrouped inner
         select from a one-row aggregate to a per-row projection *)
      "SELECT d.k FROM (SELECT COUNT(*) AS c, 42 AS k FROM people) d"
      "Project [d.k]\n\
       \  Derived AS d\n\
       \    Aggregate [COUNT(*)]\n\
       \      Scan people\n";
    Alcotest.test_case "missing stats keep the historical build-right side" `Quick
      (fun () ->
        (* no metrics -> no estimates: of_query's probe-left/build-right
           orientation must survive, so the stats-free optimized path keeps
           the historical row order *)
        let sql = "SELECT p.name, t.kind FROM people p JOIN pets t ON p.id = t.owner_id" in
        let plan = Optimizer.plan (Flex_sql.Parser.parse_exn sql) in
        Alcotest.(check bool) "no build=left without stats" false
          (Astring.String.is_infix ~affix:"build=left" (Plan.to_string plan));
        let db = fixture () in
        match (Executor.run_sql db sql, Executor.run_sql ~optimize:true db sql) with
        | Ok c, Ok o ->
          Alcotest.(check bool) "row order matches unoptimized" true
            (c.Executor.rows = o.Executor.rows)
        | _ -> Alcotest.fail "join failed");
  ]

(* --- privacy invariance ----------------------------------------------------------- *)

let release_fingerprint (r : Flex.release) =
  ( r.noisy.columns,
    r.noisy.rows,
    r.epsilon,
    r.delta,
    List.map (fun (cr : Flex.column_release) -> (cr.name, cr.noise_scale)) r.column_releases )

let dp_invariance_tests =
  [
    Alcotest.test_case "releases are bit-identical with the optimizer on" `Quick
      (fun () ->
        let db, metrics =
          Uber.generate ~sizes:Uber.small_sizes (Rng.create ~seed:23 ())
        in
        let options = Flex.options ~epsilon:0.5 ~delta:1e-6 () in
        List.iter
          (fun sql ->
            let go optimize =
              (* fresh fixed-seed RNG per run so both draws see the same noise *)
              let rng = Rng.create ~seed:91 () in
              match Flex.run_sql ~optimize ~rng ~options ~db ~metrics sql with
              | Ok release -> release_fingerprint release
              | Error r -> Alcotest.failf "%s rejected: %s" sql (Flex_core.Errors.to_string r)
            in
            if go false <> go true then
              Alcotest.failf "release differs with optimizer on: %s" sql)
          [
            "SELECT COUNT(*) FROM trips";
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
             WHERE d.city_id = 1";
            "SELECT COUNT(*) FROM trips t JOIN users u ON t.rider_id = u.id \
             JOIN drivers d ON t.driver_id = d.id WHERE d.status = 'active'";
            "SELECT COUNT(*) FROM trips WHERE fare > 20";
          ]);
    Alcotest.test_case "sensitivity analysis ignores the optimizer" `Quick (fun () ->
        let db, metrics =
          Uber.generate ~sizes:Uber.small_sizes (Rng.create ~seed:23 ())
        in
        ignore db;
        let options = Flex.options ~epsilon:0.5 ~delta:1e-6 () in
        let sql =
          "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
           WHERE d.city_id = 1"
        in
        (* the analysis consumes only the AST and metrics; this pins that the
           optimized execution path leaves its input untouched *)
        match Flex.analyze_only ~options ~metrics sql with
        | Error r -> Alcotest.failf "rejected: %s" (Flex_core.Errors.to_string r)
        | Ok (_, bounds) ->
          Alcotest.(check bool) "has a bound" true (bounds <> []));
  ]

(* --- EXPLAIN through the service ------------------------------------------------- *)

let service_fixture =
  lazy (Uber.generate ~sizes:Uber.small_sizes (Rng.create ~seed:7 ()))

let make_server ?config () =
  let db, metrics = Lazy.force service_fixture in
  let ledger = Ledger.in_memory () in
  Server.create ?config ~db ~metrics ~ledger ~rng:(Rng.create ~seed:11 ()) ()

let explain_join_sql =
  "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
   WHERE d.city_id = 1"

let explain_service_tests =
  [
    Alcotest.test_case "explain op answers with both plans, uncharged" `Quick
      (fun () ->
        let server = make_server () in
        let session = Server.session server in
        match Server.handle server session (Wire.Explain { sql = explain_join_sql }) with
        | Wire.Plan_report { logical; optimized } ->
          let has s sub = Astring.String.is_infix ~affix:sub s in
          Alcotest.(check bool) "logical has scan" true (has logical "Scan trips AS t");
          Alcotest.(check bool) "logical unrewritten" true
            (has logical "Filter (d.city_id = 1)\n    INNER JOIN");
          (* in the optimized plan the filter is a rel node under the join,
             no longer the WHERE above it *)
          Alcotest.(check bool) "optimized pushed down" true
            (has optimized "Filter (d.city_id = 1)\n      Scan drivers AS d");
          Alcotest.(check bool) "optimized WHERE gone" false
            (has optimized "Filter (d.city_id = 1)\n    INNER JOIN");
          (* uncharged EXPLAIN must not echo cardinalities — the estimates
             are seeded from exact private-table row counts *)
          Alcotest.(check bool) "no cardinalities by default" false
            (has logical "(~" || has optimized "(~")
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
    Alcotest.test_case "explain_estimates opts in to cardinality annotations" `Quick
      (fun () ->
        let config = { Server.default_config with explain_estimates = true } in
        let server = make_server ~config () in
        let session = Server.session server in
        match Server.handle server session (Wire.Explain { sql = explain_join_sql }) with
        | Wire.Plan_report { logical; optimized } ->
          let has s sub = Astring.String.is_infix ~affix:sub s in
          Alcotest.(check bool) "pushed filter annotated" true
            (has optimized "Filter (d.city_id = 1)  (~");
          Alcotest.(check bool) "cardinalities rendered" true
            (has logical "(~" && has optimized "(~")
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
    Alcotest.test_case "EXPLAIN SELECT through the query op is free" `Quick (fun () ->
        let server = make_server () in
        let session = Server.session server in
        (match
           Server.handle server session
             (Wire.Hello { analyst = "opt"; epsilon = None; delta = None })
         with
        | Wire.Budget_report _ -> ()
        | other -> Alcotest.failf "hello failed: %s" (Wire.response_to_line other));
        let remaining () =
          match Server.handle server session Wire.Budget_info with
          | Wire.Budget_report b -> (b.remaining_epsilon, b.remaining_delta)
          | other -> Alcotest.failf "budget failed: %s" (Wire.response_to_line other)
        in
        let before = remaining () in
        (match
           Server.handle server session
             (Wire.Query
                {
                  sql = "EXPLAIN SELECT COUNT(*) FROM trips";
                  epsilon = None;
                  delta = None;
                  id = None;
                })
         with
        | Wire.Plan_report { optimized; _ } ->
          Alcotest.(check bool) "plan rendered" true
            (Astring.String.is_infix ~affix:"Scan trips" optimized)
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
        Alcotest.(check bool) "budget untouched" true (before = remaining ()));
    Alcotest.test_case "explain parse failures are typed rejections" `Quick (fun () ->
        let server = make_server () in
        let session = Server.session server in
        match Server.handle server session (Wire.Explain { sql = "SELEKT nope" }) with
        | Wire.Rejected { bucket; _ } -> Alcotest.(check string) "bucket" "parse" bucket
        | other -> Alcotest.failf "unexpected: %s" (Wire.response_to_line other));
  ]

(* --- EXPLAIN statement parsing ---------------------------------------------------- *)

let parse_statement_tests =
  [
    Alcotest.test_case "EXPLAIN prefix parses to an Explain statement" `Quick (fun () ->
        (match Flex_sql.Parser.parse_statement "EXPLAIN SELECT 1" with
        | Ok (Flex_sql.Ast.Explain _) -> ()
        | Ok _ -> Alcotest.fail "expected Explain"
        | Error e -> Alcotest.failf "parse failed: %s" e);
        match Flex_sql.Parser.parse_statement "SELECT 1;" with
        | Ok (Flex_sql.Ast.Query _) -> ()
        | Ok _ -> Alcotest.fail "expected Query"
        | Error e -> Alcotest.failf "parse failed: %s" e);
    Alcotest.test_case "EXPLAIN is a keyword, not a column name" `Quick (fun () ->
        match Flex_sql.Parser.parse "SELECT explain FROM t" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "EXPLAIN should not lex as an identifier");
    Alcotest.test_case "bare EXPLAIN is rejected" `Quick (fun () ->
        match Flex_sql.Parser.parse_statement "EXPLAIN" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "EXPLAIN without a query should fail");
  ]

let suites =
  [
    ("optimizer-differential", differential_tests);
    ("optimizer-plans", snapshot_tests);
    ("optimizer-dp-invariance", dp_invariance_tests);
    ("optimizer-explain-service", explain_service_tests);
    ("optimizer-explain-parse", parse_statement_tests);
  ]
