module Poly = Flex_dp.Poly
module Sens = Flex_dp.Sens
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace
module Smooth = Flex_dp.Smooth
module Budget = Flex_dp.Budget
module Sparse_vector = Flex_dp.Sparse_vector

let check_float = Alcotest.(check (float 1e-9))

(* --- Poly ------------------------------------------------------------------- *)

let poly_gen =
  QCheck.Gen.(
    map
      (fun coeffs -> Poly.of_coeffs (Array.of_list coeffs))
      (list_size (int_range 0 5) (map (fun i -> float_of_int i) (int_range 0 50))))

let arb_poly = QCheck.make ~print:Poly.to_string poly_gen

let poly_tests =
  [
    Alcotest.test_case "constants" `Quick (fun () ->
        check_float "const" 5.0 (Poly.eval (Poly.const 5.0) 17);
        check_float "zero" 0.0 (Poly.eval Poly.zero 3);
        Alcotest.(check int) "degree of zero" (-1) (Poly.degree Poly.zero));
    Alcotest.test_case "linear evaluation" `Quick (fun () ->
        let p = Poly.linear 65.0 1.0 in
        check_float "at 0" 65.0 (Poly.eval p 0);
        check_float "at 19" 84.0 (Poly.eval p 19));
    Alcotest.test_case "multiplication degree" `Quick (fun () ->
        let p = Poly.mul (Poly.linear 1.0 2.0) (Poly.linear 3.0 4.0) in
        Alcotest.(check int) "degree" 2 (Poly.degree p);
        check_float "value at 2" (5.0 *. 11.0) (Poly.eval p 2));
    Alcotest.test_case "normalisation drops trailing zeros" `Quick (fun () ->
        let p = Poly.of_coeffs [| 1.0; 0.0; 0.0 |] in
        Alcotest.(check int) "degree" 0 (Poly.degree p));
    Alcotest.test_case "negative coefficients rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Poly.of_coeffs: coefficients must be non-negative")
          (fun () -> ignore (Poly.of_coeffs [| -1.0 |])));
    Alcotest.test_case "pretty printing" `Quick (fun () ->
        Alcotest.(check string) "131+2k" "131 + 2k" (Poly.to_string (Poly.linear 131.0 2.0));
        Alcotest.(check string) "zero" "0" (Poly.to_string Poly.zero));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"add is pointwise" ~count:200 (QCheck.pair arb_poly arb_poly)
         (fun (p, q) ->
           List.for_all
             (fun k -> Float.abs (Poly.eval (Poly.add p q) k -. (Poly.eval p k +. Poly.eval q k)) < 1e-6)
             [ 0; 1; 2; 7; 30 ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mul is pointwise" ~count:200 (QCheck.pair arb_poly arb_poly)
         (fun (p, q) ->
           List.for_all
             (fun k ->
               let lhs = Poly.eval (Poly.mul p q) k and rhs = Poly.eval p k *. Poly.eval q k in
               Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1.0 (Float.abs rhs))
             [ 0; 1; 2; 7; 30 ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"dominates implies pointwise geq" ~count:200
         (QCheck.pair arb_poly arb_poly) (fun (p, q) ->
           QCheck.assume (Poly.dominates p q);
           List.for_all (fun k -> Poly.eval p k >= Poly.eval q k -. 1e-9) [ 0; 1; 5; 40 ]));
  ]

(* --- Sens -------------------------------------------------------------------- *)

let arb_sens =
  QCheck.make ~print:Sens.to_string
    QCheck.Gen.(
      map
        (fun ps ->
          List.fold_left (fun acc p -> Sens.max_ acc (Sens.of_poly p)) Sens.zero ps)
        (list_size (int_range 1 4) poly_gen))

let sens_tests =
  [
    Alcotest.test_case "constructors" `Quick (fun () ->
        check_float "one at 9" 1.0 (Sens.eval Sens.one 9);
        check_float "linear" 67.0 (Sens.eval (Sens.linear 65.0 1.0) 2);
        Alcotest.(check bool) "zero is zero" true (Sens.is_zero Sens.zero));
    Alcotest.test_case "max keeps both branches" `Quick (fun () ->
        (* 100 (const) vs 2k: crossover at k = 50 *)
        let s = Sens.max_ (Sens.const 100.0) (Sens.linear 0.0 2.0) in
        check_float "below crossover" 100.0 (Sens.eval s 10);
        check_float "above crossover" 200.0 (Sens.eval s 100));
    Alcotest.test_case "domination pruning" `Quick (fun () ->
        let s = Sens.max_ (Sens.linear 5.0 1.0) (Sens.linear 3.0 1.0) in
        Alcotest.(check int) "single poly survives" 1 (List.length (Sens.polys s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"add distributes over max pointwise" ~count:200
         (QCheck.pair arb_sens arb_sens) (fun (a, b) ->
           List.for_all
             (fun k ->
               let lhs = Sens.eval (Sens.add a b) k and rhs = Sens.eval a k +. Sens.eval b k in
               Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1.0 rhs)
             [ 0; 1; 3; 10; 80 ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mul distributes over max pointwise" ~count:200
         (QCheck.pair arb_sens arb_sens) (fun (a, b) ->
           List.for_all
             (fun k ->
               let lhs = Sens.eval (Sens.mul a b) k and rhs = Sens.eval a k *. Sens.eval b k in
               Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1.0 rhs)
             [ 0; 1; 3; 10; 80 ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"max is pointwise max" ~count:200 (QCheck.pair arb_sens arb_sens)
         (fun (a, b) ->
           List.for_all
             (fun k ->
               Float.abs (Sens.eval (Sens.max_ a b) k -. Float.max (Sens.eval a k) (Sens.eval b k))
               < 1e-6)
             [ 0; 1; 3; 10; 80 ]));
  ]

(* --- Rng / Laplace ------------------------------------------------------------- *)

let laplace_tests =
  [
    Alcotest.test_case "determinism under equal seeds" `Quick (fun () ->
        let a = Rng.create ~seed:7 () and b = Rng.create ~seed:7 () in
        for _ = 1 to 100 do
          check_float "same draw" (Laplace.sample a ~scale:3.0) (Laplace.sample b ~scale:3.0)
        done);
    Alcotest.test_case "zero scale is noiseless" `Quick (fun () ->
        let rng = Rng.create () in
        check_float "no noise" 42.0 (Laplace.add_noise rng ~scale:0.0 42.0));
    Alcotest.test_case "empirical mean and variance" `Quick (fun () ->
        let rng = Rng.create ~seed:11 () in
        let n = 50_000 in
        let scale = 2.0 in
        let samples = Array.init n (fun _ -> Laplace.sample rng ~scale) in
        let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
          /. float_of_int n
        in
        Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.1);
        Alcotest.(check bool) "variance near 2b^2" true (Float.abs (var -. 8.0) < 0.8));
    Alcotest.test_case "cdf endpoints" `Quick (fun () ->
        check_float "median" 0.5 (Laplace.cdf ~scale:1.0 0.0);
        Alcotest.(check bool) "monotone" true
          (Laplace.cdf ~scale:1.0 1.0 > Laplace.cdf ~scale:1.0 (-1.0)));
    Alcotest.test_case "confidence width" `Quick (fun () ->
        (* P(|X| <= w) = 1 - alpha with w = -b ln(alpha) *)
        let w = Laplace.confidence_width ~scale:1.0 ~alpha:0.05 in
        check_float "analytic" (-.log 0.05) w);
    Alcotest.test_case "zipf is skewed" `Quick (fun () ->
        let rng = Rng.create ~seed:3 () in
        let table = Rng.zipf_table ~n:100 ~s:1.2 in
        let counts = Array.make 101 0 in
        for _ = 1 to 10_000 do
          let r = Rng.zipf rng table in
          counts.(r) <- counts.(r) + 1
        done;
        Alcotest.(check bool) "rank 1 most frequent" true
          (counts.(1) > counts.(10) && counts.(1) > counts.(50)));
  ]

(* --- Smooth sensitivity --------------------------------------------------------- *)

let smooth_tests =
  [
    Alcotest.test_case "beta formula" `Quick (fun () ->
        check_float "eps/2ln(2/delta)"
          (0.7 /. (2.0 *. log (2.0 /. 1e-8)))
          (Smooth.beta ~epsilon:0.7 ~delta:1e-8));
    Alcotest.test_case "constant sensitivity maximises at k=0" `Quick (fun () ->
        let r = Smooth.of_sens ~beta:0.01 (Sens.const 5.0) in
        check_float "bound" 5.0 r.Smooth.smooth_bound;
        Alcotest.(check int) "argmax" 0 r.Smooth.argmax_k);
    Alcotest.test_case "clamped by database size" `Quick (fun () ->
        let r = Smooth.of_sens ~beta:0.001 ~n:3 (Sens.linear 1.0 1.0) in
        Alcotest.(check bool) "argmax within n" true (r.Smooth.argmax_k <= 3));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"theorem 3 cutoff matches brute force" ~count:60 arb_sens
         (fun s ->
           QCheck.assume (not (Sens.is_zero s));
           let beta = 0.05 in
           let r = Smooth.of_sens ~beta s in
           let brute = ref 0.0 in
           for k = 0 to 2000 do
             let v = exp (-.beta *. float_of_int k) *. Sens.eval s k in
             if v > !brute then brute := v
           done;
           Float.abs (r.Smooth.smooth_bound -. !brute)
           <= 1e-9 *. Float.max 1.0 !brute));
    Alcotest.test_case "noise scale is 2S/eps" `Quick (fun () ->
        let r = Smooth.of_sens ~beta:0.01 (Sens.const 10.0) in
        check_float "scale" 200.0 (Smooth.noise_scale ~epsilon:0.1 r));
  ]

(* --- Budget ------------------------------------------------------------------------ *)

let budget_tests =
  [
    Alcotest.test_case "charges accumulate" `Quick (fun () ->
        let b = Budget.create ~epsilon:1.0 ~delta:1e-6 in
        Budget.charge b ~epsilon:0.3 ~delta:1e-7;
        Budget.charge b ~epsilon:0.3 ~delta:1e-7;
        let e, d = Budget.spent_basic b in
        check_float "eps" 0.6 e;
        check_float "delta" 2e-7 d);
    Alcotest.test_case "exhaustion raises" `Quick (fun () ->
        let b = Budget.create ~epsilon:0.5 ~delta:1e-6 in
        Budget.charge b ~epsilon:0.4 ~delta:0.0;
        Alcotest.(check bool) "cannot afford" false (Budget.can_afford b ~epsilon:0.2 ~delta:0.0);
        (match Budget.charge b ~epsilon:0.2 ~delta:0.0 with
        | () -> Alcotest.fail "expected Exhausted"
        | exception Budget.Exhausted _ -> ());
        let e, _ = Budget.spent_basic b in
        check_float "failed charge not recorded" 0.4 e);
    Alcotest.test_case "strong composition beats basic for many queries" `Quick (fun () ->
        let b = Budget.create ~epsilon:1000.0 ~delta:1.0 in
        for _ = 1 to 200 do
          Budget.charge b ~epsilon:0.05 ~delta:0.0
        done;
        let eb, _ = Budget.spent_basic b in
        let es, _ = Budget.spent_strong b in
        Alcotest.(check bool) "strong < basic" true (es < eb));
    Alcotest.test_case "remaining is clipped at zero" `Quick (fun () ->
        let b = Budget.create ~epsilon:0.1 ~delta:1e-6 in
        Budget.charge b ~epsilon:0.1 ~delta:1e-6;
        let e, d = Budget.remaining b in
        check_float "eps" 0.0 e;
        check_float "delta" 0.0 d);
    Alcotest.test_case "non-positive or non-finite limits are typed errors" `Quick
      (fun () ->
        let invalid ~epsilon ~delta field =
          (match Budget.create_checked ~epsilon ~delta with
          | Error { field = f; _ } -> Alcotest.(check string) "field" field f
          | Ok _ -> Alcotest.failf "accepted eps=%g delta=%g" epsilon delta);
          match Budget.create ~epsilon ~delta with
          | exception Budget.Invalid_budget { field = f; _ } ->
            Alcotest.(check string) "field (exn)" field f
          | _ -> Alcotest.failf "create accepted eps=%g delta=%g" epsilon delta
        in
        invalid ~epsilon:0.0 ~delta:1e-6 "epsilon";
        invalid ~epsilon:(-1.0) ~delta:1e-6 "epsilon";
        invalid ~epsilon:Float.nan ~delta:1e-6 "epsilon";
        invalid ~epsilon:Float.infinity ~delta:1e-6 "epsilon";
        invalid ~epsilon:1.0 ~delta:0.0 "delta";
        invalid ~epsilon:1.0 ~delta:Float.nan "delta";
        invalid ~epsilon:1.0 ~delta:Float.neg_infinity "delta";
        match Budget.create_checked ~epsilon:1.0 ~delta:1e-9 with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "rejected a valid budget: %a" Budget.pp_invalid e);
  ]

(* --- Sparse vector ------------------------------------------------------------------ *)

let sparse_vector_tests =
  [
    Alcotest.test_case "below threshold answers nothing" `Quick (fun () ->
        let rng = Rng.create ~seed:5 () in
        let sv = Sparse_vector.create rng ~epsilon:10.0 ~threshold:1000.0 in
        (match Sparse_vector.query sv ~sensitivity:1.0 1.0 with
        | Sparse_vector.Below -> ()
        | _ -> Alcotest.fail "expected Below");
        Alcotest.(check int) "answered" 0 (Sparse_vector.answered sv));
    Alcotest.test_case "clearly above threshold answers and halts" `Quick (fun () ->
        let rng = Rng.create ~seed:5 () in
        let sv = Sparse_vector.create rng ~epsilon:10.0 ~threshold:10.0 in
        (match Sparse_vector.query sv ~sensitivity:1.0 10_000.0 with
        | Sparse_vector.Above v -> Alcotest.(check bool) "near truth" true (Float.abs (v -. 10_000.0) < 100.0)
        | _ -> Alcotest.fail "expected Above");
        (match Sparse_vector.query sv ~sensitivity:1.0 10_000.0 with
        | Sparse_vector.Halted -> ()
        | _ -> Alcotest.fail "expected Halted"));
    Alcotest.test_case "multiple answers up to quota" `Quick (fun () ->
        let rng = Rng.create ~seed:9 () in
        let sv = Sparse_vector.create ~max_answers:3 rng ~epsilon:10.0 ~threshold:0.0 in
        let answers = ref 0 in
        for _ = 1 to 10 do
          match Sparse_vector.query sv ~sensitivity:1.0 1_000.0 with
          | Sparse_vector.Above _ -> incr answers
          | Sparse_vector.Below | Sparse_vector.Halted -> ()
        done;
        Alcotest.(check int) "three answers" 3 !answers);
  ]

let suites =
  [
    ("poly", poly_tests);
    ("sens", sens_tests);
    ("laplace", laplace_tests);
    ("smooth", smooth_tests);
    ("budget", budget_tests);
    ("sparse-vector", sparse_vector_tests);
  ]

(* --- Cauchy (appended) ---------------------------------------------------- *)

module Cauchy = Flex_dp.Cauchy

let cauchy_tests =
  [
    Alcotest.test_case "determinism and zero scale" `Quick (fun () ->
        let a = Rng.create ~seed:7 () and b = Rng.create ~seed:7 () in
        for _ = 1 to 50 do
          check_float "same draw" (Cauchy.sample a ~scale:2.0) (Cauchy.sample b ~scale:2.0)
        done;
        check_float "no noise" 0.0 (Cauchy.sample a ~scale:0.0));
    Alcotest.test_case "median is zero" `Quick (fun () ->
        let rng = Rng.create ~seed:13 () in
        let n = 20_000 in
        let below = ref 0 in
        for _ = 1 to n do
          if Cauchy.sample rng ~scale:1.0 < 0.0 then incr below
        done;
        let frac = float_of_int !below /. float_of_int n in
        Alcotest.(check bool) "about half below 0" true (Float.abs (frac -. 0.5) < 0.02));
    Alcotest.test_case "quartiles at +-scale" `Quick (fun () ->
        (* P(X <= scale) = 3/4 for a Cauchy centred at 0 *)
        check_float "cdf at scale" 0.75 (Cauchy.cdf ~scale:2.0 2.0);
        check_float "cdf at -scale" 0.25 (Cauchy.cdf ~scale:2.0 (-2.0)));
    Alcotest.test_case "mechanism constants" `Quick (fun () ->
        check_float "beta" (0.5 /. 6.0) (Cauchy.beta ~epsilon:0.5);
        check_float "scale" (6.0 *. 10.0 /. 0.5) (Cauchy.noise_scale ~epsilon:0.5 10.0));
    Alcotest.test_case "heavier tails than laplace" `Quick (fun () ->
        (* P(|X| > 20) is far larger for Cauchy(1) than Laplace(1) *)
        let cauchy_tail = 2.0 *. (1.0 -. Cauchy.cdf ~scale:1.0 20.0) in
        let laplace_tail = 2.0 *. (1.0 -. Laplace.cdf ~scale:1.0 20.0) in
        Alcotest.(check bool) "tail dominance" true (cauchy_tail > 100.0 *. laplace_tail));
  ]

let suites = suites @ [ ("cauchy", cauchy_tests) ]

(* --- Rng helpers (appended) -------------------------------------------------- *)

let rng_tests =
  [
    Alcotest.test_case "split produces an independent stream" `Quick (fun () ->
        let a = Rng.create ~seed:1 () in
        let b = Rng.split a in
        let xs = List.init 20 (fun _ -> Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Rng.int b 1000) in
        Alcotest.(check bool) "streams differ" true (xs <> ys));
    Alcotest.test_case "uniform_pos never returns zero" `Quick (fun () ->
        let rng = Rng.create ~seed:2 () in
        for _ = 1 to 10_000 do
          let u = Rng.uniform_pos rng in
          if u <= 0.0 || u > 1.0 then Alcotest.failf "out of range: %f" u
        done);
    Alcotest.test_case "bernoulli respects its probability" `Quick (fun () ->
        let rng = Rng.create ~seed:3 () in
        let hits = ref 0 in
        for _ = 1 to 20_000 do
          if Rng.bernoulli rng 0.3 then incr hits
        done;
        let p = float_of_int !hits /. 20_000.0 in
        Alcotest.(check bool) "near 0.3" true (Float.abs (p -. 0.3) < 0.02));
    Alcotest.test_case "exponential has the requested mean" `Quick (fun () ->
        let rng = Rng.create ~seed:4 () in
        let total = ref 0.0 in
        for _ = 1 to 20_000 do
          total := !total +. Rng.exponential rng ~mean:5.0
        done;
        Alcotest.(check bool) "mean near 5" true (Float.abs ((!total /. 20_000.0) -. 5.0) < 0.3));
    Alcotest.test_case "gaussian moments" `Quick (fun () ->
        let rng = Rng.create ~seed:5 () in
        let n = 20_000 in
        let samples = Array.init n (fun _ -> Rng.gaussian rng ~mean:2.0 ~stddev:3.0) in
        let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
          /. float_of_int n
        in
        Alcotest.(check bool) "mean" true (Float.abs (mean -. 2.0) < 0.1);
        Alcotest.(check bool) "variance" true (Float.abs (var -. 9.0) < 0.5));
    Alcotest.test_case "weighted_index follows the weights" `Quick (fun () ->
        let rng = Rng.create ~seed:6 () in
        let counts = Array.make 3 0 in
        for _ = 1 to 30_000 do
          let i = Rng.weighted_index rng [| 1.0; 2.0; 7.0 |] in
          counts.(i) <- counts.(i) + 1
        done;
        let share i = float_of_int counts.(i) /. 30_000.0 in
        Alcotest.(check bool) "10%" true (Float.abs (share 0 -. 0.1) < 0.02);
        Alcotest.(check bool) "20%" true (Float.abs (share 1 -. 0.2) < 0.02);
        Alcotest.(check bool) "70%" true (Float.abs (share 2 -. 0.7) < 0.02));
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let rng = Rng.create ~seed:7 () in
        let a = Array.init 50 Fun.id in
        let b = Array.copy a in
        Rng.shuffle rng b;
        Alcotest.(check bool) "same multiset" true
          (List.sort compare (Array.to_list b) = Array.to_list a);
        Alcotest.(check bool) "actually moved" true (a <> b));
  ]

let suites = suites @ [ ("rng", rng_tests) ]
