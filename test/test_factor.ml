(* Core/suffix factoring: the release-store key must collide exactly when two
   queries share a releasable core, and post-processing the core's rows must
   reproduce the engine's answer bit-for-bit on noiseless data. *)

module Parser = Flex_sql.Parser
module Factor = Flex_sql.Factor
module Flex = Flex_core.Flex
module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Executor = Flex_engine.Executor

let factor_exn sql =
  match Factor.factor (Parser.parse_exn sql) with
  | Some f -> f
  | None -> Alcotest.failf "expected a factorable query: %s" sql

let key sql = (factor_exn sql).Factor.core_sql

let unfactorable sql =
  match Factor.factor (Parser.parse_exn sql) with
  | None -> ()
  | Some f ->
    Alcotest.failf "expected unfactorable query %s, got core %s" sql f.Factor.core_sql

(* --- key sensitivity ----------------------------------------------------------- *)

(* every suffix-only variation of this query must map to the same core key *)
let base =
  "SELECT t.status, COUNT(*) FROM trips t WHERE t.fare > 10 AND t.dist < 5 \
   GROUP BY t.status"

let key_tests =
  [
    Alcotest.test_case "suffix variants share the core key" `Quick (fun () ->
        let k = key base in
        let same =
          [
            ("having", base ^ " HAVING COUNT(*) > 3");
            ("order by + limit", base ^ " ORDER BY 2 DESC LIMIT 3");
            ("offset", base ^ " ORDER BY 1 LIMIT 2 OFFSET 1");
            ( "projection arithmetic",
              "SELECT t.status, COUNT(*) * 2 + 1 FROM trips t WHERE t.fare > 10 \
               AND t.dist < 5 GROUP BY t.status" );
            ( "projection reorder",
              "SELECT COUNT(*), t.status FROM trips t WHERE t.fare > 10 AND \
               t.dist < 5 GROUP BY t.status" );
            ( "alias renaming",
              "SELECT x.status, COUNT(*) FROM trips x WHERE x.fare > 10 AND \
               x.dist < 5 GROUP BY x.status" );
            ( "conjunct order",
              "SELECT t.status, COUNT(*) FROM trips t WHERE t.dist < 5 AND \
               t.fare > 10 GROUP BY t.status" );
            ( "duplicate aggregate mention",
              "SELECT t.status, COUNT(*), COUNT(*) FROM trips t WHERE t.fare > 10 \
               AND t.dist < 5 GROUP BY t.status" );
            ( "output aliases + order by alias",
              "SELECT t.status AS s, COUNT(*) AS n FROM trips t WHERE t.fare > 10 \
               AND t.dist < 5 GROUP BY t.status ORDER BY n DESC" );
            ( "full suffix stack",
              "SELECT t.status AS s, COUNT(*) * 3 AS n FROM trips t WHERE \
               t.fare > 10 AND t.dist < 5 GROUP BY t.status HAVING COUNT(*) > 1 \
               ORDER BY n DESC LIMIT 5 OFFSET 2" );
          ]
        in
        List.iter
          (fun (what, sql) ->
            Alcotest.(check string) (what ^ " keeps the key") k (key sql))
          same);
    Alcotest.test_case "any core change is a different key" `Quick (fun () ->
        let k = key base in
        let where c =
          Printf.sprintf
            "SELECT t.status, COUNT(*) FROM trips t WHERE %s GROUP BY t.status" c
        in
        let different =
          [
            ("predicate constant", where "t.fare > 11 AND t.dist < 5");
            ("dropped conjunct", where "t.fare > 10");
            ("comparison direction", where "t.fare >= 10 AND t.dist < 5");
            ( "grouping column",
              "SELECT t.city_id, COUNT(*) FROM trips t WHERE t.fare > 10 AND \
               t.dist < 5 GROUP BY t.city_id" );
            ( "extra grouping column",
              "SELECT t.status, t.city_id, COUNT(*) FROM trips t WHERE \
               t.fare > 10 AND t.dist < 5 GROUP BY t.status, t.city_id" );
            ( "aggregate function",
              "SELECT t.status, SUM(t.fare) FROM trips t WHERE t.fare > 10 AND \
               t.dist < 5 GROUP BY t.status" );
            ( "aggregate argument",
              "SELECT t.status, COUNT(t.fare) FROM trips t WHERE t.fare > 10 AND \
               t.dist < 5 GROUP BY t.status" );
            ( "added aggregate",
              "SELECT t.status, COUNT(*), SUM(t.fare) FROM trips t WHERE \
               t.fare > 10 AND t.dist < 5 GROUP BY t.status" );
            ( "relation",
              "SELECT t.status, COUNT(*) FROM rides t WHERE t.fare > 10 AND \
               t.dist < 5 GROUP BY t.status" );
            ( "added join",
              "SELECT t.status, COUNT(*) FROM trips t JOIN drivers d ON \
               t.driver_id = d.id WHERE t.fare > 10 AND t.dist < 5 GROUP BY \
               t.status" );
          ]
        in
        List.iter
          (fun (what, sql) ->
            Alcotest.(check bool) (what ^ " changes the key") true (key sql <> k))
          different);
    Alcotest.test_case "a HAVING-only aggregate is charged into the core" `Quick
      (fun () ->
        (* HAVING SUM(..) reads private data the projection never mentions:
           the core must carry it, so the key departs from the count-only core
           and collides with the query that projects the same aggregate set *)
        let hidden = base ^ " HAVING SUM(t.fare) > 100" in
        let f = factor_exn hidden in
        Alcotest.(check int) "both aggregates in the core" 2 f.Factor.n_aggregates;
        Alcotest.(check bool) "departs from the count-only core" true
          (f.Factor.core_sql <> key base);
        let projected =
          "SELECT t.status, COUNT(*), SUM(t.fare) FROM trips t WHERE t.fare > 10 \
           AND t.dist < 5 GROUP BY t.status"
        in
        Alcotest.(check string) "collides with the projected aggregate set"
          (key projected) f.Factor.core_sql);
    Alcotest.test_case "trivial detection and core columns" `Quick (fun () ->
        let f = factor_exn base in
        Alcotest.(check bool) "core itself is trivial" true (Factor.trivial f);
        Alcotest.(check bool) "alias renaming is still trivial" true
          (Factor.trivial
             (factor_exn
                "SELECT x.status, COUNT(*) FROM trips x WHERE x.fare > 10 AND \
                 x.dist < 5 GROUP BY x.status"));
        List.iter
          (fun sql ->
            Alcotest.(check bool) (sql ^ " is a derivation") false
              (Factor.trivial (factor_exn sql)))
          [
            base ^ " HAVING COUNT(*) > 3";
            base ^ " ORDER BY 2 DESC";
            base ^ " LIMIT 1";
          ];
        Alcotest.(check (list string)) "key then aggregate columns"
          [ "_k0"; "_a0" ] (Factor.core_columns f);
        Alcotest.(check int) "group keys" 1 f.Factor.n_group_keys;
        Alcotest.(check int) "aggregates" 1 f.Factor.n_aggregates);
    Alcotest.test_case "histogram-hostile shapes refuse to factor" `Quick (fun () ->
        List.iter unfactorable
          [
            (* no aggregates: raw rows are not a releasable histogram *)
            "SELECT t.status FROM trips t GROUP BY t.status";
            "SELECT * FROM trips t";
            (* set operations compose whole queries, not one core *)
            "SELECT COUNT(*) FROM trips t UNION SELECT COUNT(*) FROM rides r";
            (* DISTINCT changes multiplicity after aggregation *)
            "SELECT DISTINCT t.status, COUNT(*) FROM trips t GROUP BY t.status";
            (* CTEs hide arbitrary shape behind the name *)
            "WITH w AS (SELECT t.status FROM trips t) SELECT COUNT(*) FROM w";
            (* raw column in ORDER BY: not derivable from the histogram *)
            "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status ORDER BY \
             t.fare";
            (* raw column in HAVING *)
            "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status HAVING \
             t.fare > 1";
            (* subquery in the projection reads data outside the core *)
            "SELECT (SELECT COUNT(*) FROM rides r), COUNT(*) FROM trips t";
          ]);
  ]

(* --- post-processing differential ---------------------------------------------- *)

(* Noiseless parity: executing the factored core and evaluating the suffix
   over its rows must equal running the original query outright — same
   column names, same row order, same cells. *)

let v_int i = Value.Int i
let v_str s = Value.String s

let db =
  let cities =
    Table.create ~name:"cities" ~columns:[ "id"; "name" ]
      [
        [| v_int 1; v_str "sf" |];
        [| v_int 2; v_str "nyc" |];
        [| v_int 3; v_str "la" |];
      ]
  in
  let people =
    Table.create ~name:"people" ~columns:[ "id"; "name"; "city_id"; "age" ]
      [
        [| v_int 1; v_str "ada"; v_int 1; v_int 36 |];
        [| v_int 2; v_str "bob"; v_int 1; v_int 25 |];
        [| v_int 3; v_str "cyd"; v_int 2; v_int 40 |];
        [| v_int 4; v_str "dan"; v_int 2; Value.Null |];
        [| v_int 5; v_str "eve"; Value.Null; v_int 31 |];
      ]
  in
  Database.of_tables [ cities; people ]

let direct sql =
  match Executor.run_sql db sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "query failed (%s): %s" sql e

let via_release sql =
  let f = factor_exn sql in
  let core = Executor.run db f.Factor.core in
  Alcotest.(check (list string)) (sql ^ ": core columns")
    (Factor.core_columns f) core.Executor.columns;
  Flex.post_process f.Factor.suffix ~columns:core.Executor.columns
    core.Executor.rows

let check_same sql =
  let d = direct sql in
  let v = via_release sql in
  Alcotest.(check (list string)) (sql ^ ": columns") d.Executor.columns
    v.Executor.columns;
  Alcotest.(check bool) (sql ^ ": rows bit-identical") true
    (d.Executor.rows = v.Executor.rows)

let differential_tests =
  [
    Alcotest.test_case "suffix evaluation matches direct execution" `Quick
      (fun () ->
        List.iter check_same
          [
            "SELECT p.city_id, COUNT(*) FROM people p GROUP BY p.city_id \
             HAVING COUNT(*) > 1";
            "SELECT p.city_id, COUNT(*) AS n, SUM(p.age) FROM people p GROUP BY \
             p.city_id ORDER BY n DESC, p.city_id ASC";
            "SELECT p.city_id, COUNT(*) * 2 + 1 FROM people p GROUP BY \
             p.city_id ORDER BY 2 DESC LIMIT 2 OFFSET 1";
            "SELECT SUM(p.age) * 1.0 / COUNT(*) FROM people p WHERE p.age > 20";
            "SELECT c.name, COUNT(*) FROM people p JOIN cities c ON p.city_id = \
             c.id GROUP BY c.name HAVING COUNT(*) >= 2 ORDER BY c.name";
            (* the NULL city_id group: 3-valued HAVING must drop it the same way *)
            "SELECT p.city_id, SUM(p.age) FROM people p GROUP BY p.city_id \
             HAVING SUM(p.age) > 35";
            "SELECT p.city_id, AVG(p.age) FROM people p GROUP BY p.city_id \
             ORDER BY 2 DESC";
            (* aggregate mentioned only in HAVING/ORDER BY, not projected *)
            "SELECT p.city_id, COUNT(*) FROM people p GROUP BY p.city_id \
             ORDER BY SUM(p.age) DESC LIMIT 2";
          ]);
    Alcotest.test_case "limit beyond the histogram is harmless" `Quick (fun () ->
        check_same
          "SELECT p.city_id, COUNT(*) FROM people p GROUP BY p.city_id ORDER BY \
           1 LIMIT 99 OFFSET 1";
        check_same
          "SELECT p.city_id, COUNT(*) FROM people p GROUP BY p.city_id LIMIT 0");
  ]

let suites =
  [ ("factor_keys", key_tests); ("factor_post_process", differential_tests) ]
