module Json = Flex_service.Json
module Wire = Flex_service.Wire
module Audit = Flex_service.Audit
module Server = Flex_service.Server
module Release_store = Flex_service.Release_store
module Ledger = Flex_dp.Ledger
module Rng = Flex_dp.Rng
module Metrics = Flex_engine.Metrics
module Value = Flex_engine.Value
module W = Flex_workload

let temp_file suffix = Filename.temp_file "flex-release" suffix

(* entry factory: every parameter that feeds the composite key is overridable
   so the key-sensitivity and eviction tests can vary exactly one at a time *)
let entry ?(fingerprint = "fp0") ?(analyst = "a") ?(epsilon = 0.1) ?(delta = 1e-9)
    ?(flags = "f") ?(rows = [ [| Value.Float 101.0 |] ]) sql =
  let key = Release_store.key ~sql_canonical:sql ~fingerprint ~flags ~epsilon ~delta in
  {
    Release_store.key;
    fingerprint;
    analyst;
    epsilon;
    delta;
    epsilon_spent = epsilon;
    delta_spent = delta;
    columns = [ "count" ];
    rows;
    bins_enumerated = false;
    noise_scales = [ ("count", 1.0 /. epsilon) ];
  }

let find_rows store e =
  match Release_store.find store e.Release_store.key with
  | Some stored -> Some stored.Release_store.rows
  | None -> None

(* --- store unit tests ---------------------------------------------------------- *)

let store_tests =
  [
    Alcotest.test_case "key separates every component of the mechanism tuple" `Quick
      (fun () ->
        let base = (entry "q").Release_store.key in
        let variants =
          [
            ("sql", (entry "q2").Release_store.key);
            ("fingerprint", (entry ~fingerprint:"fp1" "q").Release_store.key);
            ("flags", (entry ~flags:"g" "q").Release_store.key);
            ("epsilon", (entry ~epsilon:0.2 "q").Release_store.key);
            ("delta", (entry ~delta:1e-8 "q").Release_store.key);
            (* one ulp of budget is a different mechanism instance: %.17g
               rendering must keep these apart *)
            ("epsilon ulp", (entry ~epsilon:(0.1 +. epsilon_float) "q").Release_store.key);
          ]
        in
        List.iter
          (fun (what, k) ->
            Alcotest.(check bool) (what ^ " changes the key") true (k <> base))
          variants;
        Alcotest.(check string) "same tuple, same key" base (entry "q").Release_store.key);
    Alcotest.test_case "record then find replays the stored entry" `Quick (fun () ->
        let store = Release_store.create () in
        let e = entry "q" in
        Alcotest.(check bool) "cold miss" true (Release_store.find store e.key = None);
        ignore (Release_store.record store e);
        (match Release_store.find store e.key with
        | Some stored ->
          Alcotest.(check bool) "same rows" true (stored.rows = e.rows);
          Alcotest.(check (float 0.0)) "spend preserved" 0.1 stored.epsilon_spent
        | None -> Alcotest.fail "recorded entry not found");
        let s = Release_store.stats store in
        Alcotest.(check int) "hits" 1 s.hits;
        Alcotest.(check int) "misses" 1 s.misses;
        Alcotest.(check int) "entries" 1 s.entries);
    Alcotest.test_case "first release wins a race on the same key" `Quick (fun () ->
        let store = Release_store.create () in
        let first = entry ~rows:[ [| Value.Float 1.0 |] ] "q" in
        let loser = entry ~rows:[ [| Value.Float 2.0 |] ] "q" in
        ignore (Release_store.record store first);
        let served = Release_store.record store loser in
        (* the racing loser's noise is discarded unreleased: every answer
           that leaves the server for this key is the same bytes *)
        Alcotest.(check bool) "stored entry served" true (served.rows = first.rows);
        Alcotest.(check bool) "lookup agrees" true
          (find_rows store first = Some first.rows);
        Alcotest.(check int) "no duplicate entry" 1 (Release_store.length store));
    Alcotest.test_case "capacity eviction spares the light analyst" `Quick (fun () ->
        let store = Release_store.create ~capacity:4 () in
        let hog i = entry ~analyst:"hog" (Printf.sprintf "h%d" i) in
        let hogs = List.init 5 hog in
        List.iteri
          (fun i e -> if i < 4 then ignore (Release_store.record store e))
          hogs;
        let small = entry ~analyst:"small" "s0" in
        ignore (Release_store.record store small);
        (* the store was full of hog's entries: the heaviest holder pays,
           oldest first *)
        Alcotest.(check bool) "hog's oldest evicted" true
          (find_rows store (List.nth hogs 0) = None);
        Alcotest.(check bool) "small admitted" true (find_rows store small <> None);
        ignore (Release_store.record store (List.nth hogs 4));
        (* hog is over its proportional share (capacity 4 / 2 owners = 2), so
           its own churn pays again — small's working set survives *)
        Alcotest.(check bool) "hog churns its own entries" true
          (find_rows store (List.nth hogs 1) = None);
        Alcotest.(check bool) "small survives the churn" true
          (find_rows store small <> None);
        let s = Release_store.stats store in
        Alcotest.(check int) "evictions counted" 2 s.evictions;
        Alcotest.(check int) "at capacity" 4 s.entries);
    Alcotest.test_case "journal round-trips exotic floats bit-identically" `Quick
      (fun () ->
        let path = temp_file ".releases" in
        let store = Release_store.open_ ~fingerprint:"fp0" path in
        let awkward =
          [
            [|
              Value.Float (0.1 +. 0.2);
              Value.Float max_float;
              Value.Float 5e-324;
              Value.Int max_int;
            |];
          ]
        in
        let e1 = entry ~epsilon:0.30000000000000004 ~rows:awkward "q1" in
        let e2 =
          entry ~rows:[ [| Value.Float (-0.0); Value.String "café"; Value.Null |] ] "q2"
        in
        ignore (Release_store.record store e1);
        ignore (Release_store.record store e2);
        Release_store.close store;
        let store2 = Release_store.open_ ~fingerprint:"fp0" path in
        Alcotest.(check bool) "awkward floats intact" true
          (find_rows store2 e1 = Some awkward);
        Alcotest.(check bool) "negative zero and UTF-8 intact" true
          (find_rows store2 e2 = Some e2.rows);
        (match Release_store.find store2 e1.key with
        | Some stored ->
          Alcotest.(check bool) "spend bit-identical" true
            (stored.epsilon_spent = 0.30000000000000004)
        | None -> Alcotest.fail "entry lost across restart");
        Alcotest.(check int) "nothing stranded" 0 (Release_store.stats store2).stale_dropped;
        Release_store.close store2;
        Sys.remove path);
    Alcotest.test_case "torn final line is dropped, interior corruption refused" `Quick
      (fun () ->
        let path = temp_file ".releases" in
        let store = Release_store.open_ ~fingerprint:"fp0" path in
        let e = entry "q" in
        ignore (Release_store.record store e);
        Release_store.close store;
        (* crash mid-append: a partial line with no newline *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "{\"key\": \"half-writ";
        close_out oc;
        let store2 = Release_store.open_ ~fingerprint:"fp0" path in
        Alcotest.(check int) "torn tail dropped" 1 (Release_store.length store2);
        Alcotest.(check bool) "survivor still served" true (find_rows store2 e <> None);
        Release_store.close store2;
        Sys.remove path;
        (* corruption anywhere before the tail is not a crash artefact *)
        let bad = temp_file ".releases" in
        let oc = open_out bad in
        output_string oc "not json\nalso not json\n";
        close_out oc;
        (try
           ignore (Release_store.open_ ~fingerprint:"fp0" bad);
           Alcotest.fail "corrupt journal accepted"
         with Invalid_argument _ -> ());
        Sys.remove bad);
    Alcotest.test_case "epoch invalidation strands stale entries, not the journal" `Quick
      (fun () ->
        let path = temp_file ".releases" in
        let store = Release_store.open_ ~fingerprint:"old" path in
        List.iter
          (fun i ->
            ignore (Release_store.record store (entry ~fingerprint:"old" (string_of_int i))))
          [ 1; 2; 3 ];
        let stranded = Release_store.invalidate_epoch store ~keep:"new" in
        Alcotest.(check int) "all three stranded" 3 stranded;
        Alcotest.(check int) "store emptied" 0 (Release_store.length store);
        Release_store.close store;
        (* the journal is an audit record: reopening under the old epoch
           still replays it, under the new epoch it is stale *)
        let back = Release_store.open_ ~fingerprint:"old" path in
        Alcotest.(check int) "old epoch replays" 3 (Release_store.length back);
        Release_store.close back;
        let fresh = Release_store.open_ ~fingerprint:"new" path in
        Alcotest.(check int) "new epoch starts empty" 0 (Release_store.length fresh);
        Alcotest.(check int) "stale counted" 3 (Release_store.stats fresh).stale_dropped;
        Release_store.close fresh;
        Sys.remove path);
    Alcotest.test_case "journal replay reproduces live eviction state" `Quick (fun () ->
        let path = temp_file ".releases" in
        let store = Release_store.open_ ~capacity:2 ~fingerprint:"fp0" path in
        let es = List.init 4 (fun i -> entry (Printf.sprintf "q%d" i)) in
        List.iter (fun e -> ignore (Release_store.record store e)) es;
        let live =
          List.map (fun e -> find_rows store e <> None) es
        in
        Release_store.close store;
        let store2 = Release_store.open_ ~capacity:2 ~fingerprint:"fp0" path in
        let replayed =
          List.map (fun e -> find_rows store2 e <> None) es
        in
        (* admission replays under the same policy as live inserts, so a
           restarted server serves exactly what the live one would have *)
        Alcotest.(check (list bool)) "same working set" live replayed;
        Alcotest.(check int) "bounded after replay" 2 (Release_store.length store2);
        Release_store.close store2;
        Sys.remove path);
    Alcotest.test_case "open compacts the journal to the live working set" `Quick
      (fun () ->
        let lines path =
          let ic = open_in path in
          let rec go acc =
            match input_line ic with
            | l -> go (if String.trim l = "" then acc else l :: acc)
            | exception End_of_file ->
              close_in ic;
              List.rev acc
          in
          go []
        in
        let path = temp_file ".releases" in
        let store = Release_store.open_ ~capacity:2 ~fingerprint:"fp0" path in
        let es = List.init 5 (fun i -> entry (Printf.sprintf "q%d" i)) in
        List.iter (fun e -> ignore (Release_store.record store e)) es;
        Release_store.close store;
        Alcotest.(check int) "append-only journal keeps every record" 5
          (List.length (lines path));
        (* crash mid-append on top of the dead weight *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "{\"key\": \"half-writ";
        close_out oc;
        let store2 = Release_store.open_ ~capacity:2 ~fingerprint:"fp0" path in
        let live = List.filter (fun e -> find_rows store2 e <> None) es in
        Release_store.close store2;
        (* the rewrite keeps exactly the survivors, drops evictions and the
           torn tail, and every remaining line parses whole *)
        Alcotest.(check int) "journal compacted to the working set" 2
          (List.length (lines path));
        Alcotest.(check int) "two survivors" 2 (List.length live);
        List.iter
          (fun l ->
            match Json.of_string l with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "compacted line does not parse: %s" e)
          (lines path);
        (* a compacted journal is a fixpoint: reopening neither rewrites nor
           loses anything, and new records still append *)
        let store3 = Release_store.open_ ~capacity:2 ~fingerprint:"fp0" path in
        Alcotest.(check int) "working set intact after compaction" 2
          (Release_store.length store3);
        List.iter
          (fun e ->
            Alcotest.(check bool) "survivor still served" true
              (find_rows store3 e <> None))
          live;
        ignore (Release_store.record store3 (entry "fresh"));
        Release_store.close store3;
        Alcotest.(check int) "append after compaction" 3 (List.length (lines path));
        Sys.remove path);
    Alcotest.test_case "stale-epoch journals compact to empty" `Quick (fun () ->
        let path = temp_file ".releases" in
        let store = Release_store.open_ ~fingerprint:"old" path in
        List.iter
          (fun i -> ignore (Release_store.record store (entry ~fingerprint:"old" i)))
          [ "a"; "b"; "c" ];
        Release_store.close store;
        let fresh = Release_store.open_ ~fingerprint:"new" path in
        Alcotest.(check int) "stale counted on replay" 3
          (Release_store.stats fresh).stale_dropped;
        Release_store.close fresh;
        Alcotest.(check int) "dead epoch swept from disk" 0
          (Unix.stat path).Unix.st_size;
        Sys.remove path);
  ]

(* --- server-level replay ------------------------------------------------------- *)

let fixture =
  lazy (W.Uber.generate ~sizes:W.Uber.small_sizes (Rng.create ~seed:7 ()))

let make_server ?audit ?config ?ledger ?release_store ?(seed = 11) () =
  let db, metrics = Lazy.force fixture in
  let ledger = match ledger with Some l -> l | None -> Ledger.in_memory () in
  let server =
    Server.create ?audit ?config ?release_store ~db ~metrics ~ledger
      ~rng:(Rng.create ~seed ()) ()
  in
  (server, ledger)

let hello server session analyst =
  match Server.handle server session (Wire.Hello { analyst; epsilon = None; delta = None }) with
  | Wire.Budget_report _ -> ()
  | other -> Alcotest.failf "hello failed: %s" (Wire.response_to_line other)

let query ?epsilon ?delta server session sql =
  Server.handle server session (Wire.Query { sql; epsilon; delta; id = None })

(* Wire.Result carries an inline record, so project the fields under test *)
type answer = {
  rows : Json.t list list;
  epsilon_spent : float;
  delta_spent : float;
  cached : bool;
  derived : bool;
  cache_hit : bool;
  noise_scales : (string * float) list;
}

let result ?epsilon server session sql =
  match query ?epsilon server session sql with
  | Wire.Result r ->
    {
      rows = r.rows;
      epsilon_spent = r.epsilon_spent;
      delta_spent = r.delta_spent;
      cached = r.cached;
      derived = r.derived;
      cache_hit = r.cache_hit;
      noise_scales = r.noise_scales;
    }
  | other -> Alcotest.failf "expected result, got %s" (Wire.response_to_line other)

let histogram_sql = "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status"

let server_tests =
  [
    Alcotest.test_case "replay is byte-identical and charges zero budget" `Quick
      (fun () ->
        let server, ledger = make_server () in
        let session = Server.session server in
        hello server session "alice";
        let first = result ~epsilon:0.5 server session histogram_sql in
        Alcotest.(check bool) "first is charged" false first.cached;
        let after_first = Ledger.spent ledger ~analyst:"alice" in
        let again = result ~epsilon:0.5 server session histogram_sql in
        Alcotest.(check bool) "replayed" true again.cached;
        Alcotest.(check bool) "analysis cache agrees" true again.cache_hit;
        Alcotest.(check (float 0.0)) "zero epsilon" 0.0 again.epsilon_spent;
        Alcotest.(check (float 0.0)) "zero delta" 0.0 again.delta_spent;
        Alcotest.(check bool) "same noisy rows" true (again.rows = first.rows);
        Alcotest.(check bool) "same noise scales" true
          (again.noise_scales = first.noise_scales);
        Alcotest.(check bool) "ledger untouched" true
          (Ledger.spent ledger ~analyst:"alice" = after_first);
        let c = Server.counters server in
        Alcotest.(check int) "one grant" 1 c.granted;
        Alcotest.(check int) "one replay" 1 c.replayed);
    Alcotest.test_case "conservation across analysts and repeated replays" `Quick
      (fun () ->
        (* a finished release is public: once any analyst has paid for it,
           replaying it to anyone costs the fleet nothing more *)
        let server, ledger = make_server () in
        let analysts = [ "a1"; "a2"; "a3" ] in
        let rows = ref [] in
        List.iter
          (fun analyst ->
            let session = Server.session server in
            hello server session analyst;
            for _ = 1 to 5 do
              let r = result ~epsilon:0.5 server session histogram_sql in
              rows := r.rows :: !rows
            done)
          analysts;
        (match !rows with
        | [] -> Alcotest.fail "no answers"
        | reference :: rest ->
          Alcotest.(check bool) "all fifteen answers identical" true
            (List.for_all (fun r -> r = reference) rest));
        let spent analyst =
          match Ledger.spent ledger ~analyst with
          | Some (e, _) -> e
          | None -> Alcotest.failf "no ledger row for %s" analyst
        in
        Alcotest.(check (float 0.0)) "exactly one charge fleet-wide" 0.5
          (List.fold_left (fun acc a -> acc +. spent a) 0.0 analysts);
        let c = Server.counters server in
        Alcotest.(check int) "one grant" 1 c.granted;
        Alcotest.(check int) "fourteen replays" 14 c.replayed);
    Alcotest.test_case "a different budget is a different release" `Quick (fun () ->
        let server, ledger = make_server () in
        let session = Server.session server in
        hello server session "alice";
        let at_half = result ~epsilon:0.5 server session histogram_sql in
        let at_quarter = result ~epsilon:0.25 server session histogram_sql in
        Alcotest.(check bool) "new budget pays again" false at_quarter.cached;
        Alcotest.(check (float 0.0)) "charged" 0.25 at_quarter.epsilon_spent;
        Alcotest.(check bool) "independently noised" true
          (at_quarter.rows <> at_half.rows);
        let repeat = result ~epsilon:0.25 server session histogram_sql in
        Alcotest.(check bool) "then replays at its own key" true repeat.cached;
        Alcotest.(check bool) "both charges on the ledger" true
          (match Ledger.spent ledger ~analyst:"alice" with
          | Some (e, _) -> e = 0.75
          | None -> false));
    Alcotest.test_case "restart replays from the journals with zero extra spend" `Quick
      (fun () ->
        let ledger_path = temp_file ".ledger" in
        let releases_path = temp_file ".releases" in
        let _, metrics = Lazy.force fixture in
        let fingerprint = Metrics.fingerprint metrics in
        let run ~seed =
          let ledger = Ledger.open_ ledger_path in
          let store = Release_store.open_ ~fingerprint releases_path in
          let server, _ = make_server ~ledger ~release_store:store ~seed () in
          let session = Server.session server in
          hello server session "alice";
          let r = result ~epsilon:0.5 server session histogram_sql in
          let spent = Ledger.spent ledger ~analyst:"alice" in
          Release_store.close store;
          Ledger.close ledger;
          (r, spent)
        in
        let first, spent1 = run ~seed:11 in
        Alcotest.(check bool) "first run charged" false first.cached;
        (* crash mid-append before the restart: the torn line vanishes *)
        let oc = open_out_gen [ Open_append ] 0o644 releases_path in
        output_string oc "{\"key\": \"half";
        close_out oc;
        (* the second generation has a different RNG seed: identical answers
           can only come from the store, not from re-execution *)
        let second, spent2 = run ~seed:977 in
        Alcotest.(check bool) "served from the journal" true second.cached;
        Alcotest.(check (float 0.0)) "no new charge" 0.0 second.epsilon_spent;
        Alcotest.(check bool) "noisy rows identical across restart" true
          (second.rows = first.rows);
        Alcotest.(check bool) "ledger spend identical across restart" true
          (spent1 = spent2);
        Sys.remove ledger_path;
        Sys.remove releases_path);
    Alcotest.test_case "refresh_data strands releases of the old epoch" `Quick (fun () ->
        let server, ledger = make_server () in
        let session = Server.session server in
        hello server session "alice";
        let before = result ~epsilon:0.5 server session histogram_sql in
        (* a fresh generation of the data: new rows, new metrics, new epoch *)
        let db2, metrics2 = W.Uber.generate ~sizes:W.Uber.small_sizes (Rng.create ~seed:8 ()) in
        let _, old_metrics = Lazy.force fixture in
        Alcotest.(check bool) "fixture epochs differ" true
          (Metrics.fingerprint metrics2 <> Metrics.fingerprint old_metrics);
        let stranded = Server.refresh_data server ~db:db2 ~metrics:metrics2 in
        Alcotest.(check int) "the release was stranded" 1 stranded;
        let after = result ~epsilon:0.5 server session histogram_sql in
        Alcotest.(check bool) "old answer must not outlive its data" false after.cached;
        Alcotest.(check (float 0.0)) "recharged" 0.5 after.epsilon_spent;
        Alcotest.(check bool) "fresh release, not the stale bytes" true
          (after.rows <> before.rows);
        Alcotest.(check bool) "both charges stand" true
          (match Ledger.spent ledger ~analyst:"alice" with
          | Some (e, _) -> e = 1.0
          | None -> false));
    Alcotest.test_case "audit log distinguishes replays from grants" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let server, _ = make_server ~audit:(Audit.to_buffer buf) () in
        let session = Server.session server in
        hello server session "alice";
        ignore (result ~epsilon:0.5 server session histogram_sql);
        ignore (result ~epsilon:0.5 server session histogram_sql);
        let outcomes =
          Buffer.contents buf |> String.split_on_char '\n'
          |> List.filter (fun l -> String.trim l <> "")
          |> List.map (fun line ->
                 match Json.of_string line with
                 | Ok j -> (
                   match Option.bind (Json.mem "outcome" j) Json.to_str with
                   | Some o -> o
                   | None -> Alcotest.failf "no outcome in %s" line)
                 | Error e -> Alcotest.failf "audit line does not parse: %s" e)
        in
        Alcotest.(check (list string)) "grant then replay" [ "granted"; "replayed" ]
          outcomes);
    Alcotest.test_case "suffix variants derive from the stored core at zero budget"
      `Quick (fun () ->
        let buf = Buffer.create 256 in
        let server, ledger = make_server ~audit:(Audit.to_buffer buf) () in
        let session = Server.session server in
        hello server session "alice";
        let core = result ~epsilon:0.5 server session histogram_sql in
        Alcotest.(check bool) "core is charged" false core.cached;
        Alcotest.(check bool) "core is not a derivation" false core.derived;
        let again = result ~epsilon:0.5 server session histogram_sql in
        Alcotest.(check bool) "exact repeat replays" true
          (again.cached && not again.derived);
        (* an always-true HAVING is still a different query: it must hit the
           same stored core and come back bit-identical, charged nothing *)
        let filtered =
          result ~epsilon:0.5 server session
            (histogram_sql ^ " HAVING COUNT(*) > -1000000")
        in
        Alcotest.(check bool) "derived from the store" true
          (filtered.cached && filtered.derived);
        Alcotest.(check (float 0.0)) "zero epsilon" 0.0 filtered.epsilon_spent;
        Alcotest.(check (float 0.0)) "zero delta" 0.0 filtered.delta_spent;
        Alcotest.(check bool) "same noisy bytes" true (filtered.rows = core.rows);
        (* scaled + reordered + truncated: recompute the expected answer from
           the released histogram independently of the server's evaluator *)
        let scaled =
          result ~epsilon:0.5 server session
            "SELECT t.status, COUNT(*) * 2 FROM trips t GROUP BY t.status \
             ORDER BY 2 DESC LIMIT 2"
        in
        Alcotest.(check bool) "scaled variant derived" true
          (scaled.cached && scaled.derived);
        let parsed =
          List.map
            (function
              | [ s; Json.Num c ] -> (s, c)
              | row ->
                Alcotest.failf "unexpected histogram row: %s"
                  (Json.to_string (Json.List row)))
            core.rows
        in
        let expected =
          List.stable_sort (fun (_, c1) (_, c2) -> Float.compare c2 c1) parsed
          |> List.filteri (fun i _ -> i < 2)
          |> List.map (fun (s, c) -> [ s; Json.Num (c *. 2.) ])
        in
        Alcotest.(check bool) "post-processing of the stored release" true
          (scaled.rows = expected);
        (* accounting: one grant, one replay, two derivations — and only the
           core's charge on the ledger *)
        Alcotest.(check bool) "single charge" true
          (match Ledger.spent ledger ~analyst:"alice" with
          | Some (e, _) -> e = 0.5
          | None -> false);
        let c = Server.counters server in
        Alcotest.(check int) "one grant" 1 c.granted;
        Alcotest.(check int) "one replay" 1 c.replayed;
        Alcotest.(check int) "two derivations" 2 c.derived;
        let outcomes =
          Buffer.contents buf |> String.split_on_char '\n'
          |> List.filter (fun l -> String.trim l <> "")
          |> List.map (fun line ->
                 match
                   Option.bind
                     (Result.to_option (Json.of_string line))
                     (fun j -> Option.bind (Json.mem "outcome" j) Json.to_str)
                 with
                 | Some o -> o
                 | None -> Alcotest.failf "unreadable audit line: %s" line)
        in
        Alcotest.(check (list string)) "audit distinguishes derivations"
          [ "granted"; "replayed"; "derived"; "derived" ]
          outcomes;
        match Server.handle server session Wire.Stats with
        | Wire.Stats_report s ->
          Alcotest.(check int) "stats expose derivations" 2 s.release_derived
        | other -> Alcotest.failf "expected stats, got %s" (Wire.response_to_line other));
    Alcotest.test_case "derivation conservation across analysts and restarts"
      `Quick (fun () ->
        (* the acceptance shape: M suffix variants of one core, N concurrent
           analysts, two server generations over the same journals. The fleet
           pays for the core exactly once; every derived answer is the same
           bytes within a generation and across the restart *)
        let ledger_path = temp_file ".ledger" in
        let releases_path = temp_file ".releases" in
        let _, metrics = Lazy.force fixture in
        let fingerprint = Metrics.fingerprint metrics in
        let variants =
          [
            histogram_sql;
            histogram_sql ^ " HAVING COUNT(*) > -1000000";
            "SELECT t.status, COUNT(*) * 2 FROM trips t GROUP BY t.status \
             ORDER BY 2 DESC LIMIT 2";
            "SELECT COUNT(*), u.status FROM trips u GROUP BY u.status \
             ORDER BY u.status";
          ]
        in
        let analysts = [ "a1"; "a2"; "a3" ] in
        let run ~seed =
          let ledger = Ledger.open_ ledger_path in
          let store = Release_store.open_ ~fingerprint releases_path in
          let server, _ = make_server ~ledger ~release_store:store ~seed () in
          let payer = Server.session server in
          hello server payer "payer";
          let warm = result ~epsilon:0.5 server payer histogram_sql in
          let per_analyst = Array.make (List.length analysts) [] in
          let worker i analyst =
            let session = Server.session server in
            hello server session analyst;
            per_analyst.(i) <-
              List.map (fun sql -> result ~epsilon:0.5 server session sql) variants
          in
          let threads = List.mapi (fun i a -> Thread.create (worker i) a) analysts in
          List.iter Thread.join threads;
          let spent =
            List.map (fun a -> Ledger.spent ledger ~analyst:a) ("payer" :: analysts)
          in
          Release_store.close store;
          Ledger.close ledger;
          (warm, Array.to_list per_analyst, spent)
        in
        let warm1, answers1, spent1 = run ~seed:11 in
        Alcotest.(check bool) "generation one pays for the core" false warm1.cached;
        let reference = List.hd answers1 in
        List.iter
          (fun (per_variant : answer list) ->
            List.iteri
              (fun v (a : answer) ->
                let r = List.nth reference v in
                Alcotest.(check bool) "zero-budget store hit" true
                  (a.cached && a.epsilon_spent = 0.0 && a.delta_spent = 0.0);
                Alcotest.(check bool) "derived iff the suffix is real" (v > 0)
                  a.derived;
                Alcotest.(check bool) "identical bytes across analysts" true
                  (a.rows = r.rows))
              per_variant)
          answers1;
        (* the trivial variant is the stored histogram itself: the ordered
           variant must be its exact ascending-by-status rearrangement *)
        let trivial = List.nth reference 0 in
        let reordered = List.nth reference 3 in
        let expected =
          List.map
            (function
              | [ Json.Str s; c ] -> (s, c)
              | row ->
                Alcotest.failf "unexpected histogram row: %s"
                  (Json.to_string (Json.List row)))
            trivial.rows
          |> List.stable_sort (fun (s1, _) (s2, _) -> String.compare s1 s2)
          |> List.map (fun (s, c) -> [ c; Json.Str s ])
        in
        Alcotest.(check bool) "derivation = post-processing the stored release"
          true
          (reordered.rows = expected);
        let fleet_epsilon spent =
          List.fold_left
            (fun acc -> function Some (e, _) -> acc +. e | None -> acc)
            0.0 spent
        in
        Alcotest.(check (float 0.0)) "one charge fleet-wide" 0.5
          (fleet_epsilon spent1);
        (* generation two: different RNG seed, same journals — identical
           answers can only come from the store, and nothing is recharged *)
        let warm2, answers2, spent2 = run ~seed:977 in
        Alcotest.(check bool) "restart replays the core" true warm2.cached;
        Alcotest.(check bool) "restart core bytes identical" true
          (warm2.rows = warm1.rows);
        List.iter2
          (fun (g1 : answer list) (g2 : answer list) ->
            List.iter2
              (fun (a1 : answer) (a2 : answer) ->
                Alcotest.(check bool) "derived bytes identical across restart"
                  true (a1.rows = a2.rows))
              g1 g2)
          answers1 answers2;
        Alcotest.(check (float 0.0)) "restart spends nothing new" 0.5
          (fleet_epsilon spent2);
        Sys.remove ledger_path;
        Sys.remove releases_path);
    Alcotest.test_case "stats surface the release counters" `Quick (fun () ->
        let server, _ = make_server () in
        let session = Server.session server in
        hello server session "alice";
        ignore (result ~epsilon:0.5 server session histogram_sql);
        ignore (result ~epsilon:0.5 server session histogram_sql);
        match Server.handle server session Wire.Stats with
        | Wire.Stats_report s ->
          Alcotest.(check int) "release hits" 1 s.release_hits;
          Alcotest.(check int) "release misses" 1 s.release_misses;
          Alcotest.(check int) "release entries" 1 s.release_entries;
          Alcotest.(check (float 1e-9)) "hit rate" 0.5 s.release_hit_rate
        | other -> Alcotest.failf "expected stats, got %s" (Wire.response_to_line other));
    Alcotest.test_case "wire decode defaults keep old servers readable" `Quick (fun () ->
        (* a pre-release-store stats line: every release_* field absent *)
        let stats_line =
          {|{"status":"stats","queries":3,"granted":2,"rejected":1,"refused":0,"cache_hits":1,"cache_misses":2,"cache_entries":2,"analysts":1}|}
        in
        (match Wire.response_of_line stats_line with
        | Ok (Wire.Stats_report s) ->
          Alcotest.(check int) "hits default" 0 s.release_hits;
          Alcotest.(check int) "misses default" 0 s.release_misses;
          Alcotest.(check int) "evictions default" 0 s.release_evictions;
          Alcotest.(check int) "entries default" 0 s.release_entries;
          Alcotest.(check (float 0.0)) "hit rate default" 0.0 s.release_hit_rate
        | Ok other -> Alcotest.failf "wrong constructor: %s" (Wire.response_to_line other)
        | Error e -> Alcotest.failf "stats decode failed: %s" e);
        (* a pre-release-store result line: no "cached" field *)
        let result_line =
          {|{"status":"result","columns":["count"],"rows":[[41.5]],"epsilon_spent":0.5,"delta_spent":0,"remaining_epsilon":9.5,"remaining_delta":1e-06,"cache_hit":false,"bins_enumerated":false,"noise_scales":[{"column":"count","scale":2}]}|}
        in
        match Wire.response_of_line result_line with
        | Ok (Wire.Result r) ->
          Alcotest.(check bool) "old servers never replay" false r.cached
        | Ok other -> Alcotest.failf "wrong constructor: %s" (Wire.response_to_line other)
        | Error e -> Alcotest.failf "result decode failed: %s" e);
  ]

(* --- audit rotation ------------------------------------------------------------ *)

let audit_event i =
  {
    Audit.analyst = "alice";
    sql = Printf.sprintf "SELECT COUNT(*) FROM trips WHERE fare > %d" i;
    request_id = None;
    outcome = Audit.Granted;
    epsilon = 0.1;
    delta = 1e-9;
    max_noise_scale = 10.0;
    cache_hit = false;
    parse_ns = 1.0;
    analysis_ns = 2.0;
    smooth_ns = 3.0;
    execution_ns = 4.0;
    perturbation_ns = 5.0;
    total_ns = 15.0;
  }

let parse_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> (
        match Json.of_string line with
        | Ok j -> go (j :: acc)
        | Error e -> Alcotest.failf "torn line in %s: %s in %S" path e line)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  end

let rotation_tests =
  [
    Alcotest.test_case "size rotation never tears a JSON line" `Quick (fun () ->
        let path = temp_file ".audit" in
        let old = path ^ ".1" in
        let audit = Audit.to_file ~max_bytes:700 path in
        for i = 1 to 25 do
          Audit.log audit (audit_event i)
        done;
        Audit.close audit;
        (* every surviving line in both generations must parse whole *)
        let current = parse_lines path in
        let rotated = parse_lines old in
        Alcotest.(check bool) "rotation happened" true (Sys.file_exists old);
        Alcotest.(check bool) "current generation non-empty" true (current <> []);
        Alcotest.(check bool) "rotated generation non-empty" true (rotated <> []);
        (* the newest events are in the newest file, in order *)
        let sql_of j =
          match Option.bind (Json.mem "sql" j) Json.to_str with
          | Some s -> s
          | None -> Alcotest.fail "audit line without sql"
        in
        let last = List.nth current (List.length current - 1) in
        Alcotest.(check string) "last event is the last line"
          (audit_event 25).Audit.sql (sql_of last);
        Alcotest.(check int) "all events counted" 25 (Audit.count audit);
        Sys.remove path;
        Sys.remove old);
    Alcotest.test_case "rotation resumes correctly after a restart" `Quick (fun () ->
        let path = temp_file ".audit" in
        let audit = Audit.to_file ~max_bytes:700 path in
        Audit.log audit (audit_event 1);
        Audit.close audit;
        (* a reopened sink re-seeds its byte count from the file, so the
           rotation threshold keeps counting from the real size *)
        let audit2 = Audit.to_file ~max_bytes:700 path in
        for i = 2 to 10 do
          Audit.log audit2 (audit_event i)
        done;
        Audit.close audit2;
        ignore (parse_lines path);
        ignore (parse_lines (path ^ ".1"));
        let size = (Unix.stat path).Unix.st_size in
        (* one whole line may straddle the limit, never more *)
        Alcotest.(check bool) "current file stays near the limit" true (size <= 1000);
        Sys.remove path;
        if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"));
  ]

let suites =
  [
    ("release_store", store_tests);
    ("release_replay", server_tests);
    ("audit_rotation", rotation_tests);
  ]
