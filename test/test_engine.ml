module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Executor = Flex_engine.Executor
module Metrics = Flex_engine.Metrics
module Csv = Flex_engine.Csv
module Eval = Flex_engine.Eval

let v_int i = Value.Int i
let v_str s = Value.String s
let v_float f = Value.Float f

(* Small fixture: people in cities with pets. *)
let fixture () =
  let cities =
    Table.create ~name:"cities" ~columns:[ "id"; "name" ]
      [
        [| v_int 1; v_str "sf" |];
        [| v_int 2; v_str "nyc" |];
        [| v_int 3; v_str "la" |];
      ]
  in
  let people =
    Table.create ~name:"people" ~columns:[ "id"; "name"; "city_id"; "age" ]
      [
        [| v_int 1; v_str "ada"; v_int 1; v_int 36 |];
        [| v_int 2; v_str "bob"; v_int 1; v_int 25 |];
        [| v_int 3; v_str "cyd"; v_int 2; v_int 40 |];
        [| v_int 4; v_str "dan"; v_int 2; Value.Null |];
        [| v_int 5; v_str "eve"; Value.Null; v_int 31 |];
      ]
  in
  let pets =
    Table.create ~name:"pets" ~columns:[ "owner_id"; "kind" ]
      [
        [| v_int 1; v_str "cat" |];
        [| v_int 1; v_str "dog" |];
        [| v_int 2; v_str "cat" |];
        [| v_int 9; v_str "fish" |];
      ]
  in
  Database.of_tables [ cities; people; pets ]

let run sql =
  match Executor.run_sql (fixture ()) sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "query failed (%s): %s" sql e

let run_err sql =
  match Executor.run_sql (fixture ()) sql with
  | Ok _ -> Alcotest.failf "expected failure: %s" sql
  | Error _ -> ()

let scalar sql =
  match (run sql).rows with
  | [ [| v |] ] -> v
  | rows -> Alcotest.failf "expected one cell, got %d rows" (List.length rows)

let int_scalar sql =
  match Value.to_int (scalar sql) with
  | Some i -> i
  | None -> Alcotest.failf "expected integer result for %s" sql

let check_int sql expected =
  Alcotest.(check int) sql expected (int_scalar sql)

(* --- value semantics --------------------------------------------------------- *)

let value_tests =
  [
    Alcotest.test_case "ordering across types" `Quick (fun () ->
        Alcotest.(check bool) "null first" true (Value.compare Value.Null (v_int 0) < 0);
        Alcotest.(check bool) "int/float mix" true (Value.compare (v_int 2) (v_float 2.5) < 0);
        Alcotest.(check bool) "int = float" true (Value.equal (v_int 2) (v_float 2.0)));
    Alcotest.test_case "sql equality with null" `Quick (fun () ->
        Alcotest.(check bool) "null = x is unknown" true
          (Value.sql_equal Value.Null (v_int 1) = None));
    Alcotest.test_case "3-valued AND/OR" `Quick (fun () ->
        Alcotest.(check bool) "false AND null = false" true
          (Eval.and3 (Value.Bool false) Value.Null = Value.Bool false);
        Alcotest.(check bool) "true AND null = null" true
          (Eval.and3 (Value.Bool true) Value.Null = Value.Null);
        Alcotest.(check bool) "true OR null = true" true
          (Eval.or3 (Value.Bool true) Value.Null = Value.Bool true));
    Alcotest.test_case "like matching" `Quick (fun () ->
        let m p s = Eval.like (v_str s) (v_str p) = Value.Bool true in
        Alcotest.(check bool) "prefix" true (m "a%" "abc");
        Alcotest.(check bool) "suffix" true (m "%c" "abc");
        Alcotest.(check bool) "underscore" true (m "a_c" "abc");
        Alcotest.(check bool) "no match" false (m "a_c" "abcd");
        Alcotest.(check bool) "literal percent matches anywhere" true (m "%b%" "abc"));
  ]

(* --- selection, projection, expressions --------------------------------------- *)

let select_tests =
  [
    Alcotest.test_case "count star" `Quick (fun () -> check_int "SELECT COUNT(*) FROM people" 5);
    Alcotest.test_case "where filtering" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people WHERE age > 30" 3;
        (* NULL age rows are dropped by the predicate *)
        check_int "SELECT COUNT(*) FROM people WHERE age <= 30" 1);
    Alcotest.test_case "projection names" `Quick (fun () ->
        let r = run "SELECT name AS person, age FROM people LIMIT 1" in
        Alcotest.(check (list string)) "columns" [ "person"; "age" ] r.columns);
    Alcotest.test_case "star expansion" `Quick (fun () ->
        let r = run "SELECT * FROM cities" in
        Alcotest.(check (list string)) "columns" [ "id"; "name" ] r.columns;
        Alcotest.(check int) "rows" 3 (List.length r.rows));
    Alcotest.test_case "arithmetic and functions" `Quick (fun () ->
        Alcotest.(check bool) "int division truncates" true
          (scalar "SELECT 7 / 2" = v_int 3);
        Alcotest.(check bool) "mixed division is float" true
          (scalar "SELECT 7.0 / 2" = v_float 3.5);
        Alcotest.(check bool) "upper" true (scalar "SELECT UPPER('abc')" = v_str "ABC");
        Alcotest.(check bool) "coalesce" true (scalar "SELECT COALESCE(NULL, 5)" = v_int 5);
        Alcotest.(check bool) "case" true
          (scalar "SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END" = v_str "b"));
    Alcotest.test_case "distinct" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM (SELECT DISTINCT kind FROM pets) k" 3);
    Alcotest.test_case "in and between" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people WHERE id IN (1, 3, 5)" 3;
        check_int "SELECT COUNT(*) FROM people WHERE age BETWEEN 25 AND 36" 3);
    Alcotest.test_case "is null" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people WHERE age IS NULL" 1;
        check_int "SELECT COUNT(*) FROM people WHERE age IS NOT NULL" 4);
    Alcotest.test_case "order by and limit" `Quick (fun () ->
        let r = run "SELECT name FROM people ORDER BY age DESC LIMIT 2" in
        match r.rows with
        | [ [| a |]; [| b |] ] ->
          Alcotest.(check bool) "cyd first" true (a = v_str "cyd");
          Alcotest.(check bool) "ada second" true (b = v_str "ada")
        | _ -> Alcotest.fail "unexpected rows");
    Alcotest.test_case "order by null first ascending" `Quick (fun () ->
        let r = run "SELECT name FROM people ORDER BY age ASC LIMIT 1" in
        match r.rows with
        | [ [| v |] ] -> Alcotest.(check bool) "dan (null age)" true (v = v_str "dan")
        | _ -> Alcotest.fail "unexpected rows");
    Alcotest.test_case "offset" `Quick (fun () ->
        let r = run "SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 2" in
        match r.rows with
        | [ [| a |]; [| b |] ] ->
          Alcotest.(check bool) "ids 3,4" true (a = v_int 3 && b = v_int 4)
        | _ -> Alcotest.fail "unexpected rows");
  ]

(* --- joins --------------------------------------------------------------------- *)

let join_tests =
  [
    Alcotest.test_case "inner equijoin" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people p JOIN pets x ON p.id = x.owner_id" 3);
    Alcotest.test_case "left join preserves unmatched" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people p LEFT JOIN pets x ON p.id = x.owner_id" 6;
        (* unmatched rows carry NULLs *)
        check_int
          "SELECT COUNT(*) FROM people p LEFT JOIN pets x ON p.id = x.owner_id \
           WHERE x.kind IS NULL"
          3);
    Alcotest.test_case "right join mirrors left" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM pets x RIGHT JOIN people p ON p.id = x.owner_id" 6);
    Alcotest.test_case "full join" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people p FULL JOIN pets x ON p.id = x.owner_id" 7);
    Alcotest.test_case "cross join" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM cities CROSS JOIN pets" 12;
        check_int "SELECT COUNT(*) FROM cities, pets" 12);
    Alcotest.test_case "null keys never match" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people p JOIN cities c ON p.city_id = c.id" 4);
    Alcotest.test_case "using and natural" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people JOIN cities USING (id)" 3;
        (* natural join matches on every shared column: id AND name, which
           never agree across these tables *)
        check_int "SELECT COUNT(*) FROM people NATURAL JOIN cities" 0);
    Alcotest.test_case "self join" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people a JOIN people b ON a.city_id = b.city_id" 8);
    Alcotest.test_case "join with residual predicate" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people a JOIN people b ON a.city_id = b.city_id \
           AND a.id < b.id"
          2);
    Alcotest.test_case "non-equality join condition" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM cities a JOIN cities b ON a.id < b.id" 3);
    Alcotest.test_case "hash join equals nested loop" `Quick (fun () ->
        (* same condition expressed once hashable, once not *)
        let a =
          int_scalar
            "SELECT COUNT(*) FROM people p JOIN pets x ON p.id = x.owner_id"
        in
        let b =
          int_scalar
            "SELECT COUNT(*) FROM people p JOIN pets x ON p.id <= x.owner_id AND \
             p.id >= x.owner_id"
        in
        Alcotest.(check int) "equal counts" a b);
  ]

(* --- grouping and aggregates ------------------------------------------------------ *)

let group_tests =
  [
    Alcotest.test_case "group by with counts" `Quick (fun () ->
        let r = run "SELECT city_id, COUNT(*) AS n FROM people GROUP BY city_id ORDER BY n DESC" in
        Alcotest.(check int) "three groups" 3 (List.length r.rows));
    Alcotest.test_case "count ignores nulls, count star does not" `Quick (fun () ->
        check_int "SELECT COUNT(age) FROM people" 4;
        check_int "SELECT COUNT(*) FROM people" 5);
    Alcotest.test_case "count distinct" `Quick (fun () ->
        check_int "SELECT COUNT(DISTINCT kind) FROM pets" 3);
    Alcotest.test_case "sum avg min max" `Quick (fun () ->
        check_int "SELECT SUM(age) FROM people" 132;
        Alcotest.(check bool) "avg" true (scalar "SELECT AVG(age) FROM people" = v_float 33.0);
        check_int "SELECT MIN(age) FROM people" 25;
        check_int "SELECT MAX(age) FROM people" 40);
    Alcotest.test_case "median and stddev" `Quick (fun () ->
        Alcotest.(check bool) "median" true
          (scalar "SELECT MEDIAN(age) FROM people" = v_float 33.5);
        match scalar "SELECT STDDEV(age) FROM people" with
        | Value.Float f -> Alcotest.(check (float 0.01)) "stddev" (sqrt 42.0) f
        | _ -> Alcotest.fail "stddev not float");
    Alcotest.test_case "aggregates over empty input" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people WHERE age > 100" 0;
        Alcotest.(check bool) "sum of empty is null" true
          (scalar "SELECT SUM(age) FROM people WHERE age > 100" = Value.Null));
    Alcotest.test_case "having filters groups" `Quick (fun () ->
        let r =
          run "SELECT city_id, COUNT(*) FROM people GROUP BY city_id HAVING COUNT(*) >= 2"
        in
        Alcotest.(check int) "two groups" 2 (List.length r.rows));
    Alcotest.test_case "group by expression" `Quick (fun () ->
        let r = run "SELECT age % 2, COUNT(*) FROM people WHERE age IS NOT NULL GROUP BY age % 2" in
        Alcotest.(check int) "parity groups" 2 (List.length r.rows));
    Alcotest.test_case "aggregate of expression" `Quick (fun () ->
        check_int "SELECT SUM(age * 2) FROM people" 264);
  ]

(* --- subqueries, CTEs, set ops ------------------------------------------------------ *)

let query_tests =
  [
    Alcotest.test_case "derived table" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM (SELECT id FROM people WHERE age > 30) old" 3);
    Alcotest.test_case "cte" `Quick (fun () ->
        check_int
          "WITH old AS (SELECT id FROM people WHERE age > 30) SELECT COUNT(*) FROM old"
          3);
    Alcotest.test_case "cte chaining" `Quick (fun () ->
        check_int
          "WITH a AS (SELECT id FROM people WHERE age > 30), b AS (SELECT id \
           FROM a WHERE id > 1) SELECT COUNT(*) FROM b"
          2);
    Alcotest.test_case "cte column rename" `Quick (fun () ->
        check_int
          "WITH t (pid) AS (SELECT id FROM people) SELECT COUNT(pid) FROM t" 5);
    Alcotest.test_case "in subquery" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people WHERE id IN (SELECT owner_id FROM pets)" 2);
    Alcotest.test_case "exists" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people WHERE EXISTS (SELECT 1 FROM pets)" 5);
    Alcotest.test_case "scalar subquery" `Quick (fun () ->
        check_int "SELECT COUNT(*) FROM people WHERE age > (SELECT AVG(age) FROM people)" 2);
    Alcotest.test_case "union distinct vs all" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM (SELECT kind FROM pets UNION SELECT kind FROM pets) u" 3;
        check_int
          "SELECT COUNT(*) FROM (SELECT kind FROM pets UNION ALL SELECT kind FROM pets) u"
          8);
    Alcotest.test_case "except and intersect" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM (SELECT id FROM people EXCEPT SELECT owner_id FROM pets) e"
          3;
        check_int
          "SELECT COUNT(*) FROM (SELECT id FROM people INTERSECT SELECT owner_id \
           FROM pets) i"
          2);
    Alcotest.test_case "grouped subquery as relation" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM (SELECT city_id, COUNT(*) AS n FROM people GROUP \
           BY city_id) g WHERE g.n >= 2"
          2);
    Alcotest.test_case "aggregate of grouped subquery" `Quick (fun () ->
        check_int
          "SELECT MAX(n) FROM (SELECT COUNT(*) AS n FROM people GROUP BY city_id) g" 2);
    Alcotest.test_case "errors" `Quick (fun () ->
        run_err "SELECT nosuch FROM people";
        run_err "SELECT * FROM nosuch";
        run_err "SELECT COUNT(*) FROM people WHERE age > (SELECT id FROM people)";
        run_err "SELECT a FROM people UNION SELECT a, b FROM pets");
  ]

(* --- metrics -------------------------------------------------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "mf matches SQL oracle" `Quick (fun () ->
        let db = fixture () in
        let m = Metrics.compute db in
        (* most frequent city_id among people is 1 or 2, both appear twice *)
        Alcotest.(check (option int)) "people.city_id" (Some 2)
          (Metrics.mf m ~table:"people" ~column:"city_id");
        Alcotest.(check (option int)) "pets.owner_id" (Some 2)
          (Metrics.mf m ~table:"pets" ~column:"owner_id");
        Alcotest.(check (option int)) "unique ids" (Some 1)
          (Metrics.mf m ~table:"people" ~column:"id");
        (* cross-check against the paper's collection query *)
        let oracle =
          match
            Executor.run_sql db
              "SELECT COUNT(owner_id) AS c FROM pets GROUP BY owner_id ORDER BY c \
               DESC LIMIT 1"
          with
          | Ok { rows = [ [| v |] ]; _ } -> Value.to_int v
          | _ -> None
        in
        Alcotest.(check (option int)) "sql oracle agrees" oracle
          (Metrics.mf m ~table:"pets" ~column:"owner_id"));
    Alcotest.test_case "vr is max minus min" `Quick (fun () ->
        let m = Metrics.compute (fixture ()) in
        Alcotest.(check (option (float 1e-9))) "age range" (Some 15.0)
          (Metrics.vr m ~table:"people" ~column:"age");
        Alcotest.(check (option (float 1e-9))) "no numeric values" None
          (Metrics.vr m ~table:"people" ~column:"name"));
    Alcotest.test_case "public registry" `Quick (fun () ->
        let m = Metrics.compute (fixture ()) in
        Alcotest.(check bool) "not public by default" false (Metrics.is_public m "cities");
        Metrics.set_public m "cities";
        Alcotest.(check bool) "now public" true (Metrics.is_public m "CITIES");
        Metrics.clear_public m "cities";
        Alcotest.(check bool) "cleared" false (Metrics.is_public m "cities"));
    Alcotest.test_case "serialisation roundtrip" `Quick (fun () ->
        let m = Metrics.compute (fixture ()) in
        Metrics.set_public m "cities";
        let m2 = Metrics.of_lines (Metrics.to_lines m) in
        Alcotest.(check (list string)) "same lines" (Metrics.to_lines m) (Metrics.to_lines m2);
        Alcotest.(check bool) "public preserved" true (Metrics.is_public m2 "cities"));
    Alcotest.test_case "row counts and totals" `Quick (fun () ->
        let m = Metrics.compute (fixture ()) in
        Alcotest.(check (option int)) "people rows" (Some 5) (Metrics.row_count m ~table:"people");
        Alcotest.(check int) "total" 12 (Metrics.total_rows m));
    Alcotest.test_case "column listing from metrics" `Quick (fun () ->
        let m = Metrics.compute (fixture ()) in
        Alcotest.(check (list string)) "people columns"
          [ "age"; "city_id"; "id"; "name" ]
          (Metrics.columns m ~table:"people"));
  ]

(* --- csv ---------------------------------------------------------------------------------- *)

let csv_tests =
  [
    Alcotest.test_case "roundtrip through a file" `Quick (fun () ->
        let path = Filename.temp_file "oflex" ".csv" in
        let r = run "SELECT id, name FROM cities ORDER BY id" in
        Csv.save_result r path;
        let t = Csv.load_table ~name:"cities2" path in
        Alcotest.(check int) "rows" 3 (Table.row_count t);
        Alcotest.(check bool) "value sniffed as int" true
          ((Table.rows t).(0).(0) = v_int 1);
        Sys.remove path);
    Alcotest.test_case "quoted fields" `Quick (fun () ->
        let path = Filename.temp_file "oflex" ".csv" in
        let oc = open_out path in
        output_string oc "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
        close_out oc;
        let t = Csv.load_table ~name:"q" path in
        Alcotest.(check bool) "comma preserved" true ((Table.rows t).(0).(0) = v_str "x,y");
        Alcotest.(check bool) "escaped quotes" true
          ((Table.rows t).(0).(1) = v_str "he said \"hi\"");
        Sys.remove path);
    Alcotest.test_case "empty cell is NULL" `Quick (fun () ->
        let path = Filename.temp_file "oflex" ".csv" in
        let oc = open_out path in
        output_string oc "a,b\n1,\n";
        close_out oc;
        let t = Csv.load_table ~name:"n" path in
        Alcotest.(check bool) "null" true (Value.is_null (Table.rows t).(0).(1));
        Sys.remove path);
  ]

let suites =
  [
    ("value", value_tests);
    ("executor-select", select_tests);
    ("executor-join", join_tests);
    ("executor-group", group_tests);
    ("executor-query", query_tests);
    ("metrics", metrics_tests);
    ("csv", csv_tests);
  ]

(* --- correlated subqueries (appended) --------------------------------------- *)

let correlated_tests =
  [
    Alcotest.test_case "correlated EXISTS" `Quick (fun () ->
        (* people who own at least one pet *)
        check_int
          "SELECT COUNT(*) FROM people p WHERE EXISTS (SELECT 1 FROM pets x \
           WHERE x.owner_id = p.id)"
          2);
    Alcotest.test_case "correlated NOT EXISTS" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people p WHERE NOT EXISTS (SELECT 1 FROM pets x \
           WHERE x.owner_id = p.id)"
          3);
    Alcotest.test_case "correlated scalar subquery" `Quick (fun () ->
        (* per-person pet count used as a filter *)
        check_int
          "SELECT COUNT(*) FROM people p WHERE (SELECT COUNT(*) FROM pets x \
           WHERE x.owner_id = p.id) >= 2"
          1);
    Alcotest.test_case "correlated IN" `Quick (fun () ->
        check_int
          "SELECT COUNT(*) FROM people p WHERE 'cat' IN (SELECT kind FROM pets x \
           WHERE x.owner_id = p.id)"
          2);
    Alcotest.test_case "inner scope shadows outer" `Quick (fun () ->
        (* the inner p refers to the subquery's own people alias *)
        check_int
          "SELECT COUNT(*) FROM people p WHERE p.id = (SELECT MIN(q.id) FROM \
           people q)"
          1);
    Alcotest.test_case "unknown columns still error" `Quick (fun () ->
        run_err "SELECT COUNT(*) FROM people p WHERE EXISTS (SELECT nosuch FROM pets)");
  ]

let suites = suites @ [ ("executor-correlated", correlated_tests) ]

(* --- plan / EXPLAIN (appended) ------------------------------------------------ *)

module Plan = Flex_engine.Plan

let explain sql =
  match Plan.explain_sql sql with
  | Ok s -> s
  | Error e -> Alcotest.failf "explain failed: %s" e

let contains s sub = Astring.String.is_infix ~affix:sub s

let plan_tests =
  [
    Alcotest.test_case "equijoins plan as hash joins" `Quick (fun () ->
        let s = explain "SELECT COUNT(*) FROM people p JOIN pets x ON p.id = x.owner_id" in
        Alcotest.(check bool) "hash" true (contains s "hash on p.id = x.owner_id");
        Alcotest.(check bool) "aggregate" true (contains s "Aggregate [COUNT(*)]"));
    Alcotest.test_case "non-equality conditions plan as nested loops" `Quick (fun () ->
        let s = explain "SELECT 1 FROM cities a JOIN cities b ON a.id < b.id" in
        Alcotest.(check bool) "nested" true (contains s "nested loop"));
    Alcotest.test_case "residual conjuncts are counted" `Quick (fun () ->
        let s =
          explain
            "SELECT 1 FROM people p JOIN pets x ON p.id = x.owner_id AND p.age > 30"
        in
        Alcotest.(check bool) "residual" true (contains s "+1 residual"));
    Alcotest.test_case "sort, slice and ctes appear" `Quick (fun () ->
        let s =
          explain
            "WITH w AS (SELECT id FROM people) SELECT id FROM w ORDER BY id DESC LIMIT 3"
        in
        Alcotest.(check bool) "cte" true (contains s "CTE w:");
        Alcotest.(check bool) "sort" true (contains s "Sort [id DESC]");
        Alcotest.(check bool) "slice" true (contains s "Slice LIMIT 3"));
    Alcotest.test_case "set operations" `Quick (fun () ->
        let s = explain "SELECT id FROM people UNION ALL SELECT owner_id FROM pets" in
        Alcotest.(check bool) "union all" true (contains s "UNION ALL"));
    Alcotest.test_case "group by and having" `Quick (fun () ->
        let s =
          explain
            "SELECT city_id, COUNT(*) FROM people GROUP BY city_id HAVING COUNT(*) > 1"
        in
        Alcotest.(check bool) "group" true (contains s "GROUP BY city_id");
        Alcotest.(check bool) "having" true (contains s "HAVING"));
  ]

let suites = suites @ [ ("plan", plan_tests) ]

(* --- scalar function coverage (appended) --------------------------------------- *)

let function_tests =
  [
    Alcotest.test_case "string functions" `Quick (fun () ->
        Alcotest.(check bool) "length" true (scalar "SELECT LENGTH('hello')" = v_int 5);
        Alcotest.(check bool) "trim" true (scalar "SELECT TRIM('  x  ')" = v_str "x");
        Alcotest.(check bool) "substr 2-arg" true (scalar "SELECT SUBSTR('hello', 2)" = v_str "ello");
        Alcotest.(check bool) "substr 3-arg" true (scalar "SELECT SUBSTR('hello', 2, 3)" = v_str "ell");
        Alcotest.(check bool) "substr past end" true (scalar "SELECT SUBSTR('hi', 9)" = v_str "");
        Alcotest.(check bool) "concat fn" true
          (scalar "SELECT CONCAT('a', 'b', 'c')" = v_str "abc"));
    Alcotest.test_case "date extraction" `Quick (fun () ->
        Alcotest.(check bool) "year" true (scalar "SELECT YEAR('2016-03-14')" = v_int 2016);
        Alcotest.(check bool) "month" true (scalar "SELECT MONTH('2016-03-14')" = v_int 3);
        Alcotest.(check bool) "year of garbage" true
          (Value.is_null (scalar "SELECT YEAR('xyzw-aa')")));
    Alcotest.test_case "numeric functions" `Quick (fun () ->
        Alcotest.(check bool) "round to digits" true
          (scalar "SELECT ROUND(3.14159, 2)" = v_float 3.14);
        Alcotest.(check bool) "floor" true (scalar "SELECT FLOOR(3.9)" = v_int 3);
        Alcotest.(check bool) "ceil" true (scalar "SELECT CEIL(3.1)" = v_int 4);
        Alcotest.(check bool) "sqrt" true (scalar "SELECT SQRT(16.0)" = v_float 4.0);
        Alcotest.(check bool) "sqrt of negative is null" true
          (Value.is_null (scalar "SELECT SQRT(-1.0)"));
        Alcotest.(check bool) "greatest" true (scalar "SELECT GREATEST(1, 5, 3)" = v_int 5);
        Alcotest.(check bool) "least" true (scalar "SELECT LEAST(1, 5, 3)" = v_int 1));
    Alcotest.test_case "null propagation in functions" `Quick (fun () ->
        Alcotest.(check bool) "lower null" true (Value.is_null (scalar "SELECT LOWER(NULL)"));
        Alcotest.(check bool) "abs null" true (Value.is_null (scalar "SELECT ABS(NULL)"));
        Alcotest.(check bool) "nullif equal" true (Value.is_null (scalar "SELECT NULLIF(3, 3)"));
        Alcotest.(check bool) "nullif differs" true (scalar "SELECT NULLIF(3, 4)" = v_int 3));
    Alcotest.test_case "casts" `Quick (fun () ->
        Alcotest.(check bool) "string to int" true (scalar "SELECT CAST('42' AS int)" = v_int 42);
        Alcotest.(check bool) "junk to int is null" true
          (Value.is_null (scalar "SELECT CAST('junk' AS int)"));
        Alcotest.(check bool) "int to varchar" true
          (scalar "SELECT CAST(7 AS varchar(10))" = v_str "7");
        Alcotest.(check bool) "string to bool" true
          (scalar "SELECT CAST('true' AS boolean)" = Value.Bool true);
        Alcotest.(check bool) "float to int truncates" true
          (scalar "SELECT CAST(3.7 AS int)" = v_int 3));
    Alcotest.test_case "unknown function errors" `Quick (fun () ->
        run_err "SELECT FROBNICATE(1) FROM people");
  ]

let suites = suites @ [ ("eval-functions", function_tests) ]

(* --- differential tests: compiled executor vs reference interpreter ------- *)

module Reference = Flex_engine.Reference
module Uber = Flex_workload.Uber
module Qgen = Flex_workload.Qgen
module Rng = Flex_dp.Rng

(* Exact cell equality: structural, except NaN = NaN so float aggregates
   cannot produce spurious diffs. *)
let cell_equal (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Float x, Value.Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | _ -> a = b

let row_to_string row =
  Array.to_list row |> List.map Value.to_string |> String.concat ", "

(* Both pipelines must agree on columns, row values AND row order (or both
   must fail). *)
let check_same db sql =
  match (Executor.run_sql db sql, Reference.run_sql db sql) with
  | Error _, Error _ -> ()
  | Ok _, Error e -> Alcotest.failf "compiled ok, reference failed (%s): %s" sql e
  | Error e, Ok _ -> Alcotest.failf "compiled failed, reference ok (%s): %s" sql e
  | Ok a, Ok b ->
    Alcotest.(check (list string)) (sql ^ ": columns") b.Reference.columns a.Executor.columns;
    if List.length a.Executor.rows <> List.length b.Reference.rows then
      Alcotest.failf "row count differs (%s): compiled %d, reference %d" sql
        (List.length a.Executor.rows)
        (List.length b.Reference.rows);
    List.iteri
      (fun i (ra, rb) ->
        let same =
          Array.length ra = Array.length rb
          && (let ok = ref true in
              Array.iteri (fun j va -> if not (cell_equal va rb.(j)) then ok := false) ra;
              !ok)
        in
        if not same then
          Alcotest.failf "row %d differs (%s): compiled [%s], reference [%s]" i sql
            (row_to_string ra) (row_to_string rb))
      (List.combine a.Executor.rows b.Reference.rows)

(* Hand-written queries over the fixture hitting the edge cases the generated
   workload rarely produces. *)
let edge_case_queries =
  [
    (* multi-key hash joins, including NULL key columns (never match) *)
    "SELECT p.name, q.name FROM people p JOIN people q \
     ON p.city_id = q.city_id AND p.age = q.age";
    "SELECT p.name, q.name FROM people p LEFT JOIN people q \
     ON p.city_id = q.city_id AND p.age = q.age ORDER BY p.id, q.id";
    "SELECT p.name, c.name FROM people p JOIN cities c ON p.city_id = c.id";
    (* RIGHT / FULL outer joins, unmatched sides on both ends *)
    "SELECT p.name, t.kind FROM people p RIGHT JOIN pets t ON p.id = t.owner_id";
    "SELECT p.name, t.kind FROM people p FULL JOIN pets t ON p.id = t.owner_id";
    "SELECT c.name, p.name FROM cities c FULL JOIN people p ON c.id = p.city_id \
     ORDER BY c.id, p.id";
    (* non-equality join condition: nested loop path *)
    "SELECT p.name, q.name FROM people p JOIN people q ON p.age < q.age";
    (* DISTINCT and set operations, with and without ALL *)
    "SELECT DISTINCT city_id FROM people";
    "SELECT city_id FROM people UNION SELECT id FROM cities";
    "SELECT city_id FROM people UNION ALL SELECT id FROM cities";
    "SELECT id FROM cities EXCEPT SELECT city_id FROM people";
    "SELECT city_id FROM people EXCEPT ALL SELECT id FROM cities";
    "SELECT city_id FROM people INTERSECT SELECT id FROM cities";
    "SELECT city_id FROM people INTERSECT ALL SELECT city_id FROM people";
    (* ORDER BY on unprojected source keys, positional, DESC, ties *)
    "SELECT name FROM people ORDER BY age DESC, id";
    "SELECT name FROM people ORDER BY city_id, name";
    "SELECT name, age FROM people ORDER BY 2 DESC";
    "SELECT city_id, COUNT(*) FROM people GROUP BY city_id ORDER BY COUNT(*) DESC, city_id";
    (* grouping edge cases *)
    "SELECT COUNT(*) FROM people WHERE age > 100";
    "SELECT AVG(age) FROM people WHERE FALSE";
    "SELECT city_id, COUNT(DISTINCT age), SUM(age) FROM people GROUP BY city_id \
     HAVING COUNT(*) > 1";
    (* correlated subqueries *)
    "SELECT name FROM people p WHERE EXISTS \
     (SELECT 1 FROM pets t WHERE t.owner_id = p.id)";
    "SELECT name, (SELECT COUNT(*) FROM pets t WHERE t.owner_id = p.id) FROM people p";
    "SELECT name FROM people p WHERE age > \
     (SELECT AVG(age) FROM people q WHERE q.city_id = p.city_id)";
    (* LIMIT / OFFSET *)
    "SELECT name FROM people ORDER BY id LIMIT 2 OFFSET 1";
    "SELECT name FROM people ORDER BY id LIMIT 0";
  ]

let differential_tests =
  [
    Alcotest.test_case "edge cases agree with reference" `Quick (fun () ->
        let db = fixture () in
        List.iter (check_same db) edge_case_queries);
    Alcotest.test_case "generated workload agrees with reference" `Quick (fun () ->
        let rng = Rng.create ~seed:7 () in
        let db, _metrics = Uber.generate ~sizes:Uber.small_sizes rng in
        let queries =
          Qgen.generate rng ~count:50 ~n_cities:12 ~n_drivers:120 ~n_users:200
        in
        List.iter
          (fun (q : Qgen.t) ->
            check_same db q.sql;
            check_same db q.population_sql)
          queries);
  ]

let suites = suites @ [ ("executor-differential", differential_tests) ]

(* --- columnar 3-way differential: reference = row-compiled = columnar ----- *)

let with_columnar on f =
  let prev = !Executor.columnar_enabled in
  Executor.columnar_enabled := on;
  Fun.protect ~finally:(fun () -> Executor.columnar_enabled := prev) f

(* The columnar engine must be indistinguishable from the row pipeline:
   reference agrees with both, and the two compiled paths agree with each
   other cell-for-cell (same values, same row order, same error/ok split).
   Anything short of that would make DP releases depend on the engine
   toggle. *)
let check_columnar_3way db sql =
  with_columnar false (fun () -> check_same db sql);
  with_columnar true (fun () -> check_same db sql);
  let row = with_columnar false (fun () -> Executor.run_sql db sql) in
  let col = with_columnar true (fun () -> Executor.run_sql db sql) in
  match (row, col) with
  | Error _, Error _ -> ()
  | Ok _, Error e -> Alcotest.failf "columnar failed, row ok (%s): %s" sql e
  | Error e, Ok _ -> Alcotest.failf "row failed, columnar ok (%s): %s" sql e
  | Ok a, Ok b ->
    Alcotest.(check (list string)) (sql ^ ": columns") a.Executor.columns b.Executor.columns;
    if List.length a.Executor.rows <> List.length b.Executor.rows then
      Alcotest.failf "row count differs (%s): row %d, columnar %d" sql
        (List.length a.Executor.rows)
        (List.length b.Executor.rows);
    List.iteri
      (fun i (ra, rb) ->
        let same =
          Array.length ra = Array.length rb
          && (let ok = ref true in
              Array.iteri (fun j va -> if not (cell_equal va rb.(j)) then ok := false) ra;
              !ok)
        in
        if not same then
          Alcotest.failf "row %d differs (%s): row [%s], columnar [%s]" i sql
            (row_to_string ra) (row_to_string rb))
      (List.combine a.Executor.rows b.Executor.rows)

(* Trap fixture for the typed kernels: NULL-heavy key and measure columns, a
   mixed Int/Float column (boxed in the chunk), a dictionary column with
   NULLs, negative and repeated join keys. *)
let null_mixed_fixture () =
  let n = 40 in
  let facts =
    Table.create ~name:"facts" ~columns:[ "id"; "k"; "grp"; "m"; "mix"; "tag" ]
      (List.init n (fun i ->
           [|
             v_int i;
             (if i mod 3 = 0 then Value.Null else v_int (i mod 5));
             (if i mod 7 = 0 then Value.Null else v_int ((i mod 4) - 2));
             (if i mod 4 = 0 then Value.Null else v_float (float_of_int i /. 4.0));
             (if i mod 2 = 0 then v_int i else v_float (float_of_int i +. 0.5));
             (match i mod 5 with
             | 0 -> Value.Null
             | 1 -> v_str "red"
             | 2 -> v_str "green"
             | 3 -> v_str "blue"
             | _ -> v_str "red");
           |]))
  in
  let dims =
    Table.create ~name:"dims" ~columns:[ "k"; "label" ]
      [
        [| v_int 0; v_str "zero" |];
        [| v_int 1; v_str "one" |];
        [| v_int 2; v_str "two" |];
        [| v_int 2; v_str "two-again" |];
        [| Value.Null; v_str "null-key" |];
        [| v_int 4; v_str "four" |];
      ]
  in
  Database.of_tables [ facts; dims ]

let null_mixed_queries =
  [
    "SELECT * FROM facts";
    "SELECT id, m FROM facts WHERE k = 2";
    "SELECT id FROM facts WHERE m > 3.0 AND tag = 'red'";
    (* NULL join keys never match; duplicate build keys fan out *)
    "SELECT f.id, d.label FROM facts f JOIN dims d ON f.k = d.k";
    "SELECT f.id, d.label FROM facts f JOIN dims d ON f.k = d.k WHERE d.label = 'two'";
    (* grouping by NULL-heavy, negative-ranged and dictionary keys *)
    "SELECT k, COUNT(*) FROM facts GROUP BY k";
    "SELECT grp, COUNT(*), SUM(m), MIN(m), MAX(m) FROM facts GROUP BY grp";
    "SELECT tag, COUNT(*), AVG(m) FROM facts GROUP BY tag HAVING COUNT(*) > 2";
    "SELECT tag, COUNT(m) FROM facts GROUP BY tag";
    (* aggregates over the mixed Int/Float column (boxed in the chunk) *)
    "SELECT SUM(mix), MIN(mix), MAX(mix), AVG(mix) FROM facts";
    "SELECT k, SUM(mix) FROM facts GROUP BY k";
    (* aggregate over an empty group set and an all-NULL slice *)
    "SELECT SUM(m) FROM facts WHERE id < 0";
    "SELECT AVG(m) FROM facts WHERE k IS NULL AND m IS NULL";
    (* top-K over a NULL-heavy float key, ties broken by id *)
    "SELECT id, m FROM facts ORDER BY m DESC, id LIMIT 7";
    "SELECT id FROM facts ORDER BY k, id LIMIT 10 OFFSET 3";
    "SELECT tag, m FROM facts ORDER BY tag, m LIMIT 12";
  ]

let columnar_differential_tests =
  [
    Alcotest.test_case "edge cases agree 3-way with columnar" `Quick (fun () ->
        let db = fixture () in
        List.iter (check_columnar_3way db) edge_case_queries);
    Alcotest.test_case "generated workload agrees 3-way with columnar" `Quick (fun () ->
        let rng = Rng.create ~seed:11 () in
        let db, _metrics = Uber.generate ~sizes:Uber.small_sizes rng in
        let queries =
          Qgen.generate rng ~count:40 ~n_cities:12 ~n_drivers:120 ~n_users:200
        in
        List.iter
          (fun (q : Qgen.t) ->
            check_columnar_3way db q.sql;
            check_columnar_3way db q.population_sql)
          queries);
    Alcotest.test_case "NULL-heavy and mixed-type traps agree 3-way" `Quick (fun () ->
        let db = null_mixed_fixture () in
        List.iter (check_columnar_3way db) null_mixed_queries);
  ]

let suites = suites @ [ ("columnar-differential", columnar_differential_tests) ]

(* --- explicit expectations for the new join/set-op edge cases ------------- *)

let edge_expectation_tests =
  [
    Alcotest.test_case "multi-key join skips NULL keys" `Quick (fun () ->
        (* dan (NULL age) and eve (NULL city_id) must not self-match *)
        let r =
          run
            "SELECT p.name FROM people p JOIN people q \
             ON p.city_id = q.city_id AND p.age = q.age ORDER BY p.id"
        in
        Alcotest.(check (list string)) "only non-NULL keys join"
          [ "ada"; "bob"; "cyd" ]
          (List.map (fun row -> Value.to_string row.(0)) r.rows));
    Alcotest.test_case "right join keeps unmatched right rows" `Quick (fun () ->
        let r =
          run "SELECT p.name, t.kind FROM people p RIGHT JOIN pets t ON p.id = t.owner_id"
        in
        Alcotest.(check int) "rows" 4 (List.length r.rows);
        let unmatched =
          List.filter (fun row -> Value.is_null row.(0)) r.rows
        in
        Alcotest.(check int) "fish owner missing" 1 (List.length unmatched));
    Alcotest.test_case "full join keeps both unmatched sides" `Quick (fun () ->
        let r =
          run "SELECT c.name, p.name FROM cities c FULL JOIN people p ON c.id = p.city_id"
        in
        (* 4 matched pairs; la has no people; eve has no city *)
        Alcotest.(check int) "rows" 6 (List.length r.rows);
        Alcotest.(check bool) "la unmatched" true
          (List.exists
             (fun row -> row.(0) = v_str "la" && Value.is_null row.(1))
             r.rows);
        Alcotest.(check bool) "eve unmatched" true
          (List.exists
             (fun row -> Value.is_null row.(0) && row.(1) = v_str "eve")
             r.rows));
    Alcotest.test_case "cross join with equality keys filters rows" `Quick (fun () ->
        (* regression: a Cross join carrying equality keys must apply them as
           filters, not drop every row *)
        let open Flex_sql.Ast in
        let col t c = Col { table = Some t; column = c } in
        let q =
          {
            ctes = [];
            body =
              Select
                {
                  distinct = false;
                  projections = [ Proj_expr (col "p" "name", None) ];
                  from =
                    [
                      Join
                        {
                          kind = Cross;
                          left = Table { name = "people"; alias = Some "p" };
                          right = Table { name = "cities"; alias = Some "c" };
                          cond = On (Binop (Eq, col "p" "city_id", col "c" "id"));
                        };
                    ];
                  where = None;
                  group_by = [];
                  having = None;
                };
            order_by = [ (col "p" "name", Asc) ];
            limit = None;
            offset = None;
          }
        in
        let r = Executor.run (fixture ()) q in
        Alcotest.(check (list string)) "equality keys act as filter"
          [ "ada"; "bob"; "cyd"; "dan" ]
          (List.map (fun row -> Value.to_string row.(0)) r.rows));
    Alcotest.test_case "distinct and set ops dedupe consistently" `Quick (fun () ->
        let r = run "SELECT DISTINCT kind FROM pets ORDER BY kind" in
        Alcotest.(check (list string)) "distinct" [ "cat"; "dog"; "fish" ]
          (List.map (fun row -> Value.to_string row.(0)) r.rows);
        let r =
          run "SELECT city_id FROM people INTERSECT SELECT id FROM cities"
        in
        Alcotest.(check int) "intersect" 2 (List.length r.rows));
    Alcotest.test_case "order by unprojected key" `Quick (fun () ->
        let r = run "SELECT name FROM people ORDER BY age DESC, id" in
        Alcotest.(check (list string)) "columns hidden again" [ "name" ] r.columns;
        Alcotest.(check (list string)) "order from hidden key"
          [ "cyd"; "ada"; "eve"; "bob"; "dan" ]
          (List.map (fun row -> Value.to_string row.(0)) r.rows));
    Alcotest.test_case "large limit is stack-safe" `Quick (fun () ->
        (* regression: take was not tail-recursive *)
        let rows = List.init 400_000 (fun i -> [| v_int i |]) in
        let t = Table.create ~name:"big" ~columns:[ "n" ] rows in
        let db = Database.of_tables [ t ] in
        match Executor.run_sql db "SELECT n FROM big LIMIT 399999" with
        | Ok r -> Alcotest.(check int) "rows" 399_999 (List.length r.rows)
        | Error e -> Alcotest.failf "limit query failed: %s" e);
  ]

let suites = suites @ [ ("executor-edge-cases", edge_expectation_tests) ]
