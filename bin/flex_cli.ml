(* flex_cli: FLEX differential privacy for SQL queries from the command line.

   Workflow (mirrors the paper's Fig 2 architecture):

     # one-off: collect database metrics from a directory of CSV tables
     flex_cli metrics data/ -o metrics.txt --public cities --pk trips.id

     # inspect a query's elastic sensitivity (needs only the metrics)
     flex_cli analyze --metrics metrics.txt -e 0.1 -d 1e-8 \
       "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"

     # answer a query with differential privacy
     flex_cli run data/ --metrics metrics.txt -e 0.1 -d 1e-8 "SELECT ..."

     # self-contained demo on a generated ride-sharing database
     flex_cli demo *)

module Value = Flex_engine.Value
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Csv = Flex_engine.Csv
module Flex = Flex_core.Flex
module Elastic = Flex_core.Elastic
module Rng = Flex_dp.Rng
open Cmdliner

let load_csv_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith (dir ^ " is not a directory");
  let tables =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.map (fun f ->
         let name = Filename.remove_extension f in
         Csv.load_table ~name (Filename.concat dir f))
  in
  if tables = [] then failwith ("no .csv files in " ^ dir);
  Database.of_tables tables

(* --- common options ---------------------------------------------------------- *)

let epsilon_t =
  Arg.(value & opt float 1.0 & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc:"Privacy budget epsilon.")

let delta_t =
  Arg.(value & opt float 1e-8 & info [ "d"; "delta" ] ~docv:"DELTA" ~doc:"Privacy parameter delta.")

let sql_t =
  Arg.(required & pos ~rev:true 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the noise.")

let no_public_opt_t =
  Arg.(
    value & flag
    & info [ "no-public-optimization" ]
        ~doc:"Disable the public-table optimisation (paper section 3.6).")

(* --- metrics ------------------------------------------------------------------- *)

let metrics_cmd =
  let run dir output publics pks =
    let db = load_csv_dir dir in
    let m = Metrics.compute db in
    List.iter (Metrics.set_public m) publics;
    List.iter
      (fun spec ->
        match String.split_on_char '.' spec with
        | [ table; column ] -> Metrics.set_primary_key m ~table ~column
        | _ -> failwith ("bad --pk spec (want table.column): " ^ spec))
      pks;
    Metrics.save m output;
    Fmt.pr "collected metrics for %d tables (%d rows) -> %s@."
      (List.length (Database.table_names db))
      (Metrics.total_rows m) output
  in
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Directory of CSV tables.") in
  let output =
    Arg.(value & opt string "metrics.txt" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let publics =
    Arg.(
      value
      & opt (list string) []
      & info [ "public" ] ~docv:"TABLES" ~doc:"Comma-separated public (non-protected) tables.")
  in
  let pks =
    Arg.(
      value
      & opt (list string) []
      & info [ "pk" ] ~docv:"COLS"
          ~doc:"Comma-separated primary keys, e.g. trips.id,drivers.id.")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Collect max-frequency metrics from CSV tables.")
    Term.(const run $ dir $ output $ publics $ pks)

(* --- analyze -------------------------------------------------------------------- *)

let analyze_cmd =
  let run metrics_file data_dir epsilon delta no_public sql =
    let db = Option.map load_csv_dir data_dir in
    let m =
      match (metrics_file, db) with
      | Some f, _ -> Metrics.load f
      | None, Some db -> Metrics.compute db
      | None, None -> failwith "either --metrics FILE or --data DIR is required"
    in
    let options =
      Flex.options ~epsilon ~delta ~public_optimization:(not no_public) ()
    in
    (match Flex.analyze_only ~options ~metrics:m sql with
    | Error r ->
      Fmt.epr "rejected: %s@." (Flex_core.Errors.to_string r);
      exit 1
    | Ok (analysis, bounds) ->
      Fmt.pr "histogram query: %b; joins: %d@." analysis.Elastic.is_histogram
        analysis.Elastic.joins;
      List.iter
        (fun (name, sens, smooth) ->
          Fmt.pr "column %s:@." name;
          Fmt.pr "  elastic sensitivity ES(k) = %s@." (Flex_dp.Sens.to_string sens);
          Fmt.pr "  smooth bound S = %g (attained at k = %d)@."
            smooth.Flex_dp.Smooth.smooth_bound smooth.Flex_dp.Smooth.argmax_k;
          Fmt.pr "  Laplace noise scale 2S/eps = %g@."
            (Flex_dp.Smooth.noise_scale ~epsilon smooth))
        bounds);
    (* with local data in hand there is nothing to protect from its owner:
       run the query and show the executed plan with actual row counts *)
    match db with
    | None -> ()
    | Some db -> (
      match Flex_sql.Parser.parse_statement sql with
      | Error _ -> ()
      | Ok
          ( Flex_sql.Ast.Query q | Flex_sql.Ast.Explain q
          | Flex_sql.Ast.Explain_analyze q ) ->
        let plan, _ =
          Flex_engine.Executor.explain_analyze ~metrics:m ~show_rows:true db q
        in
        Fmt.pr "@.-- executed plan (EXPLAIN ANALYZE)@.%s@." plan)
  in
  let metrics_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Metrics file produced by $(b,flex_cli metrics).")
  in
  let data_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "data" ] ~docv:"DIR"
          ~doc:
            "Directory of CSV tables. Metrics are computed from it when $(b,--metrics) \
             is omitted, and the query is executed locally to show an EXPLAIN ANALYZE \
             plan with actual per-operator row counts and timings.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Compute a query's elastic sensitivity from metrics alone (and, with \
          $(b,--data), its executed plan).")
    Term.(const run $ metrics_file $ data_dir $ epsilon_t $ delta_t $ no_public_opt_t $ sql_t)

(* --- run ------------------------------------------------------------------------- *)

let run_cmd =
  let run dir metrics_file epsilon delta no_public seed output report optimize sql =
    let db = load_csv_dir dir in
    let m =
      match metrics_file with Some f -> Metrics.load f | None -> Metrics.compute db
    in
    (* [run EXPLAIN SELECT ...] prints the plans instead of executing;
       [run EXPLAIN ANALYZE SELECT ...] executes and prints the traced plan
       (actual rows shown: the caller owns the data) but releases nothing *)
    (match Flex_sql.Parser.parse_statement sql with
    | Ok (Flex_sql.Ast.Explain q) ->
      let logical, optimized = Flex_engine.Optimizer.explain ~metrics:m q in
      Fmt.pr "-- logical plan@.%s@.-- optimized plan@.%s@." logical optimized;
      exit 0
    | Ok (Flex_sql.Ast.Explain_analyze q) ->
      let plan, _ =
        Flex_engine.Executor.explain_analyze ~optimize ~metrics:m ~show_rows:true db q
      in
      Fmt.pr "%s@." plan;
      exit 0
    | Ok (Flex_sql.Ast.Query _) | Error _ -> ());
    let options =
      Flex.options ~epsilon ~delta ~public_optimization:(not no_public) ()
    in
    let rng = Rng.create ~seed () in
    match Flex.run_sql ~optimize ~rng ~options ~db ~metrics:m sql with
    | Error r ->
      if report then Fmt.epr "%s@." (Flex_core.Report.of_rejection ~sql r)
      else Fmt.epr "rejected: %s@." (Flex_core.Errors.to_string r);
      exit 1
    | Ok release -> (
      if report then Fmt.pr "%s@." (Flex_core.Report.of_release ~sql ~options release)
      else begin
        let result = release.Flex.noisy in
        match output with
        | Some path ->
          Csv.save_result result path;
          Fmt.pr "wrote %d rows to %s@." (List.length result.rows) path
        | None ->
          Fmt.pr "%s@." (String.concat "," result.columns);
          List.iter
            (fun row ->
              Fmt.pr "%s@."
                (String.concat ","
                   (Array.to_list (Array.map Value.to_csv_string row))))
            result.rows
      end)
  in
  let report =
    Arg.(value & flag & info [ "report" ] ~doc:"Print a markdown audit report instead of CSV.")
  in
  let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Directory of CSV tables.") in
  let metrics_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics file; recomputed from the data when omitted.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write CSV here.")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Execute through the cost-based plan optimizer (metrics double as \
             cardinality statistics); the privacy analysis is unaffected.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Answer a SQL query with differential privacy.")
    Term.(
      const run $ dir $ metrics_file $ epsilon_t $ delta_t $ no_public_opt_t $ seed_t
      $ output $ report $ optimize $ sql_t)

(* --- explain -------------------------------------------------------------------- *)

let explain_cmd =
  let run metrics_file epsilon delta sql =
    (* accept [explain "SELECT ..."], [explain "EXPLAIN SELECT ..."] and the
       ANALYZE form (plans only here — there is no data to execute on) *)
    (match Flex_sql.Parser.parse_statement sql with
    | Ok
        ( Flex_sql.Ast.Query q | Flex_sql.Ast.Explain q
        | Flex_sql.Ast.Explain_analyze q ) ->
      let metrics = Option.map Metrics.load metrics_file in
      let logical, optimized = Flex_engine.Optimizer.explain ?metrics q in
      Fmt.pr "-- logical plan@.%s@.-- optimized plan@.%s" logical optimized
    | Error _ -> (
      match Flex_sql.Parser.parse sql with
      | Ok _ -> assert false
      | Error e ->
        Fmt.epr "parse error: %s@." e;
        exit 1));
    match metrics_file with
    | None -> ()
    | Some f -> (
      let m = Metrics.load f in
      let options = Flex.options ~epsilon ~delta () in
      match Flex.analyze_only ~options ~metrics:m sql with
      | Error r -> Fmt.pr "@.sensitivity: rejected (%s)@." (Flex_core.Errors.to_string r)
      | Ok (_, bounds) ->
        Fmt.pr "@.sensitivity:@.";
        List.iter
          (fun (name, sens, smooth) ->
            Fmt.pr "  %s: ES(k) = %s, S = %g@." name (Flex_dp.Sens.to_string sens)
              smooth.Flex_dp.Smooth.smooth_bound)
          bounds)
  in
  let metrics_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Also report elastic sensitivity using these metrics.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the logical and optimized plans (and optionally the sensitivity) of a \
          query.")
    Term.(const run $ metrics_file $ epsilon_t $ delta_t $ sql_t)

(* --- budget --------------------------------------------------------------------- *)

let budget_cmd =
  let run ledger_file =
    match Flex_dp.Ledger.summaries_of_file ledger_file with
    | [] -> Fmt.pr "no analysts registered in %s@." ledger_file
    | summaries ->
      List.iter (fun s -> Fmt.pr "%a@." Flex_dp.Ledger.pp_summary s) summaries
  in
  let ledger_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LEDGER" ~doc:"Budget journal written by $(b,flex_serve --ledger).")
  in
  Cmd.v
    (Cmd.info "budget"
       ~doc:"Replay a budget ledger journal and print per-analyst remaining budgets.")
    Term.(const run $ ledger_file)

(* --- demo ----------------------------------------------------------------------- *)

let demo_cmd =
  let run epsilon delta seed =
    let rng = Rng.create ~seed () in
    Fmt.pr "generating a ride-sharing database...@.";
    let db, m = Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng in
    Fmt.pr "%a@.@." Database.pp db;
    let options = Flex.options ~epsilon ~delta () in
    List.iter
      (fun sql ->
        Fmt.pr "> %s@." sql;
        match Flex.run_sql ~rng ~options ~db ~metrics:m sql with
        | Ok release ->
          List.iteri
            (fun i row ->
              if i < 5 then
                Fmt.pr "  %s@."
                  (String.concat ", " (Array.to_list (Array.map Value.to_string row))))
            release.Flex.noisy.rows;
          if List.length release.Flex.noisy.rows > 5 then
            Fmt.pr "  ... (%d rows)@." (List.length release.Flex.noisy.rows);
          Fmt.pr "@."
        | Error r -> Fmt.pr "  rejected: %s@.@." (Flex_core.Errors.to_string r))
      [
        "SELECT COUNT(*) FROM trips";
        "SELECT t.status, COUNT(*) FROM trips t GROUP BY t.status";
        "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id GROUP BY c.name";
        "SELECT id, fare FROM trips";
      ]
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a self-contained demo on generated data.")
    Term.(const run $ epsilon_t $ delta_t $ seed_t)

let () =
  let info =
    Cmd.info "flex_cli" ~version:"1.0.0"
      ~doc:"Practical differential privacy for SQL queries (FLEX / elastic sensitivity)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ metrics_cmd; analyze_cmd; run_cmd; explain_cmd; budget_cmd; demo_cmd ]))
