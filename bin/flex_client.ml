(* flex_client: command-line client for flex_serve.

     flex_client query  -a alice "SELECT COUNT(*) FROM trips"
     flex_client analyze "SELECT COUNT(*) FROM trips"
     flex_client explain "SELECT COUNT(*) FROM trips"
     flex_client budget -a alice
     flex_client stats

   Speaks the line-delimited JSON wire protocol; one connection per
   invocation. *)

module Wire = Flex_service.Wire
module Json = Flex_service.Json
open Cmdliner

let connect host port =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let ((ic, _) as conn) = Unix.open_connection (Unix.ADDR_INET (addr, port)) in
  (* one-line request/response: without TCP_NODELAY every round trip can
     stall on Nagle + delayed ACK *)
  (try Unix.setsockopt (Unix.descr_of_in_channel ic) Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  conn

(* returns the decoded response and the raw line (the echoed correlation id
   travels as a top-level field the typed decoder doesn't carry) *)
let roundtrip_line (ic, oc) req =
  output_string oc (Wire.request_to_line req);
  output_char oc '\n';
  flush oc;
  match input_line ic with
  | exception End_of_file -> failwith "server hung up"
  | line -> (
    match Wire.response_of_line line with
    | Ok resp -> (resp, line)
    | Error e -> failwith ("bad response from server: " ^ e))

let roundtrip conn req = fst (roundtrip_line conn req)

let cell_string = function
  | Json.Null -> ""
  | Json.Bool b -> string_of_bool b
  | Json.Num f -> Json.number_string f
  | Json.Str s -> s
  | other -> Json.to_string other

let print_budget_report ~analyst ~epsilon_limit ~delta_limit ~epsilon_spent ~delta_spent
    ~remaining_epsilon ~remaining_delta ~queries =
  Fmt.pr "analyst %s: %d queries@." analyst queries;
  Fmt.pr "  epsilon %g spent of %g (%g remaining)@." epsilon_spent epsilon_limit
    remaining_epsilon;
  Fmt.pr "  delta   %g spent of %g (%g remaining)@." delta_spent delta_limit remaining_delta

let print_response (resp : Wire.response) =
  match resp with
  | Result r ->
    Fmt.pr "%s@." (String.concat "," r.columns);
    List.iter
      (fun row -> Fmt.pr "%s@." (String.concat "," (List.map cell_string row)))
      r.rows;
    Fmt.pr "# spent (eps, delta) = (%g, %g); remaining = (%g, %g)@." r.epsilon_spent
      r.delta_spent r.remaining_epsilon r.remaining_delta;
    List.iter
      (fun (col, scale) -> Fmt.pr "# noise scale %s = %g@." col scale)
      r.noise_scales;
    Fmt.pr "# analysis cache %s%s@."
      (if r.cache_hit then "hit" else "miss")
      (if r.bins_enumerated then "; histogram bins enumerated" else "");
    if r.derived then
      Fmt.pr "# derived from a stored release by post-processing (zero additional budget)@."
    else if r.cached then
      Fmt.pr "# replayed from the release store (zero additional budget)@."
  | Analysis a ->
    Fmt.pr "histogram query: %b; joins: %d; analysis cache %s@." a.is_histogram a.joins
      (if a.cache_hit then "hit" else "miss");
    List.iter
      (fun (c : Wire.column_analysis) ->
        Fmt.pr "column %s:@." c.column;
        Fmt.pr "  elastic sensitivity ES(k) = %s@." c.sensitivity;
        Fmt.pr "  smooth bound S = %g@." c.smooth_bound;
        Fmt.pr "  Laplace noise scale 2S/eps = %g@." c.noise_scale)
      a.columns
  | Plan_report p ->
    Fmt.pr "-- logical plan@.%s@.-- optimized plan@.%s@." p.logical p.optimized
  | Analyzed_report a -> Fmt.pr "%s@." a.plan
  | Rejected r ->
    Fmt.epr "rejected (%s): %s@." r.bucket r.reason;
    exit 1
  | Refused r ->
    Fmt.epr
      "budget refused for %s: requested (eps, delta) = (%g, %g), remaining = (%g, %g)@."
      r.analyst r.requested_epsilon r.requested_delta r.remaining_epsilon r.remaining_delta;
    exit 1
  | Budget_report r ->
    print_budget_report ~analyst:r.analyst ~epsilon_limit:r.epsilon_limit
      ~delta_limit:r.delta_limit ~epsilon_spent:r.epsilon_spent ~delta_spent:r.delta_spent
      ~remaining_epsilon:r.remaining_epsilon ~remaining_delta:r.remaining_delta
      ~queries:r.queries
  | Stats_report s ->
    Fmt.pr "queries: %d (%d granted, %d rejected, %d refused)@." s.queries s.granted
      s.rejected s.refused;
    Fmt.pr "analysis cache: %d hits, %d misses, %d entries@." s.cache_hits s.cache_misses
      s.cache_entries;
    Fmt.pr "release cache: %d hits, %d misses, %d evicted, %d entries (%.0f%% hit rate)@."
      s.release_hits s.release_misses s.release_evictions s.release_entries
      (100.0 *. s.release_hit_rate);
    Fmt.pr "analysts: %d@." s.analysts;
    Fmt.pr "uptime: %.1f s; %.3f queries/s@." s.uptime_seconds s.qps
  | Error_msg m ->
    Fmt.epr "error: %s@." m;
    exit 1
  | Bye -> ()

let with_conn host port f =
  let conn = connect host port in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (roundtrip conn Wire.Quit) with _ -> ());
      try Unix.shutdown_connection (fst conn) with _ -> ())
    (fun () -> f conn)

let hello conn analyst =
  match roundtrip conn (Wire.Hello { analyst; epsilon = None; delta = None }) with
  | Wire.Budget_report _ -> ()
  | Wire.Error_msg m -> failwith ("hello failed: " ^ m)
  | _ -> failwith "unexpected response to hello"

(* --- common options ---------------------------------------------------------- *)

let host_t =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port_t = Arg.(value & opt int 8799 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let analyst_t =
  Arg.(
    value & opt string "analyst"
    & info [ "a"; "analyst" ] ~docv:"NAME" ~doc:"Analyst name for budget accounting.")

let sql_t =
  Arg.(required & pos ~rev:true 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")

(* --- subcommands ------------------------------------------------------------- *)

let query_cmd =
  let run host port analyst epsilon delta id sql =
    with_conn host port (fun conn ->
        hello conn analyst;
        let resp, line = roundtrip_line conn (Wire.Query { sql; epsilon; delta; id }) in
        (match (id, Wire.response_id_of_line line) with
        | Some _, Some echoed -> Fmt.pr "# id %s@." echoed
        | Some sent, None -> Fmt.epr "# warning: server did not echo id %s (older server?)@." sent
        | None, _ -> ());
        print_response resp)
  in
  let epsilon =
    Arg.(
      value
      & opt (some float) None
      & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc:"Per-query epsilon (server default otherwise).")
  in
  let delta =
    Arg.(
      value
      & opt (some float) None
      & info [ "d"; "delta" ] ~docv:"DELTA" ~doc:"Per-query delta (server default otherwise).")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Correlation id sent with the query, echoed in the response and recorded in \
             the server's audit log and flight recorder.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a query with differential privacy, charging the analyst's budget.")
    Term.(const run $ host_t $ port_t $ analyst_t $ epsilon $ delta $ id $ sql_t)

let explain_cmd =
  (* hello first: plain EXPLAIN doesn't need it, but the EXPLAIN ANALYZE
     form executes the query and the server requires an authenticated
     session (plus its explain_estimates opt-in) before doing so *)
  let run host port analyst sql =
    with_conn host port (fun conn ->
        hello conn analyst;
        print_response (roundtrip conn (Wire.Explain { sql })))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the server's logical and optimized query plans (free). EXPLAIN ANALYZE \
          additionally needs the server's --explain-estimates opt-in.")
    Term.(const run $ host_t $ port_t $ analyst_t $ sql_t)

let analyze_cmd =
  let run host port sql =
    with_conn host port (fun conn -> print_response (roundtrip conn (Wire.Analyze { sql })))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Ask the server for a query's sensitivity analysis (free).")
    Term.(const run $ host_t $ port_t $ sql_t)

let budget_cmd =
  let run host port analyst =
    with_conn host port (fun conn ->
        hello conn analyst;
        print_response (roundtrip conn Wire.Budget_info))
  in
  Cmd.v
    (Cmd.info "budget" ~doc:"Show the analyst's remaining privacy budget.")
    Term.(const run $ host_t $ port_t $ analyst_t)

let stats_cmd =
  let run host port show_metrics =
    with_conn host port (fun conn ->
        match roundtrip conn Wire.Stats with
        | Wire.Stats_report s as resp ->
          print_response resp;
          if show_metrics then Fmt.pr "%s@." (Json.to_string s.metrics)
        | resp -> print_response resp)
  in
  let show_metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Also dump the server's full metrics registry snapshot as JSON.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show service counters (admissions, cache, qps, analysts).")
    Term.(const run $ host_t $ port_t $ show_metrics)

let bench_cmd =
  let run host port connections requests analysts epsilon sql =
    let analysts = max 1 analysts in
    let outcome =
      Flex_service.Load_driver.run ~host ~port ~connections ~requests
        ~hello:(fun i -> Some (Printf.sprintf "bench-%d" (i mod analysts)))
        ~make_request:(fun ~conn:_ ~seq:_ -> Wire.Query { sql; epsilon; delta = None; id = None })
        ()
    in
    let module L = Flex_service.Load_driver in
    Fmt.pr "%d connections x %d requests in %.2f s: %.0f req/s@." connections requests
      outcome.L.elapsed (L.qps outcome);
    Fmt.pr "  ok %d (%d from the release store), rejected %d (%d overload, %d rate_limit), \
            refused %d, errors %d@."
      outcome.L.ok outcome.L.cached outcome.L.rejected outcome.L.overload
      outcome.L.rate_limited outcome.L.refused outcome.L.errors;
    Fmt.pr "  latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms@."
      (1e3 *. L.percentile outcome 0.50)
      (1e3 *. L.percentile outcome 0.95)
      (1e3 *. L.percentile outcome 0.99);
    if outcome.L.errors > 0 then exit 1
  in
  let connections =
    Arg.(
      value & opt int 32
      & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections (one thread each).")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests per connection (closed loop).")
  in
  let analysts =
    Arg.(
      value & opt int 8
      & info [ "analysts" ] ~docv:"N"
          ~doc:
            "Distinct analyst identities to spread the connections over (budget and \
             rate-limit accounting are per analyst).")
  in
  let epsilon =
    Arg.(
      value
      & opt (some float) None
      & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc:"Per-query epsilon (server default otherwise).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Drive the server with concurrent closed-loop connections and report \
          throughput and latency percentiles.")
    Term.(const run $ host_t $ port_t $ connections $ requests $ analysts $ epsilon $ sql_t)

(* --- top: live statement/budget view off the operator stats port ------------- *)

(* one-shot HTTP GET against the loopback stats endpoint; returns the body *)
let http_get host port path =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (addr, port));
      let oc = Unix.out_channel_of_descr sock in
      let ic = Unix.in_channel_of_descr sock in
      output_string oc
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
      flush oc;
      let status = try input_line ic with End_of_file -> "" in
      (match String.split_on_char ' ' (String.trim status) with
      | _ :: "200" :: _ -> ()
      | _ -> failwith (Printf.sprintf "GET %s: %s" path (String.trim status)));
      (try
         while String.length (String.trim (input_line ic)) > 0 do
           ()
         done
       with End_of_file -> ());
      let b = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel b ic 1
         done
       with End_of_file -> ());
      Buffer.contents b)

let jnum j key = match Option.bind (Json.mem key j) Json.to_num with Some f -> f | None -> 0.0
let jint j key = int_of_float (jnum j key)
let jstr j key = Option.value ~default:"" (Option.bind (Json.mem key j) Json.to_str)

let truncate_key n s =
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s <= n then s else String.sub s 0 (n - 3) ^ "..."

let print_statements body limit =
  match Json.of_string body with
  | Error e -> Fmt.epr "bad /statements payload: %s@." e
  | Ok j ->
    let stmts = Option.value ~default:[] (Option.bind (Json.mem "statements" j) Json.to_list) in
    Fmt.pr "%d statement shape%s tracked (%d evicted)@."
      (jint j "tracked")
      (if jint j "tracked" = 1 then "" else "s")
      (jint j "evicted");
    Fmt.pr "%8s %8s %8s %8s %10s %9s %9s  %s@." "CALLS" "GRANTED" "CACHED" "REJ" "EPS_SPENT"
      "P95_MS" "TOT_MS" "STATEMENT";
    List.iteri
      (fun i s ->
        if i < limit then begin
          let total = Option.value ~default:Json.Null (Json.mem "total" s) in
          Fmt.pr "%8d %8d %8d %8d %10.4f %9.3f %9.1f  %s@." (jint s "calls")
            (jint s "granted")
            (jint s "replayed" + jint s "derived")
            (jint s "rejected" + jint s "refused" + jint s "failed")
            (jnum s "epsilon_spent")
            (1e3 *. jnum total "p95_s")
            (jnum total "sum_ns" /. 1e6)
            (truncate_key 60 (jstr s "key"))
        end)
      stmts

let print_budgets body =
  match Json.of_string body with
  | Error e -> Fmt.epr "bad /metrics.json payload: %s@." e
  | Ok j ->
    let fams = Option.value ~default:[] (Option.bind (Json.mem "families" j) Json.to_list) in
    let series name =
      List.concat_map
        (fun f ->
          if jstr f "name" = name then
            Option.value ~default:[] (Option.bind (Json.mem "samples" f) Json.to_list)
            |> List.filter_map (fun s ->
                 let labels = Option.value ~default:Json.Null (Json.mem "labels" s) in
                 let analyst = jstr labels "analyst" in
                 if analyst = "" then None else Some (analyst, jnum s "value"))
          else [])
        fams
    in
    let remaining = series "flex_analyst_remaining_epsilon" in
    let burn = series "flex_analyst_epsilon_burn_per_second" in
    let forecast = series "flex_analyst_epsilon_exhaustion_seconds" in
    if remaining <> [] then begin
      Fmt.pr "@.%-20s %14s %16s %16s@." "ANALYST" "EPS_LEFT" "BURN/S" "EXHAUSTED_IN";
      List.iter
        (fun (analyst, left) ->
          let find l = Option.value ~default:0.0 (List.assoc_opt analyst l) in
          let f = find forecast in
          Fmt.pr "%-20s %14.4f %16.6f %16s@." analyst left (find burn)
            (if f < 0.0 then "-" else Printf.sprintf "%.0f s" f))
        (List.sort compare remaining)
    end

let top_cmd =
  let run host stats_port iterations interval limit =
    let rec loop n =
      (match http_get host stats_port "/statements" with
      | body -> print_statements body limit
      | exception Failure e -> Fmt.epr "%s@." e);
      (match http_get host stats_port "/metrics.json" with
      | body -> print_budgets body
      | exception Failure e -> Fmt.epr "%s@." e);
      if n > 1 || iterations = 0 then begin
        Unix.sleepf interval;
        Fmt.pr "@.---@.@.";
        loop (if iterations = 0 then 0 else n - 1)
      end
    in
    loop iterations
  in
  let stats_port =
    Arg.(
      required
      & opt (some int) None
      & info [ "stats-port" ] ~docv:"PORT"
          ~doc:"The server's operator stats port (flex_serve --stats-port).")
  in
  let iterations =
    Arg.(
      value & opt int 1
      & info [ "n"; "iterations" ] ~docv:"N"
          ~doc:"Refresh this many times, then exit (0 = run until interrupted).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between refreshes.")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Show at most this many statement shapes.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-statement and per-analyst budget view from the server's operator \
          stats endpoint (statement shapes, outcome mix, epsilon burn rate and \
          exhaustion forecast). Requires flex_serve --stats-port; the endpoint is \
          loopback-only because statement keys are raw SQL.")
    Term.(const run $ host_t $ stats_port $ iterations $ interval $ limit)

let () =
  let info =
    Cmd.info "flex_client" ~version:"1.0.0" ~doc:"Client for the flex_serve DP query service."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ query_cmd; analyze_cmd; explain_cmd; budget_cmd; stats_cmd; bench_cmd; top_cmd ]))
