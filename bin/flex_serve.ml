(* flex_serve: the FLEX query service over TCP.

     # serve CSV data with precomputed metrics, durable ledger + audit log
     flex_serve data/ --metrics metrics.txt --ledger budgets.ledger \
       --audit audit.jsonl --port 8799

     # self-contained demo server on a generated ride-sharing database
     flex_serve --demo

   The wire protocol is one JSON request per line, one JSON response per
   line; drive it with flex_client (or netcat). *)

module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Csv = Flex_engine.Csv
module Ledger = Flex_dp.Ledger
module Rng = Flex_dp.Rng
module Server = Flex_service.Server
module Audit = Flex_service.Audit
open Cmdliner

let load_csv_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith (dir ^ " is not a directory");
  let tables =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.map (fun f ->
         let name = Filename.remove_extension f in
         Csv.load_table ~name (Filename.concat dir f))
  in
  if tables = [] then failwith ("no .csv files in " ^ dir);
  Database.of_tables tables

let serve dir metrics_file demo port ledger_file audit_file audit_max_bytes sync epsilon
    delta analyst_epsilon analyst_delta cap seed domains explain_estimates stats_port
    no_telemetry release_cache releases_file release_capacity workers max_connections
    max_pending idle_timeout rate_limit thread_per_conn statement_capacity flight_capacity
    =
  let db, metrics =
    if demo then begin
      Fmt.pr "generating a ride-sharing database...@.";
      Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes
        (Rng.create ~seed ())
    end
    else
      match dir with
      | None -> failwith "either a data directory or --demo is required"
      | Some dir ->
        let db = load_csv_dir dir in
        let m =
          match metrics_file with Some f -> Metrics.load f | None -> Metrics.compute db
        in
        (db, m)
  in
  let ledger =
    match ledger_file with None -> Ledger.in_memory () | Some path -> Ledger.open_ ~sync path
  in
  let audit =
    match audit_file with
    | None -> Audit.null ()
    | Some path -> Audit.to_file ?max_bytes:audit_max_bytes path
  in
  let release_store =
    match (release_cache, releases_file) with
    | false, _ -> None
    | true, None -> Some (Flex_service.Release_store.create ?capacity:release_capacity ())
    | true, Some path ->
      Some
        (Flex_service.Release_store.open_ ~sync ?capacity:release_capacity
           ~fingerprint:(Metrics.fingerprint metrics) path)
  in
  let config =
    {
      Server.default_config with
      default_epsilon = epsilon;
      default_delta = delta;
      analyst_epsilon;
      analyst_delta;
      max_epsilon_per_query = cap;
      explain_estimates;
      telemetry = not no_telemetry;
      release_cache;
      rate_limit_qps = rate_limit;
      statement_capacity;
      flight_capacity;
    }
  in
  let domains =
    match domains with
    | Some n -> n
    | None -> min 4 (Stdlib.Domain.recommended_domain_count ())
  in
  let pool = if domains > 1 then Some (Flex_engine.Task_pool.create ~domains) else None in
  let server =
    Server.create ~audit ~config ?pool ?release_store ~db ~metrics ~ledger
      ~rng:(Rng.create ~seed ()) ()
  in
  let front_port, run_front =
    if thread_per_conn then begin
      let listener = Server.listen ~port ~idle_timeout server in
      (Server.port listener, fun () -> Server.serve listener)
    end
    else begin
      let config =
        {
          Flex_service.Reactor.default_config with
          workers;
          max_pending;
          max_connections;
          idle_timeout;
        }
      in
      let reactor = Flex_service.Reactor.listen ~port ~config server in
      (Flex_service.Reactor.port reactor, fun () -> Flex_service.Reactor.run reactor)
    end
  in
  Fmt.pr "flex_serve: listening on 127.0.0.1:%d (%d tables, %d rows, %d execution domain%s)@."
    front_port
    (List.length (Database.table_names db))
    (Metrics.total_rows metrics)
    domains
    (if domains = 1 then "" else "s");
  if thread_per_conn then Fmt.pr "flex_serve: thread-per-connection front end@."
  else
    Fmt.pr
      "flex_serve: event-driven front end (%d workers, %d pending, %d connections max)@."
      workers max_pending max_connections;
  (match rate_limit with
  | Some qps -> Fmt.pr "flex_serve: per-analyst rate limit %g queries/s@." qps
  | None -> ());
  (match Ledger.path ledger with
  | Some p -> Fmt.pr "flex_serve: budget ledger at %s@." p
  | None -> Fmt.pr "flex_serve: in-memory ledger (budgets reset on restart)@.");
  (match release_store with
  | None -> Fmt.pr "flex_serve: release replay disabled (repeats are re-charged)@."
  | Some store -> (
    match Flex_service.Release_store.path store with
    | Some p ->
      Fmt.pr "flex_serve: release store at %s (%d replayable)@." p
        (Flex_service.Release_store.length store)
    | None -> Fmt.pr "flex_serve: in-memory release store (replays reset on restart)@."));
  (match (stats_port, Server.registry server) with
  | Some _, None -> failwith "--stats-port needs telemetry (drop --no-telemetry)"
  | Some p, Some registry ->
    let http =
      Flex_service.Stats_http.listen ~port:p ?statements:(Server.statements server)
        ?flights:(Server.flights server) registry
    in
    ignore (Flex_service.Stats_http.start http);
    Fmt.pr
      "flex_serve: stats on http://127.0.0.1:%d/metrics (and /metrics.json, /statements, \
       /flights, /healthz)@."
      (Flex_service.Stats_http.port http)
  | None, _ -> ());
  run_front ()

let () =
  let dir =
    Arg.(
      value
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory of CSV tables (omit with $(b,--demo)).")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics file; recomputed from the data when omitted.")
  in
  let demo =
    Arg.(value & flag & info [ "demo" ] ~doc:"Serve a generated ride-sharing database.")
  in
  let port =
    Arg.(value & opt int 8799 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral).")
  in
  let ledger_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Append-only budget journal; replayed on startup so restarts resume \
                exactly the remaining budgets. In-memory when omitted.")
  in
  let audit_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE" ~doc:"Append JSON-lines audit events here.")
  in
  let audit_max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "audit-max-bytes" ] ~docv:"N"
          ~doc:
            "Rotate the audit log to $(i,FILE).1 when appending the next event would \
             push it past N bytes (rotation happens at line boundaries, so no \
             generation ever holds a torn JSON line). Unbounded when omitted.")
  in
  let sync =
    Arg.(value & flag & info [ "sync" ] ~doc:"fsync the ledger after every grant.")
  in
  let epsilon =
    Arg.(
      value & opt float 0.1
      & info [ "e"; "epsilon" ] ~docv:"EPS" ~doc:"Default per-query epsilon.")
  in
  let delta =
    Arg.(
      value & opt float 1e-8
      & info [ "d"; "delta" ] ~docv:"DELTA" ~doc:"Default per-query delta.")
  in
  let analyst_epsilon =
    Arg.(
      value & opt float 10.0
      & info [ "analyst-epsilon" ] ~docv:"EPS" ~doc:"Default total epsilon budget per analyst.")
  in
  let analyst_delta =
    Arg.(
      value & opt float 1e-4
      & info [ "analyst-delta" ] ~docv:"DELTA" ~doc:"Default total delta budget per analyst.")
  in
  let cap =
    Arg.(
      value & opt float 1.0
      & info [ "max-epsilon" ] ~docv:"EPS" ~doc:"Admission cap on a single query's epsilon.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Noise RNG seed.") in
  let explain_estimates =
    Arg.(
      value & flag
      & info [ "explain-estimates" ]
          ~doc:
            "Render $(b,~N rows) cardinality annotations in EXPLAIN responses. Off by \
             default: EXPLAIN is uncharged and the estimates are seeded from exact \
             table row counts, so enabling this declares table cardinalities public.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel query execution (1 = sequential). Defaults to \
             the machine's recommended domain count, capped at 4.")
  in
  let stats_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "stats-port" ] ~docv:"PORT"
          ~doc:
            "Serve the metrics registry over HTTP on 127.0.0.1: $(b,/metrics) \
             (Prometheus text), $(b,/metrics.json) and $(b,/healthz). 0 picks an \
             ephemeral port. Off when omitted.")
  in
  let no_telemetry =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable the metrics registry and per-query trace spans (audit stage \
             timings then read zero). Releases are bit-identical either way.")
  in
  let release_cache =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "release-cache" ]
                ~doc:
                  "Replay finalized noisy releases for identical (query, budget, epoch) \
                   requests at zero additional budget (the default). A replay returns \
                   the same bytes as the first answer and is flagged $(b,cached: true)." );
            ( false,
              info [ "no-release-cache" ]
                ~doc:
                  "Disable release replay: every repeated query re-executes, draws \
                   fresh noise, and is charged again." );
          ])
  in
  let releases_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "releases" ] ~docv:"FILE"
          ~doc:
            "Append-only release journal; replayed on startup so previously released \
             answers survive a restart bit-identically (entries from other data epochs \
             are skipped). In-memory when omitted. Ignored with $(b,--no-release-cache).")
  in
  let release_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "release-capacity" ] ~docv:"N"
          ~doc:
            "Cap on live release-store entries (default 4096); at capacity, admission \
             evicts fairly across analysts. Evicted keys are re-charged on re-query.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker threads executing requests behind the event-driven front end \
             (ignored with $(b,--thread-per-conn)).")
  in
  let max_connections =
    Arg.(
      value & opt int 900
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Connection cap for the event-driven front end; accepts beyond it are \
             answered with a typed overload rejection and closed. Must stay under the \
             select(2) fd limit (1024).")
  in
  let max_pending =
    Arg.(
      value & opt int 256
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Bounded request-queue capacity; when full, further requests are shed with \
             $(b,Rejected {bucket=\"overload\"}) instead of growing the backlog.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 300.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Close connections silent for this long (half-open peers, slowloris \
             frames); 0 disables. Applies to both front ends.")
  in
  let rate_limit =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate-limit" ] ~docv:"QPS"
          ~doc:
            "Per-analyst token-bucket rate limit on Query requests; over-limit \
             requests get $(b,Rejected {bucket=\"rate_limit\"}) and are charged \
             nothing. Off when omitted.")
  in
  let thread_per_conn =
    Arg.(
      value & flag
      & info [ "thread-per-conn" ]
          ~doc:
            "Use the legacy thread-per-connection front end instead of the \
             event-driven reactor (mostly useful for baseline benchmarks).")
  in
  let statement_capacity =
    Arg.(
      value & opt int 512
      & info [ "statement-capacity" ] ~docv:"N"
          ~doc:
            "Distinct query shapes tracked by per-statement statistics (served on the \
             stats port at $(b,/statements)); past it the least-called shape is \
             evicted. Ignored with $(b,--no-telemetry).")
  in
  let flight_capacity =
    Arg.(
      value & opt int 256
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:
            "Finished requests retained by the flight recorder (served on the stats \
             port at $(b,/flights), span trees included). Ignored with \
             $(b,--no-telemetry).")
  in
  let info =
    Cmd.info "flex_serve" ~version:"1.0.0"
      ~doc:"Serve FLEX differentially private SQL over TCP (line-delimited JSON)."
  in
  let term =
    Term.(
      const serve $ dir $ metrics_file $ demo $ port $ ledger_file $ audit_file
      $ audit_max_bytes $ sync $ epsilon $ delta $ analyst_epsilon $ analyst_delta $ cap
      $ seed $ domains $ explain_estimates $ stats_port $ no_telemetry $ release_cache
      $ releases_file $ release_capacity $ workers $ max_connections $ max_pending
      $ idle_timeout $ rate_limit $ thread_per_conn $ statement_capacity $ flight_capacity)
  in
  exit (Cmd.eval (Cmd.v info term))
