(** Structured audit log: one JSON line per request, in the spirit of the
    paper's Table 2 — what ran, who ran it, what it cost, and where the time
    went (parse / analysis / smoothing / execution / perturbation). The log
    never contains result values, only query text and accounting. *)

type outcome =
  | Granted
  | Replayed
      (** served bit-identically from the release store — zero budget
          charged; the replay of a public value is still a data access
          worth recording *)
  | Derived
      (** answered by post-processing a stored release (noisy materialized
          view): the request's core hit the store and its HAVING/ORDER
          BY/LIMIT/projection suffix was evaluated over the stored noisy
          rows — zero budget, no database or RNG access, but a distinct
          outcome from {!Replayed} so operators can tell exact replay from
          view-based derivation *)
  | Rejected of string  (** §5.1 bucket: parse / unsupported / other *)
  | Refused  (** budget refusal *)
  | Failed  (** internal error after admission *)
  | Analyzed
      (** EXPLAIN ANALYZE ran the query against the private database
          (uncharged, gated behind the [explain_estimates] opt-in) — the
          data access itself is what's being recorded *)

type event = {
  analyst : string;
  sql : string;
  request_id : string option;
      (** the wire request's client-chosen correlation id, when given —
          emitted as an ["id"] field so client and server logs join on it *)
  outcome : outcome;
  epsilon : float;  (** charged (0 when not granted) *)
  delta : float;
  max_noise_scale : float;  (** worst aggregate column; 0 when not granted *)
  cache_hit : bool;
  parse_ns : float;
  analysis_ns : float;  (** ~0 on cache hits — the Table 2 story *)
  smooth_ns : float;
  execution_ns : float;
  perturbation_ns : float;
  total_ns : float;
      (** end-to-end request time, including queue/admission work the stage
          fields don't cover; always >= the sum of the stages *)
}

type t

val null : unit -> t
(** Drops every event (benchmarks). *)

val to_file : ?max_bytes:int -> string -> t
(** Append JSON lines to a file. With [max_bytes], the file is rotated to
    [path ^ ".1"] (replacing any previous rotation) whenever appending the
    next line would exceed the limit — rotation happens only at line
    boundaries, so no generation ever contains a torn JSON line. The byte
    count is seeded from the existing file size, so the limit holds across
    restarts. *)

val to_buffer : Buffer.t -> t
(** Collect lines in memory (tests). *)

val log : t -> event -> unit
(** Thread-safe; adds a wall-clock [ts] field. *)

val count : t -> int
(** Number of events logged since creation. *)

val events : t -> int
  [@@ocaml.deprecated "misleading name (returns the count, not the events); use Audit.count"]

val close : t -> unit
