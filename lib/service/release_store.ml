(* Bounded, journaled store of finalized noisy releases (see the .mli for
   the privacy argument). Concurrency: one mutex over the whole structure;
   every operation is a few hashtable probes, so the critical sections are
   far shorter than the pipeline work they replace. *)

module Value = Flex_engine.Value

type entry = {
  key : string;
  fingerprint : string;
  analyst : string;
  epsilon : float;
  delta : float;
  epsilon_spent : float;
  delta_spent : float;
  columns : string list;
  rows : Value.t array list;
  bins_enumerated : bool;
  noise_scales : (string * float) list;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  stale_dropped : int;
  entries : int;
  capacity : int;
}

(* [seq] is a global insertion counter: the eviction policy breaks count
   ties toward the globally oldest entry, and determinism across a journal
   replay needs an order that depends only on the insert sequence. *)
type slot = { entry : entry; seq : int }

type t = {
  table : (string, slot) Hashtbl.t;
  queues : (string, string Queue.t) Hashtbl.t;  (* analyst -> keys, FIFO *)
  counts : (string, int) Hashtbl.t;  (* analyst -> live entries *)
  capacity : int;
  mutable seq : int;
  mutable oc : out_channel option;
  journal_path : string option;
  sync : bool;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stale : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let key ~sql_canonical ~fingerprint ~flags ~epsilon ~delta =
  String.concat "\x00"
    [
      sql_canonical;
      fingerprint;
      flags;
      Printf.sprintf "%.17g" epsilon;
      Printf.sprintf "%.17g" delta;
    ]

(* --- journal lines --------------------------------------------------------- *)

(* Cells journal in a typed encoding so replay and post-processing see the
   exact runtime value. Int cannot round-trip through a JSON number (63-bit
   counts would lose low bits), so it is tagged with its decimal rendering;
   Float keeps the round-trip "%.17g" of [Json.num]. Bare JSON scalars are
   still accepted on decode for journals written before the tagging existed:
   those only ever held wire cells, where an integral number was an Int. *)
let json_of_cell : Value.t -> Json.t = function
  | Value.Null -> Json.Null
  | Value.Bool b -> Json.bool b
  | Value.String s -> Json.str s
  | Value.Int i -> Json.Obj [ ("i", Json.str (string_of_int i)) ]
  | Value.Float f -> Json.Obj [ ("f", Json.num f) ]

let cell_of_json : Json.t -> (Value.t, string) result = function
  | Json.Null -> Ok Value.Null
  | Json.Bool b -> Ok (Value.Bool b)
  | Json.Str s -> Ok (Value.String s)
  | Json.Obj _ as j -> (
    match Option.bind (Json.mem "i" j) Json.to_str with
    | Some s -> (
      match int_of_string_opt s with
      | Some i -> Ok (Value.Int i)
      | None -> Error "malformed integer cell")
    | None -> (
      match Option.bind (Json.mem "f" j) Json.to_num with
      | Some f -> Ok (Value.Float f)
      | None -> Error "unrecognised tagged cell"))
  | Json.Num n ->
    if Float.is_integer n && Float.abs n <= 9007199254740992. then
      Ok (Value.Int (int_of_float n))
    else Ok (Value.Float n)
  | Json.List _ -> Error "array is not a cell"

let json_of_entry (e : entry) =
  Json.Obj
    [
      ("key", Json.str e.key);
      ("fingerprint", Json.str e.fingerprint);
      ("analyst", Json.str e.analyst);
      ("epsilon", Json.num e.epsilon);
      ("delta", Json.num e.delta);
      ("epsilon_spent", Json.num e.epsilon_spent);
      ("delta_spent", Json.num e.delta_spent);
      ("columns", Json.List (List.map Json.str e.columns));
      ( "rows",
        Json.List
          (List.map
             (fun r -> Json.List (List.map json_of_cell (Array.to_list r)))
             e.rows) );
      ("bins_enumerated", Json.bool e.bins_enumerated);
      ( "noise_scales",
        Json.List
          (List.map
             (fun (c, s) -> Json.Obj [ ("column", Json.str c); ("scale", Json.num s) ])
             e.noise_scales) );
    ]

let ( let* ) = Result.bind

let get_str k j =
  match Option.bind (Json.mem k j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" k)

let get_num k j =
  match Option.bind (Json.mem k j) Json.to_num with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-number field %S" k)

let get_bool k j =
  match Option.bind (Json.mem k j) Json.to_bool with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "missing or non-boolean field %S" k)

let entry_of_json j =
  let* key = get_str "key" j in
  let* fingerprint = get_str "fingerprint" j in
  let* analyst = get_str "analyst" j in
  let* epsilon = get_num "epsilon" j in
  let* delta = get_num "delta" j in
  let* epsilon_spent = get_num "epsilon_spent" j in
  let* delta_spent = get_num "delta_spent" j in
  let* columns =
    match Option.bind (Json.mem "columns" j) Json.to_list with
    | Some vs -> (
      match List.filter_map Json.to_str vs with
      | strs when List.length strs = List.length vs -> Ok strs
      | _ -> Error "non-string column name")
    | None -> Error "missing columns"
  in
  let* rows =
    match Option.bind (Json.mem "rows" j) Json.to_list with
    | Some vs ->
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          match Json.to_list row with
          | Some cells ->
            let* vs =
              List.fold_left
                (fun acc c ->
                  let* acc = acc in
                  let* v = cell_of_json c in
                  Ok (v :: acc))
                (Ok []) cells
            in
            Ok (Array.of_list (List.rev vs) :: acc)
          | None -> Error "non-array row")
        (Ok []) vs
      |> Result.map List.rev
    | None -> Error "missing rows"
  in
  let* bins_enumerated = get_bool "bins_enumerated" j in
  let* noise_scales =
    match Option.bind (Json.mem "noise_scales" j) Json.to_list with
    | Some vs ->
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* c = get_str "column" v in
          let* s = get_num "scale" v in
          Ok ((c, s) :: acc))
        (Ok []) vs
      |> Result.map List.rev
    | None -> Error "missing noise_scales"
  in
  Ok
    {
      key;
      fingerprint;
      analyst;
      epsilon;
      delta;
      epsilon_spent;
      delta_spent;
      columns;
      rows;
      bins_enumerated;
      noise_scales;
    }

let entry_of_line line =
  let* j = Json.of_string line in
  entry_of_json j

(* --- bounded, fair admission ------------------------------------------------ *)

let count t a = Option.value ~default:0 (Hashtbl.find_opt t.counts a)

let queue_of t a =
  match Hashtbl.find_opt t.queues a with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues a q;
    q

(* Pop dead keys (evicted, stranded, or re-owned after an epoch flip) off
   the front of [a]'s queue; the front that remains is [a]'s oldest live
   entry. *)
let rec front t a q =
  match Queue.peek_opt q with
  | None -> None
  | Some k -> (
    match Hashtbl.find_opt t.table k with
    | Some s when s.entry.analyst = a -> Some s
    | _ ->
      ignore (Queue.pop q);
      front t a q)

(* Per-analyst fairness: an inserting analyst at or over their proportional
   share of the capacity evicts their own oldest entry; below it, the
   heaviest holder pays (ties to the analyst with the globally oldest
   entry). One dashboard analyst hammering fresh shapes therefore cycles
   their own slots and never strands another analyst's working set. *)
let evict_one t ~inserting =
  let holders =
    Hashtbl.fold (fun a n acc -> if n > 0 then a :: acc else acc) t.counts []
  in
  let owners = if List.mem inserting holders then holders else inserting :: holders in
  let share = max 1 (t.capacity / List.length owners) in
  let victim =
    if count t inserting >= share then inserting
    else
      let heaviest =
        List.fold_left
          (fun acc a ->
            match front t a (queue_of t a) with
            | None -> acc
            | Some s -> (
              let n = count t a in
              match acc with
              | Some (_, bn, bseq) when bn > n || (bn = n && bseq <= s.seq) -> acc
              | _ -> Some (a, n, s.seq)))
          None holders
      in
      match heaviest with Some (a, _, _) -> a | None -> inserting
  in
  let q = queue_of t victim in
  match front t victim q with
  | None -> ()
  | Some s ->
    ignore (Queue.pop q);
    Hashtbl.remove t.table s.entry.key;
    Hashtbl.replace t.counts victim (count t victim - 1);
    t.evictions <- t.evictions + 1

(* Admit without journaling (shared by live inserts and journal replay, so
   both follow the identical deterministic eviction sequence). *)
let admit t e =
  if not (Hashtbl.mem t.table e.key) then begin
    if Hashtbl.length t.table >= t.capacity then evict_one t ~inserting:e.analyst;
    t.seq <- t.seq + 1;
    Hashtbl.replace t.table e.key { entry = e; seq = t.seq };
    Queue.push e.key (queue_of t e.analyst);
    Hashtbl.replace t.counts e.analyst (count t e.analyst + 1)
  end

(* --- lifecycle -------------------------------------------------------------- *)

let make ~oc ~path ~sync ~capacity =
  {
    table = Hashtbl.create 256;
    queues = Hashtbl.create 16;
    counts = Hashtbl.create 16;
    capacity = max 1 capacity;
    seq = 0;
    oc;
    journal_path = path;
    sync;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    stale = 0;
  }

let create ?(capacity = 4096) () = make ~oc:None ~path:None ~sync:false ~capacity

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

(* Same replay discipline as Ledger: an undecodable line terminates replay
   when it is the last one (crash mid-append — that release was never
   acknowledged) and is refused as corruption anywhere else. *)
let replay t ~fingerprint ~source lines =
  let rec go = function
    | [] -> ()
    | line :: rest when String.trim line = "" -> go rest
    | line :: rest -> (
      match entry_of_line line with
      | Ok e ->
        if e.fingerprint = fingerprint then admit t e else t.stale <- t.stale + 1;
        go rest
      | Error msg ->
        if rest = [] then () (* torn tail *)
        else Fmt.invalid_arg "Release_store: corrupt journal %s: %s in %S" source msg line)
  in
  go lines

(* Compact the journal to the live working set. Replay admits under the same
   capacity/fairness policy as live inserts, so after replay the table holds
   exactly what this process will serve; every other line — evicted entries,
   releases stranded by an epoch flip, a torn tail — is dead weight that
   would otherwise accumulate across restarts. The rewrite is atomic (tmp +
   rename) and ordered by insertion seq, so re-replaying the compacted
   journal rebuilds this very store; the torn-tail discipline is preserved
   because a fresh append can still tear, but only ever on the final line. *)
let compact t path =
  let slots = Hashtbl.fold (fun _ s acc -> s :: acc) t.table [] in
  let slots = List.sort (fun (a : slot) b -> compare a.seq b.seq) slots in
  let tmp = path ^ ".compact" in
  let oc = open_out_gen [ Open_trunc; Open_creat; Open_wronly; Open_binary ] 0o644 tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun s -> output_string oc (Json.to_string (json_of_entry s.entry) ^ "\n"))
        slots;
      flush oc;
      if t.sync then Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let open_ ?(sync = false) ?(capacity = 4096) ~fingerprint path =
  let lines = read_lines path in
  let t = make ~oc:None ~path:(Some path) ~sync ~capacity in
  replay t ~fingerprint ~source:path lines;
  let n_lines = List.length (List.filter (fun l -> String.trim l <> "") lines) in
  if n_lines <> Hashtbl.length t.table then compact t path;
  t.oc <- Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path);
  t

let close t =
  with_lock t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        close_out oc;
        t.oc <- None)

let path t = t.journal_path

(* --- operations ------------------------------------------------------------- *)

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some s ->
        t.hits <- t.hits + 1;
        Some s.entry
      | None ->
        t.misses <- t.misses + 1;
        None)

let append t e =
  match t.oc with
  | None -> ()
  | Some oc ->
    output_string oc (Json.to_string (json_of_entry e) ^ "\n");
    flush oc;
    if t.sync then Unix.fsync (Unix.descr_of_out_channel oc)

let record t e =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table e.key with
      | Some s -> s.entry (* first release wins; the racing loser is discarded *)
      | None ->
        append t e;
        admit t e;
        e)

let invalidate_epoch t ~keep =
  with_lock t (fun () ->
      let stale =
        Hashtbl.fold
          (fun k s acc ->
            if s.entry.fingerprint = keep then acc else (k, s.entry.analyst) :: acc)
          t.table []
      in
      List.iter
        (fun (k, a) ->
          Hashtbl.remove t.table k;
          Hashtbl.replace t.counts a (count t a - 1))
        stale;
      t.stale <- t.stale + List.length stale;
      List.length stale)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        stale_dropped = t.stale;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let length t = with_lock t (fun () -> Hashtbl.length t.table)
