type outcome = Granted | Rejected of string | Refused | Failed | Analyzed

type event = {
  analyst : string;
  sql : string;
  outcome : outcome;
  epsilon : float;
  delta : float;
  max_noise_scale : float;
  cache_hit : bool;
  parse_ns : float;
  analysis_ns : float;
  smooth_ns : float;
  execution_ns : float;
  perturbation_ns : float;
  total_ns : float;
}

type sink = To_channel of out_channel | To_buffer of Buffer.t | Null

type t = { sink : sink; lock : Mutex.t; mutable count : int }

let make sink = { sink; lock = Mutex.create (); count = 0 }
let null () = make Null
let to_file path = make (To_channel (open_out_gen [ Open_append; Open_creat ] 0o644 path))
let to_buffer b = make (To_buffer b)

let outcome_fields = function
  | Granted -> [ ("outcome", Json.str "granted") ]
  | Rejected bucket -> [ ("outcome", Json.str "rejected"); ("bucket", Json.str bucket) ]
  | Refused -> [ ("outcome", Json.str "refused") ]
  | Failed -> [ ("outcome", Json.str "failed") ]
  | Analyzed -> [ ("outcome", Json.str "analyzed") ]

let json_of_event ~ts (e : event) =
  Json.Obj
    ([
       ("ts", Json.num ts);
       ("analyst", Json.str e.analyst);
       ("sql", Json.str e.sql);
     ]
    @ outcome_fields e.outcome
    @ [
        ("epsilon", Json.num e.epsilon);
        ("delta", Json.num e.delta);
        ("max_noise_scale", Json.num e.max_noise_scale);
        ("cache_hit", Json.bool e.cache_hit);
        ("parse_ns", Json.num e.parse_ns);
        ("analysis_ns", Json.num e.analysis_ns);
        ("smooth_ns", Json.num e.smooth_ns);
        ("execution_ns", Json.num e.execution_ns);
        ("perturbation_ns", Json.num e.perturbation_ns);
        ("total_ns", Json.num e.total_ns);
      ])

let log t e =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.count <- t.count + 1;
      let line = Json.to_string (json_of_event ~ts:(Unix.gettimeofday ()) e) in
      match t.sink with
      | Null -> ()
      | To_buffer b ->
        Buffer.add_string b line;
        Buffer.add_char b '\n'
      | To_channel oc ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

let count t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.count)

let events = count

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> match t.sink with To_channel oc -> close_out oc | _ -> ())
