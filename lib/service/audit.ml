type outcome =
  | Granted
  | Replayed
  | Derived
  | Rejected of string
  | Refused
  | Failed
  | Analyzed

type event = {
  analyst : string;
  sql : string;
  request_id : string option; (* client correlation id, when the wire carried one *)
  outcome : outcome;
  epsilon : float;
  delta : float;
  max_noise_scale : float;
  cache_hit : bool;
  parse_ns : float;
  analysis_ns : float;
  smooth_ns : float;
  execution_ns : float;
  perturbation_ns : float;
  total_ns : float;
}

(* A file sink tracks its own byte count so rotation never needs a stat per
   line; [bytes] is re-seeded from the file on open, so append-after-restart
   rotates at the right size too. *)
type file_sink = {
  path : string;
  max_bytes : int option;
  mutable oc : out_channel;
  mutable bytes : int;
}

type sink = To_file of file_sink | To_buffer of Buffer.t | Null

type t = { sink : sink; lock : Mutex.t; mutable count : int }

let make sink = { sink; lock = Mutex.create (); count = 0 }
let null () = make Null

let open_append path = open_out_gen [ Open_append; Open_creat ] 0o644 path

let to_file ?max_bytes path =
  let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
  make (To_file { path; max_bytes; oc = open_append path; bytes })

let to_buffer b = make (To_buffer b)

(* Rotation happens between whole lines: the current file is renamed to
   [path ^ ".1"] (replacing any previous rotation) and a fresh file takes
   over, so neither generation ever holds a torn JSON line. *)
let rotate (f : file_sink) =
  close_out f.oc;
  let old = f.path ^ ".1" in
  (try Sys.remove old with Sys_error _ -> ());
  (try Sys.rename f.path old with Sys_error _ -> ());
  f.oc <- open_append f.path;
  f.bytes <- 0

let outcome_fields = function
  | Granted -> [ ("outcome", Json.str "granted") ]
  | Replayed -> [ ("outcome", Json.str "replayed") ]
  | Derived -> [ ("outcome", Json.str "derived") ]
  | Rejected bucket -> [ ("outcome", Json.str "rejected"); ("bucket", Json.str bucket) ]
  | Refused -> [ ("outcome", Json.str "refused") ]
  | Failed -> [ ("outcome", Json.str "failed") ]
  | Analyzed -> [ ("outcome", Json.str "analyzed") ]

let json_of_event ~ts (e : event) =
  Json.Obj
    ([
       ("ts", Json.num ts);
       ("analyst", Json.str e.analyst);
       ("sql", Json.str e.sql);
     ]
    @ (match e.request_id with Some id -> [ ("id", Json.str id) ] | None -> [])
    @ outcome_fields e.outcome
    @ [
        ("epsilon", Json.num e.epsilon);
        ("delta", Json.num e.delta);
        ("max_noise_scale", Json.num e.max_noise_scale);
        ("cache_hit", Json.bool e.cache_hit);
        ("parse_ns", Json.num e.parse_ns);
        ("analysis_ns", Json.num e.analysis_ns);
        ("smooth_ns", Json.num e.smooth_ns);
        ("execution_ns", Json.num e.execution_ns);
        ("perturbation_ns", Json.num e.perturbation_ns);
        ("total_ns", Json.num e.total_ns);
      ])

let log t e =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.count <- t.count + 1;
      let line () = Json.to_string (json_of_event ~ts:(Unix.gettimeofday ()) e) in
      match t.sink with
      | Null -> ()
      | To_buffer b ->
        Buffer.add_string b (line ());
        Buffer.add_char b '\n'
      | To_file f ->
        let line = line () in
        (match f.max_bytes with
        | Some limit when f.bytes > 0 && f.bytes + String.length line + 1 > limit ->
          rotate f
        | _ -> ());
        output_string f.oc line;
        output_char f.oc '\n';
        flush f.oc;
        f.bytes <- f.bytes + String.length line + 1)

let count t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.count)

let events = count

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> match t.sink with To_file f -> close_out f.oc | _ -> ())
