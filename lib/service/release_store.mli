(** Store of finalized noisy releases, for zero-budget replay.

    Once a DP release has been handed to any analyst it is public: returning
    the {e same} bytes for an identical (query, budget, epoch, mechanism)
    request is post-processing and costs no additional privacy budget. The
    store keys finished releases on exactly the tuple that determines the
    mechanism instance — canonical SQL, metrics fingerprint (the data
    epoch), mechanism flags, and the per-column (epsilon, delta) — so a hit
    can be replayed bit-identically without touching the database, the RNG,
    or the ledger. Any change to the tuple (new data epoch, different
    budget, different mechanism) misses and pays the full pipeline.

    The same argument extends past exact replay: when the server factors a
    query into a releasable core plus a post-processing suffix
    ({!Flex_sql.Factor}), [sql_canonical] is the {e core}'s canonical text,
    so every HAVING/ORDER BY/LIMIT/projection variant of one dashboard core
    collides onto a single stored release — a noisy materialized view — and
    is answered by evaluating its suffix over [rows] at zero budget.

    Persistence follows the {!Flex_dp.Ledger} discipline: an append-only
    JSON-lines journal, floats in round-trip precision, written and flushed
    {e before} the release is servable, replayed on open with a torn final
    line (crash mid-append) dropped and interior corruption refused. The
    order a server must observe is: charge the ledger, journal the release
    here, only then respond — so a crash can lose an un-acknowledged answer
    (and, conservatively, its charge) but can never mint a second,
    differently-noised answer for a key that was already released.

    Admission is bounded and fair: at most [capacity] entries, and when full
    an insert first evicts from analysts holding at least their proportional
    share — one analyst's churn cannot evict the fleet's working set.
    Eviction forfeits replay for that key (a later identical request is
    charged afresh, correctly); the journal still records every release. *)

type entry = {
  key : string;  (** full composite key, from {!val-key} *)
  fingerprint : string;  (** data epoch, for {!invalidate_epoch} *)
  analyst : string;  (** who paid for the release (fairness accounting) *)
  epsilon : float;  (** per-column epsilon the release was keyed on *)
  delta : float;
  epsilon_spent : float;  (** total charged when the release was minted *)
  delta_spent : float;
  columns : string list;
  rows : Flex_engine.Value.t array list;
      (** the released cells as runtime values, so a stored release doubles
          as the input of {!Flex_core.Flex.post_process} — the noisy
          materialized view a derived query's suffix evaluates over *)
  bins_enumerated : bool;
  noise_scales : (string * float) list;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** capacity evictions since creation *)
  stale_dropped : int;  (** entries stranded by an epoch flip (or at load) *)
  entries : int;
  capacity : int;
}

type t

val key :
  sql_canonical:string ->
  fingerprint:string ->
  flags:string ->
  epsilon:float ->
  delta:float ->
  string
(** The composite cache key; floats are rendered in round-trip precision so
    distinct budgets can never collide. *)

val create : ?capacity:int -> unit -> t
(** In-memory store (default capacity 4096 releases). *)

val open_ : ?sync:bool -> ?capacity:int -> fingerprint:string -> string -> t
(** Open (creating if absent) a journaled store. Journal entries from the
    current [fingerprint] epoch are re-admitted in order under the same
    capacity policy as live inserts, so a restarted server replays exactly
    what it would have served; entries from other epochs count as
    [stale_dropped]. When replay leaves any dead lines behind — stranded
    epochs, capacity evictions, a torn tail — the journal is compacted to
    the live working set (atomic tmp + rename, insertion order preserved),
    so the file stays proportional to the store across restarts instead of
    growing without bound. [sync] fsyncs after every record.
    @raise Invalid_argument on interior journal corruption (a torn {e final}
    line is dropped silently — that release was never acknowledged). *)

val close : t -> unit
val path : t -> string option

val find : t -> string -> entry option
(** Lookup by composite key, counting a hit or a miss. *)

val record : t -> entry -> entry
(** Journal (flush, fsync when [sync]) and admit a finished release, then
    return the entry to serve. If the key is already present — two sessions
    raced the same cold key — the {e stored} entry wins and is returned, so
    every answer that leaves the server for a given key is the same bytes;
    the loser's noise is discarded unreleased. *)

val invalidate_epoch : t -> keep:string -> int
(** Drop every entry whose fingerprint differs from [keep] (data reload /
    metrics refresh), returning how many were stranded. The journal is
    untouched: it is an audit record, not the working set. *)

val stats : t -> stats
val length : t -> int
