module Clock = Flex_obs.Clock

type outcome = {
  sent : int;
  ok : int;
  cached : int;
  rejected : int;
  overload : int;
  rate_limited : int;
  refused : int;
  errors : int;
  latencies : float array;
  elapsed : float;
}

let qps o = if o.elapsed > 0.0 then float_of_int (Array.length o.latencies) /. o.elapsed else 0.0

let percentile o p =
  let n = Array.length o.latencies in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    o.latencies.(idx)
  end

(* per-connection tally, merged under a lock at the end *)
type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable cached : int;
  mutable rejected : int;
  mutable overload : int;
  mutable rate_limited : int;
  mutable refused : int;
  mutable errors : int;
  lat : float list ref;
}

let fresh_tally () =
  {
    sent = 0;
    ok = 0;
    cached = 0;
    rejected = 0;
    overload = 0;
    rate_limited = 0;
    refused = 0;
    errors = 0;
    lat = ref [];
  }

let connect host port =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.connect fd (ADDR_INET (addr, port));
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let roundtrip (ic, oc) req =
  output_string oc (Wire.request_to_line req);
  output_char oc '\n';
  flush oc;
  input_line ic

let classify t line =
  match Wire.response_of_line line with
  | Error _ -> t.errors <- t.errors + 1
  | Ok resp -> (
    match resp with
    | Wire.Result r ->
      t.ok <- t.ok + 1;
      if r.cached then t.cached <- t.cached + 1
    | Wire.Analysis _ | Wire.Plan_report _ | Wire.Analyzed_report _
    | Wire.Budget_report _ | Wire.Stats_report _ | Wire.Bye ->
      t.ok <- t.ok + 1
    | Wire.Rejected r ->
      t.rejected <- t.rejected + 1;
      if r.bucket = "overload" then t.overload <- t.overload + 1
      else if r.bucket = "rate_limit" then t.rate_limited <- t.rate_limited + 1
    | Wire.Refused _ -> t.refused <- t.refused + 1
    | Wire.Error_msg _ -> t.errors <- t.errors + 1)

let drive ~host ~port ~hello ~requests ~make_request ~conn_idx t =
  match connect host port with
  | exception _ -> t.errors <- t.errors + 1
  | conn ->
    Fun.protect
      ~finally:(fun () ->
        try Unix.close (Unix.descr_of_in_channel (fst conn))
        with Unix.Unix_error _ | Sys_error _ -> ())
      (fun () ->
        (try
           (match hello conn_idx with
           | None -> ()
           | Some analyst ->
             t.sent <- t.sent + 1;
             let t0 = Clock.now_ns () in
             let line =
               roundtrip conn (Wire.Hello { analyst; epsilon = None; delta = None })
             in
             t.lat := ((Clock.now_ns () -. t0) /. 1e9) :: !(t.lat);
             classify t line);
           let stop = ref false in
           let seq = ref 0 in
           while (not !stop) && !seq < requests do
             let req = make_request ~conn:conn_idx ~seq:!seq in
             incr seq;
             t.sent <- t.sent + 1;
             let t0 = Clock.now_ns () in
             match roundtrip conn req with
             | line ->
               t.lat := ((Clock.now_ns () -. t0) /. 1e9) :: !(t.lat);
               classify t line
             | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
               t.errors <- t.errors + 1;
               stop := true
           done
         with End_of_file | Sys_error _ | Unix.Unix_error _ ->
           t.errors <- t.errors + 1))

let run ?(host = "127.0.0.1") ?hello ~port ~connections ~requests ~make_request () =
  if connections < 1 then invalid_arg "Load_driver.run: connections must be >= 1";
  if requests < 0 then invalid_arg "Load_driver.run: requests must be >= 0";
  let hello =
    match hello with
    | Some f -> f
    | None -> fun i -> Some (Printf.sprintf "analyst-%d" i)
  in
  let tallies = Array.init connections (fun _ -> fresh_tally ()) in
  let t0 = Clock.now_ns () in
  let threads =
    Array.to_list
      (Array.init connections (fun i ->
           Thread.create
             (fun () ->
               drive ~host ~port ~hello ~requests ~make_request ~conn_idx:i tallies.(i))
             ()))
  in
  List.iter Thread.join threads;
  let elapsed = (Clock.now_ns () -. t0) /. 1e9 in
  let merged = fresh_tally () in
  Array.iter
    (fun t ->
      merged.sent <- merged.sent + t.sent;
      merged.ok <- merged.ok + t.ok;
      merged.cached <- merged.cached + t.cached;
      merged.rejected <- merged.rejected + t.rejected;
      merged.overload <- merged.overload + t.overload;
      merged.rate_limited <- merged.rate_limited + t.rate_limited;
      merged.refused <- merged.refused + t.refused;
      merged.errors <- merged.errors + t.errors;
      merged.lat := List.rev_append !(t.lat) !(merged.lat))
    tallies;
  let latencies = Array.of_list !(merged.lat) in
  Array.sort compare latencies;
  {
    sent = merged.sent;
    ok = merged.ok;
    cached = merged.cached;
    rejected = merged.rejected;
    overload = merged.overload;
    rate_limited = merged.rate_limited;
    refused = merged.refused;
    errors = merged.errors;
    latencies;
    elapsed;
  }
