module Registry = Flex_obs.Registry
module Statements = Flex_obs.Statements
module Flight = Flex_obs.Flight

type t = {
  registry : Registry.t;
  statements : Statements.t option;
  flights : Flight.t option;
  sock : Unix.file_descr;
  lport : int;
  lock : Mutex.t;
  mutable running : bool;
  mutable handlers : (Unix.file_descr * Thread.t) list;
  mutable accept_thread : Thread.t option;
}

let listen ?(backlog = 16) ?(port = 0) ?statements ?flights registry =
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt sock SO_REUSEADDR true;
  Unix.bind sock (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  let lport =
    match Unix.getsockname sock with ADDR_INET (_, p) -> p | _ -> assert false
  in
  {
    registry;
    statements;
    flights;
    sock;
    lport;
    lock = Mutex.create ();
    running = true;
    handlers = [];
    accept_thread = None;
  }

let port t = t.lport

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let handle t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let request_line = input_line ic in
     (* drain the headers so the peer never sees a reset mid-send *)
     (try
        while String.length (String.trim (input_line ic)) > 0 do
          ()
        done
      with End_of_file -> ());
     let reply =
       match String.split_on_char ' ' (String.trim request_line) with
       | [ "GET"; "/metrics"; _ ] ->
         response ~status:"200 OK" ~content_type:"text/plain; version=0.0.4"
           (Registry.to_prometheus t.registry)
       | [ "GET"; "/metrics.json"; _ ] ->
         response ~status:"200 OK" ~content_type:"application/json"
           (Registry.to_json t.registry)
       | [ "GET"; "/healthz"; _ ] ->
         response ~status:"200 OK" ~content_type:"text/plain" "ok"
       | [ "GET"; "/statements"; _ ] -> (
         match t.statements with
         | Some st ->
           response ~status:"200 OK" ~content_type:"application/json"
             (Statements.to_json st)
         | None ->
           response ~status:"404 Not Found" ~content_type:"text/plain"
             "statement statistics disabled")
       | [ "GET"; "/flights"; _ ] -> (
         match t.flights with
         | Some fl ->
           response ~status:"200 OK" ~content_type:"application/json" (Flight.to_json fl)
         | None ->
           response ~status:"404 Not Found" ~content_type:"text/plain"
             "flight recorder disabled")
       | [ "GET"; _; _ ] ->
         response ~status:"404 Not Found" ~content_type:"text/plain" "not found"
       | _ -> response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request"
     in
     output_string oc reply;
     flush oc
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.lock t.lock;
  t.handlers <- List.filter (fun (fd', _) -> fd' <> fd) t.handlers;
  Mutex.unlock t.lock;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  close_in_noerr ic (* closes [fd]; [oc] shares it and is already flushed *)

let serve t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.sock with
    | fd, _ ->
      if not t.running then (try Unix.close fd with _ -> ())
      else begin
        (* a silent client holds its handler for at most the receive timeout;
           [stop] additionally shuts the fd down, so join never waits on a
           blocked read either way *)
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0 with Unix.Unix_error _ -> ());
        Mutex.lock t.lock;
        let th = Thread.create (fun () -> handle t fd) () in
        t.handlers <- (fd, th) :: t.handlers;
        Mutex.unlock t.lock
      end
    | exception Unix.Unix_error _ -> if not t.running then continue := false
  done

let start t =
  let th = Thread.create serve t in
  Mutex.lock t.lock;
  t.accept_thread <- Some th;
  Mutex.unlock t.lock;
  th

let stop t =
  Mutex.lock t.lock;
  let was_running = t.running in
  t.running <- false;
  let acc = t.accept_thread in
  t.accept_thread <- None;
  Mutex.unlock t.lock;
  if was_running then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
    (match acc with Some th -> Thread.join th | None -> ());
    (try Unix.close t.sock with _ -> ());
    let handlers = Mutex.protect t.lock (fun () -> t.handlers) in
    List.iter (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()) handlers;
    List.iter (fun (_, th) -> try Thread.join th with _ -> ()) handlers
  end
