(** A minimal HTTP/1.1 stats endpoint for scraping a {!Flex_obs.Registry}:

    - [GET /metrics] — Prometheus text exposition;
    - [GET /metrics.json] — the same snapshot as JSON (histogram samples
      include estimated p50/p95/p99);
    - [GET /statements] — per-shape statement statistics as JSON (404 when
      no table was supplied);
    - [GET /flights] — the flight recorder's retained requests, span trees
      included, as JSON (404 when no recorder was supplied);
    - [GET /healthz] — ["ok"].

    One request per connection ([Connection: close]), loopback only — the
    intended deployment puts a real reverse proxy in front if the metrics
    must travel. The registry holds only operational series (see
    {!Registry}); the statement and flight surfaces go further and carry
    canonical SQL text and analyst names, which is exactly why this
    operator-only loopback endpoint exists and the unauthenticated wire
    [stats] op carries none of them. Never expose any of it to analysts —
    latency series alone are a timing side channel. *)

type t

val listen :
  ?backlog:int ->
  ?port:int ->
  ?statements:Flex_obs.Statements.t ->
  ?flights:Flex_obs.Flight.t ->
  Flex_obs.Registry.t ->
  t
(** Bind 127.0.0.1 (port 0 — the default — picks an ephemeral one). *)

val port : t -> int

val start : t -> Thread.t
(** Accept loop on a background thread, one handler thread per request. *)

val stop : t -> unit
(** Stop accepting and join the accept loop. Idempotent. *)
