(** A minimal HTTP/1.1 stats endpoint for scraping a {!Flex_obs.Registry}:

    - [GET /metrics] — Prometheus text exposition;
    - [GET /metrics.json] — the same snapshot as JSON;
    - [GET /healthz] — ["ok"].

    One request per connection ([Connection: close]), loopback only — the
    intended deployment puts a real reverse proxy in front if the metrics
    must travel. The registry holds only operational series (see
    {!Registry}), so this surface never carries query results; it should
    still not be exposed to analysts, since latency series are a timing
    side channel. *)

type t

val listen : ?backlog:int -> ?port:int -> Flex_obs.Registry.t -> t
(** Bind 127.0.0.1 (port 0 — the default — picks an ephemeral one). *)

val port : t -> int

val start : t -> Thread.t
(** Accept loop on a background thread, one handler thread per request. *)

val stop : t -> unit
(** Stop accepting and join the accept loop. Idempotent. *)
