type bucket = { mutable tokens : float; mutable stamp : float }

type t = {
  rate : float;  (* tokens per second *)
  burst : float;
  lock : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
  mutable allowed : int;
  mutable denied : int;
}

type stats = { allowed : int; denied : int; keys : int }

let create ?burst ~qps () =
  if (not (Float.is_finite qps)) || qps <= 0.0 then
    invalid_arg "Rate_limit.create: qps must be positive and finite";
  let burst = match burst with Some b -> b | None -> Float.max 1.0 qps in
  if (not (Float.is_finite burst)) || burst < 1.0 then
    invalid_arg "Rate_limit.create: burst must be >= 1 and finite";
  {
    rate = qps;
    burst;
    lock = Mutex.create ();
    buckets = Hashtbl.create 16;
    allowed = 0;
    denied = 0;
  }

let qps t = t.rate

let allow ?now t ~key =
  let now =
    match now with Some n -> n | None -> Flex_obs.Clock.now_ns () /. 1e9
  in
  Mutex.protect t.lock (fun () ->
      let b =
        match Hashtbl.find_opt t.buckets key with
        | Some b -> b
        | None ->
          let b = { tokens = t.burst; stamp = now } in
          Hashtbl.add t.buckets key b;
          b
      in
      (* the clock is monotonized upstream, but guard the injected one *)
      if now > b.stamp then begin
        b.tokens <- Float.min t.burst (b.tokens +. ((now -. b.stamp) *. t.rate));
        b.stamp <- now
      end;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        t.allowed <- t.allowed + 1;
        true
      end
      else begin
        t.denied <- t.denied + 1;
        false
      end)

let stats t =
  Mutex.protect t.lock (fun () ->
      { allowed = t.allowed; denied = t.denied; keys = Hashtbl.length t.buckets })
