module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Ledger = Flex_dp.Ledger
module Rng = Flex_dp.Rng
module Sens = Flex_dp.Sens
module Flex = Flex_core.Flex
module Errors = Flex_core.Errors
module Elastic = Flex_core.Elastic
module Parser = Flex_sql.Parser
module Canon = Flex_sql.Canon
module Registry = Flex_obs.Registry
module Span = Flex_obs.Span
module Clock = Flex_obs.Clock
module Statements = Flex_obs.Statements
module Flight = Flex_obs.Flight

type config = {
  default_epsilon : float;
  default_delta : float;
  analyst_epsilon : float;
  analyst_delta : float;
  max_epsilon_per_query : float;
  public_optimization : bool;
  unique_optimization : bool;
  cross_joins : bool;
  optimize_queries : bool;
      (* execute through the cost-based plan optimizer ({!Optimizer}), with
         the sensitivity metrics doubling as cardinality statistics; the
         privacy analysis always sees the original AST *)
  explain_estimates : bool;
      (* render ~N cardinality annotations in EXPLAIN responses and serve
         EXPLAIN ANALYZE at all; off by default because estimates are seeded
         from exact private-table row counts and ANALYZE executes the query
         (row counts AND per-operator timings reveal private cardinalities),
         which these uncharged operations would otherwise disclose *)
  telemetry : bool;
      (* metrics registry and per-query trace spans; releases are
         bit-identical either way (telemetry never touches the RNG) *)
  release_cache : bool;
      (* replay finalized noisy releases for identical (query, budget,
         epoch, mechanism) requests at zero additional budget — the DP
         post-processing freebie. Off, every repeat re-executes,
         re-perturbs, and is charged again. *)
  rate_limit_qps : float option;
      (* per-analyst token-bucket admission: each analyst may issue at most
         this many queries per second (with ~1 s of burst); a request over
         the limit gets Rejected {bucket="rate_limit"}, audit-logged, and is
         charged nothing. None = unlimited. *)
  statement_capacity : int;
      (* distinct query shapes tracked by the statement-statistics table
         (least-called evicted past this); only meaningful with telemetry *)
  flight_capacity : int;
      (* finished requests retained by the flight recorder; only meaningful
         with telemetry *)
}

let default_config =
  {
    default_epsilon = 0.1;
    default_delta = 1e-8;
    analyst_epsilon = 10.0;
    analyst_delta = 1e-4;
    max_epsilon_per_query = 1.0;
    public_optimization = true;
    unique_optimization = true;
    cross_joins = false;
    optimize_queries = true;
    explain_estimates = false;
    telemetry = true;
    release_cache = true;
    rate_limit_qps = None;
    statement_capacity = 512;
    flight_capacity = 256;
  }

(* The write-side instruments; scrape-time values (budgets, cache, pool)
   register collect callbacks instead — see [register_collectors]. *)
type instruments = {
  m_queries : Registry.Counter.t;
  m_granted : Registry.Counter.t;
  m_replayed : Registry.Counter.t;
  m_derived : Registry.Counter.t;
  m_rejected : Registry.Counter.t;
  m_rate_limited : Registry.Counter.t;
  m_refused : Registry.Counter.t;
  m_latency : Registry.Histogram.t;
  m_stage : (string list * Registry.Histogram.t) list;
      (* span path in the query trace -> stage histogram *)
}

type t = {
  config : config;
  (* the data epoch: [db], [metrics] and [fingerprint] are replaced together
     under [lock] by [refresh_data]; [handle_query] snapshots the triple once
     so a whole request sees one consistent epoch *)
  mutable db : Database.t;
  mutable metrics : Metrics.t;
  mutable fingerprint : string;
  ledger : Ledger.t;
  analysis_cache : (Elastic.analysis, Errors.reason) result Cache.t;
  (* raw SQL text -> (canonical cache key, factoring). Both are pure
     functions of the text, so entries never go stale; memoizing the
     factoring too keeps the derived fast path (parse + memo + store probe +
     suffix evaluation) in single-digit microseconds — a dashboard refresh
     pays the core/suffix split once per distinct query text. *)
  canon_memo : (string * Flex_sql.Factor.t option) Cache.t;
  release_store : Release_store.t option;  (* Some iff [config.release_cache] *)
  limiter : Rate_limit.t option;  (* Some iff [config.rate_limit_qps] *)
  audit : Audit.t;
  rng : Rng.t;
  (* one shared domain pool for every session's query execution; queries are
     serialized onto it by the pool itself (a busy pool runs the submission
     inline), so concurrent sessions never block each other *)
  pool : Flex.Task_pool.t option;
  registry : Registry.t option;  (* Some iff [config.telemetry] *)
  instruments : instruments option;
  (* statement stats and the flight recorder key on canonical SQL and carry
     raw query text / analyst names: operator-only loopback surfaces, never
     the unauthenticated wire. Some iff [config.telemetry]. *)
  statements : Statements.t option;
  flights : Flight.t option;
  start_ns : float;
  lock : Mutex.t;  (* guards counters and rng splitting *)
  mutable queries : int;
  mutable granted : int;
  mutable replayed : int;
  mutable derived : int;
  mutable rejected : int;
  mutable rate_limited : int;
  mutable refused : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let instr t f = match t.instruments with Some i -> f i | None -> ()

let make_instruments reg =
  let stage name =
    Registry.histogram reg ~help:"Query pipeline stage latency in seconds"
      ~labels:[ ("stage", name) ] "flex_stage_seconds"
  in
  {
    m_queries = Registry.counter reg ~help:"Query requests seen" "flex_queries_total";
    m_granted =
      Registry.counter reg ~help:"Queries granted a noisy release" "flex_granted_total";
    m_replayed =
      Registry.counter reg ~help:"Queries served from the release store (zero budget)"
        "flex_replayed_total";
    m_derived =
      Registry.counter reg
        ~help:
          "Queries answered by post-processing a stored release (materialized-view \
           derivation, zero budget)"
        "flex_release_derived_total";
    m_rejected =
      Registry.counter reg ~help:"Queries rejected (parse/unsupported/admission/other)"
        "flex_rejected_total";
    m_rate_limited =
      Registry.counter reg
        ~help:"Queries rejected by the per-analyst token-bucket rate limit"
        "flex_rate_limited_total";
    m_refused =
      Registry.counter reg ~help:"Queries refused by the budget ledger" "flex_refused_total";
    m_latency =
      Registry.histogram reg ~help:"End-to-end query latency in seconds" "flex_query_seconds";
    m_stage =
      [
        ([ "parse" ], stage "parse");
        ([ "cache" ], stage "analysis");
        ([ "smooth" ], stage "smooth");
        ([ "execute" ], stage "execute");
        ([ "perturb" ], stage "perturb");
        ([ "charge" ], stage "charge");
      ];
  }

let uptime_seconds t = Float.max 1e-9 ((Clock.now_ns () -. t.start_ns) /. 1e9)

(* Everything registered here is operational: request counts, budget
   accounting the analysts already see in their responses, cache and pool
   counters. No query results and no private-table row counts. *)
let register_collectors t reg =
  Registry.collect reg ~help:"Seconds since the server was created" ~kind:`Gauge
    "flex_uptime_seconds" (fun () -> [ ([], uptime_seconds t) ]);
  Registry.collect reg ~help:"Query requests per second since start" ~kind:`Gauge "flex_qps"
    (fun () ->
      let q = with_lock t (fun () -> t.queries) in
      [ ([], float_of_int q /. uptime_seconds t) ]);
  Registry.collect reg ~help:"Per-analyst remaining epsilon budget" ~kind:`Gauge
    "flex_analyst_remaining_epsilon" (fun () ->
      List.map
        (fun (s : Ledger.summary) ->
          ([ ("analyst", s.analyst) ], s.epsilon_limit -. s.epsilon_spent))
        (Ledger.summaries t.ledger));
  Registry.collect reg ~help:"Per-analyst remaining delta budget" ~kind:`Gauge
    "flex_analyst_remaining_delta" (fun () ->
      List.map
        (fun (s : Ledger.summary) ->
          ([ ("analyst", s.analyst) ], s.delta_limit -. s.delta_spent))
        (Ledger.summaries t.ledger));
  (* Budget observatory: burn rate and a naive linear exhaustion forecast,
     both derived at scrape time from ledger state — nothing is sampled on
     the query path. Like the remaining-budget series, they label analyst
     names, so they stay off the unauthenticated wire (see
     [wire_omitted_families]). *)
  Registry.collect reg ~help:"Per-analyst epsilon spent per second of uptime" ~kind:`Gauge
    "flex_analyst_epsilon_burn_per_second" (fun () ->
      let up = uptime_seconds t in
      List.map
        (fun (s : Ledger.summary) -> ([ ("analyst", s.analyst) ], s.epsilon_spent /. up))
        (Ledger.summaries t.ledger));
  Registry.collect reg
    ~help:
      "Naive linear forecast of seconds until the analyst's epsilon budget is exhausted \
       (-1 = no spend yet)"
    ~kind:`Gauge "flex_analyst_epsilon_exhaustion_seconds" (fun () ->
      let up = uptime_seconds t in
      List.map
        (fun (s : Ledger.summary) ->
          let rate = s.epsilon_spent /. up in
          let remaining = Float.max 0.0 (s.epsilon_limit -. s.epsilon_spent) in
          ([ ("analyst", s.analyst) ], if rate <= 0.0 then -1.0 else remaining /. rate))
        (Ledger.summaries t.ledger));
  Registry.collect reg ~help:"Registered analysts" ~kind:`Gauge "flex_analysts" (fun () ->
      [ ([], float_of_int (List.length (Ledger.analysts t.ledger))) ]);
  (match t.statements with
  | None -> ()
  | Some st ->
    Registry.collect reg ~help:"Distinct query shapes tracked by statement statistics"
      ~kind:`Gauge "flex_statements_tracked" (fun () ->
        [ ([], float_of_int (Statements.size st)) ]);
    Registry.collect reg ~help:"Statement-statistics entries evicted at capacity"
      ~kind:`Counter "flex_statements_evicted_total" (fun () ->
        [ ([], float_of_int (Statements.evictions st)) ]));
  (match t.flights with
  | None -> ()
  | Some fl ->
    Registry.collect reg ~help:"Requests written to the flight recorder" ~kind:`Counter
      "flex_flights_recorded_total" (fun () -> [ ([], float_of_int (Flight.recorded fl)) ]));
  Registry.collect reg ~help:"Analysis cache lookups" ~kind:`Counter "flex_cache_lookups_total"
    (fun () ->
      [
        ([ ("result", "hit") ], float_of_int (Cache.hits t.analysis_cache));
        ([ ("result", "miss") ], float_of_int (Cache.misses t.analysis_cache));
      ]);
  Registry.collect reg ~help:"Analysis cache entries" ~kind:`Gauge "flex_cache_entries"
    (fun () -> [ ([], float_of_int (Cache.length t.analysis_cache)) ]);
  (match t.release_store with
  | None -> ()
  | Some store ->
    Registry.collect reg ~help:"Release store lookups" ~kind:`Counter
      "flex_release_cache_lookups_total" (fun () ->
        let s = Release_store.stats store in
        [
          ([ ("result", "hit") ], float_of_int s.hits);
          ([ ("result", "miss") ], float_of_int s.misses);
        ]);
    Registry.collect reg ~help:"Release store entries" ~kind:`Gauge
      "flex_release_cache_entries" (fun () ->
        [ ([], float_of_int (Release_store.length store)) ]);
    Registry.collect reg ~help:"Release store entries dropped" ~kind:`Counter
      "flex_release_cache_evictions_total" (fun () ->
        let s = Release_store.stats store in
        [
          ([ ("reason", "capacity") ], float_of_int s.evictions);
          ([ ("reason", "stale_epoch") ], float_of_int s.stale_dropped);
        ]));
  Registry.collect reg ~help:"Audit events logged" ~kind:`Counter "flex_audit_events_total"
    (fun () -> [ ([], float_of_int (Audit.count t.audit)) ]);
  Registry.collect reg ~help:"Domains in the shared execution pool" ~kind:`Gauge
    "flex_pool_domains" (fun () ->
      [ ([], float_of_int (match t.pool with Some p -> Flex.Task_pool.domains p | None -> 0)) ]);
  Registry.collect reg
    ~help:"Pool chunks claimed, by who ran them (process-global)" ~kind:`Counter
    "flex_pool_chunks_total" (fun () ->
      match t.pool with
      | None -> []
      | Some p ->
        let s = Flex.Task_pool.stats p in
        [
          ([ ("by", "caller") ], float_of_int s.caller_chunks);
          ([ ("by", "worker") ], float_of_int s.worker_chunks);
        ]);
  Registry.collect reg ~help:"Pool jobs dispatched" ~kind:`Counter "flex_pool_jobs_total"
    (fun () ->
      match t.pool with
      | None -> []
      | Some p ->
        let s = Flex.Task_pool.stats p in
        [
          ([ ("mode", "parallel") ], float_of_int s.jobs);
          ([ ("mode", "inline") ], float_of_int s.inline_jobs);
        ]);
  Registry.collect reg ~help:"Engine operator dispatches (process-global)" ~kind:`Counter
    "flex_engine_ops_total" (fun () ->
      let par, seq = Flex_engine.Parallel.ops_counts () in
      [
        ([ ("mode", "parallel") ], float_of_int par);
        ([ ("mode", "sequential") ], float_of_int seq);
      ])

let create ?(audit = Audit.null ()) ?(config = default_config) ?cache_capacity ?pool ?registry
    ?release_store ~db ~metrics ~ledger ~rng () =
  let registry =
    if config.telemetry then
      Some (match registry with Some r -> r | None -> Registry.create ())
    else None
  in
  let release_store =
    if config.release_cache then
      Some (match release_store with Some s -> s | None -> Release_store.create ())
    else None
  in
  let t =
    {
      config;
      db;
      metrics;
      fingerprint = Metrics.fingerprint metrics;
      ledger;
      analysis_cache = Cache.create ?capacity:cache_capacity ();
      canon_memo = Cache.create ?capacity:cache_capacity ();
      release_store;
      limiter =
        Option.map (fun qps -> Rate_limit.create ~qps ()) config.rate_limit_qps;
      audit;
      rng;
      pool;
      registry;
      instruments = Option.map make_instruments registry;
      statements =
        (if config.telemetry then
           Some (Statements.create ~capacity:config.statement_capacity ())
         else None);
      flights =
        (if config.telemetry then Some (Flight.create ~capacity:config.flight_capacity ())
         else None);
      start_ns = Clock.now_ns ();
      lock = Mutex.create ();
      queries = 0;
      granted = 0;
      replayed = 0;
      derived = 0;
      rejected = 0;
      rate_limited = 0;
      refused = 0;
    }
  in
  Option.iter (register_collectors t) registry;
  t

type session = { mutable analyst : string option; rng : Rng.t }

let session t = with_lock t (fun () -> { analyst = None; rng = Rng.split t.rng })

let bucket_string reason =
  match Errors.bucket_of reason with
  | Errors.Parse_bucket -> "parse"
  | Errors.Unsupported_bucket -> "unsupported"
  | Errors.Other_bucket -> "other"

let base_event ?id ~analyst ~sql () : Audit.event =
  {
    analyst;
    sql;
    request_id = id;
    outcome = Audit.Failed;
    epsilon = 0.0;
    delta = 0.0;
    max_noise_scale = 0.0;
    cache_hit = false;
    parse_ns = 0.0;
    analysis_ns = 0.0;
    smooth_ns = 0.0;
    execution_ns = 0.0;
    perturbation_ns = 0.0;
    total_ns = 0.0;
  }

(* Close the query's root span and derive the audit stage timings plus the
   latency-histogram observations from one consistent view of the trace.
   With telemetry off ([root = None]) the event keeps its zeroed timings.
   The view is returned alongside so the flight recorder can retain the full
   span tree without re-snapshotting. *)
let finalize t root (base : Audit.event) : Audit.event * Span.view option =
  match root with
  | None -> (base, None)
  | Some r ->
    Span.finish r;
    let v = Span.view r in
    let d path = Span.duration_of v path in
    instr t (fun i ->
        Registry.Histogram.observe i.m_latency (d [] /. 1e9);
        List.iter
          (fun (path, h) ->
            if Option.is_some (Span.find v path) then
              Registry.Histogram.observe h (d path /. 1e9))
          i.m_stage);
    ( {
        base with
        parse_ns = d [ "parse" ];
        analysis_ns = d [ "cache" ];
        smooth_ns = d [ "smooth" ];
        execution_ns = d [ "execute" ];
        perturbation_ns = d [ "perturb" ];
        total_ns = d [];
      },
      Some v )

let statement_outcome : Audit.outcome -> Statements.outcome option = function
  | Audit.Granted -> Some `Granted
  | Audit.Replayed -> Some `Replayed
  | Audit.Derived -> Some `Derived
  | Audit.Rejected _ -> Some `Rejected
  | Audit.Refused -> Some `Refused
  | Audit.Failed -> Some `Failed
  | Audit.Analyzed -> None

let outcome_string : Audit.outcome -> string = function
  | Audit.Granted -> "granted"
  | Audit.Replayed -> "replayed"
  | Audit.Derived -> "derived"
  | Audit.Rejected bucket -> "rejected:" ^ bucket
  | Audit.Refused -> "refused"
  | Audit.Failed -> "failed"
  | Audit.Analyzed -> "analyzed"

(* Fold one finished request into the flight recorder and (when its
   canonical core key is known) the statement-statistics table. Pure
   observation — no RNG, no ledger, no result bytes — so releases are
   bit-identical recorder on or off. [event] is the final audit event
   (outcome and timings settled); [view] the closed span tree, if any. *)
let record_obs t ?key ?(rows = 0) (event : Audit.event) (view : Span.view option) =
  let now = Clock.now_ns () in
  Option.iter
    (fun fl ->
      Flight.record fl ~ts_ns:now ?id:event.request_id ~analyst:event.analyst
        ~sql:event.sql ?key ~outcome:(outcome_string event.outcome)
        ~epsilon:event.epsilon ~delta:event.delta ~duration_ns:event.total_ns
        ?trace:view ())
    t.flights;
  match (key, t.statements, statement_outcome event.outcome) with
  | Some key, Some st, Some outcome ->
    let stages =
      match view with
      | None -> []
      | Some v ->
        List.filter_map
          (fun (c : Span.view) ->
            if c.duration_ns > 0.0 then Some (c.name, c.duration_ns) else None)
          v.children
    in
    Statements.record st ~now_ns:now ~key ~outcome ~stages ~rows ~epsilon:event.epsilon
      ~delta:event.delta ~total_ns:event.total_ns ()
  | _ -> ()

(* Admission of the request's privacy parameters: Flex.options would raise
   on out-of-range values, and the per-query cap keeps any single request
   from draining an analyst's budget in one bite. *)
let validate_privacy t ~epsilon ~delta =
  if (not (Float.is_finite epsilon)) || epsilon <= 0.0 then
    Error (Printf.sprintf "per-query epsilon must be positive and finite (got %g)" epsilon)
  else if (not (Float.is_finite delta)) || delta <= 0.0 || delta >= 1.0 then
    Error (Printf.sprintf "per-query delta must be in (0, 1) (got %g)" delta)
  else if epsilon > t.config.max_epsilon_per_query then
    Error
      (Printf.sprintf "per-query epsilon %g exceeds the service cap %g" epsilon
         t.config.max_epsilon_per_query)
  else Ok ()

let options_for t ~epsilon ~delta =
  Flex.options ~public_optimization:t.config.public_optimization
    ~unique_optimization:t.config.unique_optimization ~cross_joins:t.config.cross_joins ~epsilon
    ~delta ()

(* The epoch triple, snapshotted once per request so analysis, execution and
   perturbation all see the same data even if [refresh_data] races in. *)
let epoch t = with_lock t (fun () -> (t.db, t.metrics, t.fingerprint))

(* The analysis depends on options only through the catalog flags, never
   through epsilon/delta, so one cache entry serves every privacy level.
   The caller times canonicalization (the "canon" span); the lookup ("cache")
   contains the "analysis" child only on a miss. *)
let analyze_cached t ?span ~canon ~fingerprint ~metrics ~options ast =
  let flags =
    Printf.sprintf "pub=%b;uniq=%b;cross=%b" t.config.public_optimization
      t.config.unique_optimization t.config.cross_joins
  in
  let key = Cache.key ~sql_canonical:canon ~fingerprint ~flags in
  Span.timed span "cache" (fun cache_span ->
      Cache.find_or_compute t.analysis_cache ~key (fun () ->
          Flex.analyze_ast ?span:cache_span ~options ~metrics ast))

(* Everything that determines the mechanism instance beyond the query and
   the budget. Two requests whose flags differ run distinct mechanisms and
   must never share a stored release. *)
let release_flags (o : Flex.options) =
  Printf.sprintf "pub=%b;uniq=%b;cross=%b;bins=%b;round=%b;smooth=%s;noise=%s"
    o.public_optimization o.unique_optimization o.cross_joins o.enumerate_bins
    o.round_counts
    (match o.smoothing with `Smooth -> "smooth" | `Elastic_k0 -> "elastic_k0")
    (match o.noise with `Laplace -> "laplace" | `Cauchy -> "cauchy")

let parse sql =
  match Parser.parse sql with Ok ast -> Ok ast | Error e -> Error (Errors.Parse_error e)

let budget_report t analyst =
  match
    ( Ledger.limits t.ledger ~analyst,
      Ledger.spent t.ledger ~analyst,
      Ledger.remaining t.ledger ~analyst )
  with
  | Some (el, dl), Some (es, ds), Some (re, rd) ->
    Wire.Budget_report
      {
        analyst;
        epsilon_limit = el;
        delta_limit = dl;
        epsilon_spent = es;
        delta_spent = ds;
        remaining_epsilon = re;
        remaining_delta = rd;
        queries = Ledger.spends t.ledger ~analyst;
      }
  | _ -> Wire.Error_msg (Printf.sprintf "unknown analyst %S" analyst)

let handle_hello t session ~analyst ~epsilon ~delta =
  let eps = Option.value epsilon ~default:t.config.analyst_epsilon in
  let del = Option.value delta ~default:t.config.analyst_delta in
  let attach () =
    session.analyst <- Some analyst;
    budget_report t analyst
  in
  match Ledger.register t.ledger ~analyst ~epsilon:eps ~delta:del with
  | Ok () -> attach ()
  | Error (Ledger.Already_registered existing) -> (
    match (epsilon, delta) with
    | None, None -> attach () (* plain re-attach keeps the existing limits *)
    | _ ->
      Wire.Error_msg
        (Printf.sprintf "analyst %S already registered with budget (%g, %g)" analyst
           existing.epsilon existing.delta))
  | Error err -> Wire.Error_msg (Ledger.error_to_string err)

let reject t ~root ~(base : Audit.event) ?key reason =
  let bucket = bucket_string reason in
  with_lock t (fun () -> t.rejected <- t.rejected + 1);
  instr t (fun i -> Registry.Counter.incr i.m_rejected);
  let finalized, view = finalize t root base in
  let event = { finalized with outcome = Audit.Rejected bucket } in
  Audit.log t.audit event;
  record_obs t ?key event view;
  Wire.Rejected { bucket; reason = Errors.to_string reason }

(* EXPLAIN ANALYZE: execute the plan and render per-operator row counts and
   timings. The execution itself is the disclosure: per-operator elapsed
   time scales with private row counts and predicate selectivities, so an
   uncharged op that anyone may call without limit would be a timing side
   channel (and a free resource sink — think cross joins) even with the
   rows=? masking. It therefore requires an authenticated session (hello)
   AND the [explain_estimates] opt-in that already declares table
   cardinalities public, and every execution is audit-logged; within that
   posture it stays uncharged, like EXPLAIN. *)
let analyzed_plan t session ~sql ast =
  match session.analyst with
  | None -> Wire.Error_msg "no analyst: send hello first"
  | Some analyst ->
    let base = base_event ~analyst ~sql () in
    if not t.config.explain_estimates then begin
      Audit.log t.audit { base with outcome = Audit.Rejected "admission" };
      Wire.Rejected
        {
          bucket = "admission";
          reason =
            "EXPLAIN ANALYZE executes the query against the private database \
             and is only served when the deployment opts in via \
             explain_estimates (flex_serve --explain-estimates)";
        }
    end
    else begin
      let reject reason =
        Audit.log t.audit { base with outcome = Audit.Rejected (bucket_string reason) };
        Wire.Rejected { bucket = bucket_string reason; reason = Errors.to_string reason }
      in
      match
        Flex_engine.Executor.explain_analyze ?pool:t.pool ~optimize:t.config.optimize_queries
          ~metrics:t.metrics ~show_rows:true t.db ast
      with
      | plan, _ ->
        Audit.log t.audit { base with outcome = Audit.Analyzed };
        Wire.Analyzed_report { plan }
      | exception Flex_engine.Executor.Error m ->
        reject (Errors.Analysis_error ("execution: " ^ m))
      | exception Flex_engine.Eval.Error m ->
        reject (Errors.Analysis_error ("evaluation: " ^ m))
      | exception Flex_engine.Aggregate.Error m ->
        reject (Errors.Analysis_error ("aggregation: " ^ m))
    end

(* Token-bucket admission: a scheduling decision ahead of everything else
   (no parse, no analysis, no ledger), so a runaway dashboard is turned
   away at the door instead of queueing work. The denial is audit-logged —
   operators tune --rate-limit from these events and the
   flex_rate_limited_total counter. *)
let rate_limited t ~analyst =
  match t.limiter with
  | None -> false
  | Some rl -> not (Rate_limit.allow rl ~key:analyst)

let handle_query t session ~sql ~epsilon ~delta ~id =
  match session.analyst with
  | None -> Wire.Error_msg "no analyst: send hello first"
  | Some analyst when rate_limited t ~analyst ->
    with_lock t (fun () ->
        t.queries <- t.queries + 1;
        t.rejected <- t.rejected + 1;
        t.rate_limited <- t.rate_limited + 1);
    instr t (fun i ->
        Registry.Counter.incr i.m_queries;
        Registry.Counter.incr i.m_rejected;
        Registry.Counter.incr i.m_rate_limited);
    let event =
      { (base_event ?id ~analyst ~sql ()) with outcome = Audit.Rejected "rate_limit" }
    in
    Audit.log t.audit event;
    record_obs t event None;
    Wire.Rejected
      {
        bucket = "rate_limit";
        reason =
          Printf.sprintf
            "analyst %S exceeded the per-analyst rate limit (%g queries/s); retry later"
            analyst
            (match t.limiter with Some rl -> Rate_limit.qps rl | None -> 0.0);
      }
  | Some analyst -> (
    with_lock t (fun () -> t.queries <- t.queries + 1);
    instr t (fun i -> Registry.Counter.incr i.m_queries);
    let epsilon = Option.value epsilon ~default:t.config.default_epsilon in
    let delta = Option.value delta ~default:t.config.default_delta in
    let base = base_event ?id ~analyst ~sql () in
    match validate_privacy t ~epsilon ~delta with
    | Error msg ->
      with_lock t (fun () -> t.rejected <- t.rejected + 1);
      instr t (fun i -> Registry.Counter.incr i.m_rejected);
      let event = { base with outcome = Audit.Rejected "admission" } in
      Audit.log t.audit event;
      record_obs t event None;
      Wire.Rejected { bucket = "admission"; reason = msg }
    | Ok () -> (
      let root = if t.config.telemetry then Some (Span.root "query") else None in
      match Span.timed root "parse" (fun _ -> Parser.parse_statement sql) with
      | Ok (Flex_sql.Ast.Explain ast) ->
        (* EXPLAIN typed where a query was expected: answer with the plans,
           charge nothing *)
        let logical, optimized =
          Flex_engine.Optimizer.explain ~metrics:t.metrics
            ~estimates:t.config.explain_estimates ast
        in
        Wire.Plan_report { logical; optimized }
      | Ok (Flex_sql.Ast.Explain_analyze ast) -> analyzed_plan t session ~sql ast
      | Error e -> reject t ~root ~base (Errors.Parse_error e)
      | Ok (Flex_sql.Ast.Query ast) -> (
        let options = options_for t ~epsilon ~delta in
        let db, metrics, fingerprint = epoch t in
        (* Factor into a releasable core + post-processing suffix. The store
           is keyed on the core, so every HAVING/ORDER BY/LIMIT/projection
           variant of one dashboard collides onto a single paid release;
           without a store there is nothing to share the core through and the
           original whole-query path applies unchanged. *)
        let canon, fact =
          Span.timed root "canon" (fun _ ->
              fst
                (Cache.find_or_compute t.canon_memo ~key:sql (fun () ->
                     let fact =
                       match t.release_store with
                       | None -> None
                       | Some _ -> Flex_sql.Factor.factor ast
                     in
                     match fact with
                     | Some f -> (f.core_sql, fact)
                     | None -> (Canon.cache_key ast, None))))
        in
        (* What actually analyzes/executes on a miss: the canonical core for
           factorable queries (paying once for all its base aggregates), the
           original AST otherwise. *)
        let exec_ast = match fact with Some f -> f.core | None -> ast in
        let release_key =
          Release_store.key ~sql_canonical:canon ~fingerprint
            ~flags:(release_flags options) ~epsilon ~delta
        in
        (* The analyst-visible answer for a stored (or just-minted) entry:
           factored queries evaluate their suffix over the stored noisy rows
           (restoring output names, order and arithmetic); everything else is
           served verbatim. Suffix evaluation is deterministic, so a replay
           of the same entry always reproduces the same bytes. *)
        let answer_of (entry : Release_store.entry) =
          match fact with
          | None -> (entry.columns, entry.rows)
          | Some f ->
            let rs =
              Flex.post_process f.suffix ~columns:entry.columns entry.rows
            in
            (rs.columns, rs.rows)
        in
        let wire_rows rows =
          List.map (fun row -> List.map Wire.json_of_value (Array.to_list row)) rows
        in
        let is_derived =
          match fact with Some f -> not (Flex_sql.Factor.trivial f) | None -> false
        in
        let replay =
          match t.release_store with
          | None -> None
          | Some store ->
            Span.timed root "replay" (fun _ -> Release_store.find store release_key)
        in
        match replay with
        | Some (entry : Release_store.entry) -> (
          (* Zero-budget answer: the core's bytes already left the server for
             this (core, budget, epoch, mechanism); replaying them — or
             evaluating a post-processing suffix over them — touches no
             database, RNG or ledger. *)
          match answer_of entry with
          | exception (Flex_engine.Eval.Error _ | Flex_engine.Compiled.Error _) ->
            reject t ~root ~base ~key:canon
              (Errors.Analysis_error "post-processing suffix failed on the stored release")
          | columns, rows ->
            with_lock t (fun () ->
                if is_derived then t.derived <- t.derived + 1
                else t.replayed <- t.replayed + 1);
            instr t (fun i ->
                Registry.Counter.incr (if is_derived then i.m_derived else i.m_replayed));
            let max_noise_scale =
              List.fold_left (fun acc (_, s) -> Float.max acc s) 0.0 entry.noise_scales
            in
            let remaining_epsilon, remaining_delta =
              Option.value ~default:(0.0, 0.0) (Ledger.remaining t.ledger ~analyst)
            in
            let finalized, view = finalize t root { base with cache_hit = true } in
            let event =
              {
                finalized with
                outcome = (if is_derived then Audit.Derived else Audit.Replayed);
                max_noise_scale;
              }
            in
            Audit.log t.audit event;
            record_obs t ~key:canon ~rows:(List.length rows) event view;
            Wire.Result
              {
                columns;
                rows = wire_rows rows;
                epsilon_spent = 0.0;
                delta_spent = 0.0;
                remaining_epsilon;
                remaining_delta;
                cache_hit = true;
                cached = true;
                derived = is_derived;
                bins_enumerated = entry.bins_enumerated;
                noise_scales = entry.noise_scales;
              })
        | None -> (
          let analyzed, cache_hit =
            analyze_cached t ?span:root ~canon ~fingerprint ~metrics ~options exec_ast
          in
          let base = { base with cache_hit } in
          match analyzed with
          | Error reason -> reject t ~root ~base ~key:canon reason
          | Ok analysis -> (
            let column_releases = Flex.smooth_columns ?span:root ~options analysis in
            match
              Flex.execute ?span:root ?pool:t.pool ~optimize:t.config.optimize_queries
                ~metrics ~db exec_ast
            with
            | Error reason -> reject t ~root ~base ~key:canon reason
            | Ok result_set -> (
              let n = float_of_int (List.length column_releases) in
              let cost_eps = epsilon *. n and cost_delta = delta *. n in
              (* The atomic gate: journal-then-charge before any noisy value
                 exists, so refusal can never follow a release. *)
              match
                Span.timed root "charge" (fun _ ->
                    Ledger.spend t.ledger ~analyst ~epsilon:cost_eps ~delta:cost_delta
                      ~label:"flex-query")
              with
              | Error (Ledger.Exhausted e) ->
                with_lock t (fun () -> t.refused <- t.refused + 1);
                instr t (fun i -> Registry.Counter.incr i.m_refused);
                let finalized, view = finalize t root base in
                let event = { finalized with outcome = Audit.Refused } in
                Audit.log t.audit event;
                record_obs t ~key:canon event view;
                Wire.Refused
                  {
                    analyst;
                    requested_epsilon = cost_eps;
                    requested_delta = cost_delta;
                    remaining_epsilon = e.remaining_epsilon;
                    remaining_delta = e.remaining_delta;
                  }
              | Error err -> Wire.Error_msg (Ledger.error_to_string err)
              | Ok (remaining_epsilon, remaining_delta) ->
                let release =
                  Flex.perturb ?span:root ~rng:session.rng ~options ~metrics ~db
                    ~analysis ~column_releases result_set
                in
                with_lock t (fun () -> t.granted <- t.granted + 1);
                instr t (fun i -> Registry.Counter.incr i.m_granted);
                let noise_scales =
                  List.map
                    (fun (cr : Flex.column_release) -> (cr.name, cr.noise_scale))
                    release.column_releases
                in
                (* Journal the release before responding (charge happened
                   above): a crash after the charge but before the journal
                   loses an answer nobody ever saw; a crash after the journal
                   replays this exact entry forever. Either way, no second
                   noise draw can leave the server for a charged key. If two
                   sessions raced the same cold key, the store keeps the first
                   and we respond with whatever it kept. *)
                let entry =
                  {
                    Release_store.key = release_key;
                    fingerprint;
                    analyst;
                    epsilon;
                    delta;
                    epsilon_spent = cost_eps;
                    delta_spent = cost_delta;
                    columns = release.noisy.columns;
                    rows = release.noisy.rows;
                    bins_enumerated = release.bins_enumerated;
                    noise_scales;
                  }
                in
                let stored =
                  match t.release_store with
                  | None -> entry
                  | Some store -> Release_store.record store entry
                in
                let max_noise_scale =
                  List.fold_left (fun acc (_, s) -> Float.max acc s) 0.0
                    stored.noise_scales
                in
                match answer_of stored with
                | exception (Flex_engine.Eval.Error _ | Flex_engine.Compiled.Error _)
                  ->
                  (* The core is paid and journaled (the charge stands), but
                     this request's suffix cannot evaluate over it. *)
                  reject t ~root ~base ~key:canon
                    (Errors.Analysis_error
                       "post-processing suffix failed on the released core")
                | columns, rows ->
                  let finalized, view = finalize t root base in
                  let event =
                    {
                      finalized with
                      outcome = Audit.Granted;
                      epsilon = cost_eps;
                      delta = cost_delta;
                      max_noise_scale;
                    }
                  in
                  Audit.log t.audit event;
                  record_obs t ~key:canon ~rows:(List.length rows) event view;
                  Wire.Result
                    {
                      columns;
                      rows = wire_rows rows;
                      epsilon_spent = cost_eps;
                      delta_spent = cost_delta;
                      remaining_epsilon;
                      remaining_delta;
                      cache_hit;
                      cached = false;
                      derived = false;
                      bins_enumerated = stored.bins_enumerated;
                      noise_scales = stored.noise_scales;
                    }))))))

(* EXPLAIN is free: it renders plan shapes without touching the database,
   so it is neither charged nor counted as a query. Because it is free, the
   ~N cardinality annotations — seeded from exact private-table row counts —
   are suppressed unless the deployment opts in via [explain_estimates]
   (i.e. declares table cardinalities public). An EXPLAIN ANALYZE prefix in
   the text routes to the executed-plan report, which additionally requires
   hello (it touches the private data). *)
let handle_explain t session ~sql =
  match Parser.parse_statement sql with
  | Error e ->
    let reason = Errors.Parse_error e in
    Wire.Rejected { bucket = bucket_string reason; reason = Errors.to_string reason }
  | Ok (Flex_sql.Ast.Explain_analyze ast) -> analyzed_plan t session ~sql ast
  | Ok (Flex_sql.Ast.Query ast) | Ok (Flex_sql.Ast.Explain ast) ->
    let logical, optimized =
      Flex_engine.Optimizer.explain ~metrics:t.metrics
        ~estimates:t.config.explain_estimates ast
    in
    Wire.Plan_report { logical; optimized }

let handle_analyze t ~sql =
  let options =
    options_for t ~epsilon:t.config.default_epsilon ~delta:t.config.default_delta
  in
  match parse sql with
  | Error reason -> Wire.Rejected { bucket = bucket_string reason; reason = Errors.to_string reason }
  | Ok ast -> (
    let _, metrics, fingerprint = epoch t in
    let analyzed, cache_hit =
      analyze_cached t ~canon:(Canon.cache_key ast) ~fingerprint ~metrics ~options ast
    in
    match analyzed with
    | Error reason ->
      Wire.Rejected { bucket = bucket_string reason; reason = Errors.to_string reason }
    | Ok analysis ->
      let columns =
        List.map
          (fun (cr : Flex.column_release) ->
            {
              Wire.column = cr.name;
              sensitivity = Sens.to_string cr.elastic;
              smooth_bound = cr.smooth.smooth_bound;
              noise_scale = cr.noise_scale;
            })
          (Flex.smooth_columns ~options analysis)
      in
      Wire.Analysis
        { cache_hit; is_histogram = analysis.is_histogram; joins = analysis.joins; columns })

(* Per-analyst budget series stay off the wire [Stats] response: the op
   needs no hello, and those series label every analyst's name with their
   budget consumption, where [Budget_info] only ever discloses the caller's
   own. The burn-rate / exhaustion-forecast observatory series carry the
   same analyst labels and follow the same rule. Operators still get them
   all on the loopback-only /metrics scrape. (Statement stats and flight
   records never even reach the registry: they hold raw SQL and live only
   behind the loopback /statements and /flights endpoints.) *)
let wire_omitted_families =
  [
    "flex_analyst_remaining_epsilon";
    "flex_analyst_remaining_delta";
    "flex_analyst_epsilon_burn_per_second";
    "flex_analyst_epsilon_exhaustion_seconds";
  ]

let json_of_registry ?(omit = []) reg : Json.t =
  let sample (s : Registry.sample) =
    let labels =
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels))
    in
    match s.value with
    | Registry.Sample v -> Json.Obj [ labels; ("value", Json.Num v) ]
    | Registry.Hist { upper; cumulative; count; sum } ->
      let quantiles =
        match
          ( Registry.estimate_quantile ~upper ~cumulative ~count 0.5,
            Registry.estimate_quantile ~upper ~cumulative ~count 0.95,
            Registry.estimate_quantile ~upper ~cumulative ~count 0.99 )
        with
        | Some p50, Some p95, Some p99 ->
          [
            ( "quantiles",
              Json.Obj
                [ ("p50", Json.Num p50); ("p95", Json.Num p95); ("p99", Json.Num p99) ] );
          ]
        | _ -> []
      in
      Json.Obj
        ([
           labels;
           ("count", Json.Num (float_of_int count));
           ("sum", Json.Num sum);
           ( "buckets",
             Json.List
               (List.mapi
                  (fun i u ->
                    Json.Obj
                      [
                        ("le", Json.Num u);
                        ("count", Json.Num (float_of_int cumulative.(i)));
                      ])
                  (Array.to_list upper)) );
         ]
        @ quantiles)
  in
  let family (f : Registry.family) =
    Json.Obj
      [
        ("name", Json.Str f.name);
        ("kind", Json.Str f.kind);
        ("help", Json.Str f.help);
        ("samples", Json.List (List.map sample f.samples));
      ]
  in
  let families =
    List.filter
      (fun (f : Registry.family) -> not (List.mem f.name omit))
      (Registry.snapshot reg)
  in
  Json.Obj [ ("families", Json.List (List.map family families)) ]

let stats_report t =
  let c = with_lock t (fun () -> (t.queries, t.granted, t.rejected, t.refused)) in
  let queries, granted, rejected, refused = c in
  let uptime = uptime_seconds t in
  let rs =
    match t.release_store with
    | None -> None
    | Some store -> Some (Release_store.stats store)
  in
  let release_hits = match rs with Some s -> s.hits | None -> 0 in
  let release_misses = match rs with Some s -> s.misses | None -> 0 in
  let release_derived = with_lock t (fun () -> t.derived) in
  Wire.Stats_report
    {
      queries;
      granted;
      rejected;
      refused;
      cache_hits = Cache.hits t.analysis_cache;
      cache_misses = Cache.misses t.analysis_cache;
      cache_entries = Cache.length t.analysis_cache;
      release_hits;
      release_misses;
      release_derived;
      release_evictions =
        (match rs with Some s -> s.evictions + s.stale_dropped | None -> 0);
      release_entries = (match rs with Some s -> s.entries | None -> 0);
      release_hit_rate =
        float_of_int release_hits /. float_of_int (max 1 (release_hits + release_misses));
      analysts = List.length (Ledger.analysts t.ledger);
      uptime_seconds = uptime;
      qps = float_of_int queries /. uptime;
      metrics =
        (match t.registry with
        | Some reg -> json_of_registry ~omit:wire_omitted_families reg
        | None -> Json.Null);
    }

let handle t session req =
  try
    match (req : Wire.request) with
    | Hello { analyst; epsilon; delta } -> handle_hello t session ~analyst ~epsilon ~delta
    | Query { sql; epsilon; delta; id } -> handle_query t session ~sql ~epsilon ~delta ~id
    | Analyze { sql } -> handle_analyze t ~sql
    | Explain { sql } -> handle_explain t session ~sql
    | Budget_info -> (
      match session.analyst with
      | None -> Wire.Error_msg "no analyst: send hello first"
      | Some analyst -> budget_report t analyst)
    | Stats -> stats_report t
    | Quit -> Wire.Bye
  with exn -> Wire.Error_msg ("internal error: " ^ Printexc.to_string exn)

let handle_line t session line =
  match Wire.request_of_line line with
  | Error msg -> Wire.response_to_line (Wire.Error_msg msg)
  | Ok req -> Wire.response_to_line ?id:(Wire.request_id req) (handle t session req)

type counters = {
  queries : int;
  granted : int;
  replayed : int;
  derived : int;
  rejected : int;
  rate_limited : int;
  refused : int;
}

let counters t =
  with_lock t (fun () ->
      {
        queries = t.queries;
        granted = t.granted;
        replayed = t.replayed;
        derived = t.derived;
        rejected = t.rejected;
        rate_limited = t.rate_limited;
        refused = t.refused;
      })

let session_analyst (s : session) = s.analyst

(* The reactor sheds a request it never parsed (worker queue full): record
   the refusal in the audit log like every other admission decision. The
   raw line stands in for the SQL — truncated, it may not even be JSON. *)
let log_overload t ~analyst ~line =
  let sql =
    if String.length line <= 200 then line else String.sub line 0 200 ^ "..."
  in
  with_lock t (fun () -> t.rejected <- t.rejected + 1);
  instr t (fun i -> Registry.Counter.incr i.m_rejected);
  let event =
    {
      (base_event ~analyst:(Option.value analyst ~default:"") ~sql ()) with
      outcome = Audit.Rejected "overload";
    }
  in
  Audit.log t.audit event;
  record_obs t event None

let cache t = t.analysis_cache
let release_store t = t.release_store
let registry t = t.registry
let statements t = t.statements
let flights t = t.flights

(* Data reload: swap in the new epoch atomically, then strand every stored
   release minted against the old fingerprint — a replayed answer must never
   outlive the data it described. Analysis-cache entries are keyed on the
   fingerprint too and simply stop matching. Returns how many releases were
   stranded. *)
let refresh_data t ~db ~metrics =
  with_lock t (fun () ->
      t.db <- db;
      t.metrics <- metrics;
      t.fingerprint <- Metrics.fingerprint metrics);
  match t.release_store with
  | None -> 0
  | Some store -> Release_store.invalidate_epoch store ~keep:(Metrics.fingerprint metrics)

(* {2 TCP front end} *)

type listener = {
  server : t;
  sock : Unix.file_descr;
  lport : int;
  idle_timeout : float;
  llock : Mutex.t;
  mutable running : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable accept_thread : Thread.t option;
}

let listen ?(backlog = 16) ?(port = 0) ?(idle_timeout = 300.0) t =
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt sock SO_REUSEADDR true;
  Unix.bind sock (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  let lport =
    match Unix.getsockname sock with ADDR_INET (_, p) -> p | _ -> assert false
  in
  {
    server = t;
    sock;
    lport;
    idle_timeout;
    llock = Mutex.create ();
    running = true;
    conns = [];
    accept_thread = None;
  }

let port l = l.lport

let conn_loop l fd =
  let session = session l.server in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | exception (End_of_file | Sys_error _) -> continue := false
       | line ->
         let resp, id, stop =
           match Wire.request_of_line line with
           | Error msg -> (Wire.Error_msg msg, None, false)
           | Ok req ->
             (handle l.server session req, Wire.request_id req, req = Wire.Quit)
         in
         output_string oc (Wire.response_to_line ?id resp);
         output_char oc '\n';
         flush oc;
         if stop then continue := false
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.lock l.llock;
  l.conns <- List.filter (fun (fd', _) -> fd' <> fd) l.conns;
  Mutex.unlock l.llock;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  close_in_noerr ic (* closes [fd]; [oc] shares it and is already flushed *)

let serve l =
  let continue = ref true in
  while !continue do
    match Unix.accept l.sock with
    | fd, _ ->
      if not l.running then (try Unix.close fd with _ -> ())
      else begin
        (* one-JSON-line request/response: Nagle + delayed ACK would add a
           round-trip of latency to every exchange *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        (* a dead or silent client may not pin this thread (and its fd)
           forever: a blocked read gives up after the idle timeout, which
           the reader below treats as a hangup *)
        (if l.idle_timeout > 0.0 then
           try Unix.setsockopt_float fd Unix.SO_RCVTIMEO l.idle_timeout
           with Unix.Unix_error _ -> ());
        Mutex.lock l.llock;
        let th = Thread.create (fun () -> conn_loop l fd) () in
        l.conns <- (fd, th) :: l.conns;
        Mutex.unlock l.llock
      end
    | exception Unix.Unix_error _ -> if not l.running then continue := false
  done

let start l =
  let th = Thread.create serve l in
  l.accept_thread <- Some th;
  th

let stop l =
  Mutex.lock l.llock;
  let was_running = l.running in
  l.running <- false;
  let acc = l.accept_thread in
  l.accept_thread <- None;
  Mutex.unlock l.llock;
  if was_running then begin
    (* shutdown wakes a blocked accept (Linux), and keeps waking it: an
       accept entered after this point fails immediately too. *)
    (try Unix.shutdown l.sock Unix.SHUTDOWN_ALL with _ -> ());
    (match acc with Some th -> Thread.join th | None -> ());
    (try Unix.close l.sock with _ -> ());
    let conns = Mutex.protect l.llock (fun () -> l.conns) in
    List.iter (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()) conns;
    List.iter (fun (_, th) -> try Thread.join th with _ -> ()) conns
  end
