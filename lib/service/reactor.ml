module Registry = Flex_obs.Registry
module Clock = Flex_obs.Clock

type config = {
  workers : int;
  max_pending : int;
  max_connections : int;
  idle_timeout : float;
  max_line_bytes : int;
  max_pipeline : int;
  max_output_bytes : int;
}

let default_config =
  {
    workers = 4;
    max_pending = 256;
    max_connections = 900;
    idle_timeout = 300.0;
    max_line_bytes = 1 lsl 20;
    max_pipeline = 64;
    max_output_bytes = 1 lsl 20;
  }

(* All connection state is owned by the reactor thread. Workers never touch
   a [conn]: they hand finished responses back through [t.completions] and
   the wake pipe, and the reactor applies them. *)
type conn = {
  fd : Unix.file_descr;
  session : Server.session;
  partial : Buffer.t;  (* bytes of an incomplete frame *)
  inbox : string Queue.t;  (* framed requests not yet admitted *)
  outq : string Queue.t;  (* encoded response lines, '\n' included *)
  mutable out_off : int;  (* bytes of the head of [outq] already written *)
  mutable out_bytes : int;  (* total unwritten bytes across [outq] *)
  mutable busy : bool;  (* one request in the worker pool *)
  mutable read_closed : bool;  (* EOF seen (or reads abandoned) *)
  mutable closing : bool;  (* close once the output drains *)
  mutable dead : bool;  (* fd closed; drop late completions *)
  mutable last_activity : float;  (* seconds; reads and writes both count *)
}

type completion = { cc : conn; line : string; close : bool }

type stats = {
  connections_open : int;
  accepted_total : int;
  shed_total : int;
  conn_refused_total : int;
  idle_closed_total : int;
  requests_inflight : int;
}

type t = {
  server : Server.t;
  config : config;
  sock : Unix.file_descr;
  lport : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  pool : Workers.t;
  lock : Mutex.t;  (* guards completions, stopping, lifecycle flags *)
  completions : completion Queue.t;
  stopped : Condition.t;
  mutable stopping : bool;
  mutable finished : bool;  (* the loop has exited *)
  mutable cleaned : bool;  (* listener/pipe closed, pool joined *)
  mutable loop_thread : Thread.t option;
  conns : (Unix.file_descr, conn) Hashtbl.t;  (* reactor thread only *)
  (* counters below are mutated by the reactor thread only; [stats] reads
     them without a lock (plain int loads) *)
  mutable open_count : int;
  mutable accepted_total : int;
  mutable shed_total : int;
  mutable conn_refused_total : int;
  mutable idle_closed_total : int;
}

let now_s () = Clock.now_ns () /. 1e9

let overload_line =
  Wire.response_to_line
    (Wire.Rejected
       {
         bucket = "overload";
         reason = "server overloaded: request queue is full, retry later";
       })
  ^ "\n"

let conn_refused_line =
  Wire.response_to_line
    (Wire.Rejected
       {
         bucket = "overload";
         reason = "server overloaded: connection limit reached, retry later";
       })
  ^ "\n"

let error_line msg = Wire.response_to_line (Wire.Error_msg msg) ^ "\n"

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()
(* a full pipe means a wake is already pending — that's all we need *)

let register_collectors t =
  match Server.registry t.server with
  | None -> ()
  | Some reg ->
    Registry.collect reg ~help:"Connections currently open on the reactor"
      ~kind:`Gauge "flex_connections_open" (fun () ->
        [ ([], float_of_int t.open_count) ]);
    Registry.collect reg
      ~help:"Requests admitted to the worker pool and not yet completed"
      ~kind:`Gauge "flex_requests_inflight" (fun () ->
        [ ([], float_of_int (Workers.inflight t.pool)) ]);
    Registry.collect reg
      ~help:"Requests and connections shed by admission control" ~kind:`Counter
      "flex_overload_rejections_total" (fun () ->
        [
          ([ ("reason", "queue") ], float_of_int t.shed_total);
          ([ ("reason", "connections") ], float_of_int t.conn_refused_total);
        ]);
    Registry.collect reg ~help:"Connections closed by the idle sweep"
      ~kind:`Counter "flex_idle_closed_total" (fun () ->
        [ ([], float_of_int t.idle_closed_total) ])

let listen ?(backlog = 64) ?(port = 0) ?(config = default_config) server =
  if config.workers < 1 then invalid_arg "Reactor.listen: workers must be >= 1";
  if config.max_pending < 1 then invalid_arg "Reactor.listen: max_pending must be >= 1";
  if config.max_connections < 1 then
    invalid_arg "Reactor.listen: max_connections must be >= 1";
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt sock SO_REUSEADDR true;
  Unix.bind sock (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock backlog;
  Unix.set_nonblock sock;
  let lport =
    match Unix.getsockname sock with ADDR_INET (_, p) -> p | _ -> assert false
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      server;
      config;
      sock;
      lport;
      wake_r;
      wake_w;
      pool = Workers.create ~workers:config.workers ~capacity:config.max_pending ();
      lock = Mutex.create ();
      completions = Queue.create ();
      stopped = Condition.create ();
      stopping = false;
      finished = false;
      cleaned = false;
      loop_thread = None;
      conns = Hashtbl.create 64;
      open_count = 0;
      accepted_total = 0;
      shed_total = 0;
      conn_refused_total = 0;
      idle_closed_total = 0;
    }
  in
  register_collectors t;
  t

let port t = t.lport

let stats t =
  {
    connections_open = t.open_count;
    accepted_total = t.accepted_total;
    shed_total = t.shed_total;
    conn_refused_total = t.conn_refused_total;
    idle_closed_total = t.idle_closed_total;
    requests_inflight = Workers.inflight t.pool;
  }

(* ------------------------------------------------------------ connections *)

let enqueue_out c s =
  Queue.push s c.outq;
  c.out_bytes <- c.out_bytes + String.length s

let close_conn t c =
  if not c.dead then begin
    c.dead <- true;
    Hashtbl.remove t.conns c.fd;
    t.open_count <- t.open_count - 1;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Execute one request on a worker thread. [Server.handle] never raises;
   everything here only moves bytes and posts the completion. *)
let job t c line () =
  let resp, id, close =
    match Wire.request_of_line line with
    | Error msg -> (Wire.Error_msg msg, None, false)
    | Ok req -> (Server.handle t.server c.session req, Wire.request_id req, req = Wire.Quit)
  in
  let encoded = Wire.response_to_line ?id resp ^ "\n" in
  Mutex.protect t.lock (fun () ->
      Queue.push { cc = c; line = encoded; close } t.completions);
  wake t

(* Admit the connection's next framed request, or shed it. Serial per
   connection: at most one request of a session is ever in flight, so
   pipelined requests are answered in order and session state (hello, the
   per-session RNG) never races with itself. *)
let pump t c =
  if
    (not c.busy) && (not c.closing) && (not c.dead)
    && c.out_bytes <= t.config.max_output_bytes
  then
    match Queue.take_opt c.inbox with
    | None -> ()
    | Some line ->
      if Workers.try_submit t.pool (job t c line) then c.busy <- true
      else begin
        (* the bounded queue is full: typed load shedding, charged nothing,
           parsed never *)
        t.shed_total <- t.shed_total + 1;
        Server.log_overload t.server
          ~analyst:(Server.session_analyst c.session)
          ~line;
        enqueue_out c overload_line
      end

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.sock with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
    | fd, _ ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      if t.open_count >= t.config.max_connections then begin
        (* best-effort typed refusal: the socket buffer of a fresh
           connection always has room for one line *)
        t.conn_refused_total <- t.conn_refused_total + 1;
        (try
           ignore
             (Unix.write_substring fd conn_refused_line 0
                (String.length conn_refused_line))
         with Unix.Unix_error _ -> ());
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        let c =
          {
            fd;
            session = Server.session t.server;
            partial = Buffer.create 256;
            inbox = Queue.create ();
            outq = Queue.create ();
            out_off = 0;
            out_bytes = 0;
            busy = false;
            read_closed = false;
            closing = false;
            dead = false;
            last_activity = now_s ();
          }
        in
        Hashtbl.replace t.conns fd c;
        t.open_count <- t.open_count + 1;
        t.accepted_total <- t.accepted_total + 1
      end
  done

(* Incremental newline framing: split the chunk on '\n', completing the
   partial frame carried in [c.partial]; the tail (no newline yet) goes
   back into [c.partial]. A trailing '\r' is stripped per line. *)
let feed_chunk t c bytes len =
  let start = ref 0 in
  for i = 0 to len - 1 do
    if Bytes.get bytes i = '\n' then begin
      Buffer.add_subbytes c.partial bytes !start (i - !start);
      start := i + 1;
      let line =
        let s = Buffer.contents c.partial in
        Buffer.clear c.partial;
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
      in
      Queue.push line c.inbox
    end
  done;
  Buffer.add_subbytes c.partial bytes !start (len - !start);
  if Buffer.length c.partial > t.config.max_line_bytes then begin
    (* a frame this long is hostile or broken either way; answer and hang up *)
    enqueue_out c
      (error_line
         (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes));
    Buffer.clear c.partial;
    c.read_closed <- true;
    c.closing <- true
  end

let read_conn t read_buf c =
  match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
  | 0 ->
    (* EOF: no more requests will arrive; a partial frame is dropped (the
       peer tore mid-line), but framed requests still pending are served
       and their responses flushed before the close *)
    c.read_closed <- true;
    Buffer.clear c.partial
  | n ->
    c.last_activity <- now_s ();
    feed_chunk t c read_buf n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t c

let write_conn t c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.outq) do
    let s = Queue.peek c.outq in
    let remaining = String.length s - c.out_off in
    match Unix.write_substring c.fd s c.out_off remaining with
    | written ->
      c.out_bytes <- c.out_bytes - written;
      if written = remaining then begin
        ignore (Queue.pop c.outq);
        c.out_off <- 0
      end
      else begin
        c.out_off <- c.out_off + written;
        continue := false
      end;
      if written > 0 then c.last_activity <- now_s ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ ->
      close_conn t c;
      continue := false
  done

(* ------------------------------------------------------------------ loop *)

let drain_wake t =
  let buf = Bytes.create 256 in
  let continue = ref true in
  while !continue do
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n -> if n < Bytes.length buf then continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let drain_completions t =
  let comps =
    Mutex.protect t.lock (fun () ->
        let q = Queue.create () in
        Queue.transfer t.completions q;
        q)
  in
  Queue.iter
    (fun { cc; line; close } ->
      cc.busy <- false;
      if not cc.dead then begin
        enqueue_out cc line;
        if close then cc.closing <- true;
        cc.last_activity <- now_s ()
      end)
    comps

let live_conns t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

(* Reap connections that have gone silent: half-open peers, slowloris
   partial frames, clients that never read their responses. A connection
   with a request executing is spared — it is the query that is slow, not
   the peer. *)
let sweep_idle t now =
  if t.config.idle_timeout > 0.0 then
    List.iter
      (fun c ->
        if
          (not c.busy)
          && now -. c.last_activity > t.config.idle_timeout
          && not c.dead
        then begin
          t.idle_closed_total <- t.idle_closed_total + 1;
          close_conn t c
        end)
      (live_conns t)

(* Close connections that have nothing left to say: the output is flushed
   and either the peer asked to close (Quit, oversize frame) or it hung up
   and every framed request has been answered. *)
let sweep_done t =
  List.iter
    (fun c ->
      if
        (not c.dead) && (not c.busy) && c.out_bytes = 0
        && (c.closing || (c.read_closed && Queue.is_empty c.inbox))
      then close_conn t c)
    (live_conns t)

let run t =
  (* owned by this loop: each reactor instance reads into its own buffer *)
  let read_buf = Bytes.create 16384 in
  let force_deadline = ref None in
  let continue = ref true in
  while !continue do
    let stopping = Mutex.protect t.lock (fun () -> t.stopping) in
    drain_wake t;
    drain_completions t;
    let conns = live_conns t in
    if not stopping then List.iter (pump t) conns;
    sweep_done t;
    let now = now_s () in
    sweep_idle t now;
    if stopping then begin
      (match !force_deadline with
      | None -> force_deadline := Some (now +. 5.0)
      | Some _ -> ());
      let busy = Hashtbl.fold (fun _ c n -> if c.busy then n + 1 else n) t.conns 0 in
      let pending = Hashtbl.fold (fun _ c n -> n + c.out_bytes) t.conns 0 in
      let forced =
        match !force_deadline with Some d -> now >= d | None -> false
      in
      if (busy = 0 && pending = 0) || forced then begin
        List.iter (close_conn t) (live_conns t);
        continue := false
      end
    end;
    if !continue then begin
      let reads =
        t.wake_r
        :: ((* keep accepting even at the connection cap: the typed refusal
               reply is the backpressure signal, silence is not *)
            if not stopping then [ t.sock ] else [])
        @ List.filter_map
            (fun c ->
              if
                (not c.read_closed) && (not c.closing) && (not c.dead)
                && Queue.length c.inbox < t.config.max_pipeline
                && c.out_bytes <= t.config.max_output_bytes
              then Some c.fd
              else None)
            (live_conns t)
      in
      let writes =
        List.filter_map
          (fun c -> if (not c.dead) && c.out_bytes > 0 then Some c.fd else None)
          (live_conns t)
      in
      let timeout =
        if stopping then 0.02
        else if t.config.idle_timeout > 0.0 then
          Float.max 0.01 (Float.min 0.25 (t.config.idle_timeout /. 4.0))
        else 0.25
      in
      match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | rs, ws, _ ->
        if List.memq t.sock rs && not stopping then accept_loop t;
        List.iter
          (fun fd ->
            if fd <> t.sock && fd <> t.wake_r then
              match Hashtbl.find_opt t.conns fd with
              | Some c when not c.dead -> read_conn t read_buf c
              | _ -> ())
          rs;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.conns fd with
            | Some c when not c.dead -> write_conn t c
            | _ -> ())
          ws
    end
  done;
  Mutex.protect t.lock (fun () ->
      t.finished <- true;
      Condition.broadcast t.stopped)

let start t =
  let th = Thread.create run t in
  Mutex.protect t.lock (fun () -> t.loop_thread <- Some th);
  th

let stop t =
  let th =
    Mutex.protect t.lock (fun () ->
        t.stopping <- true;
        let th = t.loop_thread in
        t.loop_thread <- None;
        th)
  in
  wake t;
  (match th with
  | Some th -> Thread.join th
  | None ->
    (* [run] may be inline in another thread (or never started); wait for
       it to notice the flag *)
    Mutex.lock t.lock;
    let deadline = now_s () +. 10.0 in
    while (not t.finished) && now_s () < deadline do
      Mutex.unlock t.lock;
      wake t;
      Thread.delay 0.01;
      Mutex.lock t.lock
    done;
    Mutex.unlock t.lock);
  let do_clean =
    Mutex.protect t.lock (fun () ->
        if t.cleaned then false
        else begin
          t.cleaned <- true;
          true
        end)
  in
  if do_clean then begin
    Workers.shutdown t.pool;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
