(** Minimal JSON for the line-delimited wire protocol — the container ships
    no JSON library, and the protocol needs only scalars, arrays and
    objects. Every value encodes to a single line (control characters are
    escaped), and [of_string (to_string v) = Ok v] for all values whose
    numbers are finite (property-tested). *)

type t =
  | Null
  | Bool of bool
  | Num of float  (** integral values print without a fractional part *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One line, no trailing newline. Non-finite numbers encode as [null]
    (JSON has no representation for them). *)

val number_string : float -> string
(** How [Num] prints: integral values without a fractional part, everything
    else as [%.17g] (round-trips doubles exactly). *)

val of_string : string -> (t, string) result

val of_string_exn : string -> t
(** @raise Failure with a position-carrying message. *)

(** {2 Accessors} (shallow, total) *)

val mem : string -> t -> t option
(** Object member lookup; [None] on non-objects. *)

val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

val str : string -> t
val num : float -> t
val int : int -> t
val bool : bool -> t
