(** A bounded pool of worker threads for request execution.

    This is the service-side complement of {!Flex_engine.Task_pool}: that
    pool data-parallelizes {e one} query across domains, this one runs
    {e many} independent requests concurrently on systhreads (requests
    block on the ledger / audit / release-store locks and on I/O, which
    systhreads handle fine under the runtime lock).

    The queue is the admission-control boundary: {!try_submit} refuses
    instead of blocking when [capacity] jobs are already waiting, so the
    caller (the {!Reactor}) can shed load with a typed overload reply
    rather than letting an unbounded backlog build. *)

type t

val create : ?name:string -> workers:int -> capacity:int -> unit -> t
(** Spawn [workers] threads serving a queue that holds at most [capacity]
    waiting jobs (running jobs don't count against it). [name] is only for
    thread naming in diagnostics.
    @raise Invalid_argument unless [workers >= 1] and [capacity >= 1]. *)

val workers : t -> int

val capacity : t -> int

val try_submit : t -> (unit -> unit) -> bool
(** Enqueue a job, or return [false] immediately when the queue is at
    capacity or the pool is shut down. Jobs run exactly once, in FIFO
    order per queue (concurrent workers interleave); exceptions escaping a
    job are swallowed (the job owns its error reporting). *)

val inflight : t -> int
(** Jobs submitted but not yet finished (queued + executing). *)

type stats = { submitted : int; rejected : int; completed : int }

val stats : t -> stats
(** Lifetime counters: accepted submissions, {!try_submit} refusals, and
    jobs that finished running. *)

val shutdown : t -> unit
(** Stop accepting work, let the workers drain every queued job, and join
    them. Idempotent; [try_submit] returns [false] afterwards. *)
