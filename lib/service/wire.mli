(** The service wire protocol: line-delimited JSON, one request line in, one
    response line out, over a plain TCP stream. Encode/decode round-trips
    exactly (property-tested), so client and server can be exercised
    independently of any socket. *)

module Json = Json

type request =
  | Hello of { analyst : string; epsilon : float option; delta : float option }
      (** register (or re-attach) an analyst; optional total budget limits,
          server defaults otherwise *)
  | Query of {
      sql : string;
      epsilon : float option;
      delta : float option;
      id : string option;
          (** optional client-chosen correlation id: echoed verbatim as a
              top-level ["id"] field of the response line and recorded in
              the audit event and flight record. Older peers on either side
              simply omit/ignore it. *)
    }  (** a DP query; optional per-query epsilon/delta overrides *)
  | Analyze of { sql : string }  (** sensitivity analysis only — free *)
  | Explain of { sql : string }
      (** the optimizer's logical and optimized plans — free, no execution *)
  | Budget_info  (** the session analyst's ledger state *)
  | Stats  (** service counters: cache, admissions, analysts *)
  | Quit

type column_analysis = {
  column : string;
  sensitivity : string;  (** elastic sensitivity as a polynomial in k *)
  smooth_bound : float;
  noise_scale : float;
}

type response =
  | Result of {
      columns : string list;
      rows : Json.t list list;
      epsilon_spent : float;
      delta_spent : float;
      remaining_epsilon : float;
      remaining_delta : float;
      cache_hit : bool;  (** the sensitivity analysis was memoized *)
      cached : bool;
          (** the answer came from the release store at zero additional
              budget ([epsilon_spent] = 0) — same bytes as the first answer
              for this (core, budget, epoch). Decodes to [false] from older
              servers that never replay. *)
      derived : bool;
          (** the store hit answered a {e different} query than the one that
              paid: the request factored into a stored core plus a
              post-processing suffix (HAVING / ORDER BY / LIMIT / projection
              arithmetic) that was evaluated over the stored noisy rows.
              Implies [cached]; exact replays keep [derived = false].
              Decodes to [false] from older servers. *)
      bins_enumerated : bool;
      noise_scales : (string * float) list;
    }
  | Analysis of {
      cache_hit : bool;
      is_histogram : bool;
      joins : int;
      columns : column_analysis list;
    }
  | Plan_report of { logical : string; optimized : string }
      (** rendered plans with estimated cardinalities, answering {!Explain} *)
  | Rejected of { bucket : string; reason : string }
      (** §3.7.1 typed rejection; [bucket] is the §5.1 class
          (parse / unsupported / other) *)
  | Refused of {
      analyst : string;
      requested_epsilon : float;
      requested_delta : float;
      remaining_epsilon : float;
      remaining_delta : float;
    }  (** budget refusal — the query was admissible but unaffordable *)
  | Budget_report of {
      analyst : string;
      epsilon_limit : float;
      delta_limit : float;
      epsilon_spent : float;
      delta_spent : float;
      remaining_epsilon : float;
      remaining_delta : float;
      queries : int;
    }
  | Stats_report of {
      queries : int;
      granted : int;
      rejected : int;
      refused : int;
      cache_hits : int;
      cache_misses : int;
      cache_entries : int;
      release_hits : int;  (** release-store replays served *)
      release_misses : int;
      release_derived : int;
          (** store hits answered by evaluating a post-processing suffix
              over the stored rows, rather than byte-identical replay *)
      release_evictions : int;
          (** capacity + stale-epoch drops; all release_* fields decode to 0
              from older servers without a release store *)
      release_entries : int;
      release_hit_rate : float;
      analysts : int;
      uptime_seconds : float;
      qps : float;
      metrics : Json.t;
          (** the full registry snapshot ({!Server.registry} rendered as
              JSON families); [Null] from servers without telemetry *)
    }
  | Analyzed_report of { plan : string }
      (** EXPLAIN ANALYZE: the executed plan annotated with per-operator
          timings (row counts gated by the server's EXPLAIN opt-in) *)
  | Error_msg of string  (** protocol-level error (bad JSON, unknown op, ...) *)
  | Bye

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val request_id : request -> string option
(** The correlation id carried by a [Query], if any. *)

val request_to_line : request -> string
val request_of_line : string -> (request, string) result

val response_to_line : ?id:string -> response -> string
(** [id] (the request's correlation id) is appended as a top-level ["id"]
    field; decoders that don't know it ignore it. *)

val response_of_line : string -> (response, string) result

val response_id_of_line : string -> string option
(** The echoed correlation id on a response line, if present. *)

val json_of_value : Flex_engine.Value.t -> Json.t
(** How result cells travel: NULL/bool/number/string. *)
