(** Per-key token-bucket rate limiting for request admission.

    One bucket per key (the service keys on the analyst name): tokens
    refill continuously at [qps] per second up to [burst], and each
    admitted request spends one. A request that finds the bucket empty is
    denied — the service answers it with a typed rejection instead of
    queueing it, so a single analyst's dashboard gone haywire cannot
    monopolize the worker pool.

    Denials are a scheduling decision, not a privacy event: nothing here
    touches the budget ledger, and a denied request is charged nothing. *)

type t

val create : ?burst:float -> qps:float -> unit -> t
(** [burst] defaults to [max 1.0 qps] (about one second of headroom).
    @raise Invalid_argument unless [qps > 0], finite, and [burst >= 1]. *)

val qps : t -> float

val allow : ?now:float -> t -> key:string -> bool
(** Spend one token from [key]'s bucket, creating it full on first sight.
    [now] is seconds (monotonic preferred) and exists for deterministic
    tests; it defaults to {!Flex_obs.Clock.now_ns}[ () /. 1e9]. Thread-safe. *)

type stats = { allowed : int; denied : int; keys : int }

val stats : t -> stats
