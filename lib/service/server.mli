(** The FLEX query service: the paper's §1/§7 deployment shape — middleware
    that intercepts analysts' SQL, analyses it, charges a per-analyst budget
    and perturbs results before anything leaves the trusted side.

    The request pipeline (per {!Wire.request} [Query]):

    + parse (trailing semicolons tolerated — analysts type them);
    + canonicalize and look up / compute the elastic-sensitivity analysis
      (memoized across analysts on canonical AST + metrics fingerprint +
      option flags; rejections are cached verdicts too);
    + admission: §3.7.1 typed rejections pass through as [Rejected] with
      their §5.1 bucket; per-query epsilon above the configured cap is
      rejected before touching the budget;
    + smooth-sensitivity per column, execute on the shared read-only
      database handle;
    + atomically charge the ledger ([epsilon * aggregate-columns] under
      basic composition) — an unaffordable request gets a typed [Refused]
      and {e never} a noisy answer;
    + perturb and release, audit-log the stage timings.

    [handle] is re-entrant: sessions can be driven concurrently from any
    number of threads (the ledger, cache and audit log carry their own
    locks; each session carries its own RNG). The TCP front end is
    line-delimited JSON, one thread per connection. *)

module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Ledger = Flex_dp.Ledger
module Rng = Flex_dp.Rng

type config = {
  default_epsilon : float;  (** per-query epsilon when the request omits it *)
  default_delta : float;
  analyst_epsilon : float;  (** total budget granted by a plain Hello *)
  analyst_delta : float;
  max_epsilon_per_query : float;  (** admission cap on a single request *)
  public_optimization : bool;
  unique_optimization : bool;
  cross_joins : bool;
  optimize_queries : bool;
      (** execute through the cost-based plan optimizer ({!Flex_engine.Optimizer}),
          with the sensitivity metrics doubling as cardinality statistics; the
          privacy analysis always sees the original AST. Releases are unchanged
          up to row order and floating-point rounding (join reorder can
          re-associate float SUM/AVG accumulation). *)
  explain_estimates : bool;
      (** render per-operator [~N rows] cardinality annotations in EXPLAIN
          responses — and serve EXPLAIN ANALYZE at all. Off by default:
          estimates are uncharged and seeded from exact private-table row
          counts ({!Flex_engine.Metrics.row_count}), and EXPLAIN ANALYZE
          executes the query, so its per-operator timings (not just its row
          counts) scale with private cardinalities and selectivities.
          Enabling this declares table cardinalities public in the
          deployment's threat model; EXPLAIN ANALYZE additionally requires
          an authenticated session (hello) and is audit-logged, though it
          remains uncharged. *)
  telemetry : bool;
      (** maintain a metrics registry and per-query trace spans (on by
          default). Releases are bit-identical either way: telemetry never
          touches the RNG or the result path. Off, the audit log's stage
          timings read zero and {!registry} is [None]. *)
  release_cache : bool;
      (** answer from the store of finalized noisy releases — the DP
          post-processing freebie. Each aggregate query is factored
          ({!Flex_sql.Factor}) into a releasable {e core} (FROM/WHERE/GROUP
          BY + base aggregates) and a post-processing suffix (HAVING, ORDER
          BY/LIMIT, projection arithmetic); the store is keyed on the
          canonical core, so an identical repeat replays the same bytes
          ([cached: true], [Replayed] in the audit log) and a {e different}
          query over the same core is answered by evaluating its suffix over
          the stored noisy rows ([cached: true, derived: true], [Derived] in
          the audit log) — either way zero budget, no execution, no fresh
          noise. A miss pays for the whole core once (epsilon for {e all} its
          base aggregates), so later derivations are genuinely free. On by
          default. Off, every query re-executes, draws fresh noise, and is
          charged again (correct accounting, strictly worse utility per
          epsilon for dashboard workloads). *)
  rate_limit_qps : float option;
      (** per-analyst token-bucket admission: each analyst may issue at
          most this many [Query] requests per second (with about one
          second of burst). A request over the limit is answered
          [Rejected {bucket = "rate_limit"}], audit-logged with the same
          outcome, and charged nothing — the decision is scheduling, not
          privacy, so it never touches the ledger. [None] (the default)
          disables the limiter. *)
  statement_capacity : int;
      (** distinct query shapes tracked by the statement-statistics table
          ({!statements}); past it the least-called shape is evicted.
          Default 512. Only meaningful with [telemetry]. *)
  flight_capacity : int;
      (** finished requests the flight recorder ({!flights}) retains.
          Default 256. Only meaningful with [telemetry]. *)
}

val default_config : config
(** eps 0.1 / delta 1e-8 per query, totals 10.0 / 1e-4, cap 1.0, paper-default
    optimisation flags, EXPLAIN cardinality annotations off, telemetry and
    release replay on. *)

type t

val create :
  ?audit:Audit.t ->
  ?config:config ->
  ?cache_capacity:int ->
  ?pool:Flex_engine.Task_pool.t ->
  ?registry:Flex_obs.Registry.t ->
  ?release_store:Release_store.t ->
  db:Database.t ->
  metrics:Metrics.t ->
  ledger:Ledger.t ->
  rng:Rng.t ->
  unit ->
  t
(** [pool] is one shared domain pool for every session's query execution
    (stage 3); sessions whose query arrives while the pool is busy simply
    execute sequentially, so concurrent sessions never block each other.
    [registry] lets several servers (or the embedding process) share one
    metrics registry; a fresh one is created otherwise. Ignored when
    [config.telemetry] is false. [release_store] supplies a (typically
    journaled, see {!Release_store.open_}) store of past releases; with
    [config.release_cache] and no store given, a fresh in-memory one is
    created; with [config.release_cache] false, any given store is ignored
    and nothing is ever replayed. *)

type session

val session : t -> session
(** A fresh anonymous session with an independent RNG stream; [Hello] names
    its analyst. *)

val session_analyst : session -> string option
(** The analyst a [Hello] attached to this session, if any — what the
    connection layer records in audit events for requests it sheds before
    they ever reach {!handle}. *)

val log_overload : t -> analyst:string option -> line:string -> unit
(** Audit-log a request the connection layer shed before parsing (worker
    queue full): outcome [Rejected "overload"], the raw wire line standing
    in for the SQL (truncated to 200 bytes). Counted under [rejected];
    charges nothing. *)

val handle : t -> session -> Wire.request -> Wire.response
(** Serve one request. Never raises. *)

val handle_line : t -> session -> string -> string
(** [handle] at the wire: JSON line in, JSON line out (malformed input
    yields an [error] response line). *)

type counters = {
  queries : int;  (** Query requests seen *)
  granted : int;  (** charged releases ({e excludes} replays and derivations) *)
  replayed : int;  (** zero-budget exact replays from the release store *)
  derived : int;
      (** zero-budget derivations: store hits answered by evaluating a
          post-processing suffix over the stored noisy rows *)
  rejected : int;
  rate_limited : int;
      (** the subset of [rejected] turned away by the per-analyst token
          bucket ([config.rate_limit_qps]) *)
  refused : int;
}

val counters : t -> counters
val cache : t -> (Flex_core.Elastic.analysis, Flex_core.Errors.reason) result Cache.t

val release_store : t -> Release_store.t option
(** The server's release store ([None] when [config.release_cache] is off). *)

val registry : t -> Flex_obs.Registry.t option
(** The server's metrics registry ([None] when telemetry is off) — what
    [Stats] snapshots and the [--stats-port] HTTP endpoint scrapes. The
    wire [Stats] response omits analyst-labelled families (remaining
    budget, burn rate, exhaustion forecast): the op needs no hello, and
    those series disclose other analysts' names and consumption. *)

val statements : t -> Flex_obs.Statements.t option
(** Per-shape statement statistics keyed on the canonical core key the
    release store uses, so every post-processing variant of one core
    aggregates into a single row. [None] when telemetry is off. Rows carry
    canonical SQL text: operator-only loopback surface ([/statements]),
    never the unauthenticated wire. *)

val flights : t -> Flex_obs.Flight.t option
(** The flight recorder: the last [config.flight_capacity] finished
    requests with their span trees, analyst, outcome and budget charge.
    [None] when telemetry is off. Records carry raw SQL and analyst names:
    operator-only loopback surface ([/flights]), never the unauthenticated
    wire. Pure observation — fixed-seed DP releases are bit-identical with
    the recorder on or off. *)

val refresh_data : t -> db:Database.t -> metrics:Metrics.t -> int
(** Swap in a new data epoch atomically (new database handle + metrics,
    hence a new fingerprint) and strand every stored release minted against
    the old epoch — a replayed answer must never outlive the data it
    described. Returns the number of releases stranded. In-flight requests
    finish against whichever epoch they snapshotted at admission. *)

(** {2 TCP front end} *)

type listener

val listen : ?backlog:int -> ?port:int -> ?idle_timeout:float -> t -> listener
(** Bind 127.0.0.1 (port 0 — the default — picks an ephemeral one).
    Accepted sockets get [TCP_NODELAY] (the one-line request/response
    protocol would otherwise pay Nagle/delayed-ACK latency every round
    trip) and a receive timeout of [idle_timeout] seconds (default 300;
    [0] disables), after which a silent client's connection is dropped —
    a dead peer may not pin an fd and a thread forever.

    This thread-per-connection front end is the baseline the event-driven
    {!Reactor} is benchmarked against; prefer the reactor for high
    connection counts. *)

val port : listener -> int

val serve : listener -> unit
(** Accept loop in the calling thread; returns after {!stop}. *)

val start : listener -> Thread.t
(** [serve] on a background thread. *)

val stop : listener -> unit
(** Stop accepting, hang up every live connection, and join all connection
    threads; pending requests finish first, so the ledger is quiescent when
    this returns. Idempotent. *)
