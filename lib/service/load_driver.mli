(** Closed-loop concurrent load driver for the wire protocol.

    Opens [connections] TCP connections (each its own thread, blocking
    I/O, [TCP_NODELAY]), optionally authenticates each with [Hello], and
    drives [requests] request/response round trips per connection,
    timing every round trip on the monotonic clock. Closed-loop: each
    connection has exactly one request outstanding, so offered load
    adapts to service rate and the latency distribution is honest.

    Shared by [flex_client bench] and [bench/load_perf] — the sustained
    load benchmark is the CLI driver, not a parallel implementation. *)

type outcome = {
  sent : int;
  ok : int;  (** answered with a result/report *)
  cached : int;  (** the subset of [ok] served from the release store *)
  rejected : int;  (** all typed rejections *)
  overload : int;  (** the subset of [rejected] with bucket ["overload"] *)
  rate_limited : int;  (** the subset with bucket ["rate_limit"] *)
  refused : int;  (** budget refusals *)
  errors : int;  (** error responses and transport failures *)
  latencies : float array;  (** per-round-trip seconds, sorted ascending *)
  elapsed : float;  (** wall seconds for the whole run *)
}

val qps : outcome -> float
(** Completed round trips per wall second. *)

val percentile : outcome -> float -> float
(** [percentile o 0.99] — nearest-rank over the sorted latencies; 0 when
    no round trip completed. *)

val run :
  ?host:string ->
  ?hello:(int -> string option) ->
  port:int ->
  connections:int ->
  requests:int ->
  make_request:(conn:int -> seq:int -> Wire.request) ->
  unit ->
  outcome
(** [hello i] names the analyst connection [i] authenticates as (default:
    ["analyst-" ^ i]; [None] skips the Hello). A connection that suffers a
    transport failure (hangup, refused) counts the failed round trip under
    [errors] and stops; the others keep going. *)
