(** Thread-safe memo table for elastic-sensitivity analyses.

    Keys are strings combining the canonicalized query
    ({!Flex_sql.Canon.cache_key}), the database-metrics fingerprint
    ({!Flex_engine.Metrics.fingerprint}) and the analysis option flags — so a
    change to any [mf]/[vr] metric or to the optimisation toggles changes
    the key and old entries simply stop being reachable. Rejections are
    cached too: they are deterministic functions of the same inputs.

    Capacity-bounded; insertion beyond capacity evicts in FIFO order. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity: 4096 entries. *)

val key : sql_canonical:string -> fingerprint:string -> flags:string -> string

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** Returns [(value, was_hit)]. The compute function runs outside the lock
    (two racing misses may both compute; one result wins — acceptable for a
    pure function). *)

val hits : 'a t -> int
val misses : 'a t -> int
val length : 'a t -> int
val clear : 'a t -> unit
