(* Hand-rolled JSON, sufficient for the wire protocol: encoder emits one
   line; recursive-descent parser accepts standard JSON (with \uXXXX escapes
   decoded to UTF-8). Numbers are doubles; %.17g printing round-trips every
   finite double exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding -------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec encode b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f ->
    if Float.is_finite f then Buffer.add_string b (number_string f)
    else Buffer.add_string b "null"
  | Str s -> escape_string b s
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        encode b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        encode b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  encode b v;
  Buffer.contents b

(* --- decoding -------------------------------------------------------------- *)

exception Parse of string

type parser_state = { src : string; mutable pos : int }

let error p fmt = Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s at offset %d" m p.pos))) fmt

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.src
    && match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | Some c' -> error p "expected %c, found %c" c c'
  | None -> error p "expected %c, found end of input" c

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else error p "invalid literal"

(* encode one code point as UTF-8 *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 p =
  if p.pos + 4 > String.length p.src then error p "truncated \\u escape";
  let s = String.sub p.src p.pos 4 in
  p.pos <- p.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some v -> v
  | None -> error p "bad \\u escape %S" s

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> error p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' ->
      p.pos <- p.pos + 1;
      (match peek p with
      | None -> error p "unterminated escape"
      | Some c ->
        p.pos <- p.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let cp = hex4 p in
          (* surrogate pair *)
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF && p.pos + 6 <= String.length p.src
               && p.src.[p.pos] = '\\' && p.src.[p.pos + 1] = 'u'
            then begin
              p.pos <- p.pos + 2;
              let lo = hex4 p in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else begin
                add_utf8 b cp;
                lo
              end
            end
            else cp
          in
          add_utf8 b cp
        | c -> error p "bad escape \\%c" c));
      go ()
    | Some c ->
      p.pos <- p.pos + 1;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while p.pos < String.length p.src && is_num_char p.src.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error p "bad number %S" s

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> error p "unexpected end of input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> Str (parse_string p)
  | Some '[' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = Some ']' then begin
      p.pos <- p.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          p.pos <- p.pos + 1;
          items (v :: acc)
        | Some ']' ->
          p.pos <- p.pos + 1;
          List.rev (v :: acc)
        | _ -> error p "expected , or ] in array"
      in
      List (items [])
    end
  | Some '{' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = Some '}' then begin
      p.pos <- p.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let rec fields acc =
        let f = field () in
        skip_ws p;
        match peek p with
        | Some ',' ->
          p.pos <- p.pos + 1;
          fields (f :: acc)
        | Some '}' ->
          p.pos <- p.pos + 1;
          List.rev (f :: acc)
        | _ -> error p "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" p.pos)
    else Ok v
  | exception Parse m -> Error m

let of_string_exn s =
  match of_string s with Ok v -> v | Error m -> failwith ("Json.of_string: " ^ m)

(* --- accessors ------------------------------------------------------------- *)

let mem key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List vs -> Some vs | _ -> None
let str s = Str s
let num f = Num f
let int i = Num (float_of_int i)
let bool b = Bool b
