(* Mutex-guarded hashtable with FIFO eviction and hit/miss counters. The
   computation itself runs unlocked: analyses are pure, so a duplicated
   computation under a racing miss is only wasted work, never wrong. *)

type 'a t = {
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
  capacity : int;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 4096) () =
  {
    table = Hashtbl.create 256;
    order = Queue.create ();
    capacity = max 1 capacity;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
  }

let key ~sql_canonical ~fingerprint ~flags =
  String.concat "\x00" [ sql_canonical; fingerprint; flags ]

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_or_compute t ~key f =
  let cached =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some v -> (v, true)
  | None ->
    let v = f () in
    with_lock t (fun () ->
        if not (Hashtbl.mem t.table key) then begin
          while Queue.length t.order >= t.capacity do
            Hashtbl.remove t.table (Queue.pop t.order)
          done;
          Hashtbl.replace t.table key v;
          Queue.push key t.order
        end);
    (v, false)

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let length t = with_lock t (fun () -> Hashtbl.length t.table)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order)
