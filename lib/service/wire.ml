(* Request/response messages and their JSON forms. Encoding is total;
   decoding validates shape and reports the offending field. *)

module Json = Json

type request =
  | Hello of { analyst : string; epsilon : float option; delta : float option }
  | Query of {
      sql : string;
      epsilon : float option;
      delta : float option;
      id : string option;
          (* client-chosen correlation id, echoed verbatim in the response
             and recorded in the audit event and flight record *)
    }
  | Analyze of { sql : string }
  | Explain of { sql : string }
  | Budget_info
  | Stats
  | Quit

type column_analysis = {
  column : string;
  sensitivity : string;
  smooth_bound : float;
  noise_scale : float;
}

type response =
  | Result of {
      columns : string list;
      rows : Json.t list list;
      epsilon_spent : float;
      delta_spent : float;
      remaining_epsilon : float;
      remaining_delta : float;
      cache_hit : bool;
      cached : bool;
      derived : bool;
          (* answered by post-processing a stored release's noisy rows (a
             materialized-view hit with a nontrivial suffix); [cached] stays
             the "zero budget was charged" flag for both replay and
             derivation *)
      bins_enumerated : bool;
      noise_scales : (string * float) list;
    }
  | Analysis of {
      cache_hit : bool;
      is_histogram : bool;
      joins : int;
      columns : column_analysis list;
    }
  | Plan_report of { logical : string; optimized : string }
  | Rejected of { bucket : string; reason : string }
  | Refused of {
      analyst : string;
      requested_epsilon : float;
      requested_delta : float;
      remaining_epsilon : float;
      remaining_delta : float;
    }
  | Budget_report of {
      analyst : string;
      epsilon_limit : float;
      delta_limit : float;
      epsilon_spent : float;
      delta_spent : float;
      remaining_epsilon : float;
      remaining_delta : float;
      queries : int;
    }
  | Stats_report of {
      queries : int;
      granted : int;
      rejected : int;
      refused : int;
      cache_hits : int;
      cache_misses : int;
      cache_entries : int;
      release_hits : int;
      release_misses : int;
      release_derived : int;
          (* store hits answered by suffix evaluation rather than exact
             replay *)
      release_evictions : int;
      release_entries : int;
      release_hit_rate : float;
      analysts : int;
      uptime_seconds : float;
      qps : float;
      metrics : Json.t;
    }
  | Analyzed_report of { plan : string }
  | Error_msg of string
  | Bye

(* --- helpers ---------------------------------------------------------------- *)

let opt_num key = function Some f -> [ (key, Json.num f) ] | None -> []
let opt_str key = function Some s -> [ (key, Json.str s) ] | None -> []

let get_opt_str key j =
  match Json.mem key j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "non-string field %S" key))

let get_str key j =
  match Option.bind (Json.mem key j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" key)

let get_num key j =
  match Option.bind (Json.mem key j) Json.to_num with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-number field %S" key)

let get_int key j =
  match Option.bind (Json.mem key j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-integer field %S" key)

let get_bool key j =
  match Option.bind (Json.mem key j) Json.to_bool with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "missing or non-boolean field %S" key)

let get_opt_num key j =
  match Json.mem key j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_num v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "non-number field %S" key))

(* fields added after an op shipped decode with a default, so a newer client
   still understands an older server's responses *)
let get_int_default key ~default j =
  match Json.mem key j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "non-integer field %S" key))

let get_bool_default key ~default j =
  match Json.mem key j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_bool v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "non-boolean field %S" key))

let ( let* ) = Result.bind

(* --- requests ---------------------------------------------------------------- *)

let request_to_json = function
  | Hello { analyst; epsilon; delta } ->
    Json.Obj
      ([ ("op", Json.str "hello"); ("analyst", Json.str analyst) ]
      @ opt_num "epsilon" epsilon @ opt_num "delta" delta)
  | Query { sql; epsilon; delta; id } ->
    Json.Obj
      ([ ("op", Json.str "query"); ("sql", Json.str sql) ]
      @ opt_num "epsilon" epsilon @ opt_num "delta" delta @ opt_str "id" id)
  | Analyze { sql } -> Json.Obj [ ("op", Json.str "analyze"); ("sql", Json.str sql) ]
  | Explain { sql } -> Json.Obj [ ("op", Json.str "explain"); ("sql", Json.str sql) ]
  | Budget_info -> Json.Obj [ ("op", Json.str "budget") ]
  | Stats -> Json.Obj [ ("op", Json.str "stats") ]
  | Quit -> Json.Obj [ ("op", Json.str "quit") ]

let request_of_json j =
  let* op = get_str "op" j in
  match op with
  | "hello" ->
    let* analyst = get_str "analyst" j in
    let* epsilon = get_opt_num "epsilon" j in
    let* delta = get_opt_num "delta" j in
    Ok (Hello { analyst; epsilon; delta })
  | "query" ->
    let* sql = get_str "sql" j in
    let* epsilon = get_opt_num "epsilon" j in
    let* delta = get_opt_num "delta" j in
    (* added after the op shipped: an older client never sends one *)
    let* id = get_opt_str "id" j in
    Ok (Query { sql; epsilon; delta; id })
  | "analyze" ->
    let* sql = get_str "sql" j in
    Ok (Analyze { sql })
  | "explain" ->
    let* sql = get_str "sql" j in
    Ok (Explain { sql })
  | "budget" -> Ok Budget_info
  | "stats" -> Ok Stats
  | "quit" -> Ok Quit
  | op -> Error (Printf.sprintf "unknown op %S" op)

(* --- responses ---------------------------------------------------------------- *)

let response_to_json = function
  | Result r ->
    Json.Obj
      [
        ("status", Json.str "result");
        ("columns", Json.List (List.map Json.str r.columns));
        ("rows", Json.List (List.map (fun row -> Json.List row) r.rows));
        ("epsilon_spent", Json.num r.epsilon_spent);
        ("delta_spent", Json.num r.delta_spent);
        ("remaining_epsilon", Json.num r.remaining_epsilon);
        ("remaining_delta", Json.num r.remaining_delta);
        ("cache_hit", Json.bool r.cache_hit);
        ("cached", Json.bool r.cached);
        ("derived", Json.bool r.derived);
        ("bins_enumerated", Json.bool r.bins_enumerated);
        ( "noise_scales",
          Json.List
            (List.map
               (fun (c, s) ->
                 Json.Obj [ ("column", Json.str c); ("scale", Json.num s) ])
               r.noise_scales) );
      ]
  | Analysis a ->
    Json.Obj
      [
        ("status", Json.str "analysis");
        ("cache_hit", Json.bool a.cache_hit);
        ("is_histogram", Json.bool a.is_histogram);
        ("joins", Json.int a.joins);
        ( "columns",
          Json.List
            (List.map
               (fun c ->
                 Json.Obj
                   [
                     ("column", Json.str c.column);
                     ("sensitivity", Json.str c.sensitivity);
                     ("smooth_bound", Json.num c.smooth_bound);
                     ("noise_scale", Json.num c.noise_scale);
                   ])
               a.columns) );
      ]
  | Plan_report { logical; optimized } ->
    Json.Obj
      [
        ("status", Json.str "plan");
        ("logical", Json.str logical);
        ("optimized", Json.str optimized);
      ]
  | Rejected { bucket; reason } ->
    Json.Obj
      [ ("status", Json.str "rejected"); ("bucket", Json.str bucket); ("reason", Json.str reason) ]
  | Refused r ->
    Json.Obj
      [
        ("status", Json.str "refused");
        ("analyst", Json.str r.analyst);
        ("requested_epsilon", Json.num r.requested_epsilon);
        ("requested_delta", Json.num r.requested_delta);
        ("remaining_epsilon", Json.num r.remaining_epsilon);
        ("remaining_delta", Json.num r.remaining_delta);
      ]
  | Budget_report b ->
    Json.Obj
      [
        ("status", Json.str "budget");
        ("analyst", Json.str b.analyst);
        ("epsilon_limit", Json.num b.epsilon_limit);
        ("delta_limit", Json.num b.delta_limit);
        ("epsilon_spent", Json.num b.epsilon_spent);
        ("delta_spent", Json.num b.delta_spent);
        ("remaining_epsilon", Json.num b.remaining_epsilon);
        ("remaining_delta", Json.num b.remaining_delta);
        ("queries", Json.int b.queries);
      ]
  | Stats_report s ->
    Json.Obj
      [
        ("status", Json.str "stats");
        ("queries", Json.int s.queries);
        ("granted", Json.int s.granted);
        ("rejected", Json.int s.rejected);
        ("refused", Json.int s.refused);
        ("cache_hits", Json.int s.cache_hits);
        ("cache_misses", Json.int s.cache_misses);
        ("cache_entries", Json.int s.cache_entries);
        ("release_hits", Json.int s.release_hits);
        ("release_misses", Json.int s.release_misses);
        ("release_derived", Json.int s.release_derived);
        ("release_evictions", Json.int s.release_evictions);
        ("release_entries", Json.int s.release_entries);
        ("release_hit_rate", Json.num s.release_hit_rate);
        ("analysts", Json.int s.analysts);
        ("uptime_seconds", Json.num s.uptime_seconds);
        ("qps", Json.num s.qps);
        ("metrics", s.metrics);
      ]
  | Analyzed_report { plan } ->
    Json.Obj [ ("status", Json.str "analyzed"); ("plan", Json.str plan) ]
  | Error_msg m -> Json.Obj [ ("status", Json.str "error"); ("message", Json.str m) ]
  | Bye -> Json.Obj [ ("status", Json.str "bye") ]

let response_of_json j =
  let* status = get_str "status" j in
  match status with
  | "result" ->
    let* columns =
      match Option.bind (Json.mem "columns" j) Json.to_list with
      | Some vs -> (
        match List.filter_map Json.to_str vs with
        | strs when List.length strs = List.length vs -> Ok strs
        | _ -> Error "non-string column name")
      | None -> Error "missing columns"
    in
    let* rows =
      match Option.bind (Json.mem "rows" j) Json.to_list with
      | Some vs ->
        List.fold_left
          (fun acc row ->
            let* acc = acc in
            match Json.to_list row with
            | Some cells -> Ok (cells :: acc)
            | None -> Error "non-array row")
          (Ok []) vs
        |> Result.map List.rev
      | None -> Error "missing rows"
    in
    let* epsilon_spent = get_num "epsilon_spent" j in
    let* delta_spent = get_num "delta_spent" j in
    let* remaining_epsilon = get_num "remaining_epsilon" j in
    let* remaining_delta = get_num "remaining_delta" j in
    let* cache_hit = get_bool "cache_hit" j in
    (* added with the release store; older servers never replay *)
    let* cached = get_bool_default "cached" ~default:false j in
    (* added with the materialized-view layer; older servers never derive *)
    let* derived = get_bool_default "derived" ~default:false j in
    let* bins_enumerated = get_bool "bins_enumerated" j in
    let* noise_scales =
      match Option.bind (Json.mem "noise_scales" j) Json.to_list with
      | Some vs ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* c = get_str "column" v in
            let* s = get_num "scale" v in
            Ok ((c, s) :: acc))
          (Ok []) vs
        |> Result.map List.rev
      | None -> Error "missing noise_scales"
    in
    Ok
      (Result
         {
           columns;
           rows;
           epsilon_spent;
           delta_spent;
           remaining_epsilon;
           remaining_delta;
           cache_hit;
           cached;
           derived;
           bins_enumerated;
           noise_scales;
         })
  | "analysis" ->
    let* cache_hit = get_bool "cache_hit" j in
    let* is_histogram = get_bool "is_histogram" j in
    let* joins = get_int "joins" j in
    let* columns =
      match Option.bind (Json.mem "columns" j) Json.to_list with
      | Some vs ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* column = get_str "column" v in
            let* sensitivity = get_str "sensitivity" v in
            let* smooth_bound = get_num "smooth_bound" v in
            let* noise_scale = get_num "noise_scale" v in
            Ok ({ column; sensitivity; smooth_bound; noise_scale } :: acc))
          (Ok []) vs
        |> Result.map List.rev
      | None -> Error "missing columns"
    in
    Ok (Analysis { cache_hit; is_histogram; joins; columns })
  | "plan" ->
    let* logical = get_str "logical" j in
    let* optimized = get_str "optimized" j in
    Ok (Plan_report { logical; optimized })
  | "rejected" ->
    let* bucket = get_str "bucket" j in
    let* reason = get_str "reason" j in
    Ok (Rejected { bucket; reason })
  | "refused" ->
    let* analyst = get_str "analyst" j in
    let* requested_epsilon = get_num "requested_epsilon" j in
    let* requested_delta = get_num "requested_delta" j in
    let* remaining_epsilon = get_num "remaining_epsilon" j in
    let* remaining_delta = get_num "remaining_delta" j in
    Ok (Refused { analyst; requested_epsilon; requested_delta; remaining_epsilon; remaining_delta })
  | "budget" ->
    let* analyst = get_str "analyst" j in
    let* epsilon_limit = get_num "epsilon_limit" j in
    let* delta_limit = get_num "delta_limit" j in
    let* epsilon_spent = get_num "epsilon_spent" j in
    let* delta_spent = get_num "delta_spent" j in
    let* remaining_epsilon = get_num "remaining_epsilon" j in
    let* remaining_delta = get_num "remaining_delta" j in
    let* queries = get_int "queries" j in
    Ok
      (Budget_report
         {
           analyst;
           epsilon_limit;
           delta_limit;
           epsilon_spent;
           delta_spent;
           remaining_epsilon;
           remaining_delta;
           queries;
         })
  | "stats" ->
    let* queries = get_int "queries" j in
    let* granted = get_int "granted" j in
    let* rejected = get_int "rejected" j in
    let* refused = get_int "refused" j in
    let* cache_hits = get_int "cache_hits" j in
    let* cache_misses = get_int "cache_misses" j in
    let* cache_entries = get_int "cache_entries" j in
    (* release-cache counters shipped after the op: an older server simply
       has no release store, which zeros render faithfully *)
    let* release_hits = get_int_default "release_hits" ~default:0 j in
    let* release_misses = get_int_default "release_misses" ~default:0 j in
    let* release_derived = get_int_default "release_derived" ~default:0 j in
    let* release_evictions = get_int_default "release_evictions" ~default:0 j in
    let* release_entries = get_int_default "release_entries" ~default:0 j in
    let* release_hit_rate = get_opt_num "release_hit_rate" j in
    let release_hit_rate = Option.value release_hit_rate ~default:0.0 in
    let* analysts = get_int "analysts" j in
    (* uptime_seconds / qps / metrics arrived after the op itself: default
       them so an updated client still decodes an older server's report *)
    let* uptime_seconds = get_opt_num "uptime_seconds" j in
    let uptime_seconds = Option.value uptime_seconds ~default:0.0 in
    let* qps = get_opt_num "qps" j in
    let qps = Option.value qps ~default:0.0 in
    let metrics = Option.value (Json.mem "metrics" j) ~default:Json.Null in
    Ok
      (Stats_report
         {
           queries;
           granted;
           rejected;
           refused;
           cache_hits;
           cache_misses;
           cache_entries;
           release_hits;
           release_misses;
           release_derived;
           release_evictions;
           release_entries;
           release_hit_rate;
           analysts;
           uptime_seconds;
           qps;
           metrics;
         })
  | "analyzed" ->
    let* plan = get_str "plan" j in
    Ok (Analyzed_report { plan })
  | "error" ->
    let* message = get_str "message" j in
    Ok (Error_msg message)
  | "bye" -> Ok Bye
  | s -> Error (Printf.sprintf "unknown status %S" s)

(* --- lines ------------------------------------------------------------------- *)

let request_id = function Query { id; _ } -> id | _ -> None

let request_to_line r = Json.to_string (request_to_json r)

let request_of_line line =
  let* j = Json.of_string line in
  request_of_json j

(* [id] echoes the client's correlation id as a top-level response field.
   Decoders only read the fields they name, so an older client simply never
   sees it. *)
let response_to_line ?id r =
  let j = response_to_json r in
  let j =
    match (id, j) with
    | Some id, Json.Obj fields -> Json.Obj (fields @ [ ("id", Json.str id) ])
    | _ -> j
  in
  Json.to_string j

let response_of_line line =
  let* j = Json.of_string line in
  response_of_json j

let response_id_of_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> Option.bind (Json.mem "id" j) Json.to_str

let json_of_value (v : Flex_engine.Value.t) =
  match v with
  | Flex_engine.Value.Null -> Json.Null
  | Flex_engine.Value.Bool b -> Json.Bool b
  | Flex_engine.Value.Int i -> Json.int i
  | Flex_engine.Value.Float f -> Json.num f
  | Flex_engine.Value.String s -> Json.str s
