(** Event-driven TCP front end: a single readiness loop over nonblocking
    sockets feeding a bounded worker pool.

    The thread-per-connection front end ({!Server.listen}) spends an OS
    thread — and under load, a context switch per request — on every
    analyst. With replay/derivation answering warm queries in microseconds,
    that connection layer is the bottleneck. The reactor replaces it:

    - {b one reactor thread} multiplexes every connection with
      [Unix.select]: it accepts, reads, frames line-delimited requests
      incrementally (no [in_channel], no blocking reads), and writes
      queued responses when sockets are ready — a slow reader never
      blocks anything but its own connection;
    - {b a bounded worker pool} ({!Workers}) runs {!Server.handle}.
      Requests from one connection execute serially (pipelined requests
      are answered in order and session state never races); requests from
      different connections run concurrently;
    - {b admission control}: when the worker queue is full the next
      framed request is answered [Rejected {bucket = "overload"}] without
      being parsed, executed, or charged — load shedding with a typed
      reply, audit-logged via {!Server.log_overload}. Connections beyond
      [max_connections] are refused the same way at accept. Per-analyst
      token-bucket rate limits live one layer down, in
      {!Server.config.rate_limit_qps};
    - {b backpressure}: a connection with [max_pipeline] framed requests
      waiting, or [max_output_bytes] of unread responses, is simply not
      read from until it drains — the kernel's TCP window pushes back on
      the client, and server memory stays bounded;
    - {b idle sweep}: connections silent for [idle_timeout] seconds are
      closed (half-open peers, slowloris partial frames, dead clients) —
      no fd outlives its usefulness.

    The privacy-critical ordering is untouched: charge → journal →
    respond all happen inside {!Server.handle} on a worker thread exactly
    as they do on the blocking path; the reactor only moves bytes.

    Accepted sockets get [TCP_NODELAY]. The loop is built on
    [Unix.select], so [max_connections] must stay well under [FD_SETSIZE]
    (1024 on Linux); the default cap is 900. *)

type config = {
  workers : int;  (** worker threads executing requests (default 4) *)
  max_pending : int;
      (** worker-queue capacity: framed requests admitted but not yet
          executing; beyond it, requests are shed (default 256) *)
  max_connections : int;
      (** connection cap; an accept beyond it is answered with an
          overload rejection and closed (default 900 — select limit) *)
  idle_timeout : float;
      (** seconds of silence before a connection is reaped; 0 disables
          (default 300) *)
  max_line_bytes : int;
      (** frame cap: a longer request line is answered with an error and
          the connection closed (default 1 MiB) *)
  max_pipeline : int;
      (** per-connection framed-but-unserved request cap before the
          reactor stops reading that socket (default 64) *)
  max_output_bytes : int;
      (** per-connection unread-response cap before the reactor stops
          serving that connection's queue (default 1 MiB) *)
}

val default_config : config

type t

val listen : ?backlog:int -> ?port:int -> ?config:config -> Server.t -> t
(** Bind 127.0.0.1 (port 0 — the default — picks an ephemeral one), spawn
    the worker pool, and register [flex_connections_open],
    [flex_requests_inflight] and [flex_overload_rejections_total] on the
    server's metrics registry (when telemetry is on). The loop itself
    starts with {!start} or {!run}. *)

val port : t -> int

val run : t -> unit
(** The readiness loop, in the calling thread; returns after {!stop}. *)

val start : t -> Thread.t
(** {!run} on a background thread. *)

val stop : t -> unit
(** Stop accepting and reading, let in-flight requests finish and their
    responses flush (bounded by a few seconds), then close every
    connection and join the loop and the workers. The ledger is quiescent
    when this returns. Idempotent. *)

type stats = {
  connections_open : int;
  accepted_total : int;
  shed_total : int;  (** requests answered with the overload rejection *)
  conn_refused_total : int;  (** accepts turned away at [max_connections] *)
  idle_closed_total : int;  (** connections reaped by the idle sweep *)
  requests_inflight : int;  (** admitted to the worker pool, not yet done *)
}

val stats : t -> stats
