type stats = { submitted : int; rejected : int; completed : int }

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  n_workers : int;
  queue_capacity : int;
  mutable running : bool;
  mutable inflight : int;  (* queued + executing *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable threads : Thread.t list;
}

let worker_loop t =
  let continue = ref true in
  Mutex.lock t.lock;
  while !continue do
    match Queue.take_opt t.jobs with
    | Some job ->
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      Mutex.lock t.lock;
      t.inflight <- t.inflight - 1;
      t.completed <- t.completed + 1
    | None ->
      if not t.running then continue := false
      else Condition.wait t.nonempty t.lock
  done;
  Mutex.unlock t.lock

let create ?name:_ ~workers ~capacity () =
  if workers < 1 then invalid_arg "Workers.create: workers must be >= 1";
  if capacity < 1 then invalid_arg "Workers.create: capacity must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      n_workers = workers;
      queue_capacity = capacity;
      running = true;
      inflight = 0;
      submitted = 0;
      rejected = 0;
      completed = 0;
      threads = [];
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create worker_loop t);
  t

let workers t = t.n_workers
let capacity t = t.queue_capacity

let try_submit t job =
  Mutex.lock t.lock;
  if (not t.running) || Queue.length t.jobs >= t.queue_capacity then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.lock;
    false
  end
  else begin
    Queue.push job t.jobs;
    t.inflight <- t.inflight + 1;
    t.submitted <- t.submitted + 1;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock;
    true
  end

let inflight t = Mutex.protect t.lock (fun () -> t.inflight)

let stats t =
  Mutex.protect t.lock (fun () ->
      { submitted = t.submitted; rejected = t.rejected; completed = t.completed })

let shutdown t =
  let to_join =
    Mutex.protect t.lock (fun () ->
        t.running <- false;
        Condition.broadcast t.nonempty;
        let ths = t.threads in
        t.threads <- [];
        ths)
  in
  List.iter Thread.join to_join
