module Ast = Flex_sql.Ast
module Sens = Flex_dp.Sens
module Smooth = Flex_dp.Smooth
module Rng = Flex_dp.Rng
module Budget = Flex_dp.Budget
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Task_pool = Flex_engine.Task_pool

(** The FLEX mechanism (paper §4, Definition 7): parse the query, compute
    its elastic sensitivity from precomputed metrics, execute the unmodified
    query on the underlying database, smooth the sensitivity, and perturb
    each aggregate output cell with Laplace noise of scale 2S/epsilon.
    Theorem 2: the release is (epsilon, delta)-differentially private. *)

(** [`Smooth] is Definition 7. [`Elastic_k0] uses the elastic sensitivity at
    distance 0 without the smooth-sensitivity maximisation — the error
    magnitudes the paper reports in §5 are only attainable this way; see
    EXPERIMENTS.md. Only [`Smooth] carries the (epsilon, delta)-DP proof. *)
type smoothing = [ `Smooth | `Elastic_k0 ]

(** [`Laplace] is Definition 7: (epsilon, delta)-DP with scale 2S/epsilon.
    [`Cauchy] is Nissim et al.'s pure epsilon-DP variant: beta = epsilon/6,
    scale 6S/epsilon, heavy tails; delta is ignored. *)
type noise = [ `Laplace | `Cauchy ]

type options = private {
  epsilon : float;
  delta : float;
  public_optimization : bool;  (** §3.6 toggle, benchmarked in Fig 7 *)
  unique_optimization : bool;  (** schema-enforced key uniqueness *)
  enumerate_bins : bool;  (** §4 histogram bin enumeration *)
  round_counts : bool;  (** round released counts to integers *)
  cross_joins : bool;  (** bounded-DP cross-join extension (default off) *)
  smoothing : smoothing;
  noise : noise;
}

val options :
  ?public_optimization:bool ->
  ?unique_optimization:bool ->
  ?enumerate_bins:bool ->
  ?round_counts:bool ->
  ?cross_joins:bool ->
  ?smoothing:smoothing ->
  ?noise:noise ->
  epsilon:float ->
  delta:float ->
  unit ->
  options
(** @raise Invalid_argument unless [epsilon > 0] and [delta] is in (0, 1). *)

val delta_for_size : int -> float
(** [n^(-ln n)], the delta used throughout the paper's evaluation. *)

type column_release = {
  name : string;
  kind : Elastic.column_kind;
  elastic : Sens.t;  (** elastic sensitivity as a function of k *)
  smooth : Smooth.result;  (** smoothed bound S and its argmax *)
  noise_scale : float;  (** 2S/epsilon *)
}

type release = {
  noisy : Executor.result_set;  (** what the analyst sees *)
  true_result : Executor.result_set;  (** sensitive; for experiments only *)
  analysis : Elastic.analysis;
  column_releases : column_release list;
  epsilon : float;
  delta : float;
  bins_enumerated : bool;
}

(** {2 Staged, re-entrant pipeline}

    The FLEX mechanism split at its natural joints, for long-lived services:
    each stage is a pure function of its arguments (plus the per-call [rng]
    in {!perturb}), so concurrent sessions can interleave stages freely, a
    server can time them separately (the Table 2 breakdown), and the
    analysis stage — which depends only on the query, the metrics and the
    option flags — can be memoized across requests. *)

val analyze_ast :
  ?span:Flex_obs.Span.t ->
  options:options ->
  metrics:Metrics.t ->
  Ast.query ->
  (Elastic.analysis, Errors.reason) result
(** Stage 1: elastic-sensitivity analysis of an already-parsed query. The
    cacheable prefix (key on canonical AST + metrics fingerprint +
    option flags). Every stage takes an optional parent [span] and times
    itself as a child ("analysis"/"smooth"/"execute"/"perturb"); [None]
    (the default) records nothing. *)

val smooth_columns :
  ?span:Flex_obs.Span.t -> options:options -> Elastic.analysis -> column_release list
(** Stage 2: smooth-sensitivity maximisation per aggregate column; depends
    on the request's epsilon/delta, so it runs per request. *)

val execute :
  ?span:Flex_obs.Span.t ->
  ?pool:Task_pool.t ->
  ?optimize:bool ->
  ?metrics:Metrics.t ->
  db:Database.t ->
  Ast.query ->
  (Executor.result_set, Errors.reason) result
(** Stage 3: the unmodified query on the underlying database, engine
    exceptions mapped to typed reasons. [pool] dispatches execution onto the
    engine's morsel-parallel operators; results are identical either way.
    [~optimize:true] (default false) routes execution through
    {!Optimizer.rewrite}, with [?metrics] doubling as cardinality statistics
    (paper §3.4). The privacy analysis never sees the rewritten plan: result
    multisets are identical up to floating-point rounding, so releases differ
    at most in row order — except float SUM/AVG, whose accumulation order
    join reorder and build-side swaps can re-associate, shifting low-order
    bits (well inside the noise scale). *)

val perturb :
  ?span:Flex_obs.Span.t ->
  rng:Rng.t ->
  options:options ->
  metrics:Metrics.t ->
  db:Database.t ->
  analysis:Elastic.analysis ->
  column_releases:column_release list ->
  Executor.result_set ->
  release
(** Stage 4: histogram bin enumeration (§4) plus Laplace/Cauchy noise on
    every aggregate cell. *)

val post_process :
  Flex_sql.Factor.suffix ->
  columns:string list ->
  Flex_engine.Value.t array list ->
  Executor.result_set
(** Stage 5 — the materialized-view read path: evaluate a post-processing
    suffix ({!Flex_sql.Factor}) over the rows of a stored noisy release whose
    columns are [columns] ([_k0..]/[_a0..]). HAVING filters the noisy cells
    under 3-valued logic, ORDER BY sorts with the engine's [Value.compare]
    total order (stable; positional/alias references were already resolved by
    the factoring), OFFSET/LIMIT slice, and the projection expressions are
    evaluated through the engine's own compiler, so arithmetic over released
    aggregates matches execution semantics bit for bit. Touches no database,
    no RNG and no budget: by the post-processing theorem the result costs
    epsilon = delta = 0 beyond what the core already paid. *)

val run :
  ?budget:Budget.t ->
  ?pool:Task_pool.t ->
  ?optimize:bool ->
  rng:Rng.t ->
  options:options ->
  db:Database.t ->
  metrics:Metrics.t ->
  Ast.query ->
  (release, Errors.reason) result
(** Execute one query end to end. When [budget] is given, it is charged
    [epsilon * aggregate-columns] before anything is released; [pool] is
    passed through to {!execute}.
    @raise Budget.Exhausted when the budget cannot afford the query. *)

val run_sql :
  ?budget:Budget.t ->
  ?pool:Task_pool.t ->
  ?optimize:bool ->
  rng:Rng.t ->
  options:options ->
  db:Database.t ->
  metrics:Metrics.t ->
  string ->
  (release, Errors.reason) result

val analyze_only :
  options:options ->
  metrics:Metrics.t ->
  string ->
  (Elastic.analysis * (string * Sens.t * Smooth.result) list, Errors.reason) result
(** The sensitivity computation without touching any database — what the
    paper's Table 2 times as "Elastic Sensitivity Analysis". *)

(** {2 Propose-test-release (paper §6)} *)

type ptr_release = {
  outcome : Flex_dp.Ptr.outcome;
  proposed_sensitivity : float;
  distance_bound : int;  (** elastic lower bound on distance to instability *)
  true_value : float;  (** sensitive; for experiments only *)
}

val run_ptr :
  rng:Rng.t ->
  options:options ->
  db:Database.t ->
  metrics:Metrics.t ->
  proposed_sensitivity:float ->
  string ->
  (ptr_release, Errors.reason) result
(** (epsilon, delta)-DP release of a scalar counting query at a *proposed*
    sensitivity: the elastic sensitivity function supplies the distance
    bound PTR tests. Far less noise than the smooth bound when the proposal
    comfortably exceeds ES(0); refuses when the database is too close to one
    where the proposal is unsound. *)

val confidence_intervals :
  ?alpha:float -> options:options -> release -> (string * float) list
(** Per-aggregate-column two-sided (1 - alpha) noise half-widths (default
    95%), computable without the true results. *)

val median_relative_error : release -> float option
(** Median percent error of the noisy result against the true result over
    all aggregate cells (the §5.2 utility metric); enumerated bins compare
    against a true count of 0. *)
