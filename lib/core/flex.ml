module Ast = Flex_sql.Ast
module Sens = Flex_dp.Sens
module Smooth = Flex_dp.Smooth
module Laplace = Flex_dp.Laplace
module Rng = Flex_dp.Rng
module Budget = Flex_dp.Budget
module Value = Flex_engine.Value
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Task_pool = Flex_engine.Task_pool
module Span = Flex_obs.Span

(* The FLEX mechanism (paper §4, Definition 7): parse the query, compute its
   elastic sensitivity from precomputed metrics, execute the *unmodified*
   query on the underlying database, smooth the sensitivity, and perturb each
   aggregate output cell with Laplace noise of scale 2S/epsilon. *)

(* [`Smooth] is Definition 7 — the provably (epsilon, delta)-DP mechanism.
   [`Elastic_k0] skips the smooth-sensitivity maximisation and uses the
   elastic sensitivity at distance 0 directly; the error magnitudes the
   paper reports in §5 are only attainable this way (any k-growing
   sensitivity smoothed with beta = eps/2ln(2/delta) is at least 1/(e*beta)),
   so the experiment harness can opt into it for comparison. *)
type smoothing = [ `Smooth | `Elastic_k0 ]

(* [`Laplace] is Definition 7 ((epsilon, delta)-DP). [`Cauchy] is the pure
   epsilon-DP variant of Nissim et al.: beta = epsilon/6 and noise scale
   6S/epsilon, at the cost of heavy tails; delta is ignored. *)
type noise = [ `Laplace | `Cauchy ]

type options = {
  epsilon : float;
  delta : float;
  public_optimization : bool; (* §3.6 toggle, benchmarked in Fig 7 *)
  unique_optimization : bool; (* schema-enforced key uniqueness: mf_k = 1 *)
  enumerate_bins : bool; (* §4 histogram bin enumeration *)
  round_counts : bool; (* round released counts to integers *)
  cross_joins : bool; (* bounded-DP cross-join extension (off: paper behaviour) *)
  smoothing : smoothing;
  noise : noise;
}

let options ?(public_optimization = true) ?(unique_optimization = true)
    ?(enumerate_bins = true) ?(round_counts = false) ?(cross_joins = false)
    ?(smoothing = `Smooth) ?(noise = `Laplace) ~epsilon ~delta () =
  if epsilon <= 0.0 then invalid_arg "Flex.options: epsilon must be positive";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Flex.options: delta in (0,1)";
  {
    epsilon;
    delta;
    public_optimization;
    unique_optimization;
    enumerate_bins;
    round_counts;
    cross_joins;
    smoothing;
    noise;
  }

(* delta = n^(-ln n), the setting used throughout the paper's evaluation
   (following Dwork and Lei). *)
let delta_for_size n =
  let n = float_of_int (max n 3) in
  Float.pow n (-.log n)

type column_release = {
  name : string;
  kind : Elastic.column_kind;
  elastic : Sens.t; (* elastic sensitivity as a function of k *)
  smooth : Smooth.result; (* smoothed bound S and its argmax *)
  noise_scale : float; (* 2S/epsilon *)
}

type release = {
  noisy : Executor.result_set;
  true_result : Executor.result_set;
  analysis : Elastic.analysis;
  column_releases : column_release list;
  epsilon : float;
  delta : float;
  bins_enumerated : bool;
}

let catalog_of_options opts metrics =
  Elastic.catalog_of_metrics ~public_optimization:opts.public_optimization
    ~unique_optimization:opts.unique_optimization ~cross_joins:opts.cross_joins
    metrics

(* The smoothing parameter depends on the noise family. *)
let beta_of opts =
  match opts.noise with
  | `Laplace -> Smooth.beta ~epsilon:opts.epsilon ~delta:opts.delta
  | `Cauchy -> Flex_dp.Cauchy.beta ~epsilon:opts.epsilon

let scale_of opts smooth =
  match opts.noise with
  | `Laplace -> Smooth.noise_scale ~epsilon:opts.epsilon smooth
  | `Cauchy -> Flex_dp.Cauchy.noise_scale ~epsilon:opts.epsilon smooth.Smooth.smooth_bound

let sample_noise opts rng ~scale =
  match opts.noise with
  | `Laplace -> Laplace.sample rng ~scale
  | `Cauchy -> Flex_dp.Cauchy.sample rng ~scale

(* Smoothed bound per the configured mode. *)
let smooth_of opts ~beta ~n sens =
  match opts.smoothing with
  | `Smooth -> Smooth.of_sens ~beta ~n sens
  | `Elastic_k0 ->
    { Smooth.smooth_bound = Sens.eval sens 0; argmax_k = 0; beta; scanned = 1 }

(* Noise one released cell. NULL cells pass through (e.g. empty-group SUM). *)
let perturb_cell opts rng ~scale ~round v =
  match Value.to_float v with
  | None -> v
  | Some f ->
    let noisy = f +. sample_noise opts rng ~scale in
    if round then Value.Int (int_of_float (Float.round noisy)) else Value.Float noisy

(* --- staged, re-entrant entry points -----------------------------------------
   The FLEX pipeline split at its natural joints so a long-lived service can
   drive (and time, Table 2) each stage separately, cache the analysis stage
   across requests, and interleave requests from concurrent sessions: every
   stage is a pure function of its arguments plus the per-call [rng]. *)

(* Stage 1 — elastic-sensitivity analysis. Depends only on the query, the
   metrics and the option flags: the cacheable prefix of the pipeline.
   [span] is the enclosing trace span (the service's cache-lookup span, so a
   cache hit shows no "analysis" child at all). *)
let analyze_ast ?span ~options:opts ~metrics (q : Ast.query) :
    (Elastic.analysis, Errors.reason) result =
  Span.timed span "analysis" (fun _ -> Elastic.analyze (catalog_of_options opts metrics) q)

(* Stage 2 — smooth-sensitivity maximisation per aggregate column. Cheap, but
   depends on the request's epsilon/delta, so it stays outside the cache. *)
let smooth_columns ?span ~options:opts (analysis : Elastic.analysis) : column_release list =
  Span.timed span "smooth" (fun _ ->
      let beta = beta_of opts in
      List.filter_map
        (function
          | Elastic.Group_key_col _ -> None
          | Elastic.Aggregate_col { kind; sens; name } ->
            let smooth = smooth_of opts ~beta ~n:analysis.Elastic.database_rows sens in
            Some { name; kind; elastic = sens; smooth; noise_scale = scale_of opts smooth })
        analysis.Elastic.columns)

(* Stage 3 — run the unmodified query on the database; [pool] dispatches
   execution onto the engine's morsel-parallel operators. Under a span the
   optimizer rewrite and the engine run appear as separate children. *)
let execute ?span ?pool ?(optimize = false) ?metrics ~db (q : Ast.query) :
    (Executor.result_set, Errors.reason) result =
  Span.timed span "execute" (fun sp ->
      match
        if optimize then begin
          let p = Span.timed sp "optimize" (fun _ -> Flex_engine.Optimizer.plan ?metrics q) in
          Span.timed sp "run" (fun _ -> Executor.run_plan ?pool db p)
        end
        else Span.timed sp "run" (fun _ -> Executor.run ?pool db q)
      with
      | true_result -> Ok true_result
      | exception Executor.Error m -> Error (Errors.Analysis_error ("execution: " ^ m))
      | exception Flex_engine.Eval.Error m ->
        Error (Errors.Analysis_error ("evaluation: " ^ m))
      | exception Flex_engine.Aggregate.Error m ->
        Error (Errors.Analysis_error ("aggregation: " ^ m)))

(* Stage 4 — histogram bin enumeration plus per-cell noise. *)
let perturb ?span ~rng ~options:opts ~metrics ~db ~analysis ~column_releases true_result :
    release =
  Span.timed span "perturb" @@ fun _ ->
  let cat = catalog_of_options opts metrics in
  let enumerated, bins_enumerated =
    if opts.enumerate_bins && analysis.Elastic.is_histogram then
      match Histogram.enumerate cat db analysis true_result with
      | Some r -> (r, true)
      | None -> (true_result, false)
    else (true_result, false)
  in
  (* map column name -> noise scale, aligned by position *)
  let scales = Array.make (List.length analysis.Elastic.columns) None in
  List.iteri
    (fun i spec ->
      match spec with
      | Elastic.Group_key_col _ -> ()
      | Elastic.Aggregate_col { name; _ } ->
        let release = List.find (fun r -> r.name = name) column_releases in
        scales.(i) <- Some release.noise_scale)
    analysis.Elastic.columns;
  let noisy_rows =
    List.map
      (fun row ->
        Array.mapi
          (fun i v ->
            if i < Array.length scales then
              match scales.(i) with
              | Some scale -> perturb_cell opts rng ~scale ~round:opts.round_counts v
              | None -> v
            else v)
          row)
      enumerated.rows
  in
  {
    noisy = { enumerated with rows = noisy_rows };
    true_result;
    analysis;
    column_releases;
    epsilon = opts.epsilon;
    delta = opts.delta;
    bins_enumerated;
  }

(* Stage 5 — post-processing over a stored noisy release: the materialized-
   view read path. The released histogram is public once paid for, so the
   suffix {!Flex_sql.Factor} split off — HAVING over the noisy cells, ORDER
   BY/LIMIT, projection arithmetic — evaluates here without touching the
   database, the RNG or any budget. Expressions compile through the engine's
   own evaluator ({!Flex_engine.Compiled} over {!Flex_engine.Eval}), so
   arithmetic, 3-valued logic and the ORDER BY total order (Value.compare,
   NULL first, stable via index tiebreak) are exactly the execution
   semantics. *)
let post_process (sx : Flex_sql.Factor.suffix) ~(columns : string list)
    (rows : Value.t array list) : Executor.result_set =
  let headers =
    Array.of_list
      (List.map (fun name -> { Flex_engine.Compiled.alias = None; name }) columns)
  in
  let subquery : Flex_engine.Compiled.subquery =
   fun _ _ -> raise (Flex_engine.Compiled.Error "subquery in post-processing suffix")
  in
  let compile e = Flex_engine.Compiled.compile ~subquery ~headers ~outer:[] e in
  let kept =
    match sx.Flex_sql.Factor.having with
    | None -> rows
    | Some h ->
      let f = compile h in
      List.filter (fun r -> Flex_engine.Eval.is_truthy (f r)) rows
  in
  let kept = Array.of_list kept in
  let order =
    match sx.Flex_sql.Factor.order_by with
    | [] -> Array.init (Array.length kept) Fun.id
    | keys ->
      let cols =
        List.map (fun (e, dir) -> (Array.map (compile e) kept, dir)) keys
      in
      let idx = Array.init (Array.length kept) Fun.id in
      let cmp a b =
        let rec go = function
          | [] -> compare (a : int) b
          | (col, dir) :: rest ->
            let c = Value.compare col.(a) col.(b) in
            let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go rest
        in
        go cols
      in
      Array.sort cmp idx;
      idx
  in
  let off = max 0 (Option.value sx.Flex_sql.Factor.offset ~default:0) in
  let take =
    let avail = max 0 (Array.length order - off) in
    match sx.Flex_sql.Factor.limit with
    | None -> avail
    | Some l -> min avail (max 0 l)
  in
  let out_fns =
    Array.of_list (List.map (fun (e, _) -> compile e) sx.Flex_sql.Factor.outputs)
  in
  let out_rows =
    List.init take (fun k ->
        let r = kept.(order.(off + k)) in
        Array.map (fun f -> f r) out_fns)
  in
  { Executor.columns = List.map snd sx.Flex_sql.Factor.outputs; rows = out_rows }

let run ?budget ?pool ?optimize ~rng ~options:opts ~db ~metrics (q : Ast.query) :
    (release, Errors.reason) result =
  match analyze_ast ~options:opts ~metrics q with
  | Error r -> Error r
  | Ok analysis -> (
    match execute ?pool ?optimize ~metrics ~db q with
    | Error r -> Error r
    | Ok true_result ->
      let column_releases = smooth_columns ~options:opts analysis in
      (* charge the budget before releasing anything: each aggregate column
         is a separate (epsilon, delta) mechanism under basic composition *)
      let n_aggs = List.length column_releases in
      (match budget with
      | Some b ->
        Budget.charge b ~label:"flex-query"
          ~epsilon:(opts.epsilon *. float_of_int n_aggs)
          ~delta:(opts.delta *. float_of_int n_aggs)
      | None -> ());
      Ok (perturb ~rng ~options:opts ~metrics ~db ~analysis ~column_releases true_result))

let run_sql ?budget ?pool ?optimize ~rng ~options ~db ~metrics sql =
  match Flex_sql.Parser.parse sql with
  | Error e -> Error (Errors.Parse_error e)
  | Ok q -> run ?budget ?pool ?optimize ~rng ~options ~db ~metrics q

(* Analysis-only entry point: what the paper's Table 2 times as "Elastic
   Sensitivity Analysis". Returns the smooth bound for each aggregate
   column without touching the database. *)
let analyze_only ~options:opts ~metrics sql =
  let cat = catalog_of_options opts metrics in
  match Elastic.analyze_sql cat sql with
  | Error r -> Error r
  | Ok analysis ->
    let beta = beta_of opts in
    let bounds =
      List.filter_map
        (function
          | Elastic.Group_key_col _ -> None
          | Elastic.Aggregate_col { name; sens; _ } ->
            let smooth = smooth_of opts ~beta ~n:analysis.Elastic.database_rows sens in
            Some (name, sens, smooth))
        analysis.Elastic.columns
    in
    Ok (analysis, bounds)

(* Propose-test-release (paper §6): instead of smoothing, propose a fixed
   sensitivity [proposed] and release the (scalar) count with Lap-noise of
   scale proposed/(eps/2) only when the elastic-sensitivity-derived distance
   to instability noisily clears ln(1/delta)/(eps/2). Offers much lower
   noise than the smooth bound when the proposal comfortably exceeds ES(0),
   at the price of possible refusal. *)
type ptr_release = {
  outcome : Flex_dp.Ptr.outcome;
  proposed_sensitivity : float;
  distance_bound : int;
  true_value : float; (* sensitive; for experiments only *)
}

let run_ptr ~rng ~options:opts ~db ~metrics ~proposed_sensitivity sql :
    (ptr_release, Errors.reason) result =
  let cat = catalog_of_options opts metrics in
  match Elastic.analyze_sql cat sql with
  | Error r -> Error r
  | Ok analysis -> (
    match analysis.Elastic.columns with
    | [ Elastic.Aggregate_col { sens; _ } ] -> (
      match Executor.run_sql db sql with
      | Error m -> Error (Errors.Analysis_error m)
      | Ok { rows = [ [| v |] ]; _ } ->
        let true_value = Option.value ~default:0.0 (Value.to_float v) in
        let es k = Sens.eval sens k in
        let distance_bound =
          Flex_dp.Ptr.distance_bound ~sensitivity:proposed_sensitivity es
        in
        let outcome =
          Flex_dp.Ptr.release rng ~epsilon:opts.epsilon ~delta:opts.delta
            ~sensitivity:proposed_sensitivity es true_value
        in
        Ok { outcome; proposed_sensitivity; distance_bound; true_value }
      | Ok _ ->
        Error (Errors.Analysis_error "propose-test-release needs a scalar aggregate"))
    | _ ->
      Error
        (Errors.Analysis_error
           "propose-test-release supports single-aggregate scalar queries"))

(* Two-sided (1 - alpha) confidence half-width for each released aggregate
   column: P(|noise| <= width) = 1 - alpha under the noise distribution the
   release used. Lets analysts judge utility without access to the truth. *)
let confidence_intervals ?(alpha = 0.05) ~options:(opts : options) (r : release) :
    (string * float) list =
  List.map
    (fun c ->
      let width =
        match opts.noise with
        | `Laplace -> Laplace.confidence_width ~scale:c.noise_scale ~alpha
        | `Cauchy -> Flex_dp.Cauchy.confidence_width ~scale:c.noise_scale ~alpha
      in
      (c.name, width))
    r.column_releases

(* Median relative error (percent) of the noisy result against the true
   result over all aggregate cells — the utility metric of §5.2. *)
let median_relative_error (r : release) =
  let scales_positions =
    List.mapi (fun i spec -> (i, spec)) r.analysis.Elastic.columns
    |> List.filter_map (fun (i, spec) ->
         match spec with
         | Elastic.Aggregate_col _ -> Some i
         | Elastic.Group_key_col _ -> None)
  in
  (* align noisy and true rows by group keys (noisy may have extra bins) *)
  let key_positions =
    List.mapi (fun i spec -> (i, spec)) r.analysis.Elastic.columns
    |> List.filter_map (fun (i, spec) ->
         match spec with
         | Elastic.Group_key_col _ -> Some i
         | Elastic.Aggregate_col _ -> None)
  in
  let true_by_key = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) key_positions in
      Hashtbl.replace true_by_key key row)
    r.true_result.rows;
  let errors = ref [] in
  List.iter
    (fun noisy_row ->
      let key = List.map (fun i -> noisy_row.(i)) key_positions in
      match Hashtbl.find_opt true_by_key key with
      | None ->
        (* an enumerated padding bin with true count 0: relative error is
           undefined there, and the paper's §5.2 metric is computed over the
           query's true cells, so padding bins are skipped *)
        ()
      | Some true_row ->
        List.iter
          (fun i ->
            let truth = Option.value ~default:0.0 (Value.to_float true_row.(i)) in
            match Value.to_float noisy_row.(i) with
            | None -> ()
            | Some noisy ->
              let err =
                if truth = 0.0 then if noisy = 0.0 then 0.0 else infinity
                else Float.abs (noisy -. truth) /. Float.abs truth *. 100.0
              in
              errors := err :: !errors)
          scales_positions)
    r.noisy.rows;
  match List.sort compare !errors with
  | [] -> None
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    Some (if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)
