(* Canonical relation naming for cache keys. Walks the query once, assigning
   positional names to every relation binding (FROM items) and CTE, and
   rewriting column qualifiers through a scope chain. Purely syntactic: no
   schema knowledge, no expression normalisation, so distinct queries cannot
   be conflated — only renamings of the same query are. *)

type state = { mutable next_rel : int; mutable next_cte : int }

(* A scope chain: [rels] maps visible binding names (aliases, or table names
   when unaliased) to canonical names and applies to column qualifiers;
   [ctes] maps CTE names to canonical names and applies to table names in
   FROM. Innermost bindings first, so shadowing resolves correctly. *)
type env = { rels : (string * string) list; ctes : (string * string) list }

let empty_env = { rels = []; ctes = [] }

let fresh_rel st =
  st.next_rel <- st.next_rel + 1;
  Printf.sprintf "_r%d" st.next_rel

let fresh_cte st =
  st.next_cte <- st.next_cte + 1;
  Printf.sprintf "_w%d" st.next_cte

let rename env name =
  match List.assoc_opt name env.rels with Some c -> c | None -> name

let rename_table env name =
  match List.assoc_opt name env.ctes with Some c -> c | None -> name

let rename_col env (c : Ast.col_ref) =
  match c.Ast.table with
  | None -> c
  | Some t -> { c with Ast.table = Some (rename env t) }

let rec expr st env (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Lit _ -> e
  | Ast.Col c -> Ast.Col (rename_col env c)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, expr st env a, expr st env b)
  | Ast.Unop (op, a) -> Ast.Unop (op, expr st env a)
  | Ast.Agg { func; distinct; arg } ->
    let arg = match arg with Ast.Star -> Ast.Star | Ast.Arg a -> Ast.Arg (expr st env a) in
    Ast.Agg { func; distinct; arg }
  | Ast.Func (name, args) -> Ast.Func (name, List.map (expr st env) args)
  | Ast.Case { operand; branches; else_ } ->
    Ast.Case
      {
        operand = Option.map (expr st env) operand;
        branches = List.map (fun (c, v) -> (expr st env c, expr st env v)) branches;
        else_ = Option.map (expr st env) else_;
      }
  | Ast.In { subject; negated; set } ->
    let set =
      match set with
      | Ast.In_list es -> Ast.In_list (List.map (expr st env) es)
      | Ast.In_query q -> Ast.In_query (query st env q)
    in
    Ast.In { subject = expr st env subject; negated; set }
  | Ast.Between { subject; negated; lo; hi } ->
    Ast.Between
      { subject = expr st env subject; negated; lo = expr st env lo; hi = expr st env hi }
  | Ast.Like { subject; negated; pattern } ->
    Ast.Like { subject = expr st env subject; negated; pattern = expr st env pattern }
  | Ast.Is_null { subject; negated } -> Ast.Is_null { subject = expr st env subject; negated }
  | Ast.Exists q -> Ast.Exists (query st env q)
  | Ast.Scalar_subquery q -> Ast.Scalar_subquery (query st env q)
  | Ast.Cast (a, ty) -> Ast.Cast (expr st env a, ty)

(* Canonicalize a FROM tree. Returns the rewritten tree plus the bindings it
   introduces (original name -> canonical name, in syntactic order); join ON
   conditions are rewritten against the enclosing scope extended with the
   bindings of both sides, which is exactly what they may reference. *)
and table_ref st env (t : Ast.table_ref) : Ast.table_ref * (string * string) list =
  match t with
  | Ast.Table { name; alias } ->
    let binding = match alias with Some a -> a | None -> name in
    let canon = fresh_rel st in
    (Ast.Table { name = rename_table env name; alias = Some canon }, [ (binding, canon) ])
  | Ast.Derived { query = q; alias } ->
    let q = query st env q in
    let canon = fresh_rel st in
    (Ast.Derived { query = q; alias = canon }, [ (alias, canon) ])
  | Ast.Join { kind; left; right; cond } ->
    let left, lb = table_ref st env left in
    let right, rb = table_ref st env right in
    let bindings = lb @ rb in
    let cond =
      match cond with
      | Ast.On e -> Ast.On (expr st { env with rels = bindings @ env.rels } e)
      | (Ast.Using _ | Ast.Natural | Ast.Cond_none) as c -> c
    in
    (Ast.Join { kind; left; right; cond }, bindings)

(* Canonicalize one SELECT core, returning the bindings its FROM introduces
   (the caller rewrites ORDER BY in that same scope). *)
and select st env (s : Ast.select) : Ast.select * (string * string) list =
  let from, bindings =
    List.fold_left
      (fun (items, bs) item ->
        let item, b = table_ref st env item in
        (item :: items, bs @ b))
      ([], []) s.Ast.from
  in
  let from = List.rev from in
  let env = { env with rels = bindings @ env.rels } in
  let projection = function
    | Ast.Proj_star -> Ast.Proj_star
    | Ast.Proj_table_star t -> Ast.Proj_table_star (rename env t)
    | Ast.Proj_expr (e, alias) -> Ast.Proj_expr (expr st env e, alias)
  in
  ( {
      Ast.distinct = s.Ast.distinct;
      projections = List.map projection s.Ast.projections;
      from;
      where = Option.map (expr st env) s.Ast.where;
      group_by = List.map (expr st env) s.Ast.group_by;
      having = Option.map (expr st env) s.Ast.having;
    },
    bindings )

and body st env (b : Ast.body) : Ast.body * (string * string) list =
  match b with
  | Ast.Select s ->
    let s, bindings = select st env s in
    (Ast.Select s, bindings)
  | Ast.Union { all; left; right } ->
    let left, _ = body st env left in
    let right, _ = body st env right in
    (Ast.Union { all; left; right }, [])
  | Ast.Except { all; left; right } ->
    let left, _ = body st env left in
    let right, _ = body st env right in
    (Ast.Except { all; left; right }, [])
  | Ast.Intersect { all; left; right } ->
    let left, _ = body st env left in
    let right, _ = body st env right in
    (Ast.Intersect { all; left; right }, [])

and query st env (q : Ast.query) : Ast.query =
  (* each CTE sees the ones declared before it; the body sees them all *)
  let ctes, env =
    List.fold_left
      (fun (acc, env) (c : Ast.cte) ->
        let cte_query = query st env c.Ast.cte_query in
        let canon = fresh_cte st in
        ( { Ast.cte_name = canon; cte_columns = c.Ast.cte_columns; cte_query } :: acc,
          { env with ctes = (c.Ast.cte_name, canon) :: env.ctes } ))
      ([], env) q.Ast.ctes
  in
  let ctes = List.rev ctes in
  let b, bindings = body st env q.Ast.body in
  (* ORDER BY resolves against the top select's FROM scope (set operations
     expose only output columns, so they contribute no bindings) *)
  let order_env = { env with rels = bindings @ env.rels } in
  {
    Ast.ctes;
    body = b;
    order_by = List.map (fun (e, dir) -> (expr st order_env e, dir)) q.Ast.order_by;
    limit = q.Ast.limit;
    offset = q.Ast.offset;
  }

let canonicalize (q : Ast.query) : Ast.query =
  query { next_rel = 0; next_cte = 0 } empty_env q

let cache_key q = Pretty.to_string (canonicalize q)
