type t =
  | IDENT of string (* unquoted identifier, normalised to lowercase *)
  | QIDENT of string (* "quoted" or `quoted` identifier, case preserved *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | KW of string (* reserved keyword, uppercased *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | CONCAT_OP (* || *)
  | EOF

type spanned = { tok : t; line : int; col : int }

(* Words with grammatical meaning; everything else (including aggregate
   function names) lexes as IDENT so it can still be used as a column name. *)
let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT"; "OFFSET";
    "AS"; "ON"; "USING"; "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER"; "CROSS";
    "NATURAL"; "AND"; "OR"; "NOT"; "NULL"; "TRUE"; "FALSE"; "DISTINCT"; "ALL";
    "UNION"; "EXCEPT"; "MINUS"; "INTERSECT"; "WITH"; "CASE"; "WHEN"; "THEN"; "ELSE";
    "END"; "IN"; "BETWEEN"; "LIKE"; "IS"; "EXISTS"; "CAST"; "ASC"; "DESC";
    "EXPLAIN";
  ]

let keyword_set =
  let tbl = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  tbl

let is_keyword upper = Hashtbl.mem keyword_set upper

let pp ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | QIDENT s -> Fmt.pf ppf "quoted identifier %S" s
  | INT_LIT i -> Fmt.pf ppf "integer %d" i
  | FLOAT_LIT f -> Fmt.pf ppf "float %g" f
  | STRING_LIT s -> Fmt.pf ppf "string %S" s
  | KW k -> Fmt.pf ppf "keyword %s" k
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | DOT -> Fmt.string ppf "'.'"
  | SEMI -> Fmt.string ppf "';'"
  | STAR -> Fmt.string ppf "'*'"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | SLASH -> Fmt.string ppf "'/'"
  | PERCENT -> Fmt.string ppf "'%'"
  | EQ -> Fmt.string ppf "'='"
  | NEQ -> Fmt.string ppf "'<>'"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | CONCAT_OP -> Fmt.string ppf "'||'"
  | EOF -> Fmt.string ppf "end of input"

let to_string t = Fmt.str "%a" pp t
