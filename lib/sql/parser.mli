(** Recursive-descent parser for the SQL subset of {!Ast}: SELECT cores with
    joins of every kind, WHERE/GROUP BY/HAVING, set operations with standard
    precedence (INTERSECT binds tighter), CTEs, derived tables, subquery
    predicates, CASE/IN/BETWEEN/LIKE/CAST, and ORDER BY/LIMIT/OFFSET. *)

exception Error of { message : string; line : int; col : int }

val parse : string -> (Ast.query, string) result
(** Parse one statement. Surrounding whitespace/comments and any number of
    trailing [;] are accepted — the forms a query service receives over the
    wire. The error string includes the source position. *)

val parse_exn : string -> Ast.query
(** @raise Error on malformed input. *)

val parse_statement : string -> (Ast.statement, string) result
(** Like {!parse}, additionally accepting a leading [EXPLAIN] keyword. *)

val parse_statement_exn : string -> Ast.statement
(** @raise Error on malformed input. *)

val parse_expr_exn : string -> Ast.expr
(** Parse a standalone scalar expression (used by tests and tools). *)
