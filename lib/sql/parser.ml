(* Recursive-descent parser for the SQL subset described in Ast. *)

exception Error of { message : string; line : int; col : int }

type p = { toks : Token.spanned array; mutable i : int }

let peek p = p.toks.(p.i).Token.tok

let peek_at p n =
  let j = p.i + n in
  if j < Array.length p.toks then p.toks.(j).Token.tok else Token.EOF

let here p =
  let s = p.toks.(p.i) in
  (s.Token.line, s.Token.col)

let fail p fmt =
  let line, col = here p in
  Fmt.kstr (fun message -> raise (Error { message; line; col })) fmt

let advance p = if p.i < Array.length p.toks - 1 then p.i <- p.i + 1

let eat p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let eat_kw p kw = eat p (Token.KW kw)

let expect p tok =
  if not (eat p tok) then
    fail p "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek p))

let expect_kw p kw = expect p (Token.KW kw)

let expect_ident p =
  match peek p with
  | Token.IDENT s | Token.QIDENT s ->
    advance p;
    s
  | t -> fail p "expected an identifier but found %s" (Token.to_string t)

(* A name usable as an alias: identifiers only (keywords are reserved). *)
let try_alias p ~allow_bare =
  if eat_kw p "AS" then Some (expect_ident p)
  else if allow_bare then
    match peek p with
    | Token.IDENT s | Token.QIDENT s ->
      advance p;
      Some s
    | _ -> None
  else None

let is_query_start p =
  match peek p with Token.KW ("SELECT" | "WITH") -> true | _ -> false

(* --- expressions ------------------------------------------------------- *)

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = parse_and p in
  if eat_kw p "OR" then Ast.Binop (Ast.Or, lhs, parse_or p) else lhs

and parse_and p =
  let lhs = parse_not p in
  if eat_kw p "AND" then Ast.Binop (Ast.And, lhs, parse_and p) else lhs

and parse_not p =
  if eat_kw p "NOT" then Ast.Unop (Ast.Not, parse_not p) else parse_comparison p

and parse_comparison p =
  let lhs = parse_additive p in
  let binop op =
    advance p;
    Ast.Binop (op, lhs, parse_additive p)
  in
  match peek p with
  | Token.EQ -> binop Ast.Eq
  | Token.NEQ -> binop Ast.Neq
  | Token.LT -> binop Ast.Lt
  | Token.LE -> binop Ast.Le
  | Token.GT -> binop Ast.Gt
  | Token.GE -> binop Ast.Ge
  | Token.KW "IS" ->
    advance p;
    let negated = eat_kw p "NOT" in
    expect_kw p "NULL";
    Ast.Is_null { subject = lhs; negated }
  | Token.KW "IN" ->
    advance p;
    parse_in p ~negated:false lhs
  | Token.KW "BETWEEN" ->
    advance p;
    parse_between p ~negated:false lhs
  | Token.KW "LIKE" ->
    advance p;
    Ast.Like { subject = lhs; negated = false; pattern = parse_additive p }
  | Token.KW "NOT" -> (
    advance p;
    match peek p with
    | Token.KW "IN" ->
      advance p;
      parse_in p ~negated:true lhs
    | Token.KW "BETWEEN" ->
      advance p;
      parse_between p ~negated:true lhs
    | Token.KW "LIKE" ->
      advance p;
      Ast.Like { subject = lhs; negated = true; pattern = parse_additive p }
    | t -> fail p "expected IN, BETWEEN or LIKE after NOT, found %s" (Token.to_string t))
  | _ -> lhs

and parse_in p ~negated subject =
  expect p Token.LPAREN;
  if is_query_start p then begin
    let q = parse_query p in
    expect p Token.RPAREN;
    Ast.In { subject; negated; set = Ast.In_query q }
  end
  else begin
    let rec items acc =
      let e = parse_expr p in
      if eat p Token.COMMA then items (e :: acc) else List.rev (e :: acc)
    in
    let es = items [] in
    expect p Token.RPAREN;
    Ast.In { subject; negated; set = Ast.In_list es }
  end

and parse_between p ~negated subject =
  let lo = parse_additive p in
  expect_kw p "AND";
  let hi = parse_additive p in
  Ast.Between { subject; negated; lo; hi }

and parse_additive p =
  let rec go lhs =
    match peek p with
    | Token.PLUS ->
      advance p;
      go (Ast.Binop (Ast.Add, lhs, parse_multiplicative p))
    | Token.MINUS ->
      advance p;
      go (Ast.Binop (Ast.Sub, lhs, parse_multiplicative p))
    | Token.CONCAT_OP ->
      advance p;
      go (Ast.Binop (Ast.Concat, lhs, parse_multiplicative p))
    | _ -> lhs
  in
  go (parse_multiplicative p)

and parse_multiplicative p =
  let rec go lhs =
    match peek p with
    | Token.STAR ->
      advance p;
      go (Ast.Binop (Ast.Mul, lhs, parse_unary p))
    | Token.SLASH ->
      advance p;
      go (Ast.Binop (Ast.Div, lhs, parse_unary p))
    | Token.PERCENT ->
      advance p;
      go (Ast.Binop (Ast.Mod, lhs, parse_unary p))
    | _ -> lhs
  in
  go (parse_unary p)

and parse_unary p =
  match peek p with
  | Token.MINUS ->
    advance p;
    Ast.Unop (Ast.Neg, parse_unary p)
  | Token.PLUS ->
    advance p;
    parse_unary p
  | _ -> parse_primary p

and parse_primary p =
  match peek p with
  | Token.INT_LIT i ->
    advance p;
    Ast.Lit (Ast.Int i)
  | Token.FLOAT_LIT f ->
    advance p;
    Ast.Lit (Ast.Float f)
  | Token.STRING_LIT s ->
    advance p;
    Ast.Lit (Ast.String s)
  | Token.KW "NULL" ->
    advance p;
    Ast.Lit Ast.Null
  | Token.KW "TRUE" ->
    advance p;
    Ast.Lit (Ast.Bool true)
  | Token.KW "FALSE" ->
    advance p;
    Ast.Lit (Ast.Bool false)
  | Token.KW "CASE" -> parse_case p
  | Token.KW "CAST" -> parse_cast p
  | Token.KW "EXISTS" ->
    advance p;
    expect p Token.LPAREN;
    let q = parse_query p in
    expect p Token.RPAREN;
    Ast.Exists q
  | Token.LPAREN ->
    advance p;
    if is_query_start p then begin
      let q = parse_query p in
      expect p Token.RPAREN;
      Ast.Scalar_subquery q
    end
    else begin
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
    end
  | Token.IDENT _ | Token.QIDENT _ -> parse_name_expr p
  | t -> fail p "expected an expression but found %s" (Token.to_string t)

and parse_case p =
  expect_kw p "CASE";
  let operand = if peek p = Token.KW "WHEN" then None else Some (parse_expr p) in
  let rec branches acc =
    if eat_kw p "WHEN" then begin
      let c = parse_expr p in
      expect_kw p "THEN";
      let v = parse_expr p in
      branches ((c, v) :: acc)
    end
    else List.rev acc
  in
  let branches = branches [] in
  if branches = [] then fail p "CASE requires at least one WHEN branch";
  let else_ = if eat_kw p "ELSE" then Some (parse_expr p) else None in
  expect_kw p "END";
  Ast.Case { operand; branches; else_ }

and parse_cast p =
  expect_kw p "CAST";
  expect p Token.LPAREN;
  let e = parse_expr p in
  expect_kw p "AS";
  let ty = parse_type_name p in
  expect p Token.RPAREN;
  Ast.Cast (e, ty)

and parse_type_name p =
  let base = expect_ident p in
  if eat p Token.LPAREN then begin
    let rec args acc =
      match peek p with
      | Token.INT_LIT i ->
        advance p;
        if eat p Token.COMMA then args (string_of_int i :: acc)
        else List.rev (string_of_int i :: acc)
      | t -> fail p "expected an integer in type arguments, found %s" (Token.to_string t)
    in
    let args = args [] in
    expect p Token.RPAREN;
    Fmt.str "%s(%s)" base (String.concat "," args)
  end
  else base

and parse_name_expr p =
  let name = expect_ident p in
  match peek p with
  | Token.LPAREN -> parse_call p name
  | Token.DOT ->
    advance p;
    let column = expect_ident p in
    Ast.Col { table = Some name; column }
  | _ -> Ast.Col { table = None; column = name }

and parse_call p name =
  expect p Token.LPAREN;
  match Ast.agg_func_of_name name with
  | Some func ->
    let distinct = eat_kw p "DISTINCT" in
    if eat p Token.STAR then begin
      expect p Token.RPAREN;
      if distinct then fail p "COUNT(DISTINCT *) is not valid SQL";
      Ast.Agg { func; distinct = false; arg = Ast.Star }
    end
    else begin
      let e = parse_expr p in
      expect p Token.RPAREN;
      Ast.Agg { func; distinct; arg = Ast.Arg e }
    end
  | None ->
    if eat p Token.RPAREN then Ast.Func (name, [])
    else begin
      let rec args acc =
        let e = parse_expr p in
        if eat p Token.COMMA then args (e :: acc) else List.rev (e :: acc)
      in
      let args = args [] in
      expect p Token.RPAREN;
      Ast.Func (name, args)
    end

(* --- table references --------------------------------------------------- *)

and parse_table_ref p =
  let rec joins lhs =
    match peek p with
    | Token.KW "CROSS" ->
      advance p;
      expect_kw p "JOIN";
      let rhs = parse_table_primary p in
      joins (Ast.Join { kind = Ast.Cross; left = lhs; right = rhs; cond = Ast.Cond_none })
    | Token.KW "NATURAL" ->
      advance p;
      let kind = parse_join_kind p in
      expect_kw p "JOIN";
      let rhs = parse_table_primary p in
      joins (Ast.Join { kind; left = lhs; right = rhs; cond = Ast.Natural })
    | Token.KW ("JOIN" | "INNER" | "LEFT" | "RIGHT" | "FULL") ->
      let kind = parse_join_kind p in
      expect_kw p "JOIN";
      let rhs = parse_table_primary p in
      let cond =
        if eat_kw p "ON" then Ast.On (parse_expr p)
        else if eat_kw p "USING" then begin
          expect p Token.LPAREN;
          let rec cols acc =
            let c = expect_ident p in
            if eat p Token.COMMA then cols (c :: acc) else List.rev (c :: acc)
          in
          let cols = cols [] in
          expect p Token.RPAREN;
          Ast.Using cols
        end
        else Ast.Cond_none
      in
      joins (Ast.Join { kind; left = lhs; right = rhs; cond })
    | _ -> lhs
  in
  joins (parse_table_primary p)

and parse_join_kind p =
  match peek p with
  | Token.KW "INNER" ->
    advance p;
    Ast.Inner
  | Token.KW "LEFT" ->
    advance p;
    ignore (eat_kw p "OUTER");
    Ast.Left
  | Token.KW "RIGHT" ->
    advance p;
    ignore (eat_kw p "OUTER");
    Ast.Right
  | Token.KW "FULL" ->
    advance p;
    ignore (eat_kw p "OUTER");
    Ast.Full
  | _ -> Ast.Inner

and parse_table_primary p =
  match peek p with
  | Token.LPAREN ->
    advance p;
    if is_query_start p then begin
      let q = parse_query p in
      expect p Token.RPAREN;
      let alias =
        match try_alias p ~allow_bare:true with Some a -> a | None -> "_subquery"
      in
      Ast.Derived { query = q; alias }
    end
    else begin
      let r = parse_table_ref p in
      expect p Token.RPAREN;
      r
    end
  | Token.IDENT _ | Token.QIDENT _ ->
    let name = expect_ident p in
    let name =
      (* schema-qualified table names: schema.table *)
      if peek p = Token.DOT then begin
        advance p;
        name ^ "." ^ expect_ident p
      end
      else name
    in
    let alias = try_alias p ~allow_bare:true in
    Ast.Table { name; alias }
  | t -> fail p "expected a table reference but found %s" (Token.to_string t)

(* --- select cores and set operations ------------------------------------ *)

and parse_projection p =
  match peek p with
  | Token.STAR ->
    advance p;
    Ast.Proj_star
  | (Token.IDENT t | Token.QIDENT t)
    when peek_at p 1 = Token.DOT && peek_at p 2 = Token.STAR ->
    advance p;
    advance p;
    advance p;
    Ast.Proj_table_star t
  | _ ->
    let e = parse_expr p in
    let alias = try_alias p ~allow_bare:true in
    Ast.Proj_expr (e, alias)

and parse_select p =
  expect_kw p "SELECT";
  let distinct = if eat_kw p "DISTINCT" then true else (ignore (eat_kw p "ALL"); false) in
  let rec projs acc =
    let pr = parse_projection p in
    if eat p Token.COMMA then projs (pr :: acc) else List.rev (pr :: acc)
  in
  let projections = projs [] in
  let from =
    if eat_kw p "FROM" then begin
      let rec refs acc =
        let r = parse_table_ref p in
        if eat p Token.COMMA then refs (r :: acc) else List.rev (r :: acc)
      in
      refs []
    end
    else []
  in
  let where = if eat_kw p "WHERE" then Some (parse_expr p) else None in
  let group_by =
    if eat_kw p "GROUP" then begin
      expect_kw p "BY";
      let rec exprs acc =
        let e = parse_expr p in
        if eat p Token.COMMA then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if eat_kw p "HAVING" then Some (parse_expr p) else None in
  { Ast.distinct; projections; from; where; group_by; having }

and parse_body_core p =
  if peek p = Token.LPAREN then begin
    advance p;
    let b = parse_body p in
    expect p Token.RPAREN;
    b
  end
  else Ast.Select (parse_select p)

and parse_intersect p =
  let rec go lhs =
    if eat_kw p "INTERSECT" then begin
      let all = eat_kw p "ALL" in
      ignore (eat_kw p "DISTINCT");
      let rhs = parse_body_core p in
      go (Ast.Intersect { all; left = lhs; right = rhs })
    end
    else lhs
  in
  go (parse_body_core p)

and parse_body p =
  let rec go lhs =
    match peek p with
    | Token.KW "UNION" ->
      advance p;
      let all = eat_kw p "ALL" in
      ignore (eat_kw p "DISTINCT");
      let rhs = parse_intersect p in
      go (Ast.Union { all; left = lhs; right = rhs })
    | Token.KW ("EXCEPT" | "MINUS") ->
      advance p;
      let all = eat_kw p "ALL" in
      let rhs = parse_intersect p in
      go (Ast.Except { all; left = lhs; right = rhs })
    | _ -> lhs
  in
  go (parse_intersect p)

(* --- full queries -------------------------------------------------------- *)

and parse_cte p =
  let cte_name = expect_ident p in
  let cte_columns =
    if peek p = Token.LPAREN then begin
      advance p;
      let rec cols acc =
        let c = expect_ident p in
        if eat p Token.COMMA then cols (c :: acc) else List.rev (c :: acc)
      in
      let cols = cols [] in
      expect p Token.RPAREN;
      cols
    end
    else []
  in
  expect_kw p "AS";
  expect p Token.LPAREN;
  let cte_query = parse_query p in
  expect p Token.RPAREN;
  { Ast.cte_name; cte_columns; cte_query }

and parse_query p =
  let ctes =
    if eat_kw p "WITH" then begin
      let rec go acc =
        let c = parse_cte p in
        if eat p Token.COMMA then go (c :: acc) else List.rev (c :: acc)
      in
      go []
    end
    else []
  in
  let body = parse_body p in
  let order_by =
    if eat_kw p "ORDER" then begin
      expect_kw p "BY";
      let rec items acc =
        let e = parse_expr p in
        let dir =
          if eat_kw p "DESC" then Ast.Desc
          else begin
            ignore (eat_kw p "ASC");
            Ast.Asc
          end
        in
        if eat p Token.COMMA then items ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      items []
    end
    else []
  in
  let expect_int () =
    match peek p with
    | Token.INT_LIT i ->
      advance p;
      i
    | t -> fail p "expected an integer but found %s" (Token.to_string t)
  in
  let limit = if eat_kw p "LIMIT" then Some (expect_int ()) else None in
  let offset = if eat_kw p "OFFSET" then Some (expect_int ()) else None in
  { Ast.ctes; body; order_by; limit; offset }

(* --- entry points -------------------------------------------------------- *)

let parse_exn src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { message; line; col } -> raise (Error { message; line; col })
  in
  let p = { toks; i = 0 } in
  let q = parse_query p in
  (* servers receive statements as typed: [SELECT ...;], [SELECT ...;;] —
     swallow any run of trailing semicolons (whitespace and comments are
     already invisible to the lexer) *)
  while eat p Token.SEMI do
    ()
  done;
  (match peek p with
  | Token.EOF -> ()
  | t -> fail p "unexpected trailing input: %s" (Token.to_string t));
  q

let parse_statement_exn src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { message; line; col } -> raise (Error { message; line; col })
  in
  let p = { toks; i = 0 } in
  let explain = eat_kw p "EXPLAIN" in
  (* ANALYZE is not a reserved word (it stays a valid column or table name),
     so after EXPLAIN it is matched as an identifier, case-insensitively —
     the same way Postgres treats it *)
  let analyze =
    explain
    &&
    match peek p with
    | Token.IDENT id when String.uppercase_ascii id = "ANALYZE" ->
      p.i <- p.i + 1;
      true
    | _ -> false
  in
  let q = parse_query p in
  while eat p Token.SEMI do
    ()
  done;
  (match peek p with
  | Token.EOF -> ()
  | t -> fail p "unexpected trailing input: %s" (Token.to_string t));
  if analyze then Ast.Explain_analyze q else if explain then Ast.Explain q else Ast.Query q

let parse_statement src =
  match parse_statement_exn src with
  | s -> Ok s
  | exception Error { message; line; col } ->
    Error (Fmt.str "parse error at line %d, column %d: %s" line col message)

let parse src =
  match parse_exn src with
  | q -> Ok q
  | exception Error { message; line; col } ->
    Error (Fmt.str "parse error at line %d, column %d: %s" line col message)

let parse_expr_exn src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { message; line; col } -> raise (Error { message; line; col })
  in
  let p = { toks; i = 0 } in
  let e = parse_expr p in
  (match peek p with
  | Token.EOF -> ()
  | t -> fail p "unexpected trailing input: %s" (Token.to_string t));
  e
