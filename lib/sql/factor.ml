(* Factor an aggregate query into a releasable core and a post-processing
   suffix. The core — FROM/WHERE/GROUP BY plus every base aggregate the query
   needs — is the only part whose answer touches private data; the suffix
   (HAVING, ORDER BY/LIMIT, projection arithmetic over the aggregates) is a
   pure function of the core's output. Once the core's noisy histogram has
   been released, any suffix over it is post-processing and costs no privacy
   budget, so the release store keys on the core: syntactic variants of the
   same dashboard collapse onto one paid release.

   The core is normalised aggressively so variants collide: relation names
   via {!Canon}, then WHERE conjuncts, GROUP BY items and projections sorted
   by their canonical rendering, with positional output aliases ([_k0..] for
   group keys, [_a0..] for aggregates). Everything semantic — which
   aggregates, which predicate set, which grouping — survives into the key,
   so two queries share a core only when the same mechanism instance answers
   both. *)

exception Not_factorable

type suffix = {
  outputs : (Ast.expr * string) list;
  having : Ast.expr option;
  order_by : (Ast.expr * Ast.order_dir) list;
  limit : int option;
  offset : int option;
}

type t = {
  core : Ast.query;
  core_sql : string;
  n_group_keys : int;
  n_aggregates : int;
  suffix : suffix;
}

let key_name i = Printf.sprintf "_k%d" i
let agg_name j = Printf.sprintf "_a%d" j

let has_agg e =
  Ast.fold_expr (fun acc e -> acc || match e with Ast.Agg _ -> true | _ -> false) false e

let has_subquery e = Ast.expr_subqueries e <> []

(* --- atom registry ----------------------------------------------------------

   Group-key atoms are fixed up front (the deduplicated GROUP BY items);
   aggregate atoms are collected in first-appearance order across the
   projections, HAVING and ORDER BY, deduplicated structurally. *)

type atoms = {
  groups : Ast.expr list;
  mutable aggs : (Ast.agg_func * bool * Ast.agg_arg) list; (* reversed *)
  mutable n_aggs : int;
}

let group_index st e =
  let rec go i = function
    | [] -> None
    | g :: _ when g = e -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 st.groups

let agg_index st a =
  let rec go i = function
    | [] -> None
    | x :: _ when x = a -> Some (st.n_aggs - 1 - i)
    | _ :: rest -> go (i + 1) rest
  in
  match go 0 st.aggs with
  | Some j -> j
  | None ->
    st.aggs <- a :: st.aggs;
    st.n_aggs <- st.n_aggs + 1;
    st.n_aggs - 1

(* Rewrite an expression over the original relations into one over the core's
   output columns. A subtree equal to a GROUP BY item becomes [_k<i>]; an
   aggregate application becomes [_a<j>]; literals and scalar operators pass
   through; any other column reference means the expression reads raw rows
   and the query cannot be answered from the released histogram.
   [resolve_output] implements ORDER BY's extra scope — references to output
   columns by projection alias or name — and returns an already-translated
   expression. *)
let rec translate st ~resolve_output (e : Ast.expr) : Ast.expr =
  match group_index st e with
  | Some i -> Ast.col (key_name i)
  | None -> (
    let recur = translate st ~resolve_output in
    match e with
    | Ast.Agg { func; distinct; arg } ->
      (match arg with
      | Ast.Star -> ()
      | Ast.Arg a -> if has_agg a || has_subquery a then raise Not_factorable);
      Ast.col (agg_name (agg_index st (func, distinct, arg)))
    | Ast.Lit _ -> e
    | Ast.Col c -> (
      match resolve_output c with Some out -> out | None -> raise Not_factorable)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, recur a, recur b)
    | Ast.Unop (op, a) -> Ast.Unop (op, recur a)
    | Ast.Func (name, args) -> Ast.Func (name, List.map recur args)
    | Ast.Case { operand; branches; else_ } ->
      Ast.Case
        {
          operand = Option.map recur operand;
          branches = List.map (fun (c, v) -> (recur c, recur v)) branches;
          else_ = Option.map recur else_;
        }
    | Ast.In { subject; negated; set = Ast.In_list es } ->
      Ast.In { subject = recur subject; negated; set = Ast.In_list (List.map recur es) }
    | Ast.Between { subject; negated; lo; hi } ->
      Ast.Between { subject = recur subject; negated; lo = recur lo; hi = recur hi }
    | Ast.Like { subject; negated; pattern } ->
      Ast.Like { subject = recur subject; negated; pattern = recur pattern }
    | Ast.Is_null { subject; negated } -> Ast.Is_null { subject = recur subject; negated }
    | Ast.Cast (a, ty) -> Ast.Cast (recur a, ty)
    | Ast.In { set = Ast.In_query _; _ } | Ast.Exists _ | Ast.Scalar_subquery _ ->
      raise Not_factorable)

let no_output _ = None

(* The engine's output naming for a projection (Compiled.expand_projections):
   the alias, else the column name, else the aggregate's function name. *)
let output_name (e : Ast.expr) (alias : string option) =
  match alias with
  | Some a -> String.lowercase_ascii a
  | None -> (
    match e with
    | Ast.Col c -> String.lowercase_ascii c.Ast.column
    | Ast.Agg { func; _ } -> Ast.agg_func_name func
    | _ -> "expr")

(* --- expression renaming (post-sort alias remap) ----------------------------- *)

let rec rename subst (e : Ast.expr) : Ast.expr =
  let r = rename subst in
  match e with
  | Ast.Col { table = None; column } when List.mem_assoc column subst ->
    Ast.col (List.assoc column subst)
  | Ast.Lit _ | Ast.Col _ -> e
  | Ast.Binop (op, a, b) -> Ast.Binop (op, r a, r b)
  | Ast.Unop (op, a) -> Ast.Unop (op, r a)
  | Ast.Func (name, args) -> Ast.Func (name, List.map r args)
  | Ast.Case { operand; branches; else_ } ->
    Ast.Case
      {
        operand = Option.map r operand;
        branches = List.map (fun (c, v) -> (r c, r v)) branches;
        else_ = Option.map r else_;
      }
  | Ast.In { subject; negated; set = Ast.In_list es } ->
    Ast.In { subject = r subject; negated; set = Ast.In_list (List.map r es) }
  | Ast.Between { subject; negated; lo; hi } ->
    Ast.Between { subject = r subject; negated; lo = r lo; hi = r hi }
  | Ast.Like { subject; negated; pattern } ->
    Ast.Like { subject = r subject; negated; pattern = r pattern }
  | Ast.Is_null { subject; negated } -> Ast.Is_null { subject = r subject; negated }
  | Ast.Cast (a, ty) -> Ast.Cast (r a, ty)
  | Ast.In { set = Ast.In_query _; _ } | Ast.Agg _ | Ast.Exists _ | Ast.Scalar_subquery _
    ->
    e (* never present in suffix expressions *)

(* Sort a projection segment by the canonical rendering of its expressions
   (stable: original position breaks ties) and re-alias positionally.
   Returns the sorted projections plus old-name -> new-name substitutions. *)
let sort_segment name_of (projs : (Ast.expr * string) list) =
  let tagged = List.mapi (fun i (e, old) -> (Pretty.expr e, i, e, old)) projs in
  let sorted =
    List.sort
      (fun (sa, ia, _, _) (sb, ib, _, _) ->
        match compare (sa : string) sb with 0 -> compare (ia : int) ib | c -> c)
      tagged
  in
  let projs =
    List.mapi (fun p (_, _, e, _) -> Ast.Proj_expr (e, Some (name_of p))) sorted
  in
  let subst = List.mapi (fun p (_, _, _, old) -> (old, name_of p)) sorted in
  (projs, subst)

let sort_exprs es =
  List.map snd
    (List.sort
       (fun (a, _) (b, _) -> compare (a : string) b)
       (List.map (fun e -> (Pretty.expr e, e)) es))

let and_tree = function
  | [] -> None
  | c :: cs -> Some (List.fold_left (fun acc c -> Ast.Binop (Ast.And, acc, c)) c cs)

(* --- factoring --------------------------------------------------------------- *)

let dedupe es =
  List.rev
    (List.fold_left (fun acc e -> if List.mem e acc then acc else e :: acc) [] es)

let factor (q : Ast.query) : t option =
  match q.Ast.body with
  | Ast.Union _ | Ast.Except _ | Ast.Intersect _ -> None
  | Ast.Select s -> (
    if q.Ast.ctes <> [] || s.Ast.distinct then None
    else if
      List.exists
        (function Ast.Proj_star | Ast.Proj_table_star _ -> true | Ast.Proj_expr _ -> false)
        s.Ast.projections
      || s.Ast.projections = []
    then None
    else if List.exists (fun g -> has_agg g || has_subquery g) s.Ast.group_by then None
    else
      try
        let st = { groups = dedupe s.Ast.group_by; aggs = []; n_aggs = 0 } in
        (* projections first, then HAVING, then ORDER BY: deterministic
           first-appearance order for the aggregate atoms *)
        let outputs =
          List.map
            (function
              | Ast.Proj_expr (e, alias) ->
                if has_subquery e then raise Not_factorable;
                (translate st ~resolve_output:no_output e, output_name e alias)
              | Ast.Proj_star | Ast.Proj_table_star _ -> assert false)
            s.Ast.projections
        in
        let having =
          Option.map
            (fun e ->
              if has_subquery e then raise Not_factorable;
              translate st ~resolve_output:no_output e)
            s.Ast.having
        in
        (* ORDER BY sees the output columns: positional references and
           alias/name references resolve to the projected expressions, which
           are already translated *)
        let n_out = List.length outputs in
        let resolve_order (c : Ast.col_ref) =
          match c.Ast.table with
          | Some _ -> None
          | None ->
            let name = String.lowercase_ascii c.Ast.column in
            Option.map fst (List.find_opt (fun (_, n) -> n = name) outputs)
        in
        let order_by =
          List.map
            (fun (e, dir) ->
              if has_subquery e then raise Not_factorable;
              match e with
              | Ast.Lit (Ast.Int pos) when pos >= 1 && pos <= n_out ->
                (fst (List.nth outputs (pos - 1)), dir)
              | e -> (translate st ~resolve_output:resolve_order e, dir))
            q.Ast.order_by
        in
        let aggs = List.rev st.aggs in
        let n_aggregates = st.n_aggs in
        let n_group_keys = List.length st.groups in
        if n_aggregates = 0 then None
        else begin
          (* the raw core, group keys then aggregates, positionally aliased *)
          let core_projs =
            List.mapi (fun i g -> Ast.Proj_expr (g, Some (key_name i))) st.groups
            @ List.mapi
                (fun j (func, distinct, arg) ->
                  Ast.Proj_expr (Ast.Agg { func; distinct; arg }, Some (agg_name j)))
                aggs
          in
          let core =
            Ast.query_of_select
              {
                Ast.distinct = false;
                projections = core_projs;
                from = s.Ast.from;
                where = s.Ast.where;
                group_by = st.groups;
                having = None;
              }
          in
          (* canonicalize relation names, then normalise clause order inside
             the canonical query: WHERE conjuncts, GROUP BY items and each
             projection segment sorted by canonical rendering. Reordering
             conjuncts and grouping keys never changes SQL semantics, and
             the suffix is remapped through the alias permutation. *)
          let qc = Canon.canonicalize core in
          let cs =
            match qc.Ast.body with Ast.Select cs -> cs | _ -> assert false
          in
          let keys, cagg =
            let parts =
              List.map
                (function
                  | Ast.Proj_expr (e, Some a) -> (e, a)
                  | _ -> assert false)
                cs.Ast.projections
            in
            let rec split i acc = function
              | rest when i = n_group_keys -> (List.rev acc, rest)
              | x :: rest -> split (i + 1) (x :: acc) rest
              | [] -> (List.rev acc, [])
            in
            split 0 [] parts
          in
          let key_projs, key_subst = sort_segment key_name keys in
          let agg_projs, agg_subst = sort_segment agg_name cagg in
          let where =
            Option.map (fun w -> Ast.conjuncts w) cs.Ast.where
            |> Option.map sort_exprs
            |> fun c -> Option.bind c and_tree
          in
          let core =
            {
              qc with
              Ast.body =
                Ast.Select
                  {
                    cs with
                    Ast.projections = key_projs @ agg_projs;
                    where;
                    group_by = sort_exprs cs.Ast.group_by;
                  };
            }
          in
          let subst =
            List.filter (fun (o, n) -> o <> n) (key_subst @ agg_subst)
          in
          let remap e = if subst = [] then e else rename subst e in
          let suffix =
            {
              outputs = List.map (fun (e, n) -> (remap e, n)) outputs;
              having = Option.map remap having;
              order_by = List.map (fun (e, d) -> (remap e, d)) order_by;
              limit = q.Ast.limit;
              offset = q.Ast.offset;
            }
          in
          Some
            {
              core;
              core_sql = Pretty.to_string core;
              n_group_keys;
              n_aggregates;
              suffix;
            }
        end
      with Not_factorable -> None)

(* The suffix is the identity exactly when it projects every core column in
   core order with no filtering, ordering or slicing — i.e. the request is a
   (possibly alias-renamed) replay of the core itself. *)
let trivial t =
  t.suffix.having = None
  && t.suffix.order_by = []
  && t.suffix.limit = None
  && t.suffix.offset = None
  && List.length t.suffix.outputs = t.n_group_keys + t.n_aggregates
  &&
  let core_cols =
    List.init t.n_group_keys key_name @ List.init t.n_aggregates agg_name
  in
  List.for_all2 (fun (e, _) name -> e = Ast.col name) t.suffix.outputs core_cols

let core_columns t =
  List.init t.n_group_keys key_name @ List.init t.n_aggregates agg_name
