(* Abstract syntax for the SQL subset FLEX analyses. The shape mirrors the
   grammar of real analytics queries observed in the paper's study: SELECT
   with joins of every kind, grouping/aggregation, CTEs, derived tables,
   subquery predicates and set operations. *)

type lit = Null | Bool of bool | Int of int | Float of float | String of string

type col_ref = { table : string option; column : string }

type agg_func = Count | Sum | Avg | Min | Max | Median | Stddev

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat

type unop = Not | Neg

type order_dir = Asc | Desc

type join_kind = Inner | Left | Right | Full | Cross

type expr =
  | Lit of lit
  | Col of col_ref
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Agg of { func : agg_func; distinct : bool; arg : agg_arg }
  | Func of string * expr list
  | Case of { operand : expr option; branches : (expr * expr) list; else_ : expr option }
  | In of { subject : expr; negated : bool; set : in_set }
  | Between of { subject : expr; negated : bool; lo : expr; hi : expr }
  | Like of { subject : expr; negated : bool; pattern : expr }
  | Is_null of { subject : expr; negated : bool }
  | Exists of query
  | Scalar_subquery of query
  | Cast of expr * string

and agg_arg = Star | Arg of expr

and in_set = In_list of expr list | In_query of query

and projection =
  | Proj_star
  | Proj_table_star of string
  | Proj_expr of expr * string option

and table_ref =
  | Table of { name : string; alias : string option }
  | Derived of { query : query; alias : string }
  | Join of { kind : join_kind; left : table_ref; right : table_ref; cond : join_cond }

and join_cond = On of expr | Using of string list | Natural | Cond_none

and select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and body =
  | Select of select
  | Union of { all : bool; left : body; right : body }
  | Except of { all : bool; left : body; right : body }
  | Intersect of { all : bool; left : body; right : body }

and query = {
  ctes : cte list;
  body : body;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

and cte = { cte_name : string; cte_columns : string list; cte_query : query }

type statement = Query of query | Explain of query | Explain_analyze of query

let empty_select =
  { distinct = false; projections = []; from = []; where = None; group_by = []; having = None }

let query_of_body body = { ctes = []; body; order_by = []; limit = None; offset = None }

let query_of_select select = query_of_body (Select select)

let col ?table column = Col { table; column }

let count_star = Agg { func = Count; distinct = false; arg = Star }

(* A "SELECT COUNT(*) FROM <from> WHERE <where>" skeleton used throughout the
   experiment drivers. *)
let count_query ?where from =
  query_of_select
    {
      empty_select with
      projections = [ Proj_expr (count_star, Some "count") ];
      from;
      where;
    }

let equal_query (a : query) (b : query) = a = b

let agg_func_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Median -> "median"
  | Stddev -> "stddev"

let agg_func_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "median" -> Some Median
  | "stddev" | "stddev_samp" | "std" -> Some Stddev
  | _ -> None

let join_kind_name = function
  | Inner -> "INNER JOIN"
  | Left -> "LEFT JOIN"
  | Right -> "RIGHT JOIN"
  | Full -> "FULL JOIN"
  | Cross -> "CROSS JOIN"

(* Structural folds used by the analyses. *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Col _ -> acc
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) -> fold_expr f acc a
  | Agg { arg = Star; _ } -> acc
  | Agg { arg = Arg a; _ } -> fold_expr f acc a
  | Func (_, args) -> List.fold_left (fold_expr f) acc args
  | Case { operand; branches; else_ } ->
    let acc = match operand with Some o -> fold_expr f acc o | None -> acc in
    let acc =
      List.fold_left (fun acc (c, v) -> fold_expr f (fold_expr f acc c) v) acc branches
    in
    (match else_ with Some e -> fold_expr f acc e | None -> acc)
  | In { subject; set; _ } -> (
    let acc = fold_expr f acc subject in
    match set with
    | In_list es -> List.fold_left (fold_expr f) acc es
    | In_query _ -> acc)
  | Between { subject; lo; hi; _ } ->
    fold_expr f (fold_expr f (fold_expr f acc subject) lo) hi
  | Like { subject; pattern; _ } -> fold_expr f (fold_expr f acc subject) pattern
  | Is_null { subject; _ } -> fold_expr f acc subject
  | Exists _ | Scalar_subquery _ -> acc
  | Cast (a, _) -> fold_expr f acc a

(* All subqueries syntactically nested in an expression. *)
let rec expr_subqueries e =
  match e with
  | Lit _ | Col _ -> []
  | Binop (_, a, b) -> expr_subqueries a @ expr_subqueries b
  | Unop (_, a) -> expr_subqueries a
  | Agg { arg = Star; _ } -> []
  | Agg { arg = Arg a; _ } -> expr_subqueries a
  | Func (_, args) -> List.concat_map expr_subqueries args
  | Case { operand; branches; else_ } ->
    let l0 = match operand with Some o -> expr_subqueries o | None -> [] in
    let l1 =
      List.concat_map (fun (c, v) -> expr_subqueries c @ expr_subqueries v) branches
    in
    let l2 = match else_ with Some e -> expr_subqueries e | None -> [] in
    l0 @ l1 @ l2
  | In { subject; set; _ } -> (
    let l = expr_subqueries subject in
    match set with
    | In_list es -> l @ List.concat_map expr_subqueries es
    | In_query q -> l @ [ q ])
  | Between { subject; lo; hi; _ } ->
    expr_subqueries subject @ expr_subqueries lo @ expr_subqueries hi
  | Like { subject; pattern; _ } -> expr_subqueries subject @ expr_subqueries pattern
  | Is_null { subject; _ } -> expr_subqueries subject
  | Exists q | Scalar_subquery q -> [ q ]
  | Cast (a, _) -> expr_subqueries a

(* Conjuncts of an AND tree; used for equijoin extraction. *)
let rec conjuncts e =
  match e with Binop (And, a, b) -> conjuncts a @ conjuncts b | e -> [ e ]

(* Column references appearing in an expression, including inside aggregate
   arguments, excluding subqueries. *)
let expr_columns e =
  List.rev
    (fold_expr (fun acc e -> match e with Col c -> c :: acc | _ -> acc) [] e)

(* Column references including everything inside nested subqueries: a
   subquery's free references belong to enclosing scopes, and its bound ones
   are harmless extras for the conservative name-based uses of this set. *)
let rec deep_expr_columns e =
  expr_columns e @ List.concat_map columns_of_query (expr_subqueries e)

and columns_of_query (q : query) =
  List.concat_map (fun c -> columns_of_query c.cte_query) q.ctes
  @ columns_of_body q.body
  @ List.concat_map (fun (e, _) -> deep_expr_columns e) q.order_by

and columns_of_body = function
  | Select s ->
    List.concat_map
      (function
        | Proj_expr (e, _) -> deep_expr_columns e
        | Proj_star | Proj_table_star _ -> [])
      s.projections
    @ (match s.where with Some e -> deep_expr_columns e | None -> [])
    @ List.concat_map deep_expr_columns s.group_by
    @ (match s.having with Some e -> deep_expr_columns e | None -> [])
    @ List.concat_map columns_of_ref s.from
  | Union { left; right; _ } | Except { left; right; _ } | Intersect { left; right; _ }
    ->
    columns_of_body left @ columns_of_body right

and columns_of_ref = function
  | Table _ -> []
  | Derived { query; _ } -> columns_of_query query
  | Join { left; right; cond; _ } ->
    (match cond with
    | On e -> deep_expr_columns e
    | Using cols -> List.map (fun c -> { table = None; column = c }) cols
    | Natural | Cond_none -> [])
    @ columns_of_ref left @ columns_of_ref right

let rec table_refs_of_body body =
  match body with
  | Select s -> s.from
  | Union { left; right; _ } | Except { left; right; _ } | Intersect { left; right; _ }
    ->
    table_refs_of_body left @ table_refs_of_body right

(* Base table names mentioned anywhere in a table reference, descending into
   derived tables. *)
let rec base_tables_of_ref (r : table_ref) =
  match r with
  | Table { name; _ } -> [ name ]
  | Derived { query; _ } -> base_tables_of_query query
  | Join { left; right; _ } -> base_tables_of_ref left @ base_tables_of_ref right

and base_tables_of_query (q : query) =
  let of_body b =
    List.concat_map base_tables_of_ref (table_refs_of_body b)
  in
  List.concat_map (fun c -> base_tables_of_query c.cte_query) q.ctes @ of_body q.body

(* Every join node in a query, including those inside derived tables and
   CTEs. *)
let joins_of_query (q : query) =
  let out = ref [] in
  let rec walk_ref r =
    match r with
    | Table _ -> ()
    | Derived { query; _ } -> walk_query query
    | Join { left; right; kind; cond } ->
      out := (kind, cond, left, right) :: !out;
      walk_ref left;
      walk_ref right
  and walk_body b =
    match b with
    | Select s ->
      List.iter walk_ref s.from;
      let walk_opt_expr = function
        | None -> ()
        | Some e -> List.iter walk_query (expr_subqueries e)
      in
      walk_opt_expr s.where;
      walk_opt_expr s.having;
      List.iter
        (function
          | Proj_expr (e, _) -> List.iter walk_query (expr_subqueries e)
          | Proj_star | Proj_table_star _ -> ())
        s.projections
    | Union { left; right; _ } | Except { left; right; _ } | Intersect { left; right; _ }
      ->
      walk_body left;
      walk_body right
  and walk_query q =
    List.iter (fun c -> walk_query c.cte_query) q.ctes;
    walk_body q.body
  in
  walk_query q;
  List.rev !out

(* Aggregate applications in the top-level projections (not descending into
   derived tables). *)
let select_aggregates (s : select) =
  let from_expr e =
    List.rev
      (fold_expr
         (fun acc e -> match e with Agg a -> (a.func, a.distinct, a.arg) :: acc | _ -> acc)
         [] e)
  in
  List.concat_map
    (function Proj_expr (e, _) -> from_expr e | Proj_star | Proj_table_star _ -> [])
    s.projections

(* Rough clause-count used for the study's query-size statistic: number of
   AST nodes. *)
let size_of_query (q : query) =
  let count = ref 0 in
  let tick () = incr count in
  let rec walk_expr e =
    tick ();
    match e with
    | Lit _ | Col _ -> ()
    | Binop (_, a, b) ->
      walk_expr a;
      walk_expr b
    | Unop (_, a) -> walk_expr a
    | Agg { arg = Star; _ } -> ()
    | Agg { arg = Arg a; _ } -> walk_expr a
    | Func (_, args) -> List.iter walk_expr args
    | Case { operand; branches; else_ } ->
      Option.iter walk_expr operand;
      List.iter
        (fun (c, v) ->
          walk_expr c;
          walk_expr v)
        branches;
      Option.iter walk_expr else_
    | In { subject; set; _ } -> (
      walk_expr subject;
      match set with In_list es -> List.iter walk_expr es | In_query q -> walk_query q)
    | Between { subject; lo; hi; _ } ->
      walk_expr subject;
      walk_expr lo;
      walk_expr hi
    | Like { subject; pattern; _ } ->
      walk_expr subject;
      walk_expr pattern
    | Is_null { subject; _ } -> walk_expr subject
    | Exists q | Scalar_subquery q -> walk_query q
    | Cast (a, _) -> walk_expr a
  and walk_ref r =
    tick ();
    match r with
    | Table _ -> ()
    | Derived { query; _ } -> walk_query query
    | Join { left; right; cond; _ } -> (
      walk_ref left;
      walk_ref right;
      match cond with On e -> walk_expr e | Using _ | Natural | Cond_none -> ())
  and walk_body b =
    match b with
    | Select s ->
      tick ();
      List.iter
        (function
          | Proj_expr (e, _) -> walk_expr e
          | Proj_star | Proj_table_star _ -> tick ())
        s.projections;
      List.iter walk_ref s.from;
      Option.iter walk_expr s.where;
      List.iter walk_expr s.group_by;
      Option.iter walk_expr s.having
    | Union { left; right; _ } | Except { left; right; _ } | Intersect { left; right; _ }
      ->
      tick ();
      walk_body left;
      walk_body right
  and walk_query q =
    List.iter (fun c -> walk_query c.cte_query) q.ctes;
    walk_body q.body;
    List.iter (fun (e, _) -> walk_expr e) q.order_by
  in
  walk_query q;
  !count
