(** AST canonicalization for analysis-cache keys.

    Two queries that differ only in relation naming — table aliases, CTE
    names, or the alias-vs-table-name spelling of a column qualifier — have
    identical elastic-sensitivity analyses, so a query service wants them to
    share one cache entry. [canonicalize] renames every relation binding to a
    positional name ([_r1], [_r2], ... in FROM-traversal order; [_w1], ...
    for CTEs) and rewrites all column qualifiers accordingly, scope by scope
    (subqueries shadow enclosing bindings, correlated references resolve
    outward). Nothing else is rewritten, so semantically different queries
    keep distinct keys.

    The function is idempotent: [canonicalize (canonicalize q) =
    canonicalize q] (property-tested). *)

val canonicalize : Ast.query -> Ast.query

val cache_key : Ast.query -> string
(** The canonicalized query rendered back to SQL — a stable, hashable key. *)
