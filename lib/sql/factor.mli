(** Core / suffix factoring for noisy materialized views.

    An aggregate query splits into a {e releasable core} — FROM/WHERE/GROUP
    BY plus every base aggregate the query mentions — and a {e post-processing
    suffix}: HAVING, ORDER BY/LIMIT/OFFSET and the projection arithmetic over
    the released aggregates. The core is the only part whose answer reads
    private data; once its noisy histogram is released, evaluating the suffix
    over it is post-processing (epsilon = delta = 0). A release store keyed
    on the core therefore answers every suffix variant of one dashboard from
    a single paid release.

    The core is normalised so syntactic variants collide: {!Canon} renames
    relations positionally, then WHERE conjuncts, GROUP BY items and the two
    projection segments are sorted by canonical rendering, and outputs are
    re-aliased positionally ([_k0], [_k1], ... group keys; [_a0], ...
    aggregates). [core_sql] is the resulting stable key text. Suffix
    expressions reference only those output names, so any change that
    survives into the key — the predicate set, the grouping, the aggregate
    set, the relations — yields a different core, and nothing else does.

    Queries that cannot be answered from a released histogram return [None]
    and must run the full pipeline: set operations, DISTINCT, CTEs, [*]
    projections, subqueries outside WHERE, raw (non-grouped, non-aggregate)
    column references in the projections/HAVING/ORDER BY, or no aggregates at
    all. *)

type suffix = {
  outputs : (Ast.expr * string) list;
      (** projection expressions over the core's output columns, with the
          engine's output naming (alias, else column, else function name) *)
  having : Ast.expr option;  (** filter over core columns, 3-valued *)
  order_by : (Ast.expr * Ast.order_dir) list;
      (** positional and alias references already resolved to expressions *)
  limit : int option;
  offset : int option;
}

type t = {
  core : Ast.query;  (** canonical, clause-sorted, positionally aliased *)
  core_sql : string;  (** [Pretty.to_string core] — the release-store key *)
  n_group_keys : int;
  n_aggregates : int;
  suffix : suffix;
}

val factor : Ast.query -> t option

val trivial : t -> bool
(** The suffix is the identity: the request is (an alias-renaming of) the
    core itself, so a store hit is an exact replay rather than a derivation. *)

val core_columns : t -> string list
(** The core's output column names, [_k0..] then [_a0..] — the columns of the
    stored release the suffix expressions resolve against. *)

val key_name : int -> string
val agg_name : int -> string
