(** Abstract syntax for the SQL subset FLEX analyses, shaped after the
    features real analytics queries use (paper §2): SELECT with joins of
    every kind, grouping and aggregation, CTEs, derived tables, subquery
    predicates and set operations. *)

type lit = Null | Bool of bool | Int of int | Float of float | String of string

type col_ref = { table : string option; column : string }
(** A possibly qualified column reference, e.g. [t.driver_id]. *)

type agg_func = Count | Sum | Avg | Min | Max | Median | Stddev

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat

type unop = Not | Neg

type order_dir = Asc | Desc

type join_kind = Inner | Left | Right | Full | Cross

type expr =
  | Lit of lit
  | Col of col_ref
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Agg of { func : agg_func; distinct : bool; arg : agg_arg }
  | Func of string * expr list  (** scalar function application *)
  | Case of { operand : expr option; branches : (expr * expr) list; else_ : expr option }
  | In of { subject : expr; negated : bool; set : in_set }
  | Between of { subject : expr; negated : bool; lo : expr; hi : expr }
  | Like of { subject : expr; negated : bool; pattern : expr }
  | Is_null of { subject : expr; negated : bool }
  | Exists of query
  | Scalar_subquery of query
  | Cast of expr * string

and agg_arg = Star | Arg of expr

and in_set = In_list of expr list | In_query of query

and projection =
  | Proj_star  (** [*] *)
  | Proj_table_star of string  (** [t.*] *)
  | Proj_expr of expr * string option  (** expression with optional alias *)

and table_ref =
  | Table of { name : string; alias : string option }
  | Derived of { query : query; alias : string }
  | Join of { kind : join_kind; left : table_ref; right : table_ref; cond : join_cond }

and join_cond = On of expr | Using of string list | Natural | Cond_none

and select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;  (** comma-separated items are cross joins *)
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and body =
  | Select of select
  | Union of { all : bool; left : body; right : body }
  | Except of { all : bool; left : body; right : body }
  | Intersect of { all : bool; left : body; right : body }

and query = {
  ctes : cte list;
  body : body;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

and cte = { cte_name : string; cte_columns : string list; cte_query : query }

type statement = Query of query | Explain of query | Explain_analyze of query
    (** A top-level statement: a query to execute, [EXPLAIN <query>] asking
        for the logical and optimized plans instead of results, or
        [EXPLAIN ANALYZE <query>] asking for the optimized plan annotated
        with per-operator runtime statistics. *)

(** {2 Construction helpers} *)

val empty_select : select
val query_of_body : body -> query
val query_of_select : select -> query
val col : ?table:string -> string -> expr
val count_star : expr

val count_query : ?where:expr -> table_ref list -> query
(** A [SELECT COUNT( * ) FROM ... WHERE ...] skeleton. *)

val equal_query : query -> query -> bool

(** {2 Names} *)

val agg_func_name : agg_func -> string
val agg_func_of_name : string -> agg_func option
val join_kind_name : join_kind -> string

(** {2 Structural traversals} *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression (not descending into subqueries). *)

val expr_subqueries : expr -> query list
(** Subqueries syntactically nested in an expression. *)

val conjuncts : expr -> expr list
(** Flatten an AND tree; used for equijoin extraction. *)

val expr_columns : expr -> col_ref list
(** Column references (excluding those inside subqueries). *)

val deep_expr_columns : expr -> col_ref list
(** Column references including everything mentioned inside nested
    subqueries (whose free references belong to enclosing scopes); the
    conservative name set behind the executor's scan-time column pruning. *)

val columns_of_query : query -> col_ref list
(** Every column reference mentioned anywhere in a query, descending into
    CTEs, derived tables, join conditions and subqueries. *)

val table_refs_of_body : body -> table_ref list

val base_tables_of_ref : table_ref -> string list
(** Base table names, descending into derived tables. *)

val base_tables_of_query : query -> string list

val joins_of_query : query -> (join_kind * join_cond * table_ref * table_ref) list
(** Every join node, including inside derived tables and CTEs. *)

val select_aggregates : select -> (agg_func * bool * agg_arg) list
(** Aggregate applications in the top-level projections. *)

val size_of_query : query -> int
(** AST node count: the study's query-size statistic. *)
