(** Privacy-budget accounting (paper §4.3): basic sequential composition with
    a hard limit, plus the strong-composition cost report. *)

type charge = { epsilon : float; delta : float; label : string }

type t

exception
  Exhausted of {
    requested : charge;
    remaining_epsilon : float;
    remaining_delta : float;
  }

type invalid = { field : string; value : float }
(** A rejected budget parameter: which field and the offending value. *)

exception Invalid_budget of invalid

val pp_invalid : invalid Fmt.t

val check : epsilon:float -> delta:float -> (unit, invalid) result
(** Budget limits must be positive and finite; zero, negative, NaN and
    infinite values are configuration errors, not budgets. *)

val create : epsilon:float -> delta:float -> t
(** A fresh accountant with the given total budget.
    @raise Invalid_budget on non-positive or non-finite [epsilon]/[delta]. *)

val create_checked : epsilon:float -> delta:float -> (t, invalid) result
(** Like {!create}, with the validation error as data — the form a service
    boundary wants. *)

val charge : ?label:string -> t -> epsilon:float -> delta:float -> unit
(** Record a mechanism invocation; raises {!Exhausted} if the basic-composition
    total would exceed the limit. Costs must be finite and non-negative (a
    zero-delta charge is fine: pure-epsilon mechanisms exist). *)

val can_afford : t -> epsilon:float -> delta:float -> bool
val charges : t -> charge list

val spent_basic : t -> float * float
(** Total [(epsilon, delta)] under basic composition. *)

val spent_strong : ?delta_slack:float -> t -> float * float
(** Total under the strong composition theorem (Dwork–Rothblum–Vadhan),
    with [delta_slack] added to the delta term (default [1e-9]). *)

val remaining : t -> float * float

val limit : t -> float * float
(** The total [(epsilon, delta)] the accountant was created with. *)

val pp : t Fmt.t
