(** Seeded random-number generation.

    Every source of randomness in the repository (noise, data generation,
    corpus sampling) flows through a value of this type so that tests and
    benchmarks are reproducible. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh generator; the default seed is fixed so runs are deterministic. *)

val split : t -> t
(** Derive an independent generator, advancing the parent. *)

module Stream : sig
  (** Domain-safe generator streams. [Random.State] values must never be
      shared across domains (racing domains can duplicate draws — for noise
      sampling, a privacy bug); a [Stream.t] lazily splits one child
      generator per domain from a parent, so concurrent domains each draw
      from their own deterministic stream. *)

  type rng := t

  type t

  val create : rng -> t
  (** [create parent] owns [parent]: the parent state is advanced (under a
      mutex) once per domain that touches the stream, and must not be used
      directly afterwards. *)

  val get : t -> rng
  (** The calling domain's generator, split from the parent on first use.
      The returned state is domain-local: draw from it freely, but do not
      pass it to another domain. *)
end

val float : t -> float -> float
(** [float t b] is uniform in [\[0, b)]. *)

val int : t -> int -> int
(** [int t b] is uniform in [\[0, b)]. *)

val bool : t -> bool

val uniform_pos : t -> float
(** Uniform in (0, 1]; never 0, safe as a log argument. *)

val bernoulli : t -> float -> bool

val exponential : t -> mean:float -> float

val gaussian : t -> mean:float -> stddev:float -> float

val zipf_table : n:int -> s:float -> float array
(** Precomputed CDF for a Zipf distribution over ranks [1..n]. *)

val zipf : t -> float array -> int
(** Sample a rank in [1..n] from a table built by {!zipf_table}. *)

val shuffle : t -> 'a array -> unit

val choose : t -> 'a array -> 'a

val weighted_index : t -> float array -> int
(** Index sampled proportionally to the given non-negative weights. *)
