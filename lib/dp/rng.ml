type t = Random.State.t

let create ?(seed = 0x5eed) () = Random.State.make [| seed; seed lxor 0x9e3779b9 |]

let split t =
  let s1 = Random.State.bits t and s2 = Random.State.bits t in
  Random.State.make [| s1; s2 |]

(* Per-domain generator streams split from one parent. [Random.State] is not
   domain-safe: two domains sampling one state race on its internal lag
   array and can hand the same draw to both (duplicated noise is a privacy
   bug, not just a statistics bug). A [Stream.t] instead splits one child
   state per domain, lazily, under a mutex: the parent is touched exactly
   once per domain, and every subsequent draw works on domain-local state
   with no synchronisation at all. Which child a domain receives depends on
   first-touch order, but each child's sequence is a deterministic function
   of the parent seed and its split index. *)
module Stream = struct
  type rng = t

  type t = { m : Mutex.t; key : rng Domain.DLS.key }

  let create parent =
    let m = Mutex.create () in
    let key = Domain.DLS.new_key (fun () -> Mutex.protect m (fun () -> split parent)) in
    { m; key }

  let get t = Domain.DLS.get t.key
end

let float t bound = Random.State.float t bound

let int t bound = Random.State.int t bound

let bool t = Random.State.bool t

(* Uniform in (0, 1]: never returns 0.0, safe as a log argument. *)
let uniform_pos t =
  let u = Random.State.float t 1.0 in
  if u > 0.0 then u else 1.0

(* Bernoulli trial with success probability [p]. *)
let bernoulli t p = Random.State.float t 1.0 < p

(* Standard exponential via inverse CDF. *)
let exponential t ~mean = -.mean *. log (uniform_pos t)

(* Standard normal via Box-Muller; used by data generators, not mechanisms. *)
let gaussian t ~mean ~stddev =
  let u1 = uniform_pos t and u2 = Random.State.float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* Zipf-distributed rank in [1, n] with exponent [s], by inverse-CDF table
   lookup. Used to give join keys realistically skewed frequencies. *)
let zipf_table ~n ~s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf

let zipf t cdf =
  let u = Random.State.float t 1.0 in
  (* Binary search for the first index whose cdf exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  1 + search 0 (Array.length cdf - 1)

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array"
  else a.(Random.State.int t (Array.length a))

(* Pick an index according to the given non-negative weights. *)
let weighted_index t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights sum to zero";
  let u = Random.State.float t total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0
