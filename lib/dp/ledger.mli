(** Crash-safe, multi-analyst privacy-budget ledger.

    A {!Budget.t} per analyst, backed by an append-only journal file: every
    registration and every granted spend is written (and flushed) to the
    journal {e before} it takes effect in memory, so a killed process can be
    restarted with [open_] and resume with exactly the remaining budgets it
    had granted — replay folds the same floating-point additions in the same
    order, so the totals are bit-identical, and a grant can never be lost
    (the journal may at worst record a spend whose answer was never
    delivered, which only errs on the safe side of the privacy accounting).

    All operations are serialised by an internal mutex; [spend] is an atomic
    check-journal-charge, so concurrent spenders can never jointly exceed a
    budget and the journal total always equals the sum of granted requests
    exactly. *)

type t

type entry =
  | Register of { analyst : string; epsilon : float; delta : float }
      (** budget {e limits} granted to a new analyst *)
  | Spend of { analyst : string; epsilon : float; delta : float; label : string }
      (** a granted charge *)

type error =
  | Unknown_analyst of string
  | Already_registered of { analyst : string; epsilon : float; delta : float }
      (** re-registration with different limits; carries the existing ones *)
  | Exhausted of {
      analyst : string;
      requested_epsilon : float;
      requested_delta : float;
      remaining_epsilon : float;
      remaining_delta : float;
    }
  | Invalid_limits of Budget.invalid
  | Bad_name of string  (** empty, or contains tab/newline *)

val pp_error : error Fmt.t
val error_to_string : error -> string

(** {2 Lifecycle} *)

val open_ : ?sync:bool -> string -> t
(** Replay the journal at the given path (tolerating a torn final line from
    a crash mid-append) and open it for appending; the file is created when
    absent. [sync] additionally fsyncs after every append (default: flush
    only). *)

val in_memory : unit -> t
(** A ledger with no journal — for tests and ephemeral servers. *)

val close : t -> unit
val path : t -> string option

(** {2 Operations} *)

val register : t -> analyst:string -> epsilon:float -> delta:float -> (unit, error) result
(** Admit an analyst with total budget limits. Idempotent when the limits
    match the existing registration exactly. *)

val spend :
  t ->
  analyst:string ->
  epsilon:float ->
  delta:float ->
  label:string ->
  (float * float, error) result
(** Atomically charge an analyst; [Ok (remaining_epsilon, remaining_delta)]
    on grant, [Error (Exhausted _)] without any state change when the budget
    cannot afford the request. *)

(** {2 Inspection} *)

val limits : t -> analyst:string -> (float * float) option
val spent : t -> analyst:string -> (float * float) option
val remaining : t -> analyst:string -> (float * float) option
val spends : t -> analyst:string -> int
val analysts : t -> string list

type summary = {
  analyst : string;
  epsilon_limit : float;
  delta_limit : float;
  epsilon_spent : float;
  delta_spent : float;
  spend_count : int;
}

val summaries : t -> summary list
val pp_summary : summary Fmt.t

(** {2 Replay without opening for append} *)

val entries_of_file : string -> entry list
(** Raw journal replay (same torn-tail tolerance as [open_]). *)

val summaries_of_file : string -> summary list
(** What [flex_cli budget] prints. *)
