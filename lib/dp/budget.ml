(* Privacy-budget accounting (paper §4.3). FLEX does not prescribe a strategy;
   we provide the standard ones: basic (sequential) composition and the strong
   composition theorem of Dwork, Rothblum and Vadhan. *)

type charge = { epsilon : float; delta : float; label : string }

type t = {
  epsilon_limit : float;
  delta_limit : float;
  mutable spent : charge list; (* newest first *)
}

exception Exhausted of { requested : charge; remaining_epsilon : float; remaining_delta : float }

type invalid = { field : string; value : float }

exception Invalid_budget of invalid

let pp_invalid ppf { field; value } =
  Fmt.pf ppf "invalid budget: %s = %g (must be positive and finite)" field value

(* A budget that is zero, negative, NaN or infinite is never what the caller
   meant: eps <= 0 yields unbounded noise scales, a non-finite limit disables
   accounting entirely. Catch it at construction with a typed error. *)
let check ~epsilon ~delta =
  if not (Float.is_finite epsilon && epsilon > 0.0) then
    Error { field = "epsilon"; value = epsilon }
  else if not (Float.is_finite delta && delta > 0.0) then
    Error { field = "delta"; value = delta }
  else Ok ()

let create_checked ~epsilon ~delta =
  match check ~epsilon ~delta with
  | Error e -> Error e
  | Ok () -> Ok { epsilon_limit = epsilon; delta_limit = delta; spent = [] }

let create ~epsilon ~delta =
  match create_checked ~epsilon ~delta with
  | Ok t -> t
  | Error e -> raise (Invalid_budget e)

let charges t = List.rev t.spent

let basic_cost charges =
  List.fold_left
    (fun (e, d) c -> (e +. c.epsilon, d +. c.delta))
    (0.0, 0.0) charges

(* Strong composition (DRV'10): k mechanisms, each (e, d)-DP, compose to
   (e', k*d + delta_slack)-DP with
     e' = e * sqrt(2k ln(1/delta_slack)) + k * e * (exp(e) - 1).
   Heterogeneous charges are handled conservatively by using the max epsilon. *)
let strong_cost ?(delta_slack = 1e-9) charges =
  match charges with
  | [] -> (0.0, 0.0)
  | _ ->
    let k = float_of_int (List.length charges) in
    let emax = List.fold_left (fun acc c -> Float.max acc c.epsilon) 0.0 charges in
    let dsum = List.fold_left (fun acc c -> acc +. c.delta) 0.0 charges in
    let e' =
      (emax *. sqrt (2.0 *. k *. log (1.0 /. delta_slack)))
      +. (k *. emax *. (exp emax -. 1.0))
    in
    (e', dsum +. delta_slack)

let spent_basic t = basic_cost t.spent
let spent_strong ?delta_slack t = strong_cost ?delta_slack t.spent

let remaining t =
  let e, d = spent_basic t in
  (Float.max 0.0 (t.epsilon_limit -. e), Float.max 0.0 (t.delta_limit -. d))

let limit t = (t.epsilon_limit, t.delta_limit)

let can_afford t ~epsilon ~delta =
  let e, d = spent_basic t in
  e +. epsilon <= t.epsilon_limit +. 1e-12 && d +. delta <= t.delta_limit +. 1e-12

let charge ?(label = "query") t ~epsilon ~delta =
  if epsilon < 0.0 || delta < 0.0 || not (Float.is_finite epsilon && Float.is_finite delta)
  then invalid_arg "Budget.charge: cost must be finite and non-negative";
  let c = { epsilon; delta; label } in
  if can_afford t ~epsilon ~delta then t.spent <- c :: t.spent
  else
    let re, rd = remaining t in
    raise (Exhausted { requested = c; remaining_epsilon = re; remaining_delta = rd })

let pp ppf t =
  let e, d = spent_basic t in
  Fmt.pf ppf "budget: spent (eps=%g, delta=%g) of (eps=%g, delta=%g) over %d queries"
    e d t.epsilon_limit t.delta_limit (List.length t.spent)
