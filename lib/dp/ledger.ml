(* Multi-analyst budget ledger over an append-only journal.

   Journal format: one tab-separated record per line, floats as %.17g (which
   round-trips every finite double exactly, so replayed sums are
   bit-identical to the sums the live process computed):

     analyst\t<name>\t<epsilon_limit>\t<delta_limit>
     spend\t<name>\t<epsilon>\t<delta>\t<label>

   Write protocol: journal line -> flush (-> fsync when [sync]) -> in-memory
   charge -> acknowledge. A crash can therefore lose an acknowledgement but
   never a granted spend, which is the conservative direction for privacy
   accounting. A crash mid-append leaves a torn final line; replay drops it
   (it was never acknowledged). *)

type entry =
  | Register of { analyst : string; epsilon : float; delta : float }
  | Spend of { analyst : string; epsilon : float; delta : float; label : string }

type error =
  | Unknown_analyst of string
  | Already_registered of { analyst : string; epsilon : float; delta : float }
  | Exhausted of {
      analyst : string;
      requested_epsilon : float;
      requested_delta : float;
      remaining_epsilon : float;
      remaining_delta : float;
    }
  | Invalid_limits of Budget.invalid
  | Bad_name of string

let pp_error ppf = function
  | Unknown_analyst a -> Fmt.pf ppf "unknown analyst %S (no Hello/registration)" a
  | Already_registered { analyst; epsilon; delta } ->
    Fmt.pf ppf "analyst %S already registered with budget (eps=%g, delta=%g)" analyst
      epsilon delta
  | Exhausted { analyst; requested_epsilon; requested_delta; remaining_epsilon; remaining_delta } ->
    Fmt.pf ppf
      "budget exhausted for %S: requested (eps=%g, delta=%g), remaining (eps=%g, delta=%g)"
      analyst requested_epsilon requested_delta remaining_epsilon remaining_delta
  | Invalid_limits i -> Budget.pp_invalid ppf i
  | Bad_name a -> Fmt.pf ppf "bad analyst name %S (must be non-empty, no tabs/newlines)" a

let error_to_string e = Fmt.str "%a" pp_error e

type t = {
  mutable oc : out_channel option;
  journal_path : string option;
  sync : bool;
  budgets : (string, Budget.t) Hashtbl.t;
  counts : (string, int) Hashtbl.t; (* granted spends per analyst *)
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- journal lines -------------------------------------------------------- *)

let float_str f = Printf.sprintf "%.17g" f

(* labels travel on one tab-separated line; whitespace flattens to spaces *)
let clean_label label =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) label

let line_of_entry = function
  | Register { analyst; epsilon; delta } ->
    Printf.sprintf "analyst\t%s\t%s\t%s" analyst (float_str epsilon) (float_str delta)
  | Spend { analyst; epsilon; delta; label } ->
    Printf.sprintf "spend\t%s\t%s\t%s\t%s" analyst (float_str epsilon) (float_str delta)
      (clean_label label)

let entry_of_line line =
  match String.split_on_char '\t' line with
  | [ "analyst"; name; e; d ] -> (
    match (float_of_string_opt e, float_of_string_opt d) with
    | Some epsilon, Some delta -> Some (Register { analyst = name; epsilon; delta })
    | _ -> None)
  | "spend" :: name :: e :: d :: rest -> (
    match (float_of_string_opt e, float_of_string_opt d) with
    | Some epsilon, Some delta ->
      Some (Spend { analyst = name; epsilon; delta; label = String.concat "\t" rest })
    | _ -> None)
  | _ -> None

(* Replay tolerating a torn final line: a malformed line terminates replay if
   it is the last one (crash mid-append), and is a corruption error
   otherwise. *)
let entries_of_lines ~source lines =
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest when String.trim line = "" -> go acc rest
    | line :: rest -> (
      match entry_of_line line with
      | Some e -> go (e :: acc) rest
      | None ->
        if rest = [] then List.rev acc (* torn tail *)
        else Fmt.invalid_arg "Ledger: corrupt journal %s: %S" source line)
  in
  go [] lines

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

let entries_of_file path = entries_of_lines ~source:path (read_lines path)

(* --- state updates --------------------------------------------------------- *)

let apply_entry t = function
  | Register { analyst; epsilon; delta } ->
    if not (Hashtbl.mem t.budgets analyst) then
      Hashtbl.replace t.budgets analyst (Budget.create ~epsilon ~delta)
  | Spend { analyst; epsilon; delta; label } -> (
    match Hashtbl.find_opt t.budgets analyst with
    | None -> Fmt.invalid_arg "Ledger: journal spend for unregistered analyst %S" analyst
    | Some b ->
      Budget.charge ~label b ~epsilon ~delta;
      Hashtbl.replace t.counts analyst (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts analyst)))

let append t entry =
  match t.oc with
  | None -> ()
  | Some oc ->
    output_string oc (line_of_entry entry ^ "\n");
    flush oc;
    if t.sync then Unix.fsync (Unix.descr_of_out_channel oc)

(* --- lifecycle ------------------------------------------------------------- *)

let make ~oc ~path ~sync =
  {
    oc;
    journal_path = path;
    sync;
    budgets = Hashtbl.create 16;
    counts = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let open_ ?(sync = false) path =
  let entries = entries_of_file path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  let t = make ~oc:(Some oc) ~path:(Some path) ~sync in
  List.iter (apply_entry t) entries;
  t

let in_memory () = make ~oc:None ~path:None ~sync:false

let close t =
  with_lock t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        close_out oc;
        t.oc <- None)

let path t = t.journal_path

(* --- operations ------------------------------------------------------------ *)

let name_ok name =
  name <> "" && not (String.exists (function '\t' | '\n' | '\r' -> true | _ -> false) name)

let register t ~analyst ~epsilon ~delta =
  if not (name_ok analyst) then Error (Bad_name analyst)
  else
    match Budget.check ~epsilon ~delta with
    | Error i -> Error (Invalid_limits i)
    | Ok () ->
      with_lock t (fun () ->
          match Hashtbl.find_opt t.budgets analyst with
          | Some b ->
            let limit_e, limit_d = Budget.limit b in
            (* silently idempotent only for the identical registration *)
            if limit_e = epsilon && limit_d = delta then Ok ()
            else Error (Already_registered { analyst; epsilon = limit_e; delta = limit_d })
          | None ->
            let entry = Register { analyst; epsilon; delta } in
            append t entry;
            apply_entry t entry;
            Ok ())

let spend t ~analyst ~epsilon ~delta ~label =
  if
    (not (Float.is_finite epsilon)) || epsilon < 0.0 || (not (Float.is_finite delta))
    || delta < 0.0
  then Error (Invalid_limits { Budget.field = "epsilon/delta cost"; value = epsilon })
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.budgets analyst with
        | None -> Error (Unknown_analyst analyst)
        | Some b ->
          if Budget.can_afford b ~epsilon ~delta then begin
            let entry = Spend { analyst; epsilon; delta; label = clean_label label } in
            append t entry;
            apply_entry t entry;
            Ok (Budget.remaining b)
          end
          else
            let remaining_epsilon, remaining_delta = Budget.remaining b in
            Error
              (Exhausted
                 {
                   analyst;
                   requested_epsilon = epsilon;
                   requested_delta = delta;
                   remaining_epsilon;
                   remaining_delta;
                 }))

(* --- inspection ------------------------------------------------------------ *)

let find t analyst f =
  with_lock t (fun () -> Option.map f (Hashtbl.find_opt t.budgets analyst))

let limits t ~analyst = find t analyst Budget.limit

let spent t ~analyst = find t analyst Budget.spent_basic
let remaining t ~analyst = find t analyst Budget.remaining

let spends t ~analyst =
  with_lock t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.counts analyst))

let analysts t =
  with_lock t (fun () ->
      Hashtbl.fold (fun a _ acc -> a :: acc) t.budgets [] |> List.sort compare)

type summary = {
  analyst : string;
  epsilon_limit : float;
  delta_limit : float;
  epsilon_spent : float;
  delta_spent : float;
  spend_count : int;
}

let summaries t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun analyst b acc ->
          let epsilon_spent, delta_spent = Budget.spent_basic b in
          let epsilon_limit, delta_limit = Budget.limit b in
          {
            analyst;
            epsilon_limit;
            delta_limit;
            epsilon_spent;
            delta_spent;
            spend_count = Option.value ~default:0 (Hashtbl.find_opt t.counts analyst);
          }
          :: acc)
        t.budgets []
      |> List.sort compare)

let pp_summary ppf s =
  Fmt.pf ppf "%-16s eps %10.6g / %-10.6g delta %10.4g / %-10.4g (%d queries)" s.analyst
    s.epsilon_spent s.epsilon_limit s.delta_spent s.delta_limit s.spend_count

let summaries_of_file path =
  let t = make ~oc:None ~path:(Some path) ~sync:false in
  List.iter (apply_entry t) (entries_of_file path);
  summaries t
