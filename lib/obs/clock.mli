(** Monotonized time source for telemetry.

    The container's OCaml stdlib exposes no monotonic clock, so spans and
    stage timings are built on [Unix.gettimeofday] pushed through a global
    high-water mark: {!now_ns} never decreases, even across NTP steps that
    move the wall clock backwards, and {!elapsed_ns} additionally clamps at
    zero so a duration can never be negative. Timestamps stay close to the
    epoch wall clock (they only ever run ahead of it, by at most the size of
    the largest backwards step observed), which keeps them usable as
    coarse-grained wall times in logs. *)

val now_ns : unit -> float
(** Nanoseconds since the Unix epoch, monotonized: never less than any value
    previously returned in this process. Domain-safe (lock-free CAS). *)

val elapsed_ns : float -> float
(** [elapsed_ns t0] is [now_ns () -. t0] clamped to [>= 0]. *)
