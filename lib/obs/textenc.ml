let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let exact p =
      let s = Printf.sprintf p f in
      if float_of_string s = f then Some s else None
    in
    match exact "%.15g" with
    | Some s -> s
    | None -> ( match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" f)

let escape_with b s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter (fun c -> b buf c) s;
  Buffer.contents buf

let prom_label_escape s =
  escape_with
    (fun b c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let prom_help_escape s =
  escape_with
    (fun b c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s
