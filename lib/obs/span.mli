(** Per-query trace spans: a span tree is created at the service boundary
    and threaded (as a [t option]) through parse, analysis, execution and
    perturbation. Spans record monotonized wall-clock timestamps from
    {!Clock}; durations are therefore never negative.

    Threading is by parent handle: [enter parent name] starts a child;
    {!timed} wraps a stage and hands the callback the child so it can nest
    further. All spans of one tree share the root's mutex, so a tree may be
    grown from the pool domains running an operator as well as the service
    thread that owns the query. Passing [None] everywhere makes the whole
    facility a no-op (telemetry off). *)

type t

val root : string -> t
(** Start a new trace with an open root span. *)

val enter : t -> string -> t
(** Start a child span under [parent]. *)

val finish : t -> unit
(** Close the span (records its end time). Idempotent: the first call
    wins. Finishing a parent does not finish its children. *)

val timed : t option -> string -> (t option -> 'a) -> 'a
(** [timed parent name f] runs [f] inside a fresh child span, finishing it
    when [f] returns or raises. With [None] it is just [f None]. *)

(** {2 Inspection} *)

type view = {
  name : string;
  start_ns : float;
  duration_ns : float;  (** 0. when the span was never finished *)
  children : view list;  (** in creation order *)
}

val view : t -> view
(** A consistent snapshot of the tree rooted at [t] (take it after
    {!finish}; open descendants report [duration_ns = 0.]). *)

val find : view -> string list -> view option
(** [find v path] descends by child name; [find v []] is [Some v]. *)

val duration_of : view -> string list -> float
(** Duration at [path], or [0.] when the span is absent or unfinished. *)

val to_json : view -> string
(** [{"name":..,"start_ns":..,"duration_ns":..,"children":[..]}]. *)
