(* A fixed-size flight recorder for finished requests. Writers are striped
   across 8 independent rings (stripe = seq mod 8), so concurrent domains
   rarely contend on one mutex; a global atomic sequence number gives every
   record a total order that snapshots use to merge the stripes newest-first.
   The memory bound is the point: capacity records, each holding the request
   line, outcome, budget charge and (when telemetry is on) the span tree. *)

type record = {
  seq : int;
  ts_ns : float;
  id : string option; (* client-supplied request id, when given *)
  analyst : string;
  sql : string;
  key : string option; (* canonical statement key, when the query factored *)
  outcome : string;
  epsilon : float;
  delta : float;
  duration_ns : float;
  trace : Span.view option;
}

type stripe = {
  lock : Mutex.t;
  ring : record option array;
  mutable cursor : int; (* next write slot *)
}

let stripes = 8

type t = { seq : int Atomic.t; rings : stripe array; capacity : int }

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  let per = (capacity + stripes - 1) / stripes in
  {
    seq = Atomic.make 0;
    capacity;
    rings =
      Array.init stripes (fun _ ->
          { lock = Mutex.create (); ring = Array.make per None; cursor = 0 });
  }

let capacity t = t.capacity

let record t ~ts_ns ?id ~analyst ~sql ?key ~outcome ?(epsilon = 0.0) ?(delta = 0.0)
    ~duration_ns ?trace () =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let r =
    { seq; ts_ns; id; analyst; sql; key; outcome; epsilon; delta; duration_ns; trace }
  in
  let s = t.rings.(seq mod stripes) in
  Mutex.lock s.lock;
  s.ring.(s.cursor) <- Some r;
  s.cursor <- (s.cursor + 1) mod Array.length s.ring;
  Mutex.unlock s.lock

let recorded t = Atomic.get t.seq

let snapshot ?limit t =
  let all = ref [] in
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Array.iter (function Some r -> all := r :: !all | None -> ()) s.ring;
      Mutex.unlock s.lock)
    t.rings;
  let sorted = List.sort (fun (a : record) (b : record) -> compare b.seq a.seq) !all in
  match limit with
  | Some n when n >= 0 && List.length sorted > n -> List.filteri (fun i _ -> i < n) sorted
  | _ -> sorted

(* --- JSON ---------------------------------------------------------------------- *)

let record_to_json b (r : record) =
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"ts_ns\":%s" r.seq (Textenc.number r.ts_ns));
  (match r.id with
  | Some id -> Buffer.add_string b (Printf.sprintf ",\"id\":\"%s\"" (Textenc.json_escape id))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"analyst\":\"%s\",\"sql\":\"%s\"" (Textenc.json_escape r.analyst)
       (Textenc.json_escape r.sql));
  (match r.key with
  | Some k -> Buffer.add_string b (Printf.sprintf ",\"key\":\"%s\"" (Textenc.json_escape k))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"outcome\":\"%s\",\"epsilon\":%s,\"delta\":%s,\"duration_ns\":%s"
       (Textenc.json_escape r.outcome) (Textenc.number r.epsilon) (Textenc.number r.delta)
       (Textenc.number r.duration_ns));
  (match r.trace with
  | Some v ->
    Buffer.add_string b ",\"trace\":";
    Buffer.add_string b (Span.to_json v)
  | None -> ());
  Buffer.add_char b '}'

let to_json ?limit t =
  let rs = snapshot ?limit t in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"capacity\":%d,\"recorded\":%d,\"flights\":[" t.capacity (recorded t));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      record_to_json b r)
    rs;
  Buffer.add_string b "]}";
  Buffer.contents b
