(* Hot-path updates are striped [Atomic]s — one slot per (domain mod
   stripes) — so concurrent domains rarely contend on a cache line; floats
   go through a CAS loop (Atomic on a boxed float compares the box read, so
   a lost race just retries). Registration and scraping are rare and take
   the registry mutex. *)

let stripes = 8
let stripe () = (Domain.self () :> int) land (stripes - 1)

let rec atomic_add_float a v =
  let seen = Atomic.get a in
  if not (Atomic.compare_and_set a seen (seen +. v)) then atomic_add_float a v

module Counter = struct
  type t = float Atomic.t array

  let make () = Array.init stripes (fun _ -> Atomic.make 0.0)
  let inc t v = if v > 0.0 then atomic_add_float t.(stripe ()) v
  let incr t = inc t 1.0
  let value t = Array.fold_left (fun acc a -> acc +. Atomic.get a) 0.0 t
end

module Gauge = struct
  type t = float Atomic.t

  let make () = Atomic.make 0.0
  let set t v = Atomic.set t v
  let add t v = atomic_add_float t v
  let value t = Atomic.get t
end

module Histogram = struct
  type lane = { counts : int Atomic.t array; (* one per bound + overflow *) sum : float Atomic.t }
  type t = { upper : float array; lanes : lane array }

  let make upper =
    let nb = Array.length upper + 1 in
    {
      upper;
      lanes =
        Array.init stripes (fun _ ->
            { counts = Array.init nb (fun _ -> Atomic.make 0); sum = Atomic.make 0.0 });
    }

  (* first bucket whose upper bound admits [v]; the overflow slot otherwise *)
  let bucket_of t v =
    let n = Array.length t.upper in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= t.upper.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe t v =
    let lane = t.lanes.(stripe ()) in
    ignore (Atomic.fetch_and_add lane.counts.(bucket_of t v) 1);
    atomic_add_float lane.sum v

  let totals t =
    let nb = Array.length t.upper + 1 in
    let counts = Array.make nb 0 and sum = ref 0.0 in
    Array.iter
      (fun lane ->
        Array.iteri (fun i a -> counts.(i) <- counts.(i) + Atomic.get a) lane.counts;
        sum := !sum +. Atomic.get lane.sum)
      t.lanes;
    (counts, !sum)

  let count t = fst (totals t) |> Array.fold_left ( + ) 0
  let sum t = snd (totals t)
end

let log_buckets ?(start = 1e-6) ?(factor = 2.0) ?(count = 24) () =
  Array.init count (fun i -> start *. (factor ** float_of_int i))

(* Histogram quantile estimate in the Prometheus style: find the bucket the
   rank lands in, interpolate linearly inside it (the first bucket's lower
   bound is 0), and clamp ranks beyond the last finite bound to that bound. *)
let estimate_quantile ~upper ~cumulative ~count q =
  if count <= 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int count in
    let n = Array.length upper in
    let rec find i =
      if i >= n then n else if float_of_int cumulative.(i) >= rank then i else find (i + 1)
    in
    let i = find 0 in
    if i >= n then Some (if n = 0 then 0.0 else upper.(n - 1))
    else
      let lo = if i = 0 then 0.0 else upper.(i - 1) in
      let hi = upper.(i) in
      let below = if i = 0 then 0 else cumulative.(i - 1) in
      let in_bucket = cumulative.(i) - below in
      if in_bucket <= 0 then Some hi
      else Some (lo +. ((hi -. lo) *. ((rank -. float_of_int below) /. float_of_int in_bucket)))
  end

(* --- registry ---------------------------------------------------------------- *)

type value =
  | Sample of float
  | Hist of { upper : float array; cumulative : int array; count : int; sum : float }

type sample = { labels : (string * string) list; value : value }
type family = { name : string; help : string; kind : string; samples : sample list }

type source =
  | Instrument of { labels : (string * string) list; read : unit -> value }
  | Callback of (unit -> ((string * string) list * float) list)

type fam = {
  f_name : string;
  f_help : string;
  f_kind : string;
  mutable sources : source list; (* reverse registration order *)
}

type t = { lock : Mutex.t; mutable fams : fam list (* reverse registration order *) }

let create () = { lock = Mutex.create (); fams = [] }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t ~name ~help ~kind source =
  with_lock t (fun () ->
      match List.find_opt (fun f -> f.f_name = name) t.fams with
      | Some f ->
        if f.f_kind <> kind then
          invalid_arg
            (Printf.sprintf "Registry: %s already registered as a %s (not a %s)" name f.f_kind
               kind);
        f.sources <- source :: f.sources
      | None -> t.fams <- { f_name = name; f_help = help; f_kind = kind; sources = [ source ] } :: t.fams)

let counter t ?(help = "") ?(labels = []) name =
  let c = Counter.make () in
  register t ~name ~help ~kind:"counter"
    (Instrument { labels; read = (fun () -> Sample (Counter.value c)) });
  c

let gauge t ?(help = "") ?(labels = []) name =
  let g = Gauge.make () in
  register t ~name ~help ~kind:"gauge"
    (Instrument { labels; read = (fun () -> Sample (Gauge.value g)) });
  g

let histogram t ?(help = "") ?(labels = []) ?buckets name =
  let upper = match buckets with Some b -> b | None -> log_buckets () in
  let h = Histogram.make upper in
  let read () =
    let counts, sum = Histogram.totals h in
    let n = Array.length upper in
    let cumulative = Array.make n 0 in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + counts.(i);
      cumulative.(i) <- !acc
    done;
    Hist { upper; cumulative; count = !acc + counts.(n); sum }
  in
  register t ~name ~help ~kind:"histogram" (Instrument { labels; read });
  h

let collect t ?(help = "") ~kind name f =
  let kind = match kind with `Counter -> "counter" | `Gauge -> "gauge" in
  register t ~name ~help ~kind (Callback f)

let snapshot t =
  let fams = with_lock t (fun () -> List.rev t.fams) in
  List.map
    (fun f ->
      let samples =
        List.concat_map
          (fun source ->
            match source with
            | Instrument { labels; read } -> (
              match read () with
              | v -> [ { labels; value = v } ]
              | exception _ -> [])
            | Callback cb -> (
              match cb () with
              | series -> List.map (fun (labels, v) -> { labels; value = Sample v }) series
              | exception _ -> []))
          (List.rev f.sources)
      in
      { name = f.f_name; help = f.f_help; kind = f.f_kind; samples })
    fams

(* --- Prometheus text exposition ---------------------------------------------- *)

let labels_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Textenc.prom_label_escape v)) labels)
    ^ "}"

let to_prometheus t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun f ->
      if f.help <> "" then line "# HELP %s %s" f.name (Textenc.prom_help_escape f.help);
      line "# TYPE %s %s" f.name f.kind;
      List.iter
        (fun s ->
          match s.value with
          | Sample v -> line "%s%s %s" f.name (labels_string s.labels) (Textenc.number v)
          | Hist { upper; cumulative; count; sum } ->
            Array.iteri
              (fun i u ->
                line "%s_bucket%s %d" f.name
                  (labels_string (s.labels @ [ ("le", Textenc.number u) ]))
                  cumulative.(i))
              upper;
            line "%s_bucket%s %d" f.name (labels_string (s.labels @ [ ("le", "+Inf") ])) count;
            line "%s_sum%s %s" f.name (labels_string s.labels) (Textenc.number sum);
            line "%s_count%s %d" f.name (labels_string s.labels) count)
        f.samples)
    (snapshot t);
  Buffer.contents b

(* --- JSON --------------------------------------------------------------------- *)

let to_json t =
  let b = Buffer.create 4096 in
  let str s = Buffer.add_char b '"'; Buffer.add_string b (Textenc.json_escape s); Buffer.add_char b '"' in
  let sep first = if !first then first := false else Buffer.add_char b ',' in
  Buffer.add_string b "{\"families\":[";
  let ffirst = ref true in
  List.iter
    (fun f ->
      sep ffirst;
      Buffer.add_string b "{\"name\":";
      str f.name;
      Buffer.add_string b ",\"kind\":";
      str f.kind;
      Buffer.add_string b ",\"help\":";
      str f.help;
      Buffer.add_string b ",\"samples\":[";
      let sfirst = ref true in
      List.iter
        (fun s ->
          sep sfirst;
          Buffer.add_string b "{\"labels\":{";
          let lfirst = ref true in
          List.iter
            (fun (k, v) ->
              sep lfirst;
              str k;
              Buffer.add_char b ':';
              str v)
            s.labels;
          Buffer.add_string b "}";
          (match s.value with
          | Sample v ->
            Buffer.add_string b ",\"value\":";
            Buffer.add_string b (Textenc.number v)
          | Hist { upper; cumulative; count; sum } ->
            Buffer.add_string b (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"buckets\":[" count (Textenc.number sum));
            let bfirst = ref true in
            Array.iteri
              (fun i u ->
                sep bfirst;
                Buffer.add_string b
                  (Printf.sprintf "{\"le\":%s,\"count\":%d}" (Textenc.number u) cumulative.(i)))
              upper;
            Buffer.add_string b "]";
            (match
               ( estimate_quantile ~upper ~cumulative ~count 0.5,
                 estimate_quantile ~upper ~cumulative ~count 0.95,
                 estimate_quantile ~upper ~cumulative ~count 0.99 )
             with
            | Some p50, Some p95, Some p99 ->
              Buffer.add_string b
                (Printf.sprintf ",\"quantiles\":{\"p50\":%s,\"p95\":%s,\"p99\":%s}"
                   (Textenc.number p50) (Textenc.number p95) (Textenc.number p99))
            | _ -> ()));
          Buffer.add_string b "}")
        f.samples;
      Buffer.add_string b "]}")
    (snapshot t);
  Buffer.add_string b "]}";
  Buffer.contents b
