(* pg_stat_statements-style per-shape accumulators. Entries key on the
   canonical core SQL the service already computes for the release store, so
   every suffix variant of one releasable core lands in one row. A single
   mutex guards the table: updates are one finished-request hash + a handful
   of field bumps, far off the per-operator hot path, and scrapes are rare. *)

type stage_stat = {
  mutable s_count : int;
  mutable s_sum_ns : float;
  mutable s_min_ns : float;
  mutable s_max_ns : float;
  s_buckets : int array; (* one per bound + overflow; bounds in seconds *)
}

type entry = {
  e_key : string;
  mutable calls : int;
  mutable granted : int;
  mutable replayed : int;
  mutable derived : int;
  mutable rejected : int;
  mutable refused : int;
  mutable failed : int;
  mutable rows : int;
  mutable epsilon : float;
  mutable delta : float;
  mutable first_ns : float;
  mutable last_ns : float;
  e_total : stage_stat;
  e_stages : (string, stage_stat) Hashtbl.t;
}

type t = {
  lock : Mutex.t;
  capacity : int;
  bounds : float array; (* seconds, shared by every histogram *)
  entries : (string, entry) Hashtbl.t;
  mutable evicted : int;
}

type outcome = [ `Granted | `Replayed | `Derived | `Rejected | `Refused | `Failed ]

let create ?(capacity = 512) ?bounds () =
  if capacity < 1 then invalid_arg "Statements.create: capacity must be >= 1";
  let bounds = match bounds with Some b -> b | None -> Registry.log_buckets () in
  {
    lock = Mutex.create ();
    capacity;
    bounds;
    entries = Hashtbl.create 64;
    evicted = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let fresh_stat t =
  {
    s_count = 0;
    s_sum_ns = 0.0;
    s_min_ns = infinity;
    s_max_ns = 0.0;
    s_buckets = Array.make (Array.length t.bounds + 1) 0;
  }

(* first bucket whose bound admits [v]; the overflow slot otherwise *)
let bucket_of bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe t st ns =
  st.s_count <- st.s_count + 1;
  st.s_sum_ns <- st.s_sum_ns +. ns;
  if ns < st.s_min_ns then st.s_min_ns <- ns;
  if ns > st.s_max_ns then st.s_max_ns <- ns;
  let b = bucket_of t.bounds (ns *. 1e-9) in
  st.s_buckets.(b) <- st.s_buckets.(b) + 1

(* Least-called entry loses its slot; ties break toward the one idle longest. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ e ->
      match !victim with
      | None -> victim := Some e
      | Some v ->
        if e.calls < v.calls || (e.calls = v.calls && e.last_ns < v.last_ns) then victim := Some e)
    t.entries;
  match !victim with
  | None -> ()
  | Some v ->
    Hashtbl.remove t.entries v.e_key;
    t.evicted <- t.evicted + 1

let record t ~now_ns ~key ~(outcome : outcome) ?(stages = []) ?(rows = 0) ?(epsilon = 0.0)
    ?(delta = 0.0) ~total_ns () =
  with_lock t (fun () ->
      let e =
        match Hashtbl.find_opt t.entries key with
        | Some e -> e
        | None ->
          if Hashtbl.length t.entries >= t.capacity then evict_one t;
          let e =
            {
              e_key = key;
              calls = 0;
              granted = 0;
              replayed = 0;
              derived = 0;
              rejected = 0;
              refused = 0;
              failed = 0;
              rows = 0;
              epsilon = 0.0;
              delta = 0.0;
              first_ns = now_ns;
              last_ns = now_ns;
              e_total = fresh_stat t;
              e_stages = Hashtbl.create 8;
            }
          in
          Hashtbl.replace t.entries key e;
          e
      in
      e.calls <- e.calls + 1;
      (match outcome with
      | `Granted -> e.granted <- e.granted + 1
      | `Replayed -> e.replayed <- e.replayed + 1
      | `Derived -> e.derived <- e.derived + 1
      | `Rejected -> e.rejected <- e.rejected + 1
      | `Refused -> e.refused <- e.refused + 1
      | `Failed -> e.failed <- e.failed + 1);
      e.rows <- e.rows + rows;
      e.epsilon <- e.epsilon +. epsilon;
      e.delta <- e.delta +. delta;
      e.last_ns <- now_ns;
      observe t e.e_total total_ns;
      List.iter
        (fun (name, ns) ->
          let st =
            match Hashtbl.find_opt e.e_stages name with
            | Some st -> st
            | None ->
              let st = fresh_stat t in
              Hashtbl.replace e.e_stages name st;
              st
          in
          observe t st ns)
        stages)

(* --- snapshots ----------------------------------------------------------------- *)

type stage_view = {
  stage : string;
  count : int;
  sum_ns : float;
  min_ns : float;
  max_ns : float;
  p50 : float option; (* seconds, estimated from the log buckets *)
  p95 : float option;
  p99 : float option;
}

type view = {
  key : string;
  calls : int;
  granted : int;
  replayed : int;
  derived : int;
  rejected : int;
  refused : int;
  failed : int;
  rows : int;
  epsilon : float;
  delta : float;
  first_ns : float;
  last_ns : float;
  total : stage_view;
  stages : stage_view list; (* sorted by stage name *)
}

let stage_view t name st =
  let n = Array.length t.bounds in
  let cumulative = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + st.s_buckets.(i);
    cumulative.(i) <- !acc
  done;
  let q p = Registry.estimate_quantile ~upper:t.bounds ~cumulative ~count:st.s_count p in
  {
    stage = name;
    count = st.s_count;
    sum_ns = st.s_sum_ns;
    min_ns = (if st.s_count = 0 then 0.0 else st.s_min_ns);
    max_ns = st.s_max_ns;
    p50 = q 0.5;
    p95 = q 0.95;
    p99 = q 0.99;
  }

let snapshot ?limit t =
  with_lock t (fun () ->
      let views =
        Hashtbl.fold
          (fun _ e acc ->
            let stages =
              Hashtbl.fold (fun name st acc -> stage_view t name st :: acc) e.e_stages []
              |> List.sort (fun a b -> String.compare a.stage b.stage)
            in
            {
              key = e.e_key;
              calls = e.calls;
              granted = e.granted;
              replayed = e.replayed;
              derived = e.derived;
              rejected = e.rejected;
              refused = e.refused;
              failed = e.failed;
              rows = e.rows;
              epsilon = e.epsilon;
              delta = e.delta;
              first_ns = e.first_ns;
              last_ns = e.last_ns;
              total = stage_view t "total" e.e_total;
              stages;
            }
            :: acc)
          t.entries []
      in
      let views =
        List.sort
          (fun a b ->
            (* busiest shapes first: total time spent, then calls, then key *)
            match compare b.total.sum_ns a.total.sum_ns with
            | 0 -> ( match compare b.calls a.calls with 0 -> String.compare a.key b.key | c -> c)
            | c -> c)
          views
      in
      match limit with
      | Some n when n >= 0 && List.length views > n -> List.filteri (fun i _ -> i < n) views
      | _ -> views)

let size t = with_lock t (fun () -> Hashtbl.length t.entries)
let evictions t = with_lock t (fun () -> t.evicted)

let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.entries;
      t.evicted <- 0)

(* --- JSON ---------------------------------------------------------------------- *)

let buf_stage b (sv : stage_view) =
  Buffer.add_string b
    (Printf.sprintf "{\"stage\":\"%s\",\"count\":%d,\"sum_ns\":%s,\"min_ns\":%s,\"max_ns\":%s"
       (Textenc.json_escape sv.stage) sv.count (Textenc.number sv.sum_ns)
       (Textenc.number sv.min_ns) (Textenc.number sv.max_ns));
  (match (sv.p50, sv.p95, sv.p99) with
  | Some p50, Some p95, Some p99 ->
    Buffer.add_string b
      (Printf.sprintf ",\"p50_s\":%s,\"p95_s\":%s,\"p99_s\":%s" (Textenc.number p50)
         (Textenc.number p95) (Textenc.number p99))
  | _ -> ());
  Buffer.add_char b '}'

let to_json ?limit t =
  let views = snapshot ?limit t in
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"tracked\":%d,\"evicted\":%d,\"statements\":[" (size t) (evictions t));
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"key\":\"%s\",\"calls\":%d,\"granted\":%d,\"replayed\":%d,\"derived\":%d,\
            \"rejected\":%d,\"refused\":%d,\"failed\":%d,\"rows\":%d,\"epsilon_spent\":%s,\
            \"delta_spent\":%s,\"first_ns\":%s,\"last_ns\":%s,\"total\":"
           (Textenc.json_escape v.key) v.calls v.granted v.replayed v.derived v.rejected
           v.refused v.failed v.rows (Textenc.number v.epsilon) (Textenc.number v.delta)
           (Textenc.number v.first_ns) (Textenc.number v.last_ns));
      buf_stage b v.total;
      Buffer.add_string b ",\"stages\":[";
      List.iteri
        (fun j sv ->
          if j > 0 then Buffer.add_char b ',';
          buf_stage b sv)
        v.stages;
      Buffer.add_string b "]}")
    views;
  Buffer.add_string b "]}";
  Buffer.contents b
