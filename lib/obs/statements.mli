(** pg_stat_statements-style accumulators keyed on the canonical core SQL
    the service computes for the release store, so every post-processing
    suffix variant of one releasable core aggregates into a single row.

    Each row tracks calls, the outcome mix (granted / replayed / derived /
    rejected / refused / failed), rows returned, cumulative ε/δ charged to
    the shape, and per-stage latency (count, sum, min, max plus a log-bucket
    histogram from which p50/p95/p99 are estimated at snapshot time).

    Capacity is bounded: when a new shape arrives at capacity, the
    least-called entry is evicted (ties break toward the one idle longest).

    Privacy note: rows key on canonical SQL text, which names private tables
    and predicates — this surface is for the operator-only loopback scrape
    and must never reach the unauthenticated wire (see DESIGN.md "Telemetry
    and privacy"). *)

type t

type outcome = [ `Granted | `Replayed | `Derived | `Rejected | `Refused | `Failed ]

val create : ?capacity:int -> ?bounds:float array -> unit -> t
(** [capacity] defaults to 512 tracked shapes; [bounds] (seconds) default to
    {!Registry.log_buckets}[ ()]. *)

val record :
  t ->
  now_ns:float ->
  key:string ->
  outcome:outcome ->
  ?stages:(string * float) list ->
  ?rows:int ->
  ?epsilon:float ->
  ?delta:float ->
  total_ns:float ->
  unit ->
  unit
(** Fold one finished request into the shape's row. [stages] are
    [(name, duration_ns)] pairs; [total_ns] feeds the per-shape total
    histogram. Thread-safe. *)

(** {2 Snapshots} *)

type stage_view = {
  stage : string;
  count : int;
  sum_ns : float;
  min_ns : float;  (** 0. when the stage was never observed *)
  max_ns : float;
  p50 : float option;  (** seconds, estimated from the log buckets *)
  p95 : float option;
  p99 : float option;
}

type view = {
  key : string;
  calls : int;
  granted : int;
  replayed : int;
  derived : int;
  rejected : int;
  refused : int;
  failed : int;
  rows : int;
  epsilon : float;
  delta : float;
  first_ns : float;
  last_ns : float;
  total : stage_view;
  stages : stage_view list;  (** sorted by stage name *)
}

val snapshot : ?limit:int -> t -> view list
(** Busiest shapes first (total time, then calls), truncated to [limit]. *)

val size : t -> int
val evictions : t -> int
val reset : t -> unit

val to_json : ?limit:int -> t -> string
(** [{"tracked":..,"evicted":..,"statements":[{"key",..,"total":{..},"stages":[..]}]}]. *)
