(** Tiny shared encoders for the registry and span renderers — the obs
    library is dependency-free, so it carries its own JSON string escaping
    and number formatting (mirroring the service's [Json] conventions: exact
    float round-trip, integers rendered without a fraction). *)

val json_escape : string -> string
(** The body of a JSON string literal (no surrounding quotes): escapes
    backslash, double quote, and control characters. *)

val number : float -> string
(** Compact exact decimal: integers as [%.0f], everything else via the
    shortest of %.17g/%.16g/%.15g that round-trips; non-finite values render
    as [0] (they never appear in well-formed metrics). *)

val prom_label_escape : string -> string
(** Prometheus label-value escaping: backslash, double quote, newline. *)

val prom_help_escape : string -> string
(** Prometheus HELP-text escaping: backslash and newline. *)
