(* A wall clock pushed through a global high-water mark. [Atomic] on a boxed
   float is fine here: [compare_and_set] compares the box we just read, so
   the only lost updates are races where another domain already published a
   larger (or equal) value — exactly the ones we can discard. *)

let watermark = Atomic.make 0.0

let rec publish raw =
  let seen = Atomic.get watermark in
  if raw <= seen then seen
  else if Atomic.compare_and_set watermark seen raw then raw
  else publish raw

let now_ns () = publish (Unix.gettimeofday () *. 1e9)

let elapsed_ns t0 = Float.max 0.0 (now_ns () -. t0)
