type t = {
  name : string;
  start_ns : float;
  mutable end_ns : float; (* 0. = still open *)
  mutable rev_children : t list;
  lock : Mutex.t; (* the root's mutex, shared by the whole tree *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let root name =
  { name; start_ns = Clock.now_ns (); end_ns = 0.0; rev_children = []; lock = Mutex.create () }

let enter parent name =
  let child =
    { name; start_ns = Clock.now_ns (); end_ns = 0.0; rev_children = []; lock = parent.lock }
  in
  with_lock parent (fun () -> parent.rev_children <- child :: parent.rev_children);
  child

let finish t =
  let now = Clock.now_ns () in
  with_lock t (fun () -> if t.end_ns = 0.0 then t.end_ns <- now)

let timed parent name f =
  match parent with
  | None -> f None
  | Some p ->
    let child = enter p name in
    Fun.protect ~finally:(fun () -> finish child) (fun () -> f (Some child))

type view = { name : string; start_ns : float; duration_ns : float; children : view list }

let view t =
  let rec snap (s : t) =
    {
      name = s.name;
      start_ns = s.start_ns;
      duration_ns = (if s.end_ns = 0.0 then 0.0 else Float.max 0.0 (s.end_ns -. s.start_ns));
      children = List.rev_map snap s.rev_children;
    }
  in
  with_lock t (fun () -> snap t)

let rec find v path =
  match path with
  | [] -> Some v
  | name :: rest -> (
    match List.find_opt (fun c -> c.name = name) v.children with
    | Some c -> find c rest
    | None -> None)

let duration_of v path = match find v path with Some s -> s.duration_ns | None -> 0.0

let to_json v =
  let b = Buffer.create 256 in
  let rec go v =
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"start_ns\":%s,\"duration_ns\":%s,\"children\":["
         (Textenc.json_escape v.name) (Textenc.number v.start_ns) (Textenc.number v.duration_ns));
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        go c)
      v.children;
    Buffer.add_string b "]}"
  in
  go v;
  Buffer.contents b
