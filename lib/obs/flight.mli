(** A fixed-size flight recorder: the last N finished requests with their
    span trees, analyst, outcome and budget charge, so a slow or anomalous
    request from minutes ago is reconstructable without grepping audit logs.

    Writes are lock-striped across 8 independent rings keyed on a global
    atomic sequence number; snapshots merge the stripes newest-first. Memory
    is bounded by [capacity] records.

    Privacy note: records carry raw SQL and analyst names — operator-only
    loopback scrape, never the unauthenticated wire (see DESIGN.md
    "Telemetry and privacy"). *)

type t

type record = {
  seq : int;  (** global order; higher = newer *)
  ts_ns : float;
  id : string option;  (** client-supplied request id, when given *)
  analyst : string;
  sql : string;
  key : string option;  (** canonical statement key, when the query factored *)
  outcome : string;
  epsilon : float;
  delta : float;
  duration_ns : float;
  trace : Span.view option;
}

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 256 retained flights. *)

val capacity : t -> int

val record :
  t ->
  ts_ns:float ->
  ?id:string ->
  analyst:string ->
  sql:string ->
  ?key:string ->
  outcome:string ->
  ?epsilon:float ->
  ?delta:float ->
  duration_ns:float ->
  ?trace:Span.view ->
  unit ->
  unit
(** Append one finished request; the oldest record in the stripe is
    overwritten once the ring is full. Thread-safe. *)

val recorded : t -> int
(** Total records ever written (>= retained). *)

val snapshot : ?limit:int -> t -> record list
(** Newest first, truncated to [limit]. *)

val to_json : ?limit:int -> t -> string
(** [{"capacity":..,"recorded":..,"flights":[{..,"trace":{..}}]}]. *)
