(** A metrics registry: named counters, gauges and log-bucketed histograms,
    safe to update from any domain or systhread (updates are striped atomics
    on the hot path; registration and scraping take a mutex), exported as
    Prometheus text exposition and as JSON.

    Instruments with the same name and different [labels] land in one
    family (one [# TYPE] block); the kind must agree. Scrape-time values —
    remaining budgets, cache sizes, pool counters owned elsewhere — register
    a {!collect} callback instead of an instrument.

    Privacy note for DP deployments: nothing in this module looks at private
    data, but callers choose what they register. The service registers only
    operational series (request counts, latencies, budget accounting, cache
    and pool counters) — never query results or private-table row counts;
    see DESIGN.md "Telemetry and privacy". *)

type t

val create : unit -> t

module Counter : sig
  type t

  val inc : t -> float -> unit
  (** Add [v >= 0]; negative increments are ignored. *)

  val incr : t -> unit
  val value : t -> float
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
end

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float array -> string ->
  Histogram.t
(** [buckets] are the upper bounds (sorted ascending; a final [+Inf] bucket
    is implicit). Defaults to {!log_buckets}[ ()]. *)

val log_buckets : ?start:float -> ?factor:float -> ?count:int -> unit -> float array
(** Log-spaced bounds [start *. factor^i]: by default 24 buckets doubling
    from 1 microsecond, covering ~1us to ~8.4s of latency in seconds. *)

val estimate_quantile :
  upper:float array -> cumulative:int array -> count:int -> float -> float option
(** Histogram quantile estimate: linear interpolation inside the bucket the
    rank lands in (the first bucket's lower bound is 0); ranks beyond the
    last finite bound clamp to that bound. [None] when [count <= 0]. *)

val collect :
  t -> ?help:string -> kind:[ `Counter | `Gauge ] -> string ->
  (unit -> ((string * string) list * float) list) -> unit
(** Register a callback sampled at every scrape: it returns one
    [(labels, value)] per series. Exceptions in callbacks drop that family's
    samples for the scrape instead of failing it. *)

(** {2 Scraping} *)

type value =
  | Sample of float
  | Hist of { upper : float array; cumulative : int array; count : int; sum : float }
      (** [cumulative.(i)] counts observations [<= upper.(i)]; [count] is
          the [+Inf] total. *)

type sample = { labels : (string * string) list; value : value }
type family = { name : string; help : string; kind : string; samples : sample list }

val snapshot : t -> family list
(** Families in registration order; kind is ["counter"], ["gauge"] or
    ["histogram"]. *)

val to_prometheus : t -> string
(** Prometheus text exposition format (version 0.0.4). *)

val to_json : t -> string
(** [{"families":[{"name","kind","help","samples":[...]}]}]; histogram
    samples carry [count]/[sum]/[buckets] plus estimated
    [quantiles.{p50,p95,p99}] whenever [count > 0]. *)
