module Ast = Flex_sql.Ast
module Vec = Row_vec

(* Query evaluation over a Database. The executor plays the role of the
   paper's "existing database": FLEX only parses queries and post-processes
   results, so the engine implements ordinary SQL semantics with no privacy
   awareness.

   This is the compiled/vectorized pipeline: every expression is compiled
   once per relation into a closure with column offsets pre-resolved
   ({!Compiled}), rows travel in dynamic-array vectors ({!Row_vec}), and
   joins/grouping/distinct/set-ops share one [Value.t array]-keyed hashtable
   ({!Row_table}). The row-at-a-time seed interpreter survives as
   {!Reference}, the differential-testing oracle: both pipelines must return
   identical result sets, values and row order. *)

exception Error = Compiled.Error

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* An intermediate relation: each column carries an optional relation alias
   used for qualified references. *)
type header = Compiled.header = { alias : string option; name : string }

type rel = { headers : header array; rows : Value.t array list }

type result_set = { columns : string list; rows : Value.t array list }

let resolve_opt = Compiled.resolve_opt

(* Internal vectorized relation; converted to the list-of-rows [result_set]
   only at the public boundary. *)
type vrel = { vh : header array; vr : Value.t array Vec.t }

let to_result (r : vrel) =
  { columns = Array.to_list (Array.map (fun h -> h.name) r.vh); rows = Vec.to_list r.vr }

(* --- evaluation environment ---------------------------------------------- *)

type env = {
  db : Database.t;
  ctes : (string * vrel) list;
  (* enclosing query scopes, innermost first: correlated subqueries resolve
     free column references against these *)
  outer : (header array * Value.t array) list;
  (* shared domain pool for morsel-parallel operators; [None] runs the pure
     sequential pipeline. Subqueries inherit the pool, and a parallel
     operator reached from inside another one degrades to sequential through
     the pool's nested-submission rule. *)
  pool : Task_pool.t option;
  (* EXPLAIN ANALYZE collection: when set, plan evaluation records one
     {!Plan.Analyze.stat} per operator, keyed by the path scheme shared with
     the plan renderer. [None] (every normal run) costs nothing — no clock
     reads, no table writes. *)
  trace : Plan.Analyze.trace option;
}

(* Equality key pairs (left index, right index) extracted from an ON
   condition; remaining conjuncts are evaluated on the combined row. *)
let split_join_condition lheaders rheaders (e : Ast.expr) =
  let conjuncts = Ast.conjuncts e in
  let try_pair = function
    | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) -> (
      match (resolve_opt lheaders a, resolve_opt rheaders b) with
      | Some li, Some ri -> Some (li, ri)
      | _ -> (
        match (resolve_opt lheaders b, resolve_opt rheaders a) with
        | Some li, Some ri -> Some (li, ri)
        | _ -> None))
    | _ -> None
  in
  List.fold_left
    (fun (keys, rest) c ->
      match try_pair c with
      | Some pair -> (pair :: keys, rest)
      | None -> (keys, c :: rest))
    ([], []) conjuncts

let expand_projections = Compiled.expand_projections

let has_aggregate e =
  Ast.fold_expr (fun acc e -> acc || match e with Ast.Agg _ -> true | _ -> false) false e

(* ORDER BY may reference source columns that are not projected (standard
   SQL). A key is "visible" when it resolves against the output relation
   and needs no hidden-projection trick. *)
let order_key_visible (vh : header array) (e : Ast.expr) =
  (not (has_aggregate e))
  && List.for_all (fun c -> resolve_opt vh c <> None) (Ast.expr_columns e)

(* --- columnar fast path ------------------------------------------------------ *)

(* The columnar engine takes over only in plain top-level evaluation: bound
   CTEs could shadow the base tables it reads, correlated scopes and
   EXPLAIN ANALYZE need the row operators. Accepted queries return
   bit-identical results (enforced by the 3-way differential suite), so the
   fallback to the row body below each gate is a pure perf decision. *)
let columnar_env_ok env =
  !Columnar.enabled && env.ctes = [] && env.outer = [] && env.trace = None

let columnar_rel (r : Columnar.result_set) : vrel =
  { vh = r.chead; vr = r.crows }

(* Scan-time column pruning (projection pushdown). When a select joins two or
   more relations, base-table scans keep only columns whose name is mentioned
   somewhere in the query (including inside subqueries), so joined rows stay
   narrow. Name-based and conservative: a kept name is kept in every relation
   that has it, which preserves unqualified first-match resolution exactly.
   [None] = keep everything (single-relation FROM, [*] projection, NATURAL
   join). *)
type prune = {
  keep_names : (string, unit) Hashtbl.t;
  keep_whole : (string, unit) Hashtbl.t; (* relations projected via [t.*] *)
}

let prune_of_select (s : Ast.select) : prune option =
  let multi =
    match s.from with
    | [] | [ Ast.Table _ ] | [ Ast.Derived _ ] -> false
    | _ -> true
  in
  if not multi then None
  else begin
    let exception Keep_all in
    let keep_names = Hashtbl.create 32 and keep_whole = Hashtbl.create 4 in
    let add_ref (c : Ast.col_ref) =
      Hashtbl.replace keep_names (String.lowercase_ascii c.column) ()
    in
    let add_expr e = List.iter add_ref (Ast.deep_expr_columns e) in
    try
      List.iter
        (function
          | Ast.Proj_star -> raise Keep_all
          | Ast.Proj_table_star t ->
            Hashtbl.replace keep_whole (String.lowercase_ascii t) ()
          | Ast.Proj_expr (e, _) -> add_expr e)
        s.projections;
      Option.iter add_expr s.where;
      List.iter add_expr s.group_by;
      Option.iter add_expr s.having;
      let rec walk = function
        | Ast.Table _ -> ()
        | Ast.Derived { query; _ } -> List.iter add_ref (Ast.columns_of_query query)
        | Ast.Join { left; right; cond; _ } ->
          (match cond with
          | Ast.On e -> add_expr e
          | Ast.Using cols ->
            List.iter
              (fun c -> Hashtbl.replace keep_names (String.lowercase_ascii c) ())
              cols
          | Ast.Natural -> raise Keep_all (* needs both sides' full column lists *)
          | Ast.Cond_none -> ());
          walk left;
          walk right
      in
      List.iter walk s.from;
      Some { keep_names; keep_whole }
    with Keep_all -> None
  end

let check_arity op (l : vrel) (r : vrel) =
  if Array.length l.vh <> Array.length r.vh then
    error "%s operands have different column counts" op

(* --- the compiled pipeline ------------------------------------------------- *)

(* [compile_expr env headers ?agg e]: compile [e] once against [headers];
   subqueries inside [e] evaluate through [eval_query] with the current row
   pushed as the innermost scope. *)
let rec compile_expr env (headers : header array) ?agg (e : Ast.expr) : Compiled.t =
  Compiled.compile
    ~subquery:(fun q row ->
      let r = eval_query { env with outer = (headers, row) :: env.outer } q in
      (Array.length r.vh, Vec.to_list r.vr))
    ?agg ~headers ~outer:env.outer e

(* --- table references ----------------------------------------------------- *)

and rel_of_table ~alias ~prune (t : Table.t) : vrel =
  let qualifier = match alias with Some a -> Some a | None -> Some (Table.name t) in
  let cols = Table.columns t in
  let keep =
    match prune with
    | None -> None
    | Some p ->
      let q =
        match qualifier with Some q -> String.lowercase_ascii q | None -> ""
      in
      if Hashtbl.mem p.keep_whole q then None
      else begin
        let idx = ref [] in
        Array.iteri
          (fun j name -> if Hashtbl.mem p.keep_names name then idx := j :: !idx)
          cols;
        let idx = Array.of_list (List.rev !idx) in
        if Array.length idx = Array.length cols then None else Some idx
      end
  in
  match keep with
  | None ->
    {
      vh = Array.map (fun name -> { alias = qualifier; name }) cols;
      vr = Vec.of_array (Table.rows t);
    }
  | Some idx ->
    {
      vh = Array.map (fun j -> { alias = qualifier; name = cols.(j) }) idx;
      vr =
        Vec.of_array
          (Array.map
             (fun row -> Array.map (fun j -> Array.unsafe_get row j) idx)
             (Table.rows t));
    }

and requalify alias (r : vrel) =
  { r with vh = Array.map (fun h -> { h with alias = Some alias }) r.vh }

and eval_table_ref env ~prune (tr : Ast.table_ref) : vrel =
  match tr with
  | Ast.Table { name; alias } -> (
    match List.assoc_opt (String.lowercase_ascii name) env.ctes with
    | Some r -> requalify (Option.value alias ~default:name) r
    | None -> (
      match Database.find_opt env.db name with
      | Some t -> rel_of_table ~alias ~prune t
      | None -> error "unknown table %s" name))
  | Ast.Derived { query; alias } -> requalify alias (eval_query env query)
  | Ast.Join { kind; left; right; cond } ->
    let l = eval_table_ref env ~prune left in
    let r = eval_table_ref env ~prune right in
    join env kind l r cond

and join env kind ?(build_left = false) (l : vrel) (r : vrel) (cond : Ast.join_cond) : vrel =
  let headers = Array.append l.vh r.vh in
  let common_columns () =
    let rnames = Array.to_list (Array.map (fun h -> h.name) r.vh) in
    Array.to_list (Array.map (fun h -> h.name) l.vh)
    |> List.filter (fun n -> List.mem n rnames)
    |> List.sort_uniq compare
  in
  let keys, residual =
    match cond with
    | Ast.Cond_none -> ([], [])
    | Ast.On e -> split_join_condition l.vh r.vh e
    | Ast.Using _ | Ast.Natural ->
      let cols = match cond with Ast.Using cols -> cols | _ -> common_columns () in
      let pairs =
        List.map
          (fun c ->
            let cr = { Ast.table = None; column = c } in
            match (resolve_opt l.vh cr, resolve_opt r.vh cr) with
            | Some li, Some ri -> (li, ri)
            | _ -> error "USING column %s not present on both sides" c)
          cols
      in
      (pairs, [])
  in
  (* residual conjuncts compiled once against the combined row *)
  let residuals = List.map (compile_expr env headers) residual in
  let residual_ok combined =
    List.for_all (fun c -> Eval.is_truthy (c combined)) residuals
  in
  let lw = Array.length l.vh and rw = Array.length r.vh in
  let null_row n = Array.make n Value.Null in
  let pool = env.pool in
  (* Build/probe orientation. The engine's historical shape probes the left
     relation against a hash table built on the right; the optimizer's
     cost model may flip that ([build_left]) when the left input is the
     estimated-smaller one. Either way output columns stay [left ++ right];
     with [build_left] the output row order follows the probe (right)
     relation, which is why optimized plans are compared as multisets. The
     nested-loop path has no build side and ignores the flag. *)
  let bl = build_left && kind <> Ast.Cross && keys <> [] in
  let probe_v = if bl then r.vr else l.vr in
  let build_v = if bl then l.vr else r.vr in
  let nb = Vec.length build_v in
  let bmatched = Array.make nb false in
  let pad_probe =
    if bl then kind = Ast.Right || kind = Ast.Full else kind = Ast.Left || kind = Ast.Full
  in
  let pad_build =
    if bl then kind = Ast.Left || kind = Ast.Full else kind = Ast.Right || kind = Ast.Full
  in
  let combine : Value.t array -> Value.t array -> Value.t array =
    if bl then fun prow brow -> Array.append brow prow
    else fun prow brow -> Array.append prow brow
  in
  let pad_probe_row =
    if bl then fun prow -> Array.append (null_row lw) prow
    else fun prow -> Array.append prow (null_row rw)
  in
  let pad_build_row =
    if bl then fun brow -> Array.append brow (null_row rw)
    else fun brow -> Array.append (null_row lw) brow
  in
  (* [probe emit]: stream the join output probe row by probe row,
     parallelised over morsels of the probe relation. [emit prow push]
     pushes every match for [prow] in build order and returns whether any
     matched; per-chunk outputs are concatenated in chunk order, so the
     result row order is identical to the sequential scan. [bmatched]
     writes race benignly across chunks (every write is [true], and reads
     happen only after the pool joins). *)
  let probe (emit : Value.t array -> (Value.t array -> unit) -> bool) :
      Value.t array Vec.t =
    let np = Vec.length probe_v in
    let chunk lo hi =
      let out = Vec.create () in
      for i = lo to hi - 1 do
        let prow = Vec.unsafe_get probe_v i in
        let matched = emit prow (Vec.push out) in
        if (not matched) && pad_probe then Vec.push out (pad_probe_row prow)
      done;
      out
    in
    match Parallel.gather pool np chunk with
    | None -> chunk 0 np
    | Some parts -> Vec.concat parts
  in
  let out =
    match (kind, keys) with
    | Ast.Cross, _ | _, [] ->
      (* Nested loop; used for cross joins and non-equality conditions. A Cross
         join can still carry equality keys (AST built directly): they must
         hold as ordinary SQL equalities, not drop every row. *)
      let keys_ok lrow rrow =
        List.for_all
          (fun (li, ri) ->
            match Value.sql_equal lrow.(li) rrow.(ri) with
            | Some true -> true
            | Some false | None -> false)
          keys
      in
      probe (fun lrow push ->
          let matched = ref false in
          for ri = 0 to nb - 1 do
            let rrow = Vec.unsafe_get build_v ri in
            let ok =
              match cond with
              | Ast.Cond_none -> true
              | _ -> residual_ok (Array.append lrow rrow) && keys_ok lrow rrow
            in
            if ok then begin
              matched := true;
              bmatched.(ri) <- true;
              push (Array.append lrow rrow)
            end
          done;
          !matched)
    | _, keys ->
      (* Hash join on the equality keys: key columns pre-extracted into int
         arrays, build side bucketed in a keyed table. Build-side indices are
         appended in scan order, so matches come out in the right relation's
         row order. Large build sides are hash-partitioned and built in
         parallel: all candidates for one key land in one partition, in
         ascending row order, so probes observe exactly the sequential build
         order. *)
      let pks = Array.of_list (List.map (if bl then snd else fst) keys) in
      let bks = Array.of_list (List.map (if bl then fst else snd) keys) in
      let nk = Array.length pks in
      if nk = 1 then begin
      (* single key column (the common case): scalar-keyed table, no per-row
         key array; when the build column holds only small ints (typical id
         join keys), an unboxed int-keyed table cuts hashing cost further *)
      let pk = pks.(0) and bk = bks.(0) in
      let all_small_int =
        let ok = ref true in
        Vec.iter
          (fun rrow ->
            let v = rrow.(bk) in
            if not (Value.is_null v || Row_table.small_int_key v) then ok := false)
          build_v;
        !ok
      in
      (* [iter_candidates v f] applies [f] to the build-side row indices whose
         key equals [v], in the right relation's row order. *)
      let iter_candidates : Value.t -> (int -> unit) -> unit =
        if all_small_int then begin
          let lo = ref max_int and hi = ref min_int and nkeys = ref 0 in
          Vec.iter
            (fun rrow ->
              match rrow.(bk) with
              | Value.Int k ->
                incr nkeys;
                if k < !lo then lo := k;
                if k > !hi then hi := k
              | _ -> ())
            build_v;
          let lo = !lo and hi = !hi in
          let range = if !nkeys = 0 then 0 else hi - lo + 1 in
          if range > 0 && range <= max 1024 (8 * nb) then begin
            (* dense id keys: counting-sort buckets, no hashing at all.
               [starts] is the exclusive prefix sum of per-key counts;
               [items] holds build row indices grouped by key, in row order. *)
            let starts = Array.make (range + 1) 0 in
            Vec.iter
              (fun rrow ->
                match rrow.(bk) with
                | Value.Int k -> starts.(k - lo + 1) <- starts.(k - lo + 1) + 1
                | _ -> ())
              build_v;
            for i = 1 to range do
              starts.(i) <- starts.(i) + starts.(i - 1)
            done;
            let items = Array.make !nkeys 0 in
            let fill = Array.sub starts 0 range in
            Vec.iteri
              (fun ri rrow ->
                match rrow.(bk) with
                | Value.Int k ->
                  let b = k - lo in
                  items.(fill.(b)) <- ri;
                  fill.(b) <- fill.(b) + 1
                | _ -> ())
              build_v;
            fun v f ->
              match Row_table.int_key_of v with
              | Some k when k >= lo && k <= hi ->
                for p = starts.(k - lo) to starts.(k - lo + 1) - 1 do
                  f items.(p)
                done
              | _ -> ()
          end
          else if Parallel.parallel_worthy pool nb then begin
            (* sparse int keys, large build side: hash-partitioned parallel
               build into per-partition unboxed tables. Each partition's rows
               arrive in ascending row order, so candidate order per key is
               identical to the sequential build. *)
            let parts = Parallel.partition_count pool in
            let mask = parts - 1 in
            let pidx =
              Parallel.partition ?pool ~partitions:parts
                (fun ri ->
                  match (Vec.unsafe_get build_v ri).(bk) with
                  | Value.Int k -> k land mask
                  | _ -> 0)
                nb
            in
            let tbls =
              Array.init parts (fun _ -> Row_table.Int_key.create (max 16 (nb / parts)))
            in
            Parallel.tasks pool ~n:parts (fun p ->
                let tbl = tbls.(p) in
                Vec.iter
                  (fun ri ->
                    match (Vec.unsafe_get build_v ri).(bk) with
                    | Value.Int k -> (
                      match Row_table.Int_key.find_opt tbl k with
                      | Some cell -> Vec.push cell ri
                      | None ->
                        let cell = Vec.create () in
                        Vec.push cell ri;
                        Row_table.Int_key.replace tbl k cell)
                    | _ -> ())
                  pidx.(p));
            fun v f ->
              match Row_table.int_key_of v with
              | None -> ()
              | Some k -> (
                match Row_table.Int_key.find_opt tbls.(k land mask) k with
                | None -> ()
                | Some cell -> Vec.iter f cell)
          end
          else begin
            (* sparse int keys: unboxed int-keyed hashtable *)
            let tbl : int Vec.t Row_table.Int_key.t =
              Row_table.Int_key.create (max 16 nb)
            in
            Vec.iteri
              (fun ri rrow ->
                match rrow.(bk) with
                | Value.Int k -> (
                  match Row_table.Int_key.find_opt tbl k with
                  | Some cell -> Vec.push cell ri
                  | None ->
                    let cell = Vec.create () in
                    Vec.push cell ri;
                    Row_table.Int_key.replace tbl k cell)
                | _ -> ())
              build_v;
            fun v f ->
              match Row_table.int_key_of v with
              | None -> ()
              | Some k -> (
                match Row_table.Int_key.find_opt tbl k with
                | None -> ()
                | Some cell -> Vec.iter f cell)
          end
        end
        else if Parallel.parallel_worthy pool nb then begin
          (* general scalar keys, large build side: hash-partitioned parallel
             build. Partitioning uses {!Value.hash} — consistent with SQL
             equality (Int 2 = Float 2.0), so probe and build always agree on
             the partition. *)
          let parts = Parallel.partition_count pool in
          let mask = parts - 1 in
          let pidx =
            Parallel.partition ?pool ~partitions:parts
              (fun ri ->
                let v = (Vec.unsafe_get build_v ri).(bk) in
                if Value.is_null v then 0 else Value.hash v land mask)
              nb
          in
          let tbls =
            Array.init parts (fun _ -> Row_table.Scalar.create (max 16 (nb / parts)))
          in
          Parallel.tasks pool ~n:parts (fun p ->
              let tbl = tbls.(p) in
              Vec.iter
                (fun ri ->
                  let v = (Vec.unsafe_get build_v ri).(bk) in
                  if not (Value.is_null v) then
                    match Row_table.Scalar.find_opt tbl v with
                    | Some cell -> Vec.push cell ri
                    | None ->
                      let cell = Vec.create () in
                      Vec.push cell ri;
                      Row_table.Scalar.replace tbl v cell)
                pidx.(p));
          fun v f ->
            match Row_table.Scalar.find_opt tbls.(Value.hash v land mask) v with
            | None -> ()
            | Some cell -> Vec.iter f cell
        end
        else begin
          let tbl : int Vec.t Row_table.Scalar.t =
            Row_table.Scalar.create (max 16 nb)
          in
          Vec.iteri
            (fun ri rrow ->
              let v = rrow.(bk) in
              if not (Value.is_null v) then
                match Row_table.Scalar.find_opt tbl v with
                | Some cell -> Vec.push cell ri
                | None ->
                  let cell = Vec.create () in
                  Vec.push cell ri;
                  Row_table.Scalar.replace tbl v cell)
            build_v;
          fun v f ->
            match Row_table.Scalar.find_opt tbl v with
            | None -> ()
            | Some cell -> Vec.iter f cell
        end
      in
      probe (fun prow push ->
          let matched = ref false in
          let v = prow.(pk) in
          (* NULL keys never match *)
          if not (Value.is_null v) then
            iter_candidates v (fun ri ->
                let combined = combine prow (Vec.unsafe_get build_v ri) in
                if residual_ok combined then begin
                  matched := true;
                  bmatched.(ri) <- true;
                  push combined
                end);
          !matched)
    end
    else begin
      (* [extract_into k ks row] fills [k]; false when any key column is NULL
         (NULL keys never match). *)
      let extract_into (k : Value.t array) ks (row : Value.t array) =
        let rec go i =
          i >= nk
          ||
          let v = row.(Array.unsafe_get ks i) in
          (not (Value.is_null v))
          && begin
               k.(i) <- v;
               go (i + 1)
             end
        in
        go 0
      in
      let find_candidates : Value.t array -> int Vec.t option =
        if Parallel.parallel_worthy pool nb then begin
          (* large build side: extract key tuples in parallel, hash-partition
             by {!Row_table.Key.hash} (consistent with the table's equality),
             build per-partition tables in parallel *)
          let rkeys = Array.make nb [||] in
          (* [[||]] marks a NULL in some key column: never inserted *)
          let fill lo hi =
            for ri = lo to hi - 1 do
              let k = Array.make nk Value.Null in
              if extract_into k bks (Vec.unsafe_get build_v ri) then rkeys.(ri) <- k
            done
          in
          (match Parallel.gather pool nb fill with
          | None -> fill 0 nb
          | Some (_ : unit array) -> ());
          let parts = Parallel.partition_count pool in
          let mask = parts - 1 in
          let pidx =
            Parallel.partition ?pool ~partitions:parts
              (fun ri ->
                let k = rkeys.(ri) in
                if Array.length k = 0 then 0 else Row_table.Key.hash k land mask)
              nb
          in
          let tbls = Array.init parts (fun _ -> Row_table.create (max 16 (nb / parts))) in
          Parallel.tasks pool ~n:parts (fun p ->
              let tbl = tbls.(p) in
              Vec.iter
                (fun ri ->
                  let k = rkeys.(ri) in
                  if Array.length k > 0 then
                    match Row_table.find_opt tbl k with
                    | Some cell -> Vec.push cell ri
                    | None ->
                      let cell = Vec.create () in
                      Vec.push cell ri;
                      Row_table.replace tbl k cell)
                pidx.(p));
          fun key -> Row_table.find_opt tbls.(Row_table.Key.hash key land mask) key
        end
        else begin
          let tbl : int Vec.t Row_table.t = Row_table.create (max 16 nb) in
          let scratch = Array.make nk Value.Null in
          Vec.iteri
            (fun ri rrow ->
              if extract_into scratch bks rrow then
                match Row_table.find_opt tbl scratch with
                | Some cell -> Vec.push cell ri
                | None ->
                  let cell = Vec.create () in
                  Vec.push cell ri;
                  Row_table.replace tbl (Array.copy scratch) cell)
            build_v;
          fun key -> Row_table.find_opt tbl key
        end
      in
      probe (fun prow push ->
          let matched = ref false in
          let scratch = Array.make nk Value.Null in
          (if extract_into scratch pks prow then
             match find_candidates scratch with
             | None -> ()
             | Some candidates ->
               Vec.iter
                 (fun ri ->
                   let combined = combine prow (Vec.unsafe_get build_v ri) in
                   if residual_ok combined then begin
                     matched := true;
                     bmatched.(ri) <- true;
                     push combined
                   end)
                 candidates);
          !matched)
    end
  in
  if pad_build then
    Vec.iteri
      (fun ri rrow -> if not bmatched.(ri) then Vec.push out (pad_build_row rrow))
      build_v;
  { vh = headers; vr = out }

(* --- select evaluation ----------------------------------------------------- *)

and cross_all env ~prune = function
  | [] -> { vh = [||]; vr = Vec.of_list [ [||] ] } (* FROM-less SELECT: one empty row *)
  | [ tr ] -> eval_table_ref env ~prune tr
  | tr :: rest ->
    List.fold_left
      (fun acc tr ->
        join env Ast.Cross acc (eval_table_ref env ~prune tr) Ast.Cond_none)
      (eval_table_ref env ~prune tr)
      rest

and eval_select env (s : Ast.select) : vrel =
  match if columnar_env_ok env then Columnar.select ?pool:env.pool env.db s else None with
  | Some r -> columnar_rel r
  | None -> eval_select_row env s

and eval_select_row env (s : Ast.select) : vrel =
  let source = cross_all env ~prune:(prune_of_select s) s.from in
  select_tail env source ~on_where:None ~where:s.where ~projections:s.projections
    ~group_by:s.group_by ~having:s.having ~distinct:s.distinct

(* The select pipeline after the source relation is materialised: WHERE
   filter, projection or grouping/aggregation, HAVING, DISTINCT. Shared by
   the AST path ({!eval_select}) and the plan path ({!eval_select_plan}). *)
and select_tail env (source : vrel) ~(on_where : (int -> unit) option)
    ~(where : Ast.expr option)
    ~(projections : Ast.projection list) ~(group_by : Ast.expr list)
    ~(having : Ast.expr option) ~distinct : vrel =
  let filtered =
    match where with
    | None -> source.vr
    | Some pred ->
      let cp = compile_expr env source.vh pred in
      let f = Parallel.filter ?pool:env.pool (fun row -> Eval.is_truthy (cp row)) source.vr in
      (match on_where with Some cb -> cb (Vec.length f) | None -> ());
      f
  in
  let projections = expand_projections source.vh projections in
  let any_agg =
    List.exists (fun (e, _) -> has_aggregate e) projections
    || (match having with Some h -> has_aggregate h | None -> false)
  in
  let out_headers =
    Array.of_list (List.map (fun (_, name) -> { alias = None; name }) projections)
  in
  let rows =
    if group_by = [] && not any_agg then begin
      (* plain projection *)
      let cps =
        Array.of_list (List.map (fun (e, _) -> compile_expr env source.vh e) projections)
      in
      Parallel.map ?pool:env.pool (fun row -> Array.map (fun c -> c row) cps) filtered
    end
    else begin
      (* grouped path; an aggregate query without GROUP BY is a single group *)
      let pool = env.pool in
      let kcs = Array.of_list (List.map (compile_expr env source.vh) group_by) in
      let nfiltered = Vec.length filtered in
      let in_order : Value.t array Vec.t Vec.t = Vec.create () in
      (if Array.length kcs = 0 then
         (* no GROUP BY: every row (possibly none) forms the single group *)
         Vec.push in_order filtered
       else if Parallel.parallel_worthy pool nfiltered then begin
         (* parallel grouping: evaluate keys in parallel, hash-partition row
            indices (each partition keeps its indices in ascending order),
            group every partition independently, then restore the sequential
            group order by sorting on each group's first row index. Rows
            enter their group in ascending row order, so per-group aggregate
            evaluation order — and with it float SUM/AVG results — is
            exactly the sequential one. *)
         let keyfn =
           if Array.length kcs = 1 then begin
             let kc = kcs.(0) in
             fun row -> [| kc row |]
           end
           else fun row -> Array.map (fun c -> c row) kcs
         in
         let keys = Parallel.map_to_array ?pool ~dummy:[||] keyfn filtered in
         let parts = Parallel.partition_count pool in
         let mask = parts - 1 in
         let pidx =
           Parallel.partition ?pool ~partitions:parts
             (fun i -> Row_table.Key.hash keys.(i) land mask)
             nfiltered
         in
         let per_part = Array.make parts [||] in
         Parallel.tasks pool ~n:parts (fun p ->
             let acc = Vec.create () in
             let groups : Value.t array Vec.t Row_table.t = Row_table.create 64 in
             Vec.iter
               (fun i ->
                 let row = Vec.unsafe_get filtered i in
                 match Row_table.find_opt groups keys.(i) with
                 | Some cell -> Vec.push cell row
                 | None ->
                   let cell = Vec.create () in
                   Vec.push cell row;
                   Row_table.replace groups keys.(i) cell;
                   Vec.push acc (i, cell))
               pidx.(p);
             per_part.(p) <- Vec.to_array acc);
         let all = Array.concat (Array.to_list per_part) in
         (* first-occurrence row indices are distinct, so a plain sort fully
            determines the group order *)
         Array.sort (fun (a, _) (b, _) -> compare (a : int) b) all;
         Array.iter (fun ((_ : int), cell) -> Vec.push in_order cell) all
       end
       else if Array.length kcs = 1 then begin
         (* single grouping key: scalar-keyed table, no per-row key array *)
         let kc = kcs.(0) in
         let groups : Value.t array Vec.t Row_table.Scalar.t =
           Row_table.Scalar.create 64
         in
         Vec.iter
           (fun row ->
             let key = kc row in
             match Row_table.Scalar.find_opt groups key with
             | Some cell -> Vec.push cell row
             | None ->
               let cell = Vec.create () in
               Vec.push cell row;
               Row_table.Scalar.replace groups key cell;
               Vec.push in_order cell)
           filtered
       end
       else begin
         let groups : Value.t array Vec.t Row_table.t = Row_table.create 64 in
         Vec.iter
           (fun row ->
             let key = Array.map (fun c -> c row) kcs in
             match Row_table.find_opt groups key with
             | Some cell -> Vec.push cell row
             | None ->
               let cell = Vec.create () in
               Vec.push cell row;
               Row_table.replace groups key cell;
               Vec.push in_order cell)
           filtered
       end);
      (* [compute_slot sl grows n]: one aggregate over one group. A single
         huge group (aggregation without GROUP BY) parallelises inside the
         aggregate via per-chunk partial states — only for aggregates whose
         merge is exact ({!Aggregate.mergeable}); the merge itself reports
         failure (a float reached SUM) and recomputes sequentially. *)
      let compute_slot (sl : Compiled.agg_slot) (grows : Value.t array Vec.t) n =
        match sl.Compiled.arg with
        | None ->
          Aggregate.compute sl.Compiled.func ~distinct:sl.Compiled.distinct
            ~star:sl.Compiled.star ~nrows:n []
        | Some c ->
          (* stream argument values straight out of the group *)
          let sequential () =
            Aggregate.compute_iter sl.Compiled.func ~distinct:sl.Compiled.distinct
              ~star:sl.Compiled.star ~nrows:n
              ~iter:(fun f -> Vec.iter (fun row -> f (c row)) grows)
          in
          if
            not
              (Aggregate.mergeable sl.Compiled.func ~distinct:sl.Compiled.distinct
                 ~star:sl.Compiled.star)
          then sequential ()
          else begin
            match
              Parallel.gather pool n (fun lo hi ->
                  let st = Aggregate.Partial.create sl.Compiled.func in
                  for i = lo to hi - 1 do
                    Aggregate.Partial.add st (c (Vec.unsafe_get grows i))
                  done;
                  st)
            with
            | None -> sequential ()
            | Some parts -> (
              match Aggregate.Partial.merge parts with
              | Some v -> v
              | None -> sequential ())
          end
      in
      let src_width = Array.length source.vh in
      let ngroups = Vec.length in_order in
      (* HAVING and projections compiled once per chunk of groups: aggregate
         results flow through {!Compiled.agg_slots} — shared mutable state
         (set_group + Lazy.force) — so each parallel chunk needs its own
         compiled copy. Compilation is cheap next to evaluating even one
         group; the sequential path compiles exactly once, as before. *)
      let finalize lo hi =
        let slots = Compiled.make_slots () in
        let chaving = Option.map (compile_expr env source.vh ~agg:slots) having in
        let cps =
          Array.of_list
            (List.map (fun (e, _) -> compile_expr env source.vh ~agg:slots e) projections)
        in
        let slot_list = Array.of_list (Compiled.slots slots) in
        let out = Vec.create () in
        for g = lo to hi - 1 do
          let grows = Vec.unsafe_get in_order g in
          let n = Vec.length grows in
          let representative =
            if n > 0 then Vec.unsafe_get grows 0 else Array.make src_width Value.Null
          in
          (* slot values lazily, so aggregates behind a failed HAVING are
             never computed (matching the interpreter's on-demand memo) *)
          let values =
            Array.map
              (fun (sl : Compiled.agg_slot) -> lazy (compute_slot sl grows n))
              slot_list
          in
          Compiled.set_group slots values;
          let keep =
            match chaving with None -> true | Some c -> Eval.is_truthy (c representative)
          in
          if keep then Vec.push out (Array.map (fun c -> c representative) cps)
        done;
        out
      in
      match Parallel.gather pool ngroups finalize with
      | None -> finalize 0 ngroups
      | Some parts -> Vec.concat parts
    end
  in
  let rows = if distinct then Row_table.dedupe_rows rows else rows in
  { vh = out_headers; vr = rows }

(* --- set operations --------------------------------------------------------- *)

and set_op_rel (op : Plan.set_op) ~all (l : vrel) (r : vrel) : vrel =
  match op with
  | Plan.Union ->
    check_arity "UNION" l r;
    let out = Vec.create () in
    Vec.iter (Vec.push out) l.vr;
    Vec.iter (Vec.push out) r.vr;
    { vh = l.vh; vr = (if all then out else Row_table.dedupe_rows out) }
  | Plan.Except ->
    check_arity "EXCEPT" l r;
    if all then begin
      (* bag difference *)
      let counts = Row_table.counts_of r.vr in
      let rows =
        Vec.filter
          (fun row ->
            match Row_table.find_opt counts row with
            | Some c when !c > 0 ->
              decr c;
              false
            | _ -> true)
          l.vr
      in
      { vh = l.vh; vr = rows }
    end
    else begin
      let right = Row_table.counts_of r.vr in
      let rows =
        Row_table.dedupe_rows l.vr |> Vec.filter (fun row -> not (Row_table.mem right row))
      in
      { vh = l.vh; vr = rows }
    end
  | Plan.Intersect ->
    check_arity "INTERSECT" l r;
    let counts = Row_table.counts_of r.vr in
    if all then begin
      let rows =
        Vec.filter
          (fun row ->
            match Row_table.find_opt counts row with
            | Some c when !c > 0 ->
              decr c;
              true
            | _ -> false)
          l.vr
      in
      { vh = l.vh; vr = rows }
    end
    else begin
      let rows =
        Row_table.dedupe_rows l.vr |> Vec.filter (fun row -> Row_table.mem counts row)
      in
      { vh = l.vh; vr = rows }
    end

and eval_body env (b : Ast.body) : vrel =
  match b with
  | Ast.Select s -> eval_select env s
  | Ast.Union { all; left; right } ->
    let l = eval_body env left and r = eval_body env right in
    set_op_rel Plan.Union ~all l r
  | Ast.Except { all; left; right } ->
    let l = eval_body env left and r = eval_body env right in
    set_op_rel Plan.Except ~all l r
  | Ast.Intersect { all; left; right } ->
    let l = eval_body env left and r = eval_body env right in
    set_op_rel Plan.Intersect ~all l r

(* --- full queries ------------------------------------------------------------ *)

and bind_cte env ~name ~columns (r : vrel) : env =
  let r =
    if columns = [] then r
    else begin
      if List.length columns <> Array.length r.vh then
        error "CTE %s column list arity mismatch" name;
      {
        r with
        vh =
          Array.of_list
            (List.map (fun n -> { alias = None; name = String.lowercase_ascii n }) columns);
      }
    end
  in
  { env with ctes = (String.lowercase_ascii name, r) :: env.ctes }

and eval_query env (q : Ast.query) : vrel =
  match
    if columnar_env_ok env && q.ctes = [] then Columnar.query ?pool:env.pool env.db q
    else None
  with
  | Some r -> columnar_rel r
  | None -> eval_query_row env q

and eval_query_row env (q : Ast.query) : vrel =
  let env =
    List.fold_left
      (fun env (cte : Ast.cte) ->
        bind_cte env ~name:cte.cte_name ~columns:cte.cte_columns
          (eval_query env cte.cte_query))
      env q.ctes
  in
  (* When an order key does not resolve against the output relation,
     re-evaluate the select with the key appended as a hidden projection,
     sort, and strip the extra columns. Not available under DISTINCT, where
     SQL itself requires order keys to be projected. *)
  let r = eval_body env q.body in
  let visible = Array.length r.vh in
  let r, order_by =
    if q.order_by = [] || List.for_all (fun (e, _) -> order_key_visible r.vh e) q.order_by
    then (r, q.order_by)
    else
      match q.body with
      | Ast.Select s when not s.distinct ->
        let hidden = ref [] in
        let order_by =
          List.mapi
            (fun i (e, dir) ->
              if order_key_visible r.vh e then (e, dir)
              else begin
                let name = Fmt.str "_ord%d" i in
                hidden := Ast.Proj_expr (e, Some name) :: !hidden;
                (Ast.Col { Ast.table = None; column = name }, dir)
              end)
            q.order_by
        in
        let extended =
          eval_select env { s with projections = s.projections @ List.rev !hidden }
        in
        (extended, order_by)
      | _ -> (r, q.order_by)
  in
  sort_slice env r ~order_by ~limit:q.limit ~offset:q.offset ~visible

(* Decorate-sort-undecorate, hidden-column strip, and OFFSET/LIMIT slice —
   the tail every full query (AST or plan) runs through. [visible] is the
   projected width before hidden order keys were appended. *)
and sort_slice env (r : vrel) ~(order_by : (Ast.expr * Ast.order_dir) list)
    ~(limit : int option) ~(offset : int option) ~visible : vrel =
  let r =
    if order_by = [] then r
    else begin
      (* decorate-sort-undecorate with order keys precomputed (in parallel)
         through compiled expressions into per-key columns, then classified
         into typed arrays ({!Key_sort}) so comparisons run over unboxed
         ints/floats/strings. Sorting permutes indices, with the original
         index as the final tiebreak — a total order that reproduces
         [stable_sort] ties behaviour exactly. Under LIMIT, a bounded top-K
         heap selection replaces the full sort. *)
      let nkeys = List.length order_by in
      let dirs = Array.of_list (List.map snd order_by) in
      let keyfns =
        Array.of_list
          (List.map
             (fun (e, _) ->
               match e with
               | Ast.Lit (Ast.Int pos) when pos >= 1 && pos <= visible ->
                 fun (row : Value.t array) -> row.(pos - 1)
               | e -> compile_expr env r.vh e)
             order_by)
      in
      let n = Vec.length r.vr in
      let kcmps =
        Array.map
          (fun f ->
            Key_sort.compare_fn
              (Key_sort.of_values (Parallel.map_to_array ?pool:env.pool ~dummy:Value.Null f r.vr)))
          keyfns
      in
      let cmp a b =
        let rec go i =
          if i >= nkeys then compare (a : int) b
          else
            let c = kcmps.(i) a b in
            let c = match dirs.(i) with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      let order =
        (* only the first OFFSET + LIMIT rows survive the slice below, so
           under a LIMIT that keeps fewer rows than exist, select instead of
           sorting everything *)
        let wanted =
          match limit with
          | None -> None
          | Some l ->
            let k = max 0 (Option.value offset ~default:0) + max 0 l in
            if k < n then Some k else None
        in
        Key_sort.sorted ~cmp ~n ~wanted
      in
      { r with vr = Vec.of_array (Array.map (fun i -> Vec.unsafe_get r.vr i) order) }
    end
  in
  (* strip hidden order columns *)
  let r =
    if Array.length r.vh = visible then r
    else
      { vh = Array.sub r.vh 0 visible; vr = Vec.map (fun row -> Array.sub row 0 visible) r.vr }
  in
  let vr = Vec.slice r.vr ~offset:(Option.value offset ~default:0) ~limit in
  { r with vr }

(* --- logical-plan evaluation ------------------------------------------------- *)

(* Scan pruning over a plan source, mirroring {!prune_of_select}: only when
   the source tree actually joins (a pushed-down [Filter] over a single scan
   does not narrow anything worth the copy). Filter predicates and join
   conditions contribute to the kept-name set, so pushed predicates never
   lose their columns. *)
and prune_of_select_plan (sp : Plan.select_plan) : prune option =
  let rec has_join = function
    | Plan.Join _ -> true
    | Plan.Filter { input; _ } -> has_join input
    | Plan.Scan _ | Plan.Derived _ -> false
  in
  let multi = match sp.source with None -> false | Some rel -> has_join rel in
  if not multi then None
  else begin
    let exception Keep_all in
    let keep_names = Hashtbl.create 32 and keep_whole = Hashtbl.create 4 in
    let add_ref (c : Ast.col_ref) =
      Hashtbl.replace keep_names (String.lowercase_ascii c.column) ()
    in
    let add_expr e = List.iter add_ref (Ast.deep_expr_columns e) in
    try
      List.iter
        (function
          | Ast.Proj_star -> raise Keep_all
          | Ast.Proj_table_star t ->
            Hashtbl.replace keep_whole (String.lowercase_ascii t) ()
          | Ast.Proj_expr (e, _) -> add_expr e)
        sp.projections;
      Option.iter add_expr sp.where;
      List.iter add_expr sp.group_by;
      Option.iter add_expr sp.having;
      let rec walk = function
        | Plan.Scan _ -> ()
        | Plan.Derived { plan; _ } -> List.iter add_ref (Plan.columns_of_plan plan)
        | Plan.Filter { pred; input } ->
          add_expr pred;
          walk input
        | Plan.Join { cond; left; right; _ } ->
          (match cond with
          | Ast.On e -> add_expr e
          | Ast.Using cols ->
            List.iter
              (fun c -> Hashtbl.replace keep_names (String.lowercase_ascii c) ())
              cols
          | Ast.Natural -> raise Keep_all (* needs both sides' full column lists *)
          | Ast.Cond_none -> ());
          walk left;
          walk right
      in
      Option.iter walk sp.source;
      Some { keep_names; keep_whole }
    with Keep_all -> None
  end

(* [traced env ~path f] wraps one plan operator's evaluation: when the env
   carries a trace, it records output cardinality and inclusive elapsed time
   at [path]; otherwise it is exactly [f ()]. [rows_in] is a cell the
   callback fills once its input relation is materialised (the input
   cardinality is unknowable before [f] runs). *)
and traced env ~path ?rows_in (f : unit -> vrel) : vrel =
  match env.trace with
  | None -> f ()
  | Some tr ->
    let t0 = Flex_obs.Clock.now_ns () in
    let r = f () in
    let rows_in = match rows_in with Some cell -> !cell | None -> -1 in
    Plan.Analyze.record tr ~path ~rows_in ~rows_out:(Vec.length r.vr)
      (Flex_obs.Clock.elapsed_ns t0);
    r

and eval_rel env ~prune ~path (r : Plan.rel) : vrel =
  match r with
  | Plan.Scan { table; alias } ->
    traced env ~path (fun () ->
        match List.assoc_opt (String.lowercase_ascii table) env.ctes with
        | Some r -> requalify alias r
        | None -> (
          match Database.find_opt env.db table with
          | Some t -> rel_of_table ~alias:(Some alias) ~prune t
          | None -> error "unknown table %s" table))
  | Plan.Derived { plan; alias } ->
    traced env ~path (fun () ->
        requalify alias (eval_plan env ~path:(Plan.Analyze.derived_path path) plan))
  | Plan.Filter { pred; input } ->
    let rows_in = ref (-1) in
    traced env ~path ~rows_in (fun () ->
        let i = eval_rel env ~prune ~path:(Plan.Analyze.input_path path) input in
        rows_in := Vec.length i.vr;
        let cp = compile_expr env i.vh pred in
        { i with vr = Parallel.filter ?pool:env.pool (fun row -> Eval.is_truthy (cp row)) i.vr })
  | Plan.Join { kind; cond; build_left; left; right } ->
    traced env ~path (fun () ->
        let l = eval_rel env ~prune ~path:(Plan.Analyze.left_path path) left in
        let r = eval_rel env ~prune ~path:(Plan.Analyze.right_path path) right in
        join env kind ~build_left l r cond)

and eval_select_plan env ~path (sp : Plan.select_plan) : vrel =
  match
    if columnar_env_ok env then Columnar.plan_select ?pool:env.pool env.db sp else None
  with
  | Some r -> columnar_rel r
  | None -> eval_select_plan_row env ~path sp

and eval_select_plan_row env ~path (sp : Plan.select_plan) : vrel =
  let rows_in = ref (-1) in
  traced env ~path ~rows_in (fun () ->
      let source =
        match sp.source with
        | None -> { vh = [||]; vr = Vec.of_list [ [||] ] } (* FROM-less SELECT *)
        | Some rel ->
          eval_rel env ~prune:(prune_of_select_plan sp) ~path:(Plan.Analyze.source_path path) rel
      in
      rows_in := Vec.length source.vr;
      let on_where =
        match env.trace with
        | None -> None
        | Some tr ->
          Some
            (fun n ->
              (* rows surviving WHERE; the filter is fused into the pipeline,
                 so it gets no independent timing (NaN) *)
              Plan.Analyze.record tr ~path:(Plan.Analyze.where_path path) ~rows_out:n Float.nan)
      in
      select_tail env source ~on_where ~where:sp.where ~projections:sp.projections
        ~group_by:sp.group_by ~having:sp.having ~distinct:sp.distinct)

and eval_body_plan env ~path (b : Plan.body_plan) : vrel =
  match b with
  | Plan.Plan_select sp -> eval_select_plan env ~path sp
  | Plan.Plan_set { op; all; left; right } ->
    traced env ~path (fun () ->
        let l = eval_body_plan env ~path:(Plan.Analyze.left_path path) left in
        let r = eval_body_plan env ~path:(Plan.Analyze.right_path path) right in
        set_op_rel op ~all l r)

and eval_plan env ~path (p : Plan.t) : vrel =
  match
    if columnar_env_ok env && p.ctes = [] then Columnar.plan_query ?pool:env.pool env.db p
    else None
  with
  | Some r -> columnar_rel r
  | None -> eval_plan_row env ~path p

and eval_plan_row env ~path (p : Plan.t) : vrel =
  traced env ~path (fun () ->
      let env, _ =
        List.fold_left
          (fun (env, i) (name, columns, body) ->
            ( bind_cte env ~name ~columns
                (eval_plan env ~path:(Plan.Analyze.cte_path path i) body),
              i + 1 ))
          (env, 0) p.ctes
      in
      let body_path = Plan.Analyze.body_path path in
      let r = eval_body_plan env ~path:body_path p.body in
      let visible = Array.length r.vh in
      let r, order_by =
        if p.order_by = [] || List.for_all (fun (e, _) -> order_key_visible r.vh e) p.order_by
        then (r, p.order_by)
        else
          match p.body with
          | Plan.Plan_select sp when not sp.distinct ->
            let hidden = ref [] in
            let order_by =
              List.mapi
                (fun i (e, dir) ->
                  if order_key_visible r.vh e then (e, dir)
                  else begin
                    let name = Fmt.str "_ord%d" i in
                    hidden := Ast.Proj_expr (e, Some name) :: !hidden;
                    (Ast.Col { Ast.table = None; column = name }, dir)
                  end)
                p.order_by
            in
            (* re-evaluates the select with hidden keys appended; trace stats
               at the same paths are overwritten — re-evaluation wins *)
            let extended =
              eval_select_plan env ~path:body_path
                { sp with projections = sp.projections @ List.rev !hidden }
            in
            (extended, order_by)
          | _ -> (r, p.order_by)
      in
      if p.order_by <> [] then
        traced env ~path:(Plan.Analyze.sort_path path) (fun () ->
            sort_slice env r ~order_by ~limit:p.limit ~offset:p.offset ~visible)
      else sort_slice env r ~order_by ~limit:p.limit ~offset:p.offset ~visible)

(* --- public API ----------------------------------------------------------------- *)

let columnar_enabled = Columnar.enabled

let run ?pool db (q : Ast.query) : result_set =
  to_result (eval_query { db; ctes = []; outer = []; pool; trace = None } q)

let run_plan ?pool db (p : Plan.t) : result_set =
  to_result (eval_plan { db; ctes = []; outer = []; pool; trace = None } ~path:Plan.Analyze.root_path p)

let run_plan_analyzed ?pool db (p : Plan.t) : result_set * Plan.Analyze.trace =
  let trace = Plan.Analyze.create () in
  let r =
    to_result
      (eval_plan { db; ctes = []; outer = []; pool; trace = Some trace }
         ~path:Plan.Analyze.root_path p)
  in
  (r, trace)

let run_optimized ?pool ?metrics db (q : Ast.query) : result_set =
  run_plan ?pool db (Optimizer.plan ?metrics q)

let explain_analyze ?pool ?(optimize = true) ?metrics ?(show_rows = true) db (q : Ast.query) :
    string * result_set =
  let p = if optimize then Optimizer.plan ?metrics q else Plan.of_query q in
  let r, trace = run_plan_analyzed ?pool db p in
  (Plan.render_analyzed ~show_rows ~trace p, r)

let run_sql ?pool ?(optimize = false) ?metrics db sql : (result_set, string) result =
  match Flex_sql.Parser.parse sql with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok q -> (
    match if optimize then run_optimized ?pool ?metrics db q else run ?pool db q with
    | r -> Stdlib.Ok r
    | exception Error msg -> Stdlib.Error ("execution error: " ^ msg)
    | exception Eval.Error msg -> Stdlib.Error ("evaluation error: " ^ msg)
    | exception Aggregate.Error msg -> Stdlib.Error ("aggregation error: " ^ msg))

let run_sql_exn ?pool ?optimize ?metrics db sql =
  match run_sql ?pool ?optimize ?metrics db sql with
  | Stdlib.Ok r -> r
  | Stdlib.Error e -> error "%s" e
