module Ast = Flex_sql.Ast

(** The engine's logical plan IR. {!of_query} translates a parsed AST
    one-to-one (comma FROM items become left-deep cross joins) with no
    rewriting; {!Optimizer.rewrite} transforms plans and {!Executor.run_plan}
    executes them through the same compiled operators as the AST path. The
    renderer is the engine's EXPLAIN; an optional {!estimator} annotates
    operators with estimated cardinalities. *)

type rel =
  | Scan of { table : string; alias : string }
  | Derived of { plan : t; alias : string }
  | Filter of { pred : Ast.expr; input : rel }
      (** introduced by predicate pushdown; filters the input relation *)
  | Join of {
      kind : Ast.join_kind;
      cond : Ast.join_cond;
      build_left : bool;
          (** hash-join build side: [true] builds on the left input and
              probes the right (cost-based choice); [false] is the engine's
              historical build-on-right *)
      left : rel;
      right : rel;
    }

and select_plan = {
  distinct : bool;
  projections : Ast.projection list;
  source : rel option;  (** [None] = FROM-less SELECT *)
  where : Ast.expr option;
  group_by : Ast.expr list;
  having : Ast.expr option;
}

and body_plan =
  | Plan_select of select_plan
  | Plan_set of { op : set_op; all : bool; left : body_plan; right : body_plan }

and set_op = Union | Except | Intersect

and t = {
  ctes : (string * string list * t) list;  (** name, column list, body *)
  body : body_plan;
  order_by : (Ast.expr * Ast.order_dir) list;
  limit : int option;
  offset : int option;
}

val of_query : Ast.query -> t
val of_table_ref : Ast.table_ref -> rel

(** {2 Traversals} *)

val fold_exprs : ('a -> Ast.expr -> 'a) -> 'a -> t -> 'a
(** Fold over every expression in the plan: projections, predicates, join
    conditions, group/having/order keys, descending into CTEs and derived
    tables (but not into subqueries nested in expressions). *)

val fold_rel_exprs : ('a -> Ast.expr -> 'a) -> 'a -> rel -> 'a

val columns_of_plan : t -> Ast.col_ref list
(** Every column name mentioned anywhere in the plan, including inside
    expression subqueries — the conservative name set behind scan pruning. *)

val rel_aliases : rel -> string list
(** Lowercased relation aliases of the leaves, left to right. *)

val join_keys : Ast.join_cond -> (string * string) list * int
(** Syntactic equality keys of a join condition (rendered by EXPLAIN and
    used by the optimizer to detect hash-joinable conditions), plus the
    number of residual non-equality conjuncts. *)

(** {2 EXPLAIN ANALYZE traces} *)

(** Per-operator runtime statistics, collected by
    {!Executor.run_plan_analyzed} and rendered by {!render_analyzed}.
    Operators are identified by a path string; the executor's evaluation and
    the renderer's walk build paths with the same constructors, which is the
    contract that keeps them aligned. Stats are inclusive of children. *)
module Analyze : sig
  type stat = {
    rows_in : int;  (** -1 when the operator has no single input cardinality *)
    rows_out : int;
    elapsed_ns : float;  (** NaN when the stage has no independent timing *)
  }

  type trace

  val create : unit -> trace

  val record : trace -> path:string -> ?rows_in:int -> rows_out:int -> float -> unit
  (** Record (or overwrite — re-evaluation wins) the stat at [path]. *)

  val find : trace -> string -> stat option

  val root_path : string
  (** ["q"], the whole plan. *)

  val cte_path : string -> int -> string
  val body_path : string -> string
  val left_path : string -> string
  val right_path : string -> string
  val source_path : string -> string
  val where_path : string -> string
  val input_path : string -> string
  val derived_path : string -> string
  val sort_path : string -> string

  val result_rows : trace -> int option
  (** The root plan's output cardinality. *)

  val suffix : show_rows:bool -> stat -> string
  (** The rendered [  (actual rows=..., ...ms)] suffix; with
      [show_rows:false] row counts print as [?] (they are exact private
      cardinalities — gated like EXPLAIN estimates). *)
end

(** {2 Rendering (EXPLAIN)} *)

type estimator = {
  est_rel : rel -> float option;
  est_select : select_plan -> float option;
}
(** Cardinality annotations for the renderer; see {!Optimizer.estimator}. *)

val no_estimator : estimator

val pp : t Fmt.t
val to_string : t -> string

val render : ?est:estimator -> t -> string
(** [to_string] with per-operator [ (~N rows)] cardinality annotations. *)

val render_analyzed : ?show_rows:bool -> trace:Analyze.trace -> t -> string
(** The same plan text with each operator line suffixed by its recorded
    [  (actual rows=..., ...ms)] stat (absent stats render nothing).
    [show_rows] defaults to [true] — callers rendering for remote analysts
    must pass the deployment's EXPLAIN-estimates opt-in instead. *)

val explain_sql : string -> (string, string) result
(** Parse and render the unoptimized plan. *)
