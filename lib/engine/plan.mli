module Ast = Flex_sql.Ast

(** The engine's logical plan IR. {!of_query} translates a parsed AST
    one-to-one (comma FROM items become left-deep cross joins) with no
    rewriting; {!Optimizer.rewrite} transforms plans and {!Executor.run_plan}
    executes them through the same compiled operators as the AST path. The
    renderer is the engine's EXPLAIN; an optional {!estimator} annotates
    operators with estimated cardinalities. *)

type rel =
  | Scan of { table : string; alias : string }
  | Derived of { plan : t; alias : string }
  | Filter of { pred : Ast.expr; input : rel }
      (** introduced by predicate pushdown; filters the input relation *)
  | Join of {
      kind : Ast.join_kind;
      cond : Ast.join_cond;
      build_left : bool;
          (** hash-join build side: [true] builds on the left input and
              probes the right (cost-based choice); [false] is the engine's
              historical build-on-right *)
      left : rel;
      right : rel;
    }

and select_plan = {
  distinct : bool;
  projections : Ast.projection list;
  source : rel option;  (** [None] = FROM-less SELECT *)
  where : Ast.expr option;
  group_by : Ast.expr list;
  having : Ast.expr option;
}

and body_plan =
  | Plan_select of select_plan
  | Plan_set of { op : set_op; all : bool; left : body_plan; right : body_plan }

and set_op = Union | Except | Intersect

and t = {
  ctes : (string * string list * t) list;  (** name, column list, body *)
  body : body_plan;
  order_by : (Ast.expr * Ast.order_dir) list;
  limit : int option;
  offset : int option;
}

val of_query : Ast.query -> t
val of_table_ref : Ast.table_ref -> rel

(** {2 Traversals} *)

val fold_exprs : ('a -> Ast.expr -> 'a) -> 'a -> t -> 'a
(** Fold over every expression in the plan: projections, predicates, join
    conditions, group/having/order keys, descending into CTEs and derived
    tables (but not into subqueries nested in expressions). *)

val fold_rel_exprs : ('a -> Ast.expr -> 'a) -> 'a -> rel -> 'a

val columns_of_plan : t -> Ast.col_ref list
(** Every column name mentioned anywhere in the plan, including inside
    expression subqueries — the conservative name set behind scan pruning. *)

val rel_aliases : rel -> string list
(** Lowercased relation aliases of the leaves, left to right. *)

val join_keys : Ast.join_cond -> (string * string) list * int
(** Syntactic equality keys of a join condition (rendered by EXPLAIN and
    used by the optimizer to detect hash-joinable conditions), plus the
    number of residual non-equality conjuncts. *)

(** {2 Rendering (EXPLAIN)} *)

type estimator = {
  est_rel : rel -> float option;
  est_select : select_plan -> float option;
}
(** Cardinality annotations for the renderer; see {!Optimizer.estimator}. *)

val no_estimator : estimator

val pp : t Fmt.t
val to_string : t -> string

val render : ?est:estimator -> t -> string
(** [to_string] with per-operator [ (~N rows)] cardinality annotations. *)

val explain_sql : string -> (string, string) result
(** Parse and render the unoptimized plan. *)
