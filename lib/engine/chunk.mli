(** Columnar chunks: per-column typed arrays over a {!Table}'s row store,
    built once per table and cached by physical identity. Kernels in
    {!Columnar} run filters, join-key extraction and aggregation over the
    unboxed arrays; the original rows stay the source of truth for output
    materialisation, so results are bit-identical to the row pipeline. *)

type strings = {
  vals : string array;  (** per-row string; [""] at NULL *)
  codes : int array;  (** per-row dictionary code; [-1] at NULL *)
  dict : string array;  (** distinct values in first-appearance order *)
  dict_tbl : (string, int) Hashtbl.t;
}

type data =
  | Ints of int array
  | Floats of float array
  | Strings of strings
  | Boxed  (** mixed-type or boolean column: read through the rows *)

type col = { data : data; nulls : bool array option }
(** Typed slots under a NULL hold a dummy value; [nulls = None] means no
    NULLs anywhere in the column. *)

type t = {
  table : Table.t;
  rows : Value.t array array;  (** = [Table.rows table], shared not copied *)
  n : int;
  cols : col array;
}

val is_null : col -> int -> bool

val dict_code : strings -> string -> int option
(** Dictionary lookup: [None] means the value appears nowhere in the
    column, so an equality filter against it selects nothing. *)

val build : Table.t -> t
(** Build without consulting the cache (tests, forced rebuilds). *)

val of_table : Table.t -> t
(** Cached build: chunks are keyed by the physical identity of the table
    (immutable snapshots), bounded MRU, safe under concurrent readers. *)
