(** Typed sort keys and bounded top-K selection for ORDER BY. Key columns
    classify into unboxed int/float/string arrays when the typed order is
    provably identical to {!Value.compare} (mixed Int/Float promotes to
    float only when every int is exactly representable); everything else
    stays boxed, so sorting through these keys is bit-identical to sorting
    with [Value.compare] directly. *)

type key =
  | K_int of int array * bool array option
  | K_float of float array * bool array option
  | K_string of string array * bool array option
  | K_val of Value.t array
      (** boxed fallback: mixed ranks, booleans, huge-int/float mixes *)

val of_values : Value.t array -> key
(** Classify one key column; the null mask (NULL sorts first) is built only
    when NULLs are present. *)

val compare_fn : key -> int -> int -> int
(** Positional comparison equal to [Value.compare vs.(i) vs.(j)]. *)

val top_k : cmp:(int -> int -> int) -> n:int -> k:int -> int array
(** The [k] smallest of [0, n) under [cmp] in sorted order via a size-[k]
    max-heap; [cmp] must be total (tiebreak on the index), making the
    result identical to a full sort sliced to [k]. *)

val sorted : cmp:(int -> int -> int) -> n:int -> wanted:int option -> int array
(** Sorted order of [0, n): {!top_k} when [wanted] is below [n], full sort
    otherwise. *)
