(* SQL values with NULL. Dates and timestamps are carried as ISO-8601 strings,
   which order correctly under lexicographic comparison. *)

type t = Null | Bool of bool | Int of int | Float of float | String of string

let is_null = function Null -> true | _ -> false

(* Total order used for ORDER BY, MIN/MAX and grouping: NULL sorts first,
   numeric types compare by value across Int/Float. *)
let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | String _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool a, Bool b -> Stdlib.compare a b
  | Int a, Int b -> Stdlib.compare a b
  | Float a, Float b -> Stdlib.compare a b
  | Int a, Float b -> Stdlib.compare (float_of_int a) b
  | Float a, Int b -> Stdlib.compare a (float_of_int b)
  | String a, String b -> Stdlib.compare a b
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* SQL equality: NULL = anything is unknown (None). *)
let sql_equal a b =
  match (a, b) with Null, _ | _, Null -> None | _ -> Some (equal a b)

let sql_compare a b =
  match (a, b) with Null, _ | _, Null -> None | _ -> Some (compare a b)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool true -> Some 1.0
  | Bool false -> Some 0.0
  | Null | String _ -> None

let to_int = function
  | Int i -> Some i
  | Float f -> Some (int_of_float f)
  | Bool true -> Some 1
  | Bool false -> Some 0
  | Null | String _ -> None

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | String s -> Fmt.string ppf s

let to_string v = Fmt.str "%a" pp v

(* Literal-style rendering used by CSV output: strings unquoted, NULL empty. *)
let to_csv_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Fmt.str "%.12g" f
  | String s -> s

(* Must collide where [equal] holds across Int/Float. Numbers of magnitude
   below 2^53 (every int exactly representable as a float) hash through the
   integer, allocation-free; the rare larger ones canonicalise through a
   float like the old scheme. *)
let two_53 = 9007199254740992 (* 2^53 *)

let hash v =
  match v with
  | Int i when abs i < two_53 -> Hashtbl.hash i
  | Float f when Float.is_integer f && Float.abs f < float_of_int two_53 ->
    Hashtbl.hash (int_of_float f)
  | Int i -> Hashtbl.hash (Float (float_of_int i))
  | v -> Hashtbl.hash v
