(** Hashtable keyed by [Value.t array] with SQL-consistent hash/equal
    ([Int 2] = [Float 2.]); shared by joins, GROUP BY, DISTINCT and set
    operations. *)

module Key : sig
  type t = Value.t array

  val equal : t -> t -> bool
  val hash : t -> int
end

include Hashtbl.S with type key = Value.t array

module Scalar : Hashtbl.S with type key = Value.t
(** Single-column key variant: no per-row key array allocation. *)

module Int_key : Hashtbl.S with type key = int
(** Unboxed variant for key columns proven all-small-int. *)

val small_int_key : Value.t -> bool
(** [Int i] with [|i| < 2^53] (exactly representable as a float). *)

val int_key_of : Value.t -> int option
(** The int a value indexes under in an all-small-int table: small ints
    themselves, floats equal (SQL [=]) to one; [None] can never match. *)

val dedupe_rows : Value.t array Row_vec.t -> Value.t array Row_vec.t
(** Keep the first occurrence of each distinct row, preserving order. *)

val counts_of : Value.t array Row_vec.t -> int ref t
(** Multiset view of a row vector (row -> multiplicity). *)
