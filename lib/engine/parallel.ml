(* Morsel-driven parallel operators over {!Row_vec}, the building blocks the
   executor composes into parallel scan/filter/project, partitioned hash
   joins and parallel grouping.

   Every operator takes an optional {!Task_pool.t}; with no pool, a pool
   that has been shut down, or an input below [threshold] rows, it runs the
   plain sequential loop, so the sequential and parallel pipelines are the
   same code path below the cutover. Parallel results are reassembled in
   chunk order, which makes every operator order-preserving: the parallel
   pipeline must return bit-identical results to the sequential one (the
   3-way differential suite enforces this), so no operator is allowed to
   trade determinism for speed.

   Chunk functions receive disjoint index ranges and write only chunk-local
   state (or disjoint slots of a shared result array), which is the whole
   synchronization story: the pool's join provides the happens-before edge
   that publishes worker writes to the caller. *)

module Vec = Row_vec

type row = Value.t array

(* Inputs below this many rows run sequentially: at (sub-)thousands of rows
   the fork/join handshake costs more than the scan. Mutable so tests and
   smoke benches can force tiny inputs through the parallel path. *)
let threshold = ref 2048

(* Target rows per chunk. Chunks are capped at 4x the pool's domains, so a
   large input gets a few generously sized morsels per domain (dynamic
   claiming in the pool evens out skew). Mutable for the same reason as
   [threshold]: inputs small enough to fit one morsel never split. *)
let morsel = ref 1024

(* Lifetime dispatch counters for the telemetry surface: how many operator
   invocations actually split across domains vs. ran the sequential loop.
   Counted in [gather] — the one dispatch point every data-parallel operator
   funnels through — so probing [parallel_worthy] costs nothing. *)
let parallel_ops = Atomic.make 0
let sequential_ops = Atomic.make 0
let ops_counts () = (Atomic.get parallel_ops, Atomic.get sequential_ops)

(* CPUs actually available to this process. A pool can be created with more
   domains than the host has cores (service configs are written for target
   hardware, not the machine they land on); dispatching across them then
   buys no parallelism and pays full coordination cost — the BENCH_parallel
   regressions on a 1-CPU host. Operators therefore cap their effective
   width at the host width and fall back to the sequential loop when the
   cap leaves a single worker. Mutable so tests and smoke benches can
   simulate wider hosts. *)
let host_cpus = ref (Domain.recommended_domain_count ())

let effective_domains pool =
  match pool with
  | None -> 1
  | Some p -> min (Task_pool.domains p) (max 1 !host_cpus)

(* [chunk_count pool n] is how many chunks to cut [n] rows into, or 0 to
   run sequentially. *)
let chunk_count pool n =
  match pool with
  | None -> 0
  | Some p ->
    let d = effective_domains pool in
    if (not (Task_pool.is_parallel p)) || d <= 1 || n < !threshold then 0
    else begin
      let c = min (4 * d) (max 1 (n / !morsel)) in
      if c <= 1 then 0 else c
    end

let parallel_worthy pool n = chunk_count pool n > 0

(* [gather pool n f]: run [f lo hi] over the chunk ranges of [0, n) and
   return the per-chunk results in chunk order, or [None] when the input
   should run sequentially. *)
let gather pool n (f : int -> int -> 'a) : 'a array option =
  let chunks = chunk_count pool n in
  if chunks = 0 then begin
    ignore (Atomic.fetch_and_add sequential_ops 1);
    None
  end
  else begin
    ignore (Atomic.fetch_and_add parallel_ops 1);
    let p = Option.get pool in
    let results = Array.make chunks None in
    Task_pool.run p ~chunks (fun i ->
        let lo = i * n / chunks and hi = (i + 1) * n / chunks in
        results.(i) <- Some (f lo hi));
    Some (Array.map (function Some r -> r | None -> assert false) results)
  end

(* [tasks pool ~n f]: run [f 0 .. f (n-1)] on the pool (or inline); used
   for per-partition phases where each task owns one partition. *)
let tasks pool ~n (f : int -> unit) =
  match pool with
  | Some p when Task_pool.is_parallel p && effective_domains pool > 1 ->
    Task_pool.run p ~chunks:n f
  | _ ->
    for i = 0 to n - 1 do
      f i
    done

let map ?pool (f : row -> row) (v : row Vec.t) : row Vec.t =
  let n = Vec.length v in
  match
    gather pool n (fun lo hi ->
        Array.init (hi - lo) (fun k -> f (Vec.unsafe_get v (lo + k))))
  with
  | None -> Vec.map f v
  | Some parts -> Vec.of_arrays parts

let filter ?pool (p : row -> bool) (v : row Vec.t) : row Vec.t =
  let n = Vec.length v in
  match
    gather pool n (fun lo hi ->
        let out = Vec.create () in
        for i = lo to hi - 1 do
          let x = Vec.unsafe_get v i in
          if p x then Vec.push out x
        done;
        out)
  with
  | None -> Vec.filter p v
  | Some parts -> Vec.concat parts

let map_to_array ?pool ~(dummy : 'b) (f : row -> 'b) (v : row Vec.t) : 'b array =
  let n = Vec.length v in
  let out = Array.make n dummy in
  let fill lo hi =
    for i = lo to hi - 1 do
      out.(i) <- f (Vec.unsafe_get v i)
    done
  in
  (match gather pool n fill with
  | None -> fill 0 n
  | Some (_ : unit array) -> ());
  out

(* Number of hash partitions for partitioned joins/grouping: a few per
   domain so partition skew still balances, always a power of two so the
   partition of a hash is a mask. *)
let partition_count pool =
  let d = match pool with Some p -> Task_pool.domains p | None -> 1 in
  let rec pow2 c = if c >= 4 * d then c else pow2 (2 * c) in
  min 64 (pow2 4)

(* [partition ?pool ~partitions pf n]: split row indices [0, n) into
   [partitions] index vectors by [pf] (pure). Each output vector lists its
   indices in ascending order — chunk outputs are merged in chunk order —
   so downstream per-partition scans see rows in original row order and
   build bit-identical hash tables to a sequential build. *)
let partition ?pool ~partitions (pf : int -> int) n : int Vec.t array =
  match
    gather pool n (fun lo hi ->
        let parts = Array.init partitions (fun _ -> Vec.create ()) in
        for i = lo to hi - 1 do
          Vec.push parts.(pf i) i
        done;
        parts)
  with
  | None ->
    let parts = Array.init partitions (fun _ -> Vec.create ()) in
    for i = 0 to n - 1 do
      Vec.push parts.(pf i) i
    done;
    parts
  | Some chunked ->
    let out = Array.make partitions (Vec.create ()) in
    tasks pool ~n:partitions (fun p ->
        out.(p) <- Vec.concat (Array.map (fun cp -> cp.(p)) chunked));
    out
