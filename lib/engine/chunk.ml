(* Columnar chunks: a per-column typed decomposition of a Table, built once
   per table (physical identity) and cached. The row store stays the source
   of truth — a chunk never owns values, it only lays the same values out
   column-wise so kernels can run over unboxed [int array]/[float array]
   data and integer dictionary codes instead of boxed [Value.t] cells.

   Layout rules:
   - A column is typed ([Ints]/[Floats]/[Strings]) only when every non-NULL
     cell has that one constructor; any mix (or any [Bool]) degrades to
     [Boxed], which kernels read through the original rows.
   - NULLs are carried in an optional mask ([Some m] with [m.(i) = true] at
     NULL rows); the typed slot under a NULL holds a dummy (0 / 0.0 / "")
     and must never be read unmasked. String columns additionally encode
     NULL as dictionary code [-1], so equality kernels need no mask.
   - String columns are dictionary-encoded in first-appearance order:
     [codes.(i)] indexes [dict], so [=]/[<>] filters and GROUP BY compare
     ints, while range predicates use the parallel [vals] array. *)

type strings = {
  vals : string array;  (* per-row string; "" at NULL *)
  codes : int array;  (* per-row dictionary code; -1 at NULL *)
  dict : string array;  (* distinct values, first-appearance order *)
  dict_tbl : (string, int) Hashtbl.t;
}

type data = Ints of int array | Floats of float array | Strings of strings | Boxed

type col = { data : data; nulls : bool array option }

type t = {
  table : Table.t;
  rows : Value.t array array;  (* = Table.rows table, shared *)
  n : int;
  cols : col array;
}

let is_null col i = match col.nulls with None -> false | Some m -> m.(i)

let dict_code s v = Hashtbl.find_opt s.dict_tbl v

(* Classify column [j]: one pass to find the single non-NULL constructor
   (bailing to Boxed on the first conflict), then a typed fill pass. *)
let build_col rows n j =
  let has_null = ref false in
  let kind = ref `Empty in
  (try
     for i = 0 to n - 1 do
       match rows.(i).(j) with
       | Value.Null -> has_null := true
       | Value.Int _ -> (
           match !kind with
           | `Empty -> kind := `Int
           | `Int -> ()
           | _ ->
               kind := `Boxed;
               raise Exit)
       | Value.Float _ -> (
           match !kind with
           | `Empty -> kind := `Float
           | `Float -> ()
           | _ ->
               kind := `Boxed;
               raise Exit)
       | Value.String _ -> (
           match !kind with
           | `Empty -> kind := `String
           | `String -> ()
           | _ ->
               kind := `Boxed;
               raise Exit)
       | Value.Bool _ ->
           kind := `Boxed;
           raise Exit
     done
   with Exit -> ());
  let nulls =
    if not !has_null then None
    else begin
      let m = Array.make n false in
      for i = 0 to n - 1 do
        m.(i) <- Value.is_null rows.(i).(j)
      done;
      Some m
    end
  in
  match !kind with
  | `Boxed -> { data = Boxed; nulls = None }
  | `Empty when n = 0 -> { data = Ints [||]; nulls = None }
  | `Empty ->
      (* all-NULL column: typed-as-int so IS NULL masks and aggregate
         kernels still apply; every slot is masked *)
      { data = Ints (Array.make n 0); nulls }
  | `Int ->
      let a = Array.make n 0 in
      for i = 0 to n - 1 do
        match rows.(i).(j) with Value.Int v -> a.(i) <- v | _ -> ()
      done;
      { data = Ints a; nulls }
  | `Float ->
      let a = Array.make n 0.0 in
      for i = 0 to n - 1 do
        match rows.(i).(j) with Value.Float v -> a.(i) <- v | _ -> ()
      done;
      { data = Floats a; nulls }
  | `String ->
      let vals = Array.make n "" in
      let codes = Array.make n (-1) in
      let dict_tbl = Hashtbl.create 64 in
      let dict = Row_vec.create () in
      for i = 0 to n - 1 do
        match rows.(i).(j) with
        | Value.String v ->
            vals.(i) <- v;
            let c =
              match Hashtbl.find_opt dict_tbl v with
              | Some c -> c
              | None ->
                  let c = Row_vec.length dict in
                  Hashtbl.add dict_tbl v c;
                  Row_vec.push dict v;
                  c
            in
            codes.(i) <- c
        | _ -> ()
      done;
      { data = Strings { vals; codes; dict = Row_vec.to_array dict; dict_tbl }; nulls }

let build (table : Table.t) : t =
  let rows = Table.rows table in
  let n = Array.length rows in
  let width = Array.length (Table.columns table) in
  { table; rows; n; cols = Array.init width (build_col rows n) }

(* Per-table cache keyed by physical identity: [Table.with_row] copies the
   rows array, so a mutated table never aliases a cached chunk. Bounded MRU
   assoc list under a mutex; the build itself runs outside the lock. *)
let cache : (Table.t * t) list ref = ref []
let cache_lock = Mutex.create ()
let max_cached = 16

let of_table (table : Table.t) : t =
  let find () = List.find_opt (fun (t, _) -> t == table) !cache in
  Mutex.lock cache_lock;
  let hit = find () in
  Mutex.unlock cache_lock;
  match hit with
  | Some (_, c) -> c
  | None ->
      let c = build table in
      Mutex.lock cache_lock;
      let c =
        match find () with
        | Some (_, existing) -> existing
        | None ->
            let rest = List.filter (fun (t, _) -> t != table) !cache in
            let rest =
              if List.length rest >= max_cached then List.filteri (fun i _ -> i < max_cached - 1) rest
              else rest
            in
            cache := (table, c) :: rest;
            c
      in
      Mutex.unlock cache_lock;
      c
