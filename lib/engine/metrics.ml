(* Precomputed database metrics consumed by elastic sensitivity (paper §4):
   - mf(a, t): frequency of the most frequent value of column a in table t
     (the "max frequency" metric; the paper obtains it with one SQL query per
     join column and recomputes it on updates);
   - vr(a, t): value range (max - min) of a numeric column, used by the
     SUM/AVG/MIN/MAX extensions of §3.7.2;
   - the registry of public (non-protected) tables for the §3.6 optimisation;
   - table row counts, used to clamp the smooth-sensitivity scan. *)

type key = string * string (* table, column; both lowercase *)

type t = {
  mf : (key, int) Hashtbl.t;
  vr : (key, float) Hashtbl.t;
  publics : (string, unit) Hashtbl.t;
  row_counts : (string, int) Hashtbl.t;
  primary_keys : (key, unit) Hashtbl.t;
      (* columns whose uniqueness is a schema constraint: their max frequency
         is 1 in every database the engine will accept, so mf_k = 1 for all
         distances (the "UniqueOptimized" treatment visible in the paper's
         Figure 4 data) *)
}

let create () =
  {
    mf = Hashtbl.create 64;
    vr = Hashtbl.create 64;
    publics = Hashtbl.create 8;
    row_counts = Hashtbl.create 16;
    primary_keys = Hashtbl.create 16;
  }

let key table column = (String.lowercase_ascii table, String.lowercase_ascii column)

let set_mf t ~table ~column freq = Hashtbl.replace t.mf (key table column) freq
let set_vr t ~table ~column range = Hashtbl.replace t.vr (key table column) range
let set_row_count t ~table n = Hashtbl.replace t.row_counts (String.lowercase_ascii table) n

let mf t ~table ~column = Hashtbl.find_opt t.mf (key table column)
let vr t ~table ~column = Hashtbl.find_opt t.vr (key table column)
let row_count t ~table = Hashtbl.find_opt t.row_counts (String.lowercase_ascii table)

let set_primary_key t ~table ~column =
  Hashtbl.replace t.primary_keys (key table column) ()

let is_primary_key t ~table ~column = Hashtbl.mem t.primary_keys (key table column)

let set_public t table = Hashtbl.replace t.publics (String.lowercase_ascii table) ()
let clear_public t table = Hashtbl.remove t.publics (String.lowercase_ascii table)
let is_public t table = Hashtbl.mem t.publics (String.lowercase_ascii table)
let public_tables t = Hashtbl.fold (fun k () acc -> k :: acc) t.publics [] |> List.sort compare

(* Max frequency of a column's non-NULL values, by direct scan. This is the
   oracle equivalent of the paper's
     SELECT COUNT(a) FROM T GROUP BY a ORDER BY count DESC LIMIT 1. *)
let compute_mf table column =
  let counts = Hashtbl.create 256 in
  let best = ref 0 in
  Array.iter
    (fun v ->
      if not (Value.is_null v) then begin
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counts v) in
        Hashtbl.replace counts v n;
        if n > !best then best := n
      end)
    (Table.column_values table column);
  !best

(* Value range of a numeric column; None when the column has no numeric
   values (range metrics for string columns must come from a domain expert,
   cf. §3.7.2). *)
let compute_vr table column =
  let lo = ref infinity and hi = ref neg_infinity and seen = ref false in
  Array.iter
    (fun v ->
      match Value.to_float v with
      | Some f ->
        seen := true;
        if f < !lo then lo := f;
        if f > !hi then hi := f
      | None -> ())
    (Table.column_values table column);
  if !seen then Some (!hi -. !lo) else None

(* Collect every metric for every column of every table. In the paper's
   deployment this runs offline, once, and is refreshed by database
   triggers. *)
let compute db =
  let t = create () in
  List.iter
    (fun name ->
      let table = Database.find db name in
      set_row_count t ~table:name (Table.row_count table);
      Array.iter
        (fun column ->
          set_mf t ~table:name ~column (compute_mf table column);
          match compute_vr table column with
          | Some r -> set_vr t ~table:name ~column r
          | None -> ())
        (Table.columns table))
    (Database.table_names db);
  t

(* Refresh the metrics of a single table after an update. *)
let recompute_table t db name =
  let table = Database.find db name in
  set_row_count t ~table:name (Table.row_count table);
  Array.iter
    (fun column ->
      set_mf t ~table:name ~column (compute_mf table column);
      match compute_vr table column with
      | Some r -> set_vr t ~table:name ~column r
      | None -> Hashtbl.remove t.vr (key name column))
    (Table.columns table)

let total_rows t = Hashtbl.fold (fun _ n acc -> acc + n) t.row_counts 0

(* Column names known for a table (from the collected mf metrics). Allows the
   analysis to run from metrics alone, without a database connection. *)
let columns t ~table =
  let table = String.lowercase_ascii table in
  Hashtbl.fold (fun (tb, c) _ acc -> if tb = table then c :: acc else acc) t.mf []
  |> List.sort_uniq compare

let known_tables t =
  Hashtbl.fold (fun tb _ acc -> tb :: acc) t.row_counts [] |> List.sort_uniq compare

(* --- plain-text serialisation (one record per line) ----------------------- *)

let to_lines t =
  let lines = ref [] in
  Hashtbl.iter
    (fun (tbl, col) v -> lines := Fmt.str "mf\t%s\t%s\t%d" tbl col v :: !lines)
    t.mf;
  Hashtbl.iter
    (fun (tbl, col) v -> lines := Fmt.str "vr\t%s\t%s\t%.17g" tbl col v :: !lines)
    t.vr;
  Hashtbl.iter (fun tbl () -> lines := Fmt.str "public\t%s" tbl :: !lines) t.publics;
  Hashtbl.iter
    (fun (tbl, col) () -> lines := Fmt.str "pk\t%s\t%s" tbl col :: !lines)
    t.primary_keys;
  Hashtbl.iter
    (fun tbl n -> lines := Fmt.str "rows\t%s\t%d" tbl n :: !lines)
    t.row_counts;
  List.sort compare !lines

let of_lines lines =
  let t = create () in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match String.split_on_char '\t' line with
        | [ "mf"; tbl; col; v ] -> set_mf t ~table:tbl ~column:col (int_of_string v)
        | [ "vr"; tbl; col; v ] -> set_vr t ~table:tbl ~column:col (float_of_string v)
        | [ "public"; tbl ] -> set_public t tbl
        | [ "pk"; tbl; col ] -> set_primary_key t ~table:tbl ~column:col
        | [ "rows"; tbl; n ] -> set_row_count t ~table:tbl (int_of_string n)
        | _ -> invalid_arg ("Metrics.of_lines: malformed line: " ^ line))
    lines;
  t

(* The serialised form is sorted, so the digest is independent of hashtable
   iteration order: equal metrics always fingerprint alike. *)
let fingerprint t =
  Digest.to_hex (Digest.string (String.concat "\n" (to_lines t)))

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) (to_lines t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines (go []))
