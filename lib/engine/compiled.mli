module Ast = Flex_sql.Ast

(** Compile-once expression evaluation: an {!Ast.expr} becomes an OCaml
    closure over the current row, with column references resolved to integer
    offsets (or, for correlated references, to the enclosing row's value)
    exactly once per relation. *)

exception Error of string

type header = { alias : string option; name : string }

val resolve_opt : header array -> Ast.col_ref -> int option
(** Column resolution: qualified references match the alias; unqualified
    references take the first name match. *)

val expand_projections :
  header array -> Ast.projection list -> (Ast.expr * string) list
(** Expand [*] and [t.*] against [headers] and name every projection —
    shared by the row pipeline and the columnar engine so both see the
    same output shape. @raise Error on [t.*] with an unknown relation. *)

type t = Value.t array -> Value.t
(** A compiled expression, applied to one row of the compiling relation. *)

type subquery = Ast.query -> Value.t array -> int * Value.t array list
(** [subquery q row] evaluates [q] with [row] pushed as the innermost
    enclosing scope; returns (column count, result rows). *)

type agg_slot = { func : Ast.agg_func; distinct : bool; star : bool; arg : t option }
(** One distinct aggregate application collected during compilation;
    [arg = None] iff the argument is [*]. *)

type agg_slots

val make_slots : unit -> agg_slots

val slots : agg_slots -> agg_slot list
(** The slots collected so far, in slot order. *)

val specs : agg_slots -> (Ast.agg_func * bool * Ast.agg_arg) list
(** The source-level (func, distinct, arg) of each slot, aligned with
    {!slots}; the columnar engine inspects the argument expressions to
    decide which slots admit typed accumulator kernels. *)

val set_group : agg_slots -> Value.t Lazy.t array -> unit
(** Publish the current group's (lazily computed) slot values; compiled
    [Agg] nodes read slot [i] from this array. *)

val compile :
  subquery:subquery ->
  ?agg:agg_slots ->
  headers:header array ->
  outer:(header array * Value.t array) list ->
  Ast.expr ->
  t
(** Compile [e] against [headers] (the current relation) and [outer] (the
    enclosing scopes, innermost first, each with its fixed current row).
    Aggregates are only legal when [agg] is provided.
    @raise Error on unknown columns or misplaced aggregates. *)
