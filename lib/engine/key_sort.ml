(* Typed sort keys for ORDER BY and top-K selection. A key column is
   classified once into an unboxed representation; the per-comparison cost
   then drops from polymorphic [Value.compare] over boxed cells to an int /
   float / string compare over flat arrays. Classification is conservative:
   any column the typed orders cannot reproduce bit-for-bit against
   [Value.compare] (mixed numerics with an integer outside the float-exact
   range, booleans, mixed ranks) stays boxed. *)

type key =
  | K_int of int array * bool array option
  | K_float of float array * bool array option
  | K_string of string array * bool array option
  | K_val of Value.t array

(* 2^53: beyond this magnitude [float_of_int] loses precision, so promoting
   a mixed Int/Float key column to floats would reorder — keep it boxed. *)
let two_53 = 9007199254740992

let of_values (vs : Value.t array) : key =
  let n = Array.length vs in
  let has_null = ref false in
  let any_int = ref false and any_float = ref false in
  let any_string = ref false and any_other = ref false in
  let ints_small = ref true in
  for i = 0 to n - 1 do
    match vs.(i) with
    | Value.Null -> has_null := true
    | Value.Int v ->
        any_int := true;
        if not (v > -two_53 && v < two_53) then ints_small := false
    | Value.Float _ -> any_float := true
    | Value.String _ -> any_string := true
    | Value.Bool _ -> any_other := true
  done;
  let nulls () =
    if not !has_null then None
    else begin
      let m = Array.make n false in
      for i = 0 to n - 1 do
        m.(i) <- Value.is_null vs.(i)
      done;
      Some m
    end
  in
  if !any_other || (!any_string && (!any_int || !any_float)) then K_val vs
  else if !any_string then begin
    let a = Array.make n "" in
    for i = 0 to n - 1 do
      match vs.(i) with Value.String v -> a.(i) <- v | _ -> ()
    done;
    K_string (a, nulls ())
  end
  else if !any_float && ((not !any_int) || !ints_small) then begin
    (* pure floats, or exactly-representable ints promoted: Value.compare
       orders Int/Float pairs through float_of_int, which this reproduces *)
    let a = Array.make n 0.0 in
    for i = 0 to n - 1 do
      match vs.(i) with
      | Value.Float v -> a.(i) <- v
      | Value.Int v -> a.(i) <- float_of_int v
      | _ -> ()
    done;
    K_float (a, nulls ())
  end
  else if !any_int && not !any_float then begin
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      match vs.(i) with Value.Int v -> a.(i) <- v | _ -> ()
    done;
    K_int (a, nulls ())
  end
  else if not (!any_int || !any_float) then
    (* all NULL (or empty): every comparison is 0 *)
    K_int (Array.make n 0, nulls ())
  else K_val vs

(* NULL sorts below everything, matching Value.compare's rank order. The
   typed compares are annotated so the specialised primitives apply; for
   floats [Stdlib.compare] is the same total order Value.compare uses
   (NaN equal to itself, below real numbers). *)
let compare_fn (k : key) : int -> int -> int =
  match k with
  | K_val vs -> fun i j -> Value.compare vs.(i) vs.(j)
  | K_int (a, None) -> fun i j -> compare (a.(i) : int) a.(j)
  | K_float (a, None) -> fun i j -> compare (a.(i) : float) a.(j)
  | K_string (a, None) -> fun i j -> compare (a.(i) : string) a.(j)
  | K_int (a, Some m) ->
      fun i j ->
        if m.(i) then if m.(j) then 0 else -1
        else if m.(j) then 1
        else compare (a.(i) : int) a.(j)
  | K_float (a, Some m) ->
      fun i j ->
        if m.(i) then if m.(j) then 0 else -1
        else if m.(j) then 1
        else compare (a.(i) : float) a.(j)
  | K_string (a, Some m) ->
      fun i j ->
        if m.(i) then if m.(j) then 0 else -1
        else if m.(j) then 1
        else compare (a.(i) : string) a.(j)

(* Bounded selection for ORDER BY ... LIMIT: the [k] smallest of the indices
   [0, n) under [cmp], in sorted order, via a size-[k] max-heap — O(n log k)
   instead of sorting all [n] rows. [cmp] must be a total order (the caller
   tiebreaks on the index itself), which makes the result identical to
   sorting everything and slicing off the first [k]. *)
let top_k ~(cmp : int -> int -> int) ~n ~k =
  if k <= 0 then [||]
  else begin
    let hn = min k n in
    let heap = Array.init hn (fun i -> i) in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = ref i in
      if l < hn && cmp heap.(l) heap.(!m) > 0 then m := l;
      if r < hn && cmp heap.(r) heap.(!m) > 0 then m := r;
      if !m <> i then begin
        swap i !m;
        sift_down !m
      end
    in
    for i = (hn / 2) - 1 downto 0 do
      sift_down i
    done;
    for i = hn to n - 1 do
      if cmp i heap.(0) < 0 then begin
        heap.(0) <- i;
        sift_down 0
      end
    done;
    Array.sort cmp heap;
    heap
  end

(* Sorted order of [0, n): bounded selection when only [wanted] rows
   survive LIMIT/OFFSET, full sort otherwise. *)
let sorted ~(cmp : int -> int -> int) ~n ~(wanted : int option) =
  match wanted with
  | Some k when k < n -> top_k ~cmp ~n ~k
  | _ ->
      let order = Array.init n (fun i -> i) in
      Array.sort cmp order;
      order
