(** Morsel-driven parallel operators over {!Row_vec}.

    Every operator runs sequentially when [pool] is absent, shut down, or
    the input is below {!threshold} rows — the sequential fallback is the
    very loop the sequential pipeline runs. All operators are
    order-preserving (chunk outputs reassembled in chunk order), so the
    parallel pipeline returns bit-identical results to the sequential one.
    Callbacks must be safe to call concurrently from several domains on
    disjoint rows (compiled expressions are: they only read the row, and
    subquery evaluation inside a callback degrades to sequential through
    the pool's nested-submission rule). *)

type row = Value.t array

val threshold : int ref
(** Inputs below this many rows run sequentially (default 2048). Mutable so
    tests and smoke benchmarks can push tiny inputs through the parallel
    path. *)

val morsel : int ref
(** Target rows per chunk (default 1024); inputs smaller than two morsels
    never split. Mutable for the same reason as {!threshold}. *)

val host_cpus : int ref
(** CPUs available to this process ([Domain.recommended_domain_count] at
    startup). Operators cap their effective width at
    [min (Task_pool.domains pool) host_cpus] and run sequentially when that
    leaves one worker — a pool wider than the host buys no parallelism but
    pays full coordination cost. Mutable so tests can simulate wider
    hosts. *)

val effective_domains : Task_pool.t option -> int
(** The capped worker count dispatch decisions use; [1] means every
    operator falls back to its sequential loop. *)

val parallel_worthy : Task_pool.t option -> int -> bool
(** Whether an [n]-row input would actually be split across domains. *)

val ops_counts : unit -> int * int
(** Lifetime [(parallel, sequential)] operator-dispatch counts across the
    process (counted at {!gather}), for the telemetry surface. *)

val gather : Task_pool.t option -> int -> (int -> int -> 'a) -> 'a array option
(** [gather pool n f] runs [f lo hi] over chunk ranges covering [0, n) and
    returns per-chunk results in chunk order; [None] means "run it
    sequentially yourself" (no pool, or below threshold). *)

val tasks : Task_pool.t option -> n:int -> (int -> unit) -> unit
(** Run [n] independent tasks on the pool (inline without one); used for
    per-partition build phases. *)

val map : ?pool:Task_pool.t -> (row -> row) -> row Row_vec.t -> row Row_vec.t
(** Order-preserving parallel projection. *)

val filter : ?pool:Task_pool.t -> (row -> bool) -> row Row_vec.t -> row Row_vec.t
(** Order-preserving parallel selection. *)

val map_to_array : ?pool:Task_pool.t -> dummy:'b -> (row -> 'b) -> row Row_vec.t -> 'b array
(** Evaluate a key function over every row into a positional array (sort
    keys, grouping keys); [dummy] fills the allocation before the parallel
    writes land. *)

val partition_count : Task_pool.t option -> int
(** Hash-partition fan-out for partitioned joins/grouping: a power of two,
    a few partitions per domain, capped at 64. *)

val partition :
  ?pool:Task_pool.t -> partitions:int -> (int -> int) -> int -> int Row_vec.t array
(** [partition ~partitions pf n] splits row indices [0, n) by [pf] (pure);
    each partition lists its indices in ascending order, so per-partition
    scans see rows in original order. *)
