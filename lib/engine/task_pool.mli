(** A reusable pool of worker domains for data-parallel query execution.

    Jobs are chunked: [run t ~chunks f] executes [f 0 .. f (chunks - 1)]
    exactly once each, spread over the pool's domains; idle workers claim
    the next unclaimed chunk with a fetch-and-add (morsel-style dynamic
    load balancing), and the submitting caller participates instead of
    blocking. Only one job runs at a time: a submission that finds the pool
    busy — including a nested submission from inside a running chunk —
    executes inline in the caller, so nested parallel operators degrade to
    sequential instead of deadlocking. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains - 1] worker domains (the caller is the last
    participant); [domains = 1] spawns nothing and runs every job inline.
    Domains are long-lived — create one pool per process and share it.
    @raise Invalid_argument unless [1 <= domains <= 128]. *)

val domains : t -> int
(** Total participants (workers + the submitting caller). *)

val run : t -> chunks:int -> (int -> unit) -> unit
(** Execute one chunked job. Chunk functions must be independent (chunks
    after a failure still run) and touch disjoint mutable state. The first
    exception raised by any chunk is re-raised in the caller after all
    chunks finish. Thread-safe; concurrent or nested submissions run
    inline. *)

val shutdown : t -> unit
(** Join every worker domain. Idempotent; the pool stays usable afterwards
    (jobs run inline), so shutdown order against in-flight queries is not
    load-bearing. *)

val is_parallel : t -> bool
(** [true] while the pool has live workers ([domains > 1] and not yet shut
    down). *)

type stats = { jobs : int; inline_jobs : int; caller_chunks : int; worker_chunks : int }
(** Lifetime scheduling counters for the telemetry surface: jobs posted to
    this pool, chunked jobs that degraded to inline (pool busy, shut down,
    or single-domain — counted process-wide), and chunks claimed by the
    submitting caller vs. by worker domains (also process-wide). *)

val stats : t -> stats
(** A snapshot of the counters. Chunk and inline counts are process-global
    (shared across pools); [jobs] is per-pool. *)
