(** Growable array used as the executor's row container: O(1) amortised
    append, O(1) indexing, cheap slicing for LIMIT/OFFSET. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Bounds-checked; @raise Invalid_argument when out of range. *)

val unsafe_get : 'a t -> int -> 'a
val push : 'a t -> 'a -> unit
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
(** Copies its input; the vector never aliases caller storage. *)

val wrap : 'a array -> 'a t
(** Takes ownership of the array without copying; the caller must not
    mutate it afterwards. For kernels that build exact-size output. *)

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val concat : 'a t array -> 'a t
(** Exact-size concatenation in array order; used to reassemble per-morsel
    outputs of the parallel operators. *)

val of_arrays : 'a array array -> 'a t
(** [concat] over plain arrays. *)

val slice : 'a t -> offset:int -> limit:int option -> 'a t
(** Clamped slice: safe for any LIMIT/OFFSET combination, replacing the old
    non-tail-recursive list [take]. *)
