module Ast = Flex_sql.Ast

(* Compile-once expression evaluation. An [Ast.expr] is translated into an
   OCaml closure [Value.t array -> Value.t] exactly once per relation: column
   references are resolved to integer offsets at compile time (correlated
   references against enclosing scopes resolve to the enclosing row's value,
   which is fixed for the duration of one relation evaluation, so they
   compile to constants). The per-row cost is then a plain closure call with
   no AST dispatch and no name resolution. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type header = { alias : string option; name : string }

let resolve_opt (headers : header array) (c : Ast.col_ref) =
  let col = String.lowercase_ascii c.column in
  let n = Array.length headers in
  match c.table with
  | Some t ->
    let t = String.lowercase_ascii t in
    let rec go i =
      if i >= n then None
      else
        match headers.(i).alias with
        | Some a when String.lowercase_ascii a = t && headers.(i).name = col -> Some i
        | _ -> go (i + 1)
    in
    go 0
  | None ->
    (* Unqualified: first match wins (real engines reject ambiguity; our
       generated workloads qualify anything genuinely ambiguous). *)
    let rec go i =
      if i >= n then None else if headers.(i).name = col then Some i else go (i + 1)
    in
    go 0

(* Projection expansion shared by the row pipeline and the columnar engine:
   [*] and [t.*] become explicit column references against [headers], and
   every projection gets its output name. *)
let expand_projections (headers : header array) (projections : Ast.projection list) =
  (* Returns (expr, output name) pairs. *)
  List.concat_map
    (fun p ->
      match p with
      | Ast.Proj_star ->
        Array.to_list
          (Array.map
             (fun (h : header) -> (Ast.Col { Ast.table = h.alias; column = h.name }, h.name))
             headers)
      | Ast.Proj_table_star t ->
        let t' = String.lowercase_ascii t in
        let matches =
          Array.to_list headers
          |> List.filter (fun (h : header) ->
               match h.alias with
               | Some a -> String.lowercase_ascii a = t'
               | None -> false)
        in
        if matches = [] then error "unknown relation %s in %s.*" t t;
        List.map
          (fun (h : header) -> (Ast.Col { Ast.table = h.alias; column = h.name }, h.name))
          matches
      | Ast.Proj_expr (e, alias) ->
        let name =
          match alias with
          | Some a -> String.lowercase_ascii a
          | None -> (
            match e with
            | Ast.Col c -> String.lowercase_ascii c.column
            | Ast.Agg { func; _ } -> Ast.agg_func_name func
            | _ -> "expr")
        in
        [ (e, name) ])
    projections

type t = Value.t array -> Value.t

type subquery = Ast.query -> Value.t array -> int * Value.t array list
(** [subquery q row] evaluates [q] with [row] pushed as the innermost
    enclosing scope; returns (column count, result rows). Provided by the
    executor — the only part of evaluation that cannot be precompiled, since
    a subquery's own relations are instantiated per enclosing row. *)

(* Aggregate slot registry: while compiling a grouped projection/HAVING, each
   distinct aggregate application (func, distinct, arg) is assigned a slot;
   the executor computes slot values once per group (lazily, so aggregates
   behind a failed HAVING are never forced) and publishes them through
   [current]. *)
type agg_slot = { func : Ast.agg_func; distinct : bool; star : bool; arg : t option }

type agg_slots = {
  mutable specs : (Ast.agg_func * bool * Ast.agg_arg) list; (* slot order *)
  mutable compiled : agg_slot list; (* slot order, aligned with specs *)
  mutable current : Value.t Lazy.t array;
}

let make_slots () = { specs = []; compiled = []; current = [||] }

let slots s = s.compiled

let specs s = s.specs

let set_group s values = s.current <- values

let rec index_of spec i = function
  | [] -> None
  | x :: rest -> if x = spec then Some i else index_of spec (i + 1) rest

let rec compile ~(subquery : subquery) ?agg ~(headers : header array)
    ~(outer : (header array * Value.t array) list) (e : Ast.expr) : t =
  let recur e = compile ~subquery ?agg ~headers ~outer e in
  match e with
  | Ast.Lit Ast.Null -> fun _ -> Value.Null
  | Ast.Lit (Ast.Bool b) ->
    let v = Value.Bool b in
    fun _ -> v
  | Ast.Lit (Ast.Int i) ->
    let v = Value.Int i in
    fun _ -> v
  | Ast.Lit (Ast.Float f) ->
    let v = Value.Float f in
    fun _ -> v
  | Ast.Lit (Ast.String s) ->
    let v = Value.String s in
    fun _ -> v
  | Ast.Col c -> (
    match resolve_opt headers c with
    | Some i -> fun row -> Array.unsafe_get row i
    | None ->
      (* free variable: resolve against the enclosing scopes (correlation);
         the enclosing row is fixed while this relation is evaluated, so the
         reference compiles to a constant *)
      let rec walk = function
        | [] ->
          error "unknown column %s"
            (match c.Ast.table with Some t -> t ^ "." ^ c.Ast.column | None -> c.Ast.column)
        | (hs, r) :: rest -> (
          match resolve_opt hs c with
          | Some i ->
            let v = r.(i) in
            fun _ -> v
          | None -> walk rest)
      in
      walk outer)
  | Ast.Binop (op, a, b) ->
    let ca = recur a and cb = recur b in
    fun row -> Eval.binop op (ca row) (cb row)
  | Ast.Unop (op, a) ->
    let ca = recur a in
    fun row -> Eval.unop op (ca row)
  | Ast.Agg { func; distinct; arg } -> (
    match agg with
    | None -> error "aggregate %s used outside a grouping context" (Ast.agg_func_name func)
    | Some slots ->
      let spec = (func, distinct, arg) in
      let i =
        match index_of spec 0 slots.specs with
        | Some i -> i
        | None ->
          let compiled_arg =
            match arg with
            | Ast.Star -> None
            | Ast.Arg e ->
              (* aggregate arguments are row-level: no nested aggregates *)
              Some (compile ~subquery ~headers ~outer e)
          in
          slots.specs <- slots.specs @ [ spec ];
          slots.compiled <-
            slots.compiled @ [ { func; distinct; star = arg = Ast.Star; arg = compiled_arg } ];
          List.length slots.specs - 1
      in
      fun _ -> Lazy.force slots.current.(i))
  | Ast.Func (name, args) ->
    let cs = List.map recur args in
    fun row -> Eval.func name (List.map (fun c -> c row) cs)
  | Ast.Case { operand; branches; else_ } ->
    let cop = Option.map recur operand in
    let cbr = List.map (fun (c, v) -> (recur c, recur v)) branches in
    let cel = Option.map recur else_ in
    fun row ->
      let matches (cc, _) =
        match cop with
        | None -> Eval.is_truthy (cc row)
        | Some co -> (
          match Value.sql_equal (co row) (cc row) with
          | Some true -> true
          | Some false | None -> false)
      in
      (match List.find_opt matches cbr with
      | Some (_, cv) -> cv row
      | None -> ( match cel with Some c -> c row | None -> Value.Null))
  | Ast.In { subject; negated; set } -> (
    let cs = recur subject in
    match set with
    | Ast.In_list es ->
      let cms = List.map recur es in
      fun row ->
        let v = cs row in
        if Value.is_null v then Value.Null
        else
          let members = List.map (fun c -> c row) cms in
          let found = List.exists (fun m -> Value.equal m v) members in
          Value.Bool (if negated then not found else found)
    | Ast.In_query q ->
      fun row ->
        let v = cs row in
        if Value.is_null v then Value.Null
        else begin
          let ncols, rows = subquery q row in
          if ncols <> 1 then error "IN subquery must return exactly one column";
          let found = List.exists (fun r -> Value.equal r.(0) v) rows in
          Value.Bool (if negated then not found else found)
        end)
  | Ast.Between { subject; negated; lo; hi } ->
    let cs = recur subject and clo = recur lo and chi = recur hi in
    fun row ->
      let v = cs row and lo = clo row and hi = chi row in
      (match (Value.sql_compare v lo, Value.sql_compare v hi) with
      | Some c1, Some c2 ->
        let inside = c1 >= 0 && c2 <= 0 in
        Value.Bool (if negated then not inside else inside)
      | _ -> Value.Null)
  | Ast.Like { subject; negated; pattern } ->
    let cs = recur subject and cp = recur pattern in
    fun row ->
      (match Eval.like (cs row) (cp row) with
      | Value.Bool b -> Value.Bool (if negated then not b else b)
      | v -> v)
  | Ast.Is_null { subject; negated } ->
    let cs = recur subject in
    fun row ->
      let isnull = Value.is_null (cs row) in
      Value.Bool (if negated then not isnull else isnull)
  | Ast.Exists q ->
    fun row ->
      let _, rows = subquery q row in
      Value.Bool (rows <> [])
  | Ast.Scalar_subquery q ->
    fun row ->
      let ncols, rows = subquery q row in
      if ncols <> 1 then error "scalar subquery must return exactly one column";
      (match rows with
      | [] -> Value.Null
      | [ r ] -> r.(0)
      | _ -> error "scalar subquery returned more than one row")
  | Ast.Cast (a, ty) ->
    let ca = recur a in
    fun row -> Eval.cast (ca row) ty
