module Ast = Flex_sql.Ast

(* SQL aggregate functions over a group's values. NULLs are skipped, matching
   standard semantics; a star-count counts rows including NULLs. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let distinct_values values =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    values

let non_null values = List.filter (fun v -> not (Value.is_null v)) values

let floats_of name values =
  List.map
    (fun v ->
      match Value.to_float v with
      | Some f -> f
      | None -> error "%s over non-numeric value %a" name Value.pp v)
    values

let sum_value values =
  let all_int = List.for_all (function Value.Int _ -> true | _ -> false) values in
  if all_int then
    Value.Int
      (List.fold_left
         (fun acc v -> match v with Value.Int i -> acc + i | _ -> acc)
         0 values)
  else Value.Float (List.fold_left ( +. ) 0.0 (floats_of "SUM" values))

let median_value values =
  let fs = List.sort compare (floats_of "MEDIAN" values) in
  let a = Array.of_list fs in
  let n = Array.length a in
  if n = 0 then Value.Null
  else if n mod 2 = 1 then Value.Float a.(n / 2)
  else Value.Float ((a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)

let stddev_value values =
  let fs = floats_of "STDDEV" values in
  let n = List.length fs in
  if n < 2 then Value.Null
  else begin
    let mean = List.fold_left ( +. ) 0.0 fs /. float_of_int n in
    let ss = List.fold_left (fun acc f -> acc +. ((f -. mean) *. (f -. mean))) 0.0 fs in
    Value.Float (sqrt (ss /. float_of_int (n - 1)))
  end

(* [compute func ~distinct ~star ~nrows values]: [values] are the evaluated
   argument values over the group's rows (ignored when [star]). *)
let compute (func : Ast.agg_func) ~distinct ~star ~nrows values =
  match func with
  | Ast.Count ->
    if star then Value.Int nrows
    else begin
      let vs = non_null values in
      let vs = if distinct then distinct_values vs else vs in
      Value.Int (List.length vs)
    end
  | Ast.Sum -> (
    let vs = non_null values in
    let vs = if distinct then distinct_values vs else vs in
    match vs with [] -> Value.Null | vs -> sum_value vs)
  | Ast.Avg -> (
    let vs = non_null values in
    let vs = if distinct then distinct_values vs else vs in
    match vs with
    | [] -> Value.Null
    | vs ->
      let fs = floats_of "AVG" vs in
      Value.Float (List.fold_left ( +. ) 0.0 fs /. float_of_int (List.length fs)))
  | Ast.Min -> (
    match non_null values with
    | [] -> Value.Null
    | v :: vs -> List.fold_left (fun acc v -> if Value.compare v acc < 0 then v else acc) v vs)
  | Ast.Max -> (
    match non_null values with
    | [] -> Value.Null
    | v :: vs -> List.fold_left (fun acc v -> if Value.compare v acc > 0 then v else acc) v vs)
  | Ast.Median -> median_value (non_null values)
  | Ast.Stddev -> stddev_value (non_null values)

(* Streaming variant of [compute] for the executor's vectorized group path:
   [iter f] must apply [f] to the argument values in row order. The common
   non-distinct aggregates fold in one pass with no intermediate list;
   DISTINCT, MEDIAN and STDDEV need the whole collection and fall back to
   [compute]. *)
let compute_iter (func : Ast.agg_func) ~distinct ~star ~nrows
    ~(iter : (Value.t -> unit) -> unit) =
  let fallback () =
    let acc = ref [] in
    iter (fun v -> acc := v :: !acc);
    compute func ~distinct ~star ~nrows (List.rev !acc)
  in
  if star || distinct then fallback ()
  else
    match func with
    | Ast.Count ->
      let n = ref 0 in
      iter (fun v -> if not (Value.is_null v) then incr n);
      Value.Int !n
    | Ast.Sum ->
      (* mirror [sum_value]: all-Int groups sum exactly, otherwise as floats *)
      let n = ref 0 and all_int = ref true and isum = ref 0 and fsum = ref 0.0 in
      iter (fun v ->
          if not (Value.is_null v) then begin
            incr n;
            match v with
            | Value.Int i -> isum := !isum + i
            | _ -> all_int := false
          end);
      if !n = 0 then Value.Null
      else if !all_int then Value.Int !isum
      else begin
        (* second pass for the float view keeps the error behaviour and
           summation order of [floats_of] *)
        iter (fun v ->
            if not (Value.is_null v) then
              match Value.to_float v with
              | Some f -> fsum := !fsum +. f
              | None -> error "SUM over non-numeric value %a" Value.pp v);
        Value.Float !fsum
      end
    | Ast.Avg ->
      let n = ref 0 and fsum = ref 0.0 in
      iter (fun v ->
          if not (Value.is_null v) then
            match Value.to_float v with
            | Some f ->
              incr n;
              fsum := !fsum +. f
            | None -> error "AVG over non-numeric value %a" Value.pp v);
      if !n = 0 then Value.Null else Value.Float (!fsum /. float_of_int !n)
    | Ast.Min ->
      let best = ref Value.Null in
      iter (fun v ->
          if not (Value.is_null v) then
            if Value.is_null !best || Value.compare v !best < 0 then best := v);
      !best
    | Ast.Max ->
      let best = ref Value.Null in
      iter (fun v ->
          if not (Value.is_null v) then
            if Value.is_null !best || Value.compare v !best > 0 then best := v);
      !best
    | Ast.Median | Ast.Stddev -> fallback ()

(* --- partial aggregation ------------------------------------------------- *)

(* Aggregates the parallel engine may split into per-chunk partial states and
   merge. Merging must reproduce the sequential result bit-for-bit, which
   rules out float SUM/AVG (float addition is not associative) along with
   DISTINCT/MEDIAN/STDDEV (whole-collection). SUM is attempted optimistically:
   an all-Int group sums exactly in any order, and the partial state records
   whether a non-Int value was seen so [Partial.merge] can demand a
   sequential recomputation. Star-counts need no iteration at all ([nrows] is
   already known), so they are excluded too. *)
let mergeable (func : Ast.agg_func) ~distinct ~star =
  (not distinct) && (not star)
  &&
  match func with
  | Ast.Count | Ast.Sum | Ast.Min | Ast.Max -> true
  | Ast.Avg | Ast.Median | Ast.Stddev -> false

module Partial = struct
  type t =
    | Count of { mutable n : int }
    | Sum of { mutable n : int; mutable isum : int; mutable pure_int : bool }
    | Min of { mutable best : Value.t }
    | Max of { mutable best : Value.t }

  let create (func : Ast.agg_func) =
    match func with
    | Ast.Count -> Count { n = 0 }
    | Ast.Sum -> Sum { n = 0; isum = 0; pure_int = true }
    | Ast.Min -> Min { best = Value.Null }
    | Ast.Max -> Max { best = Value.Null }
    | Ast.Avg | Ast.Median | Ast.Stddev ->
      error "Partial.create: %s is not mergeable" (Ast.agg_func_name func)

  let add t v =
    if not (Value.is_null v) then
      match t with
      | Count c -> c.n <- c.n + 1
      | Sum s -> (
        s.n <- s.n + 1;
        match v with
        | Value.Int i -> s.isum <- s.isum + i
        | _ -> s.pure_int <- false)
      | Min m -> if Value.is_null m.best || Value.compare v m.best < 0 then m.best <- v
      | Max m -> if Value.is_null m.best || Value.compare v m.best > 0 then m.best <- v

  (* [merge parts] combines chunk states (all created by the same [create]
     call pattern); [None] means the merge cannot reproduce the sequential
     result — a non-Int value reached SUM — and the caller must recompute
     sequentially. *)
  let merge (parts : t array) : Value.t option =
    match parts.(0) with
    | Count _ ->
      let n =
        Array.fold_left
          (fun acc p -> match p with Count c -> acc + c.n | _ -> acc)
          0 parts
      in
      Some (Value.Int n)
    | Sum _ ->
      let n = ref 0 and isum = ref 0 and pure = ref true in
      Array.iter
        (function
          | Sum s ->
            n := !n + s.n;
            isum := !isum + s.isum;
            if not s.pure_int then pure := false
          | _ -> ())
        parts;
      if not !pure then None
      else if !n = 0 then Some Value.Null
      else Some (Value.Int !isum)
    | Min _ ->
      let best = ref Value.Null in
      Array.iter
        (function
          | Min m ->
            if
              (not (Value.is_null m.best))
              && (Value.is_null !best || Value.compare m.best !best < 0)
            then best := m.best
          | _ -> ())
        parts;
      Some !best
    | Max _ ->
      let best = ref Value.Null in
      Array.iter
        (function
          | Max m ->
            if
              (not (Value.is_null m.best))
              && (Value.is_null !best || Value.compare m.best !best > 0)
            then best := m.best
          | _ -> ())
        parts;
      Some !best
end
