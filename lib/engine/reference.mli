module Ast = Flex_sql.Ast

(** The original row-at-a-time tree-walking interpreter, kept as a
    differential-testing oracle for the compiled/vectorized {!Executor}.
    Deliberately unoptimised; results (values and row order) must be
    identical to {!Executor} on every supported query. *)

exception Error of string

type result_set = { columns : string list; rows : Value.t array list }

val run : Database.t -> Ast.query -> result_set
val run_sql : Database.t -> string -> (result_set, string) result
