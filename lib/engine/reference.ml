module Ast = Flex_sql.Ast

(* The original row-at-a-time tree-walking interpreter, preserved verbatim as
   a differential-testing oracle for the compiled/vectorized {!Executor}.
   Every query shape the engine supports must produce identical result sets
   (values AND row order) through both pipelines; test_engine asserts this
   over generated workloads. Keep this module simple and obviously correct —
   it is deliberately not optimised.

   Two seed bugs are fixed here as well as in Executor so the pipelines
   agree: the nested-loop arm dropped every row for a Cross join carrying
   equality keys, and LIMIT used a non-tail-recursive [take]. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type header = Compiled.header = { alias : string option; name : string }

type rel = { headers : header array; rows : Value.t array list }

type result_set = { columns : string list; rows : Value.t array list }

let to_result (r : rel) =
  { columns = Array.to_list (Array.map (fun h -> h.name) r.headers); rows = r.rows }

let resolve_opt = Compiled.resolve_opt

(* --- evaluation environment ---------------------------------------------- *)

type env = {
  db : Database.t;
  ctes : (string * rel) list;
  (* enclosing query scopes, innermost first: correlated subqueries resolve
     free column references against these *)
  outer : (header array * Value.t array) list;
}

(* Aggregate lookup: present only while projecting a grouped relation. *)
type agg_ctx = {
  group_rows : Value.t array list;
  group_size : int;
  memo : (Ast.agg_func * bool * Ast.agg_arg, Value.t) Hashtbl.t;
}

let rec eval_expr env headers (agg : agg_ctx option) (row : Value.t array) (e : Ast.expr)
    : Value.t =
  let recur e = eval_expr env headers agg row e in
  (* a correlated subquery sees the enclosing rows through env.outer *)
  let subquery_env = { env with outer = (headers, row) :: env.outer } in
  match e with
  | Ast.Lit Ast.Null -> Value.Null
  | Ast.Lit (Ast.Bool b) -> Value.Bool b
  | Ast.Lit (Ast.Int i) -> Value.Int i
  | Ast.Lit (Ast.Float f) -> Value.Float f
  | Ast.Lit (Ast.String s) -> Value.String s
  | Ast.Col c -> (
    match resolve_opt headers c with
    | Some i -> row.(i)
    | None ->
      (* free variable: walk the enclosing scopes (correlation) *)
      let rec walk = function
        | [] ->
          error "unknown column %s"
            (match c.Ast.table with Some t -> t ^ "." ^ c.Ast.column | None -> c.Ast.column)
        | (hs, r) :: rest -> (
          match resolve_opt hs c with Some i -> r.(i) | None -> walk rest)
      in
      walk env.outer)
  | Ast.Binop (op, a, b) -> Eval.binop op (recur a) (recur b)
  | Ast.Unop (op, a) -> Eval.unop op (recur a)
  | Ast.Agg { func; distinct; arg } -> (
    match agg with
    | None -> error "aggregate %s used outside a grouping context" (Ast.agg_func_name func)
    | Some ctx -> eval_aggregate env headers ctx (func, distinct, arg))
  | Ast.Func (name, args) -> Eval.func name (List.map recur args)
  | Ast.Case { operand; branches; else_ } -> (
    let matches (cond, _) =
      match operand with
      | None -> Eval.is_truthy (recur cond)
      | Some op -> (
        match Value.sql_equal (recur op) (recur cond) with
        | Some true -> true
        | Some false | None -> false)
    in
    match List.find_opt matches branches with
    | Some (_, v) -> recur v
    | None -> ( match else_ with Some e -> recur e | None -> Value.Null))
  | Ast.In { subject; negated; set } -> (
    let v = recur subject in
    if Value.is_null v then Value.Null
    else
      let members =
        match set with
        | Ast.In_list es -> List.map recur es
        | Ast.In_query q ->
          let r = eval_query subquery_env q in
          if Array.length r.headers <> 1 then
            error "IN subquery must return exactly one column";
          List.map (fun row -> row.(0)) r.rows
      in
      let found = List.exists (fun m -> Value.equal m v) members in
      Value.Bool (if negated then not found else found))
  | Ast.Between { subject; negated; lo; hi } -> (
    let v = recur subject and lo = recur lo and hi = recur hi in
    match (Value.sql_compare v lo, Value.sql_compare v hi) with
    | Some c1, Some c2 ->
      let inside = c1 >= 0 && c2 <= 0 in
      Value.Bool (if negated then not inside else inside)
    | _ -> Value.Null)
  | Ast.Like { subject; negated; pattern } -> (
    match Eval.like (recur subject) (recur pattern) with
    | Value.Bool b -> Value.Bool (if negated then not b else b)
    | v -> v)
  | Ast.Is_null { subject; negated } ->
    let isnull = Value.is_null (recur subject) in
    Value.Bool (if negated then not isnull else isnull)
  | Ast.Exists q ->
    let r = eval_query subquery_env q in
    Value.Bool (r.rows <> [])
  | Ast.Scalar_subquery q -> (
    let r = eval_query subquery_env q in
    if Array.length r.headers <> 1 then
      error "scalar subquery must return exactly one column";
    match r.rows with
    | [] -> Value.Null
    | [ row ] -> row.(0)
    | _ -> error "scalar subquery returned more than one row")
  | Ast.Cast (a, ty) -> Eval.cast (recur a) ty

and eval_aggregate env headers ctx (func, distinct, arg) =
  let key = (func, distinct, arg) in
  match Hashtbl.find_opt ctx.memo key with
  | Some v -> v
  | None ->
    let star = arg = Ast.Star in
    let values =
      match arg with
      | Ast.Star -> []
      | Ast.Arg e ->
        List.map (fun row -> eval_expr env headers None row e) ctx.group_rows
    in
    let v = Aggregate.compute func ~distinct ~star ~nrows:ctx.group_size values in
    Hashtbl.replace ctx.memo key v;
    v

(* --- table references ----------------------------------------------------- *)

and rel_of_table ~alias (t : Table.t) =
  let qualifier = match alias with Some a -> Some a | None -> Some (Table.name t) in
  {
    headers = Array.map (fun name -> { alias = qualifier; name }) (Table.columns t);
    rows = Array.to_list (Table.rows t);
  }

and requalify alias (r : rel) =
  { r with headers = Array.map (fun h -> { h with alias = Some alias }) r.headers }

and eval_table_ref env (tr : Ast.table_ref) : rel =
  match tr with
  | Ast.Table { name; alias } -> (
    match List.assoc_opt (String.lowercase_ascii name) env.ctes with
    | Some r -> requalify (Option.value alias ~default:name) r
    | None -> (
      match Database.find_opt env.db name with
      | Some t -> rel_of_table ~alias t
      | None -> error "unknown table %s" name))
  | Ast.Derived { query; alias } -> requalify alias (eval_query env query)
  | Ast.Join { kind; left; right; cond } ->
    let l = eval_table_ref env left in
    let r = eval_table_ref env right in
    join env kind l r cond

(* Equality key pairs (left index, right index) extracted from an ON
   condition; remaining conjuncts are evaluated on the combined row. *)
and split_join_condition lheaders rheaders (e : Ast.expr) =
  let conjuncts = Ast.conjuncts e in
  let try_pair = function
    | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) -> (
      match (resolve_opt lheaders a, resolve_opt rheaders b) with
      | Some li, Some ri -> Some (li, ri)
      | _ -> (
        match (resolve_opt lheaders b, resolve_opt rheaders a) with
        | Some li, Some ri -> Some (li, ri)
        | _ -> None))
    | _ -> None
  in
  List.fold_left
    (fun (keys, rest) c ->
      match try_pair c with
      | Some pair -> (pair :: keys, rest)
      | None -> (keys, c :: rest))
    ([], []) conjuncts

and join env kind (l : rel) (r : rel) (cond : Ast.join_cond) : rel =
  let headers = Array.append l.headers r.headers in
  let common_columns () =
    let rnames = Array.to_list (Array.map (fun h -> h.name) r.headers) in
    Array.to_list (Array.map (fun h -> h.name) l.headers)
    |> List.filter (fun n -> List.mem n rnames)
    |> List.sort_uniq compare
  in
  let keys, residual =
    match cond with
    | Ast.Cond_none -> ([], [])
    | Ast.On e -> split_join_condition l.headers r.headers e
    | Ast.Using _ | Ast.Natural ->
      let cols =
        match cond with Ast.Using cols -> cols | _ -> common_columns ()
      in
      let pairs =
        List.map
          (fun c ->
            let cr = { Ast.table = None; column = c } in
            match (resolve_opt l.headers cr, resolve_opt r.headers cr) with
            | Some li, Some ri -> (li, ri)
            | _ -> error "USING column %s not present on both sides" c)
          cols
      in
      (pairs, [])
  in
  let residual_ok combined =
    List.for_all
      (fun e -> Eval.is_truthy (eval_expr env headers None combined e))
      residual
  in
  let null_row n = Array.make n Value.Null in
  let rarr = Array.of_list r.rows in
  let rmatched = Array.make (Array.length rarr) false in
  let out = ref [] in
  let emit row = out := row :: !out in
  (match (kind, keys) with
  | Ast.Cross, _ | _, [] ->
    (* Nested loop; used for cross joins and non-equality conditions. A Cross
       join can still carry equality keys (e.g. an AST built directly); they
       must then hold as ordinary SQL equalities, not drop every row. *)
    let keys_ok lrow rrow =
      List.for_all
        (fun (li, ri) ->
          match Value.sql_equal lrow.(li) rrow.(ri) with
          | Some true -> true
          | Some false | None -> false)
        keys
    in
    let lmatched_any lrow =
      let any = ref false in
      Array.iteri
        (fun ri rrow ->
          let combined = Array.append lrow rrow in
          let ok =
            match cond with
            | Ast.Cond_none -> true
            | _ -> residual_ok combined && keys_ok lrow rrow
          in
          if ok then begin
            any := true;
            rmatched.(ri) <- true;
            emit combined
          end)
        rarr;
      !any
    in
    List.iter
      (fun lrow ->
        let matched = lmatched_any lrow in
        if (not matched) && (kind = Ast.Left || kind = Ast.Full) then
          emit (Array.append lrow (null_row (Array.length r.headers))))
      l.rows
  | _, keys ->
    (* Hash join on the equality keys. *)
    let tbl = Hashtbl.create (max 16 (Array.length rarr)) in
    Array.iteri
      (fun ri rrow ->
        let key = List.map (fun (_, rk) -> rrow.(rk)) keys in
        if not (List.exists Value.is_null key) then
          Hashtbl.add tbl key ri)
      rarr;
    List.iter
      (fun lrow ->
        let key = List.map (fun (lk, _) -> lrow.(lk)) keys in
        let candidates =
          if List.exists Value.is_null key then [] else Hashtbl.find_all tbl key
        in
        let matched = ref false in
        (* find_all returns newest-first; reverse for stable output order *)
        List.iter
          (fun ri ->
            let combined = Array.append lrow rarr.(ri) in
            if residual_ok combined then begin
              matched := true;
              rmatched.(ri) <- true;
              emit combined
            end)
          (List.rev candidates);
        if (not !matched) && (kind = Ast.Left || kind = Ast.Full) then
          emit (Array.append lrow (null_row (Array.length r.headers))))
      l.rows);
  if kind = Ast.Right || kind = Ast.Full then
    Array.iteri
      (fun ri rrow ->
        if not rmatched.(ri) then
          emit (Array.append (null_row (Array.length l.headers)) rrow))
      rarr;
  { headers; rows = List.rev !out }

(* --- select evaluation ----------------------------------------------------- *)

and cross_all env = function
  | [] -> { headers = [||]; rows = [ [||] ] } (* FROM-less SELECT: one empty row *)
  | [ tr ] -> eval_table_ref env tr
  | tr :: rest ->
    List.fold_left
      (fun acc tr -> join env Ast.Cross acc (eval_table_ref env tr) Ast.Cond_none)
      (eval_table_ref env tr) rest

and expand_projections headers (projections : Ast.projection list) =
  (* Returns (expr, output name) pairs. *)
  List.concat_map
    (fun p ->
      match p with
      | Ast.Proj_star ->
        Array.to_list
          (Array.map
             (fun (h : header) ->
               (Ast.Col { Ast.table = h.alias; column = h.name }, h.name))
             headers)
      | Ast.Proj_table_star t ->
        let t' = String.lowercase_ascii t in
        let matches =
          Array.to_list headers
          |> List.filter (fun h ->
               match h.alias with
               | Some a -> String.lowercase_ascii a = t'
               | None -> false)
        in
        if matches = [] then error "unknown relation %s in %s.*" t t;
        List.map
          (fun (h : header) -> (Ast.Col { Ast.table = h.alias; column = h.name }, h.name))
          matches
      | Ast.Proj_expr (e, alias) ->
        let name =
          match alias with
          | Some a -> String.lowercase_ascii a
          | None -> (
            match e with
            | Ast.Col c -> String.lowercase_ascii c.column
            | Ast.Agg { func; _ } -> Ast.agg_func_name func
            | _ -> "expr")
        in
        [ (e, name) ])
    projections

and has_aggregate e =
  Ast.fold_expr (fun acc e -> acc || match e with Ast.Agg _ -> true | _ -> false) false e

and eval_select env (s : Ast.select) : rel =
  let source = cross_all env s.from in
  let filtered =
    match s.where with
    | None -> source.rows
    | Some pred ->
      List.filter
        (fun row -> Eval.is_truthy (eval_expr env source.headers None row pred))
        source.rows
  in
  let projections = expand_projections source.headers s.projections in
  let any_agg =
    List.exists (fun (e, _) -> has_aggregate e) projections
    || (match s.having with Some h -> has_aggregate h | None -> false)
  in
  let out_headers =
    Array.of_list (List.map (fun (_, name) -> { alias = None; name }) projections)
  in
  let rows =
    if s.group_by = [] && not any_agg then
      (* plain projection *)
      List.map
        (fun row ->
          Array.of_list
            (List.map (fun (e, _) -> eval_expr env source.headers None row e) projections))
        filtered
    else begin
      (* grouped path; an aggregate query without GROUP BY is a single group *)
      let groups : (Value.t list, Value.t array list ref) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      let key_of row =
        List.map (fun e -> eval_expr env source.headers None row e) s.group_by
      in
      List.iter
        (fun row ->
          let key = key_of row in
          match Hashtbl.find_opt groups key with
          | Some cell -> cell := row :: !cell
          | None ->
            Hashtbl.add groups key (ref [ row ]);
            order := key :: !order)
        filtered;
      let keys_in_order = List.rev !order in
      let keys_in_order =
        (* no GROUP BY: one group over all rows, even when empty *)
        if s.group_by = [] then begin
          if keys_in_order = [] then begin
            Hashtbl.add groups [] (ref []);
            [ [] ]
          end
          else keys_in_order
        end
        else keys_in_order
      in
      List.filter_map
        (fun key ->
          let rows_rev = !(Hashtbl.find groups key) in
          let group_rows = List.rev rows_rev in
          let representative =
            match group_rows with
            | row :: _ -> row
            | [] -> Array.make (Array.length source.headers) Value.Null
          in
          let ctx =
            {
              group_rows;
              group_size = List.length group_rows;
              memo = Hashtbl.create 8;
            }
          in
          let keep =
            match s.having with
            | None -> true
            | Some h ->
              Eval.is_truthy
                (eval_expr env source.headers (Some ctx) representative h)
          in
          if not keep then None
          else
            Some
              (Array.of_list
                 (List.map
                    (fun (e, _) ->
                      eval_expr env source.headers (Some ctx) representative e)
                    projections)))
        keys_in_order
    end
  in
  let rows =
    if s.distinct then begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun row ->
          let key = Array.to_list row in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        rows
    end
    else rows
  in
  { headers = out_headers; rows }

(* --- set operations --------------------------------------------------------- *)

and check_arity op (l : rel) (r : rel) =
  if Array.length l.headers <> Array.length r.headers then
    error "%s operands have different column counts" op

and dedupe rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let key = Array.to_list row in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    rows

and eval_body env (b : Ast.body) : rel =
  match b with
  | Ast.Select s -> eval_select env s
  | Ast.Union { all; left; right } ->
    let l = eval_body env left and r = eval_body env right in
    check_arity "UNION" l r;
    let rows = l.rows @ r.rows in
    { headers = l.headers; rows = (if all then rows else dedupe rows) }
  | Ast.Except { all; left; right } ->
    let l = eval_body env left and r = eval_body env right in
    check_arity "EXCEPT" l r;
    if all then begin
      (* bag difference *)
      let counts = Hashtbl.create 64 in
      List.iter
        (fun row ->
          let k = Array.to_list row in
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        r.rows;
      let rows =
        List.filter
          (fun row ->
            let k = Array.to_list row in
            match Hashtbl.find_opt counts k with
            | Some n when n > 0 ->
              Hashtbl.replace counts k (n - 1);
              false
            | _ -> true)
          l.rows
      in
      { headers = l.headers; rows }
    end
    else begin
      let right_set = Hashtbl.create 64 in
      List.iter (fun row -> Hashtbl.replace right_set (Array.to_list row) ()) r.rows;
      let rows =
        dedupe l.rows
        |> List.filter (fun row -> not (Hashtbl.mem right_set (Array.to_list row)))
      in
      { headers = l.headers; rows }
    end
  | Ast.Intersect { all; left; right } ->
    let l = eval_body env left and r = eval_body env right in
    check_arity "INTERSECT" l r;
    let counts = Hashtbl.create 64 in
    List.iter
      (fun row ->
        let k = Array.to_list row in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      r.rows;
    if all then begin
      let rows =
        List.filter
          (fun row ->
            let k = Array.to_list row in
            match Hashtbl.find_opt counts k with
            | Some n when n > 0 ->
              Hashtbl.replace counts k (n - 1);
              true
            | _ -> false)
          l.rows
      in
      { headers = l.headers; rows }
    end
    else begin
      let rows =
        dedupe l.rows |> List.filter (fun row -> Hashtbl.mem counts (Array.to_list row))
      in
      { headers = l.headers; rows }
    end

(* --- full queries ------------------------------------------------------------ *)

and eval_query env (q : Ast.query) : rel =
  let env =
    List.fold_left
      (fun env (cte : Ast.cte) ->
        let r = eval_query env cte.cte_query in
        let r =
          if cte.cte_columns = [] then r
          else begin
            if List.length cte.cte_columns <> Array.length r.headers then
              error "CTE %s column list arity mismatch" cte.cte_name;
            {
              r with
              headers =
                Array.of_list
                  (List.map
                     (fun n -> { alias = None; name = String.lowercase_ascii n })
                     cte.cte_columns);
            }
          end
        in
        { env with ctes = (String.lowercase_ascii cte.cte_name, r) :: env.ctes })
      env q.ctes
  in
  (* ORDER BY may reference source columns that are not projected (standard
     SQL). When an order key does not resolve against the output relation,
     re-evaluate the select with the key appended as a hidden projection,
     sort, and strip the extra columns. Not available under DISTINCT, where
     SQL itself requires order keys to be projected. *)
  let r = eval_body env q.body in
  let order_key_visible (r : rel) (e : Ast.expr) =
    (not (has_aggregate e))
    && List.for_all
         (fun c -> resolve_opt r.headers c <> None)
         (Ast.expr_columns e)
  in
  let visible = Array.length r.headers in
  let r, order_by =
    if q.order_by = [] || List.for_all (fun (e, _) -> order_key_visible r e) q.order_by
    then (r, q.order_by)
    else
      match q.body with
      | Ast.Select s when not s.distinct ->
        let hidden = ref [] in
        let order_by =
          List.mapi
            (fun i (e, dir) ->
              if order_key_visible r e then (e, dir)
              else begin
                let name = Fmt.str "_ord%d" i in
                hidden := Ast.Proj_expr (e, Some name) :: !hidden;
                (Ast.Col { Ast.table = None; column = name }, dir)
              end)
            q.order_by
        in
        let extended =
          eval_select env { s with projections = s.projections @ List.rev !hidden }
        in
        (extended, order_by)
      | _ -> (r, q.order_by)
  in
  let r =
    if order_by = [] then r
    else begin
      let key_of row =
        List.map
          (fun (e, dir) ->
            let v =
              match e with
              | Ast.Lit (Ast.Int pos) when pos >= 1 && pos <= visible -> row.(pos - 1)
              | e -> eval_expr env r.headers None row e
            in
            (v, dir))
          order_by
      in
      let cmp ka kb =
        let rec go = function
          | [] -> 0
          | ((va, dir), (vb, _)) :: rest ->
            let c = Value.compare va vb in
            let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go rest
        in
        go (List.combine ka kb)
      in
      let decorated = List.map (fun row -> (key_of row, row)) r.rows in
      let sorted = List.stable_sort (fun (ka, _) (kb, _) -> cmp ka kb) decorated in
      { r with rows = List.map snd sorted }
    end
  in
  (* strip hidden order columns *)
  let r =
    if Array.length r.headers = visible then r
    else
      {
        headers = Array.sub r.headers 0 visible;
        rows = List.map (fun row -> Array.sub row 0 visible) r.rows;
      }
  in
  let drop n rows =
    let rec go n rows = if n <= 0 then rows else match rows with [] -> [] | _ :: r -> go (n - 1) r in
    go n rows
  in
  (* tail-recursive LIMIT: the seed's [take] overflowed the stack on large
     limits *)
  let take n rows =
    let rec go n acc rows =
      if n <= 0 then List.rev acc
      else match rows with [] -> List.rev acc | x :: r -> go (n - 1) (x :: acc) r
    in
    go n [] rows
  in
  let rows = match q.offset with Some n -> drop n r.rows | None -> r.rows in
  let rows = match q.limit with Some n -> take n rows | None -> rows in
  { r with rows }

(* --- public API ----------------------------------------------------------------- *)

let run db (q : Ast.query) : result_set =
  to_result (eval_query { db; ctes = []; outer = [] } q)

let run_sql db sql : (result_set, string) result =
  match Flex_sql.Parser.parse sql with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok q -> (
    match run db q with
    | r -> Stdlib.Ok r
    | exception Error msg -> Stdlib.Error ("execution error: " ^ msg)
    | exception Compiled.Error msg -> Stdlib.Error ("execution error: " ^ msg)
    | exception Eval.Error msg -> Stdlib.Error ("evaluation error: " ^ msg)
    | exception Aggregate.Error msg -> Stdlib.Error ("aggregation error: " ^ msg))
