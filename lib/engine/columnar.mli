module Ast = Flex_sql.Ast

(** Columnar batch execution: vectorized filter / hash-equijoin / GROUP BY /
    top-K kernels over {!Chunk} columns for the recognised query subset
    (single-table scans and left-deep INNER equijoins with conjunctive
    predicates, column projections and group keys, standard aggregates).

    Every entry point returns [None] — and the caller runs the row pipeline
    unchanged — when the query falls outside the subset or raises any
    engine error during columnar evaluation (the columnar plan evaluates
    predicates on pre-join supersets of the row pipeline's input, so its
    error set is a superset: falling back on error reproduces the row
    pipeline's result or its error exactly). Accepted queries return
    results bit-identical to the row pipeline, which is what keeps DP
    releases invariant under {!enabled}. *)

type header = Compiled.header = { alias : string option; name : string }

type result_set = { chead : header array; crows : Value.t array Row_vec.t }

val enabled : bool ref
(** Master switch, on by default; the differential suites toggle it. *)

val query : ?pool:Task_pool.t -> Database.t -> Ast.query -> result_set option
(** Full CTE-free [SELECT] (no grouping) including ORDER BY/LIMIT/OFFSET. *)

val select : ?pool:Task_pool.t -> Database.t -> Ast.select -> result_set option
(** One select body, grouped or not (the executor's sort/slice tail runs on
    top, including its hidden-order-key re-evaluation). *)

val plan_query : ?pool:Task_pool.t -> Database.t -> Plan.t -> result_set option
(** Plan-side {!query}: scan chains with pushed-down filters and
    build-on-right inner hash joins. *)

val plan_select : ?pool:Task_pool.t -> Database.t -> Plan.select_plan -> result_set option
(** Plan-side {!select}. *)
