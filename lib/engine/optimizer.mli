module Ast = Flex_sql.Ast

(** Cost-based logical-plan optimizer.

    Two phases over {!Plan.t}:

    - {b Logical} (always sound, statistics optional): constant folding
      restricted to identities that cannot drop a runtime-error site,
      single-use CTE inlining, outer-join reduction on null-rejecting WHERE
      conjuncts, trivially-false short-circuit (sources are emptied, the
      WHERE is kept so runtime errors survive), conjunct splitting with
      predicate pushdown through joins and into derived tables, and
      projection pruning inside derived tables. All rewrites preserve SQL
      3-valued-logic semantics; pushdown through outer joins only moves
      predicates onto the preserved side.

    - {b Physical} (driven by {!Metrics}): the per-table row counts and
      max-frequency [mf] metrics collected for elastic sensitivity (paper
      §3.4) double as optimizer statistics — [mf] is exactly the worst-case
      per-key join fanout, giving the cardinality bound
      [min(|L|·mf_R, |R|·mf_L, |L|·|R|)] for an equijoin. The optimizer
      greedily reorders inner-join chains to minimise summed intermediate
      cardinality and picks each hash join's build side
      ({!Plan.rel.Join.build_left}).

    Privacy invariance: {!Flex} analyses the original AST; only execution
    consumes the rewritten plan, so elastic-sensitivity results are
    bit-identical with the optimizer on or off. *)

val rewrite : ?metrics:Metrics.t -> Plan.t -> Plan.t
(** Optimize a plan. Without [?metrics] only the logical rules and the
    stats-free physical defaults apply. Row {e order} of the result may
    differ from the unoptimized plan (join reorder and build-side swaps
    follow the probe relation's order); row {e multisets} are identical up to
    floating-point rounding — reordering re-associates float SUM/AVG
    accumulation, so those aggregates can differ in low-order bits. *)

val plan : ?metrics:Metrics.t -> Ast.query -> Plan.t
(** [plan ?metrics q = rewrite ?metrics (Plan.of_query q)]. *)

val estimator : ?metrics:Metrics.t -> Plan.t -> Plan.estimator
(** Cardinality estimator for a specific plan (CTE cardinalities are
    memoised per plan). Scans use {!Metrics.row_count}; equality filters use
    [mf/n] selectivity (primary keys [1/n]); joins use the [mf] fanout
    bounds above; GROUP BY and DISTINCT use a square-root heuristic. *)

val explain : ?metrics:Metrics.t -> ?estimates:bool -> Ast.query -> string * string
(** [(logical, optimized)] rendered plans — the payload behind
    [EXPLAIN <query>]. [~estimates] (default [true]) controls the per-operator
    [~N rows] cardinality annotations; pass [false] on untrusted surfaces,
    because the estimates are seeded from exact private-table row counts
    ({!Metrics.row_count}) and would otherwise disclose them for free. The
    rewrite itself still uses [?metrics] either way, so the rendered optimized
    shape matches what executes.

    When the query factors ({!Flex_sql.Factor}) into a releasable core plus a
    nontrivial post-processing suffix, the logical rendering gains a trailing
    [derivable: ...] line naming the core shape and the suffix clauses — the
    shape the service layer can answer from a stored release at zero budget
    instead of executing at all. *)
