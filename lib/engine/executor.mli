module Ast = Flex_sql.Ast

(** SQL query evaluation over a {!Database}. The executor plays the role of
    the paper's "any existing database": FLEX only parses queries and
    post-processes results, so the engine implements ordinary SQL semantics
    with no privacy awareness.

    Supported: projections with aliases and [*]/[t.*]; WHERE with 3-valued
    logic; inner/left/right/full/cross joins (hash join on equality keys,
    nested loop otherwise); USING/NATURAL; GROUP BY + HAVING with
    COUNT/SUM/AVG/MIN/MAX/MEDIAN/STDDEV (and DISTINCT variants); derived
    tables and chained CTEs; IN/EXISTS/scalar subqueries (correlated
    subqueries resolve free columns against enclosing scopes);
    UNION/EXCEPT/INTERSECT (with ALL); DISTINCT; ORDER BY (including
    unprojected source columns) with LIMIT/OFFSET.

    Implementation: expressions are compiled once per relation into closures
    with column offsets pre-resolved ({!Compiled}); rows travel in dynamic
    arrays ({!Row_vec}); joins, grouping, DISTINCT and set operations share a
    [Value.t array]-keyed hashtable ({!Row_table}). The original interpreter
    is kept as {!Reference}, the differential-testing oracle. *)

exception Error of string

type header = Compiled.header = { alias : string option; name : string }

type rel = { headers : header array; rows : Value.t array list }
(** Intermediate relation carrying alias qualifiers for resolution. *)

type result_set = { columns : string list; rows : Value.t array list }

val columnar_enabled : bool ref
(** The {!Columnar} batch engine's master switch (= {!Columnar.enabled}, on
    by default). Recognised queries run through vectorized kernels over
    typed column chunks; everything else — and everything when the switch
    is off — runs the row pipeline. Results are bit-identical either way
    (enforced by the 3-way differential suite), so toggling it never
    changes a DP release. *)

val run : ?pool:Task_pool.t -> Database.t -> Ast.query -> result_set
(** [?pool] enables the morsel-parallel operators ({!Parallel}): scan,
    filter and projection over row morsels, partitioned parallel hash-join
    builds with parallel probes, and parallel GROUP BY. Results are
    bit-identical to a sequential run — every parallel operator preserves
    row order and evaluation order (enforced by the differential suite);
    inputs below {!Parallel.threshold} rows run sequentially.
    @raise Error (and {!Eval.Error} / {!Aggregate.Error}) on semantic
    errors: unknown tables or columns, arity mismatches, aggregates outside
    grouping. *)

val run_plan : ?pool:Task_pool.t -> Database.t -> Plan.t -> result_set
(** Execute a logical plan through the same compiled operators as {!run}.
    [run_plan (Plan.of_query q) ≡ run q] bit-for-bit; optimized plans
    ({!Optimizer.rewrite}) may permute row order (hash-join build-side
    swaps and join reorder follow the probe relation's order), so results
    compare as multisets. *)

val run_plan_analyzed :
  ?pool:Task_pool.t -> Database.t -> Plan.t -> result_set * Plan.Analyze.trace
(** {!run_plan} with EXPLAIN ANALYZE collection: every plan operator records
    its output cardinality and inclusive elapsed time into the returned
    trace (paths follow the {!Plan.Analyze} scheme, so
    {!Plan.render_analyzed} can annotate the plan text). The result set is
    identical to [run_plan]'s — tracing only observes. *)

val run_optimized :
  ?pool:Task_pool.t -> ?metrics:Metrics.t -> Database.t -> Ast.query -> result_set
(** [run_plan db (Optimizer.plan ?metrics q)] — same result multiset as
    [run db q]; row order may differ when the optimizer reorders joins or
    swaps hash-join build sides. *)

val explain_analyze :
  ?pool:Task_pool.t ->
  ?optimize:bool ->
  ?metrics:Metrics.t ->
  ?show_rows:bool ->
  Database.t ->
  Ast.query ->
  string * result_set
(** Execute [q] (through the optimizer by default) collecting per-operator
    stats and render the annotated plan. [show_rows] (default [true])
    prints actual row counts; pass [false] to render counts as [?] — actual
    cardinalities of private tables are gated exactly like EXPLAIN's
    estimates (see {!Plan.Analyze.suffix}). The result set is returned too,
    but EXPLAIN ANALYZE surfaces normally discard it. *)

val run_sql :
  ?pool:Task_pool.t ->
  ?optimize:bool ->
  ?metrics:Metrics.t ->
  Database.t ->
  string ->
  (result_set, string) result
(** Parse and run; all failures as [Error message]. [~optimize:true]
    (default false) routes through {!run_optimized}. *)

val run_sql_exn :
  ?pool:Task_pool.t ->
  ?optimize:bool ->
  ?metrics:Metrics.t ->
  Database.t ->
  string ->
  result_set

val resolve_opt : header array -> Ast.col_ref -> int option
(** Column resolution: qualified references match the alias; unqualified
    references take the first name match. *)
