module Ast = Flex_sql.Ast

(* The engine's logical plan IR. [of_query] is a structure-preserving
   translation of the parsed AST: comma-separated FROM items become left-deep
   cross joins, everything else maps one-to-one, and no rewrite happens here.
   {!Optimizer.rewrite} then transforms plans (predicate pushdown, join
   reordering, build-side selection, ...) and {!Executor.run_plan} executes
   them through the same compiled operators as the AST path. The renderer is
   the engine's EXPLAIN; an optional {!estimator} annotates operators with
   estimated cardinalities. *)

type rel =
  | Scan of { table : string; alias : string }
  | Derived of { plan : t; alias : string }
  | Filter of { pred : Ast.expr; input : rel }
  | Join of {
      kind : Ast.join_kind;
      cond : Ast.join_cond;
      build_left : bool;
      left : rel;
      right : rel;
    }

and select_plan = {
  distinct : bool;
  projections : Ast.projection list;
  source : rel option; (* [None] = FROM-less SELECT *)
  where : Ast.expr option;
  group_by : Ast.expr list;
  having : Ast.expr option;
}

and body_plan =
  | Plan_select of select_plan
  | Plan_set of { op : set_op; all : bool; left : body_plan; right : body_plan }

and set_op = Union | Except | Intersect

and t = {
  ctes : (string * string list * t) list;
  body : body_plan;
  order_by : (Ast.expr * Ast.order_dir) list;
  limit : int option;
  offset : int option;
}

(* --- AST -> plan ----------------------------------------------------------- *)

let rec of_table_ref (tr : Ast.table_ref) : rel =
  match tr with
  | Ast.Table { name; alias } -> Scan { table = name; alias = Option.value alias ~default:name }
  | Ast.Derived { query; alias } -> Derived { plan = of_query query; alias }
  | Ast.Join { kind; left; right; cond } ->
    Join
      { kind; cond; build_left = false; left = of_table_ref left; right = of_table_ref right }

and source_of_from (from : Ast.table_ref list) : rel option =
  match from with
  | [] -> None
  | tr :: rest ->
    Some
      (List.fold_left
         (fun acc tr ->
           Join
             {
               kind = Ast.Cross;
               cond = Ast.Cond_none;
               build_left = false;
               left = acc;
               right = of_table_ref tr;
             })
         (of_table_ref tr) rest)

and of_select (s : Ast.select) : select_plan =
  {
    distinct = s.distinct;
    projections = s.projections;
    source = source_of_from s.from;
    where = s.where;
    group_by = s.group_by;
    having = s.having;
  }

and of_body (b : Ast.body) : body_plan =
  match b with
  | Ast.Select s -> Plan_select (of_select s)
  | Ast.Union { all; left; right } ->
    Plan_set { op = Union; all; left = of_body left; right = of_body right }
  | Ast.Except { all; left; right } ->
    Plan_set { op = Except; all; left = of_body left; right = of_body right }
  | Ast.Intersect { all; left; right } ->
    Plan_set { op = Intersect; all; left = of_body left; right = of_body right }

and of_query (q : Ast.query) : t =
  {
    ctes = List.map (fun (c : Ast.cte) -> (c.cte_name, c.cte_columns, of_query c.cte_query)) q.ctes;
    body = of_body q.body;
    order_by = q.order_by;
    limit = q.limit;
    offset = q.offset;
  }

(* --- traversals ------------------------------------------------------------ *)

let rec fold_rel_exprs f acc (r : rel) =
  match r with
  | Scan _ -> acc
  | Derived { plan; _ } -> fold_exprs f acc plan
  | Filter { pred; input } -> fold_rel_exprs f (f acc pred) input
  | Join { cond; left; right; _ } ->
    let acc = match cond with Ast.On e -> f acc e | _ -> acc in
    fold_rel_exprs f (fold_rel_exprs f acc left) right

and fold_select_exprs f acc (sp : select_plan) =
  let acc =
    List.fold_left
      (fun acc p -> match p with Ast.Proj_expr (e, _) -> f acc e | _ -> acc)
      acc sp.projections
  in
  let acc = match sp.source with Some r -> fold_rel_exprs f acc r | None -> acc in
  let acc = match sp.where with Some e -> f acc e | None -> acc in
  let acc = List.fold_left f acc sp.group_by in
  match sp.having with Some e -> f acc e | None -> acc

and fold_body_exprs f acc (b : body_plan) =
  match b with
  | Plan_select sp -> fold_select_exprs f acc sp
  | Plan_set { left; right; _ } -> fold_body_exprs f (fold_body_exprs f acc left) right

and fold_exprs : 'a. ('a -> Ast.expr -> 'a) -> 'a -> t -> 'a =
 fun f acc (p : t) ->
  let acc = List.fold_left (fun acc (_, _, cp) -> fold_exprs f acc cp) acc p.ctes in
  let acc = fold_body_exprs f acc p.body in
  List.fold_left (fun acc (e, _) -> f acc e) acc p.order_by

let columns_of_plan (p : t) : Ast.col_ref list =
  List.rev (fold_exprs (fun acc e -> List.rev_append (Ast.deep_expr_columns e) acc) [] p)

let rec rel_aliases (r : rel) =
  match r with
  | Scan { alias; _ } -> [ String.lowercase_ascii alias ]
  | Derived { alias; _ } -> [ String.lowercase_ascii alias ]
  | Filter { input; _ } -> rel_aliases input
  | Join { left; right; _ } -> rel_aliases left @ rel_aliases right

(* --- EXPLAIN ANALYZE traces ------------------------------------------------- *)

(* Operator statistics collected by {!Executor.run_plan_analyzed} and rendered
   by {!render_analyzed}. The executor and the renderer walk the same plan
   tree, so they agree on a node's identity through a path string built with
   the same constructors on both sides: ["q"] is the root plan, and each edge
   appends ["/c<i>"] (CTE i), ["/b"] (body), ["/l"]/["/r"] (set-operation or
   join children), ["/s"] (select source), ["/w"] (the WHERE stage), ["/i"]
   (a relational Filter's input), ["/d"] (a derived subquery's plan), or
   ["/o"] (the sort stage). Stats are inclusive of children, the Postgres
   EXPLAIN ANALYZE convention. *)
module Analyze = struct
  type stat = {
    rows_in : int; (* -1 when the operator has no single input cardinality *)
    rows_out : int;
    elapsed_ns : float; (* NaN when the stage has no independent timing *)
  }

  type trace = (string, stat) Hashtbl.t

  let create () : trace = Hashtbl.create 64
  let record tr ~path ?(rows_in = -1) ~rows_out elapsed_ns =
    Hashtbl.replace tr path { rows_in; rows_out; elapsed_ns }

  let find (tr : trace) path = Hashtbl.find_opt tr path

  let root_path = "q"
  let cte_path p i = p ^ "/c" ^ string_of_int i
  let body_path p = p ^ "/b"
  let left_path p = p ^ "/l"
  let right_path p = p ^ "/r"
  let source_path p = p ^ "/s"
  let where_path p = p ^ "/w"
  let input_path p = p ^ "/i"
  let derived_path p = p ^ "/d"
  let sort_path p = p ^ "/o"

  let result_rows (tr : trace) =
    match find tr root_path with Some s -> Some s.rows_out | None -> None

  (* The "  (actual ...)" suffix for one operator line. [show_rows] gates the
     row counts — they are exact private-table cardinalities, the same class
     of value as the optimizer's EXPLAIN estimates, so they render as [?]
     unless the deployment opted in (Server.config.explain_estimates). *)
  let suffix ~show_rows (s : stat) =
    let rows =
      if not show_rows then "?"
      else if s.rows_in >= 0 then Printf.sprintf "%d->%d" s.rows_in s.rows_out
      else string_of_int s.rows_out
    in
    if Float.is_nan s.elapsed_ns then Printf.sprintf "  (actual rows=%s)" rows
    else Printf.sprintf "  (actual rows=%s, %.2fms)" rows (s.elapsed_ns /. 1e6)
end

(* --- rendering ------------------------------------------------------------- *)

type estimator = {
  est_rel : rel -> float option;
  est_select : select_plan -> float option;
}

let no_estimator = { est_rel = (fun _ -> None); est_select = (fun _ -> None) }

let card_suffix est =
  match est with
  | None -> ""
  | Some c -> Fmt.str "  (~%.0f rows)" (Float.round c)

(* The renderer threads an [annot]: a set of callbacks that, given a node's
   trace path (and the node), return the suffix for its line. Estimated
   EXPLAIN and EXPLAIN ANALYZE are two instantiations of the same walk. *)
type annot = {
  ann_rel : string -> rel -> string;
  ann_select : string -> select_plan -> string;
  ann_where : string -> string;
  ann_set : string -> string;
  ann_sort : string -> string;
  ann_slice : string -> string;
}

let no_annot =
  {
    ann_rel = (fun _ _ -> "");
    ann_select = (fun _ _ -> "");
    ann_where = (fun _ -> "");
    ann_set = (fun _ -> "");
    ann_sort = (fun _ -> "");
    ann_slice = (fun _ -> "");
  }

let annot_of_est est =
  {
    no_annot with
    ann_rel = (fun _ r -> card_suffix (est.est_rel r));
    ann_select = (fun _ sp -> card_suffix (est.est_select sp));
  }

let annot_of_trace ~show_rows (tr : Analyze.trace) =
  let at path = match Analyze.find tr path with Some s -> Analyze.suffix ~show_rows s | None -> "" in
  {
    ann_rel = (fun path _ -> at path);
    ann_select = (fun path _ -> at path);
    ann_where = (fun path -> at (Analyze.where_path path));
    ann_set = (fun path -> at path);
    ann_sort = (fun path -> at (Analyze.sort_path path));
    ann_slice = (fun path -> at path);
  }

let col_str (c : Ast.col_ref) =
  match c.table with Some t -> t ^ "." ^ c.column | None -> c.column

(* Mirror Executor.split_join_condition, approximated syntactically: every
   column-equality conjunct becomes a hash key. *)
let join_keys (cond : Ast.join_cond) =
  match cond with
  | Ast.Cond_none -> ([], 0)
  | Ast.Using cols -> (List.map (fun c -> (c, c)) cols, 0)
  | Ast.Natural -> ([ ("<common>", "<common>") ], 0)
  | Ast.On e ->
    let conjuncts = Ast.conjuncts e in
    let keys, residual =
      List.partition
        (function Ast.Binop (Ast.Eq, Ast.Col _, Ast.Col _) -> true | _ -> false)
        conjuncts
    in
    ( List.filter_map
        (function
          | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) -> Some (col_str a, col_str b)
          | _ -> None)
        keys,
      List.length residual )

let rec pp_rel ann ppf (indent, path, r) =
  let pad = String.make (indent * 2) ' ' in
  let line fmt = Fmt.pf ppf ("%s" ^^ fmt ^^ "%s@.") pad in
  let card = ann.ann_rel path r in
  match r with
  | Scan { table; alias } ->
    if table = alias then line "Scan %s" table card else line "Scan %s AS %s" table alias card
  | Derived { plan; alias } ->
    line "Derived AS %s" alias card;
    pp_plan ann ppf (indent + 1, Analyze.derived_path path, plan)
  | Filter { pred; input } ->
    line "Filter %s" (Flex_sql.Pretty.expr pred) card;
    pp_rel ann ppf (indent + 1, Analyze.input_path path, input)
  | Join { kind; cond; build_left; left; right } ->
    let keys, residual = join_keys cond in
    let build = if build_left then " build=left" else "" in
    (if kind = Ast.Cross || keys = [] then
       line "%s [nested loop]%s"
         (Ast.join_kind_name kind)
         (if residual > 0 then Fmt.str " +%d residual" residual else "")
         card
     else
       line "%s [hash on %s]%s"
         (Ast.join_kind_name kind)
         (String.concat ", " (List.map (fun (a, b) -> a ^ " = " ^ b) keys))
         ((if residual > 0 then Fmt.str " +%d residual" residual else "") ^ build)
         card);
    pp_rel ann ppf (indent + 1, Analyze.left_path path, left);
    pp_rel ann ppf (indent + 1, Analyze.right_path path, right)

and pp_select ann ppf (indent, path, sp) =
  let pad = String.make (indent * 2) ' ' in
  let line fmt = Fmt.pf ppf ("%s" ^^ fmt ^^ "%s@.") pad in
  let card = ann.ann_select path sp in
  let aggs =
    List.map
      (fun (f, distinct, arg) ->
        Fmt.str "%s(%s%s)"
          (String.uppercase_ascii (Ast.agg_func_name f))
          (if distinct then "DISTINCT " else "")
          (match arg with Ast.Star -> "*" | Ast.Arg e -> Flex_sql.Pretty.expr e))
      (Ast.select_aggregates
         {
           Ast.distinct = sp.distinct;
           projections = sp.projections;
           from = [];
           where = sp.where;
           group_by = sp.group_by;
           having = sp.having;
         })
  in
  let column_names =
    List.map
      (function
        | Ast.Proj_star -> "*"
        | Ast.Proj_table_star t -> t ^ ".*"
        | Ast.Proj_expr (e, Some a) -> Flex_sql.Pretty.expr e ^ " AS " ^ a
        | Ast.Proj_expr (e, None) -> Flex_sql.Pretty.expr e)
      sp.projections
  in
  let grouped = aggs <> [] || sp.group_by <> [] in
  let indent =
    if not grouped then begin
      line "Project%s [%s]"
        (if sp.distinct then " DISTINCT" else "")
        (String.concat ", " column_names)
        card;
      indent + 1
    end
    else begin
      let indent =
        if sp.distinct then begin
          line "Project DISTINCT [%s]" (String.concat ", " column_names) card;
          indent + 1
        end
        else indent
      in
      let pad = String.make (indent * 2) ' ' in
      Fmt.pf ppf "%sAggregate [%s]%s%s%s@." pad (String.concat ", " aggs)
        (if sp.group_by = [] then ""
         else " GROUP BY " ^ String.concat ", " (List.map Flex_sql.Pretty.expr sp.group_by))
        (if sp.having <> None then " HAVING" else "")
        (if sp.distinct then "" else card);
      indent + 1
    end
  in
  let filtered =
    match sp.where with
    | None -> indent
    | Some e ->
      let pad = String.make (indent * 2) ' ' in
      Fmt.pf ppf "%sFilter %s%s@." pad (Flex_sql.Pretty.expr e) (ann.ann_where path);
      indent + 1
  in
  match sp.source with
  | None ->
    let pad = String.make (filtered * 2) ' ' in
    Fmt.pf ppf "%sScan <empty>@." pad
  | Some r -> pp_rel ann ppf (filtered, Analyze.source_path path, r)

and pp_body ann ppf (indent, path, b) =
  let pad = String.make (indent * 2) ' ' in
  match b with
  | Plan_select sp -> pp_select ann ppf (indent, path, sp)
  | Plan_set { op; all; left; right } ->
    let name = match op with Union -> "UNION" | Except -> "EXCEPT" | Intersect -> "INTERSECT" in
    Fmt.pf ppf "%s%s%s%s@." pad name (if all then " ALL" else "") (ann.ann_set path);
    pp_body ann ppf (indent + 1, Analyze.left_path path, left);
    pp_body ann ppf (indent + 1, Analyze.right_path path, right)

and pp_plan ann ppf (indent, path, (p : t)) =
  let pad = String.make (indent * 2) ' ' in
  let line fmt = Fmt.pf ppf ("%s" ^^ fmt ^^ "@.") pad in
  List.iteri
    (fun i (name, _, cp) ->
      line "CTE %s:" name;
      pp_plan ann ppf (indent + 1, Analyze.cte_path path i, cp))
    p.ctes;
  let sliced = p.limit <> None || p.offset <> None in
  if sliced then
    line "Slice%s%s%s"
      (match p.limit with Some n -> Fmt.str " LIMIT %d" n | None -> "")
      (match p.offset with Some n -> Fmt.str " OFFSET %d" n | None -> "")
      (ann.ann_slice path);
  let indent = if sliced then indent + 1 else indent in
  let sorted = p.order_by <> [] in
  if sorted then begin
    let pad = String.make (indent * 2) ' ' in
    Fmt.pf ppf "%sSort [%s]%s@." pad
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              Flex_sql.Pretty.expr e
              ^ (match dir with Ast.Asc -> " ASC" | Ast.Desc -> " DESC"))
            p.order_by))
      (ann.ann_sort path)
  end;
  pp_body ann ppf ((if sorted then indent + 1 else indent), Analyze.body_path path, p.body)

let pp_annot ann ppf t = pp_plan ann ppf (0, Analyze.root_path, t)

let pp ppf t = pp_annot no_annot ppf t

let to_string t = Fmt.str "%a" pp t

let render ?(est = no_estimator) t = Fmt.str "%a" (pp_annot (annot_of_est est)) t

let render_analyzed ?(show_rows = true) ~trace t =
  Fmt.str "%a" (pp_annot (annot_of_trace ~show_rows trace)) t

let explain_sql sql =
  match Flex_sql.Parser.parse sql with
  | Ok q -> Ok (to_string (of_query q))
  | Error e -> Error e
